//! Offline auto-tuning, the paper's intended workflow (Fig. 1):
//!
//! 1. run the offline tuner once on a training field of a climate model;
//! 2. reuse the tuned pipeline for online compression of *other* fields and
//!    snapshots from the same model.
//!
//! ```sh
//! cargo run --release --example climate_model_tuning
//! ```

use cliz::prelude::*;

fn main() {
    // Training field: one SSH variable from "the ocean model".
    let train = cliz::data::ssh(&[96, 80, 240], 11);
    println!(
        "training field: {} {} ({:.0}% masked)",
        train.kind.name(),
        train.data.shape(),
        train.invalid_fraction() * 100.0
    );

    // Offline stage: 1% block sampling, all candidate pipelines.
    let spec = TuneSpec {
        sampling_rate: 0.01,
        time_axis: train.time_axis,
        bound: ErrorBound::Rel(1e-3),
    };
    let t0 = std::time::Instant::now();
    let result = cliz::autotune(&train.data, train.mask.as_ref(), spec).expect("tuning failed");
    println!(
        "tuned over {} candidate pipelines on {} sampled points in {:.2?}",
        result.ranking.len(),
        result.sample_points,
        t0.elapsed()
    );
    if let Some(p) = result.period_detected {
        println!("FFT period detector: period = {p} snapshots (annual cycle)");
    }
    println!("winning pipeline: {}", result.best.describe());
    println!("\ntop five candidates (estimated ratio on the sample):");
    for cand in result.ranking.iter().take(5) {
        println!("  {:7.2}x  {}", cand.est_ratio, cand.config.describe());
    }

    // Online stage: apply the tuned pipeline to new snapshots of the same
    // model (a different seed stands in for a different ensemble member).
    println!("\nonline compression with the tuned pipeline:");
    for seed in [21u64, 22, 23] {
        let field = cliz::data::ssh(&[96, 80, 240], seed);
        let bytes = cliz::compress(
            &field.data,
            field.mask.as_ref(),
            ErrorBound::Rel(1e-3),
            &result.best,
        )
        .expect("compress");
        let baseline_cfg = PipelineConfig::default_for(3);
        let baseline = cliz::compress(
            &field.data,
            field.mask.as_ref(),
            ErrorBound::Rel(1e-3),
            &baseline_cfg,
        )
        .expect("compress");
        let original = field.data.len() * 4;
        println!(
            "  member {seed}: tuned {:.2}x vs untuned {:.2}x",
            original as f64 / bytes.len() as f64,
            original as f64 / baseline.len() as f64,
        );
    }
}
