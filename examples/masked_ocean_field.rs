//! Mask-map-aware prediction (paper Sec. VI-B) in action.
//!
//! Land-model and ocean-model variables carry huge fill values (≈9.97e36)
//! outside their domain. This example compresses the same SOILLIQ-like field
//! with the mask-blind SZ3 baseline, CliZ without its mask feature, and full
//! CliZ — and prints what the fill values cost each of them.
//!
//! ```sh
//! cargo run --release --example masked_ocean_field
//! ```

use cliz::prelude::*;

fn main() {
    // Soil moisture: ~60-70% of the globe is ocean and therefore fill.
    let field = cliz::data::soilliq(&[48, 8, 48, 72], 5);
    let original = field.data.len() * 4;
    println!(
        "dataset: {} {} — {:.0}% of points are fill values",
        field.kind.name(),
        field.data.shape(),
        field.invalid_fraction() * 100.0
    );

    // Resolve the relative tolerance on the *valid* range, so the mask-blind
    // baseline is held to the same fidelity target (a raw Rel bound would
    // let it treat the 1e36 fill values as signal and claim absurd ratios).
    let bound = cliz::rel_bound_on_valid(&field.data, field.mask.as_ref(), 1e-3);
    let ndim = field.data.shape().ndim();

    // 1. SZ3: mask-blind, must encode the fill cliffs.
    let sz3 = cliz::SzInterp;
    let b1 = sz3
        .compress(&field.data, field.mask.as_ref(), bound)
        .expect("sz3");

    // 2. CliZ with the mask feature disabled (ablation).
    let mut no_mask = PipelineConfig::default_for(ndim);
    no_mask.use_mask = false;
    let b2 = cliz::compress(&field.data, field.mask.as_ref(), bound, &no_mask).expect("cliz");

    // 3. Full CliZ: masked points are neither predicted from nor encoded.
    let with_mask = PipelineConfig::default_for(ndim);
    let b3 = cliz::compress(&field.data, field.mask.as_ref(), bound, &with_mask).expect("cliz");

    println!("\ncompression ratios at rel eb 1e-3:");
    println!("  SZ3 (mask-blind)      {:8.2}x", original as f64 / b1.len() as f64);
    println!("  CliZ, mask disabled   {:8.2}x", original as f64 / b2.len() as f64);
    println!("  CliZ, mask-aware      {:8.2}x", original as f64 / b3.len() as f64);

    // Verify the reconstruction honours the bound on valid points and
    // restores the fill value on masked ones.
    let recon = cliz::decompress(&b3, field.mask.as_ref()).expect("decompress");
    let psnr = cliz::metrics::psnr(field.data.as_slice(), recon.as_slice(), field.mask.as_ref());
    let mask = field.mask.as_ref().unwrap();
    let fills_ok = (0..field.data.len())
        .filter(|&i| !mask.is_valid(i))
        .all(|i| recon.as_slice()[i] == cliz::data::FILL_VALUE);
    println!("\nmask-aware reconstruction: PSNR {psnr:.1} dB on valid points;");
    println!("fill values restored exactly: {fills_ok}");
}
