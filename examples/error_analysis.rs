//! Beyond PSNR: Z-checker-style error diagnostics.
//!
//! Poppick et al. (cited in the paper's related work) showed that pointwise
//! metrics can hide structured compression artifacts. This example compresses
//! the same field with CliZ and ZFP at a matched bound and compares their
//! *error distributions*: histogram shape, bias, spatial autocorrelation, and
//! Pearson correlation.
//!
//! ```sh
//! cargo run --release --example error_analysis
//! ```

use cliz::metrics::analyze_errors;
use cliz::prelude::*;

fn main() {
    let field = cliz::data::tsfc(&[64, 48, 96], 99);
    let bound = cliz::rel_bound_on_valid(&field.data, field.mask.as_ref(), 1e-2);
    println!(
        "dataset: {} {} at rel eb 1e-2\n",
        field.kind.name(),
        field.data.shape()
    );

    for compressor in [&Cliz::new() as &dyn Compressor, &Zfp] {
        let bytes = compressor
            .compress(&field.data, field.mask.as_ref(), bound)
            .unwrap();
        let recon = compressor
            .decompress(&bytes, field.mask.as_ref())
            .unwrap();
        let a = analyze_errors(
            field.data.as_slice(),
            recon.as_slice(),
            field.mask.as_ref(),
            15,
            6,
        );
        println!("=== {} ({} bytes)", compressor.name(), bytes.len());
        println!("  pearson:        {:.8}", a.pearson);
        println!("  error bias:     {:+.3e}", a.mean_error);
        println!("  max |error|:    {:.3e}", a.max_abs);
        println!(
            "  autocorr 1..6:  {}",
            a.autocorrelation
                .iter()
                .map(|v| format!("{v:+.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let peak = a.histogram.iter().copied().max().unwrap_or(1).max(1);
        println!("  error histogram:");
        for (b, &count) in a.histogram.iter().enumerate() {
            let lo = -a.max_abs + b as f64 * a.bucket_width;
            println!("    {lo:+.2e} {}", "#".repeat(count * 50 / peak));
        }
        println!();
    }
    println!(
        "Reading: a healthy linear quantizer (CliZ/SZ-family) produces a near-uniform, \
         unbiased, uncorrelated error; transform codecs concentrate error differently, \
         which is what multi-scale climate evaluations look for."
    );
}
