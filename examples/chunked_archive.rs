//! Chunked compression with random access — the HDF5/NetCDF-style
//! deployment mode (the paper's integration future work).
//!
//! A long monthly time series is compressed as independent year-slabs;
//! a reader then decodes a single year without touching the rest.
//!
//! ```sh
//! cargo run --release --example chunked_archive
//! ```

use cliz::prelude::*;

fn main() {
    // 20 years of monthly surface temperature, [time, lat, lon].
    let field = cliz::data::tsfc(&[64, 48, 240], 77);
    // Storage layout [lat, lon, time] -> permute so time leads and chunking
    // along axis 0 cuts the series into years.
    let data = field.data.permuted(&[2, 0, 1]);
    let mask = field.mask.as_ref().map(|m| m.permuted(&[2, 0, 1]));
    let bound = cliz::rel_bound_on_valid(&data, mask.as_ref(), 1e-3);
    let config = PipelineConfig::default_for(3);
    let chunk_len = 12; // one year per chunk

    let bytes =
        cliz::compress_chunked(&data, mask.as_ref(), bound, &config, chunk_len).unwrap();
    let original = data.len() * 4;
    println!(
        "archived {} months as {} year-chunks: {} -> {} bytes ({:.1}x)",
        data.shape().dim(0),
        data.shape().dim(0) / chunk_len,
        original,
        bytes.len(),
        original as f64 / bytes.len() as f64
    );

    // Random access: pull out year 13 only.
    let t0 = std::time::Instant::now();
    let year13 = cliz::decompress_chunk(&bytes, 13, mask.as_ref()).unwrap();
    let chunk_time = t0.elapsed();

    let t0 = std::time::Instant::now();
    let all = cliz::decompress_chunked(&bytes, mask.as_ref()).unwrap();
    let full_time = t0.elapsed();

    println!(
        "decoded year 13 alone in {chunk_time:.2?} vs full archive in {full_time:.2?} \
         ({:.1}x faster for the slice)",
        full_time.as_secs_f64() / chunk_time.as_secs_f64()
    );

    // The slice matches the full decode exactly.
    let dims = all.shape().dims().to_vec();
    let expected = all.block(&[13 * chunk_len, 0, 0], &[chunk_len, dims[1], dims[2]]);
    assert_eq!(year13, expected);

    // And the error bound holds everywhere valid.
    let max_err = {
        let mut worst = 0.0f64;
        for (i, (&a, &b)) in data.as_slice().iter().zip(all.as_slice()).enumerate() {
            if mask.as_ref().is_none_or(|m| m.is_valid(i)) {
                worst = worst.max((a as f64 - b as f64).abs());
            }
        }
        worst
    };
    println!("max error across the archive: {max_err:.3e} (bound held ✓)");
}
