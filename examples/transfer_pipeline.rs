//! Compression-enabled WAN transfer (the paper's Fig. 13 scenario).
//!
//! Each simulated core compresses one climate file; the compressed batch
//! then ships over a Bebop→Anvil-like Globus link. Higher compression ratio
//! means less to ship — the paper reports CliZ cutting total transfer cost
//! by 32–38% vs SZ3/ZFP at matched reconstruction quality.
//!
//! ```sh
//! cargo run --release --example transfer_pipeline
//! ```

use cliz::transfer::{measure_farm, WanLink};

fn main() {
    let n_files = 16usize;
    let cores = 256usize;
    let dims = [96usize, 80, 240];
    // Slower academic-WAN share so the transfer leg dominates, as in Fig. 13.
    let link = WanLink {
        bandwidth_bps: 50.0e6,
        ..WanLink::bebop_to_anvil()
    };
    let original = dims.iter().product::<usize>() * 4;

    println!(
        "batch: {n_files} SSH files of {} bytes each; {cores} simulated cores; \
         link {:.1} Gb/s, {:.0} ms RTT\n",
        original,
        link.bandwidth_bps * 8.0 / 1e9,
        link.rtt_s * 1e3
    );

    // Pre-generate the batch (one ensemble member per file).
    let files: Vec<_> = (0..n_files)
        .map(|i| cliz::data::ssh(&dims, 1000 + i as u64))
        .collect();

    for compressor in cliz::all_compressors(None) {
        let farm = measure_farm(n_files, cores, |i| {
            let f = &files[i];
            // Same fidelity target for everyone: relative tolerance resolved
            // on the valid value range.
            let bound = cliz::rel_bound_on_valid(&f.data, f.mask.as_ref(), 1e-3);
            compressor
                .compress(&f.data, f.mask.as_ref(), bound)
                .map(|b| b.len() as u64)
                .unwrap_or(original as u64)
        });
        let transfer = link.transfer(&farm.compressed_sizes);
        let total_bytes: u64 = farm.compressed_sizes.iter().sum();
        println!(
            "{:8}  compress {:7.3}s  transfer {:7.3}s  total {:7.3}s  ({:6.1}x, {} B shipped)",
            compressor.name(),
            farm.wall_seconds,
            transfer.seconds,
            farm.wall_seconds + transfer.seconds,
            (original * n_files) as f64 / total_bytes as f64,
            total_bytes,
        );
    }

    // Reference: shipping uncompressed.
    let raw = link.transfer(&vec![original as u64; n_files]);
    println!(
        "{:8}  compress {:7.3}s  transfer {:7.3}s  total {:7.3}s  (   1.0x, {} B shipped)",
        "raw",
        0.0,
        raw.seconds,
        raw.seconds,
        raw.total_bytes
    );
}
