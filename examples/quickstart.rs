//! Quickstart: compress one climate field with CliZ, check quality, done.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cliz::prelude::*;

fn main() {
    // A synthetic sea-surface-height field: 96×80 grid, 120 monthly
    // snapshots, with a land mask and an annual cycle — the same structure
    // as the paper's SSH dataset (scaled down).
    let field = cliz::data::ssh(&[96, 80, 120], 2024);
    println!(
        "dataset: {} {} ({:.0}% masked)",
        field.kind.name(),
        field.data.shape(),
        field.invalid_fraction() * 100.0
    );

    // Compress with a 1e-3 value-range-relative error bound (resolved
    // against the valid — unmasked — value range).
    let bound = cliz::rel_bound_on_valid(&field.data, field.mask.as_ref(), 1e-3);
    let config = PipelineConfig::default_for(field.data.shape().ndim());
    let t0 = std::time::Instant::now();
    let bytes = cliz::compress(&field.data, field.mask.as_ref(), bound, &config)
        .expect("compression failed");
    let c_time = t0.elapsed();

    let original = field.data.len() * std::mem::size_of::<f32>();
    println!(
        "compressed {} -> {} bytes  (ratio {:.1}x, bit-rate {:.3} bits/value) in {:.2?}",
        original,
        bytes.len(),
        original as f64 / bytes.len() as f64,
        bytes.len() as f64 * 8.0 / field.data.len() as f64,
        c_time,
    );

    // Decompress and verify quality.
    let t0 = std::time::Instant::now();
    let recon = cliz::decompress(&bytes, field.mask.as_ref()).expect("decompression failed");
    let d_time = t0.elapsed();

    let psnr = cliz::metrics::psnr(field.data.as_slice(), recon.as_slice(), field.mask.as_ref());
    let max_err = cliz::metrics::max_abs_error(
        field.data.as_slice(),
        recon.as_slice(),
        field.mask.as_ref(),
    );
    println!("decompressed in {d_time:.2?}: PSNR {psnr:.1} dB, max error {max_err:.2e}");

    // The error-bound contract, demonstrated.
    let ErrorBound::Abs(eb_abs) = bound else { unreachable!() };
    assert!(max_err <= eb_abs, "error bound violated!");
    println!("error bound {eb_abs:.2e} holds on every valid point ✓");
}
