//! Property tests for grid algebra: permutation/fusion invariants and
//! sampler volume accounting under arbitrary shapes.

use cliz_grid::{fuse_shape, sample_blocks, FusionSpec, Grid, MaskMap, SampleSpec, Shape};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        prop::collection::vec(1usize..30, 1),
        prop::collection::vec(1usize..15, 2),
        prop::collection::vec(1usize..9, 3),
        prop::collection::vec(1usize..6, 4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// permute ∘ unpermute = identity for random shapes and permutations.
    #[test]
    fn permute_unpermute_identity(dims in dims_strategy(), seed in any::<u64>()) {
        let shape = Shape::new(&dims);
        let n = shape.len();
        let data: Vec<f32> = (0..n).map(|i| ((i as u64).wrapping_mul(seed | 1) >> 33) as f32).collect();
        let g = Grid::from_vec(shape, data);
        let ndim = dims.len();
        let perms = Shape::all_permutations(ndim);
        let perm = &perms[(seed as usize) % perms.len()];
        let back = g.permuted(perm).unpermuted(perm);
        prop_assert_eq!(back, g);
    }

    /// Permutation preserves the multiset of values and maps coordinates
    /// correctly at a random probe point.
    #[test]
    fn permute_moves_coordinates(dims in dims_strategy(), seed in any::<u64>()) {
        let shape = Shape::new(&dims);
        let n = shape.len();
        let g = Grid::from_vec(shape.clone(), (0..n).map(|i| i as f32).collect());
        let ndim = dims.len();
        let perms = Shape::all_permutations(ndim);
        let perm = &perms[(seed as usize) % perms.len()];
        let p = g.permuted(perm);
        // probe: linear index -> coords -> permuted coords must agree.
        let probe = (seed as usize) % n;
        let mut coords = vec![0usize; ndim];
        shape.coords_of(probe, &mut coords);
        let pcoords: Vec<usize> = perm.iter().map(|&a| coords[a]).collect();
        prop_assert_eq!(p.get(&pcoords), g.get(&coords));
    }

    /// Fusion never moves data: any linear index holds the same value under
    /// the fused shape.
    #[test]
    fn fusion_is_a_reshape(dims in prop::collection::vec(1usize..8, 2..=4)) {
        let shape = Shape::new(&dims);
        let n = shape.len();
        let g = Grid::from_vec(shape.clone(), (0..n).map(|i| i as f32 * 0.5).collect());
        for spec in FusionSpec::candidates(dims.len()) {
            let fused = fuse_shape(&shape, spec);
            prop_assert_eq!(fused.len(), n, "{:?}", spec);
            let r = g.clone().reshaped(fused);
            prop_assert_eq!(r.as_slice(), g.as_slice());
        }
    }

    /// The sampler stays in bounds and roughly honours the requested volume.
    #[test]
    fn sampler_volume_and_bounds(
        dims in prop::collection::vec(8usize..40, 2..=3),
        rate_exp in 1u32..4,
    ) {
        let rate = 10f64.powi(-(rate_exp as i32));
        let shape = Shape::new(&dims);
        let n = shape.len();
        let g = Grid::from_vec(shape.clone(), (0..n).map(|i| i as f32).collect());
        let mask = MaskMap::all_valid(shape.clone());
        let spec = SampleSpec::new(rate);
        let sampled = sample_blocks(&g, &mask, spec);
        prop_assert_eq!(sampled.block_starts.len(), 1 << dims.len());
        let sides = spec.block_sides(&shape);
        for start in &sampled.block_starts {
            for (d, (&s, &side)) in start.iter().zip(&sides).enumerate() {
                prop_assert!(s + side <= dims[d], "block oob in dim {}", d);
            }
        }
        // Every sampled value exists in the source (values are unique ids).
        for &v in sampled.data.as_slice() {
            prop_assert!((v as usize) < n);
        }
    }

    /// Mask bit-packing round-trips for arbitrary flag patterns.
    #[test]
    fn mask_pack_roundtrip(flags in prop::collection::vec(any::<bool>(), 1..500)) {
        let shape = Shape::new(&[flags.len()]);
        let m = MaskMap::from_flags(shape.clone(), flags);
        let packed = m.pack_bits();
        prop_assert_eq!(MaskMap::unpack_bits(shape, &packed), m);
    }
}
