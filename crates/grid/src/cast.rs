//! Checked numeric conversions for the compression hot paths.
//!
//! The xtask lint pass (rule R2) forbids bare `as` casts to narrowing-prone
//! integer types in the quantizer/entropy/predictor crates: a silently
//! wrapping cast on a corrupt bitstream turns a decode error into wrong
//! output. These helpers make every conversion's intent explicit:
//!
//! * `to_*_checked` — fallible range-checked conversions (`None` on
//!   overflow), for values derived from untrusted input;
//! * `low_u8`/`low_u16`/`low_u32` — deliberate truncation to the low bits,
//!   for bit-packing where masking is the point;
//! * [`u32_len`] — encode-side length narrowing that must hold by
//!   construction (containers cap payloads well below `u32::MAX`);
//! * [`quantize_index`] — float→bin conversion that folds the quantizer's
//!   radius check into the cast, so out-of-range bins become escapes
//!   instead of wrapped indices;
//! * [`f64_to_f32_checked`] / [`float_to_index`] — the float-side
//!   counterparts demanded by rule R6: narrowing to `f32` must surface
//!   overflow, and float→index conversions must clamp, not wrap;
//! * `u32_le`/`u64_le`/`f32_le`/`f64_le` — bounds-checked little-endian
//!   field readers for container decoders (`None` on short input).
//!
//! Everything is `#[inline]`: each helper reduces to the same machine code
//! as the cast it replaces (plus the explicit check, where one exists).

/// Range-checked conversion to `u32`; `None` when the value does not fit.
#[inline]
pub fn to_u32_checked<T: TryInto<u32>>(v: T) -> Option<u32> {
    v.try_into().ok()
}

/// Range-checked conversion to `u16`; `None` when the value does not fit.
#[inline]
pub fn to_u16_checked<T: TryInto<u16>>(v: T) -> Option<u16> {
    v.try_into().ok()
}

/// Range-checked conversion to `u8`; `None` when the value does not fit.
#[inline]
pub fn to_u8_checked<T: TryInto<u8>>(v: T) -> Option<u8> {
    v.try_into().ok()
}

/// Range-checked conversion to `i32`; `None` when the value does not fit.
#[inline]
pub fn to_i32_checked<T: TryInto<i32>>(v: T) -> Option<i32> {
    v.try_into().ok()
}

/// Range-checked conversion to `i8`; `None` when the value does not fit.
#[inline]
pub fn to_i8_checked<T: TryInto<i8>>(v: T) -> Option<i8> {
    v.try_into().ok()
}

/// Range-checked conversion to `usize`; `None` when the value does not fit.
#[inline]
pub fn to_usize_checked<T: TryInto<usize>>(v: T) -> Option<usize> {
    v.try_into().ok()
}

/// Narrows `f64` to `f32`, refusing conversions that lose the value
/// entirely: `None` when the input is non-finite or overflows `f32` range
/// (the rounded result is ±∞). Plain precision rounding still happens —
/// that is the point of storing `f32` — but silent overflow does not.
#[inline]
pub fn f64_to_f32_checked(v: f64) -> Option<f32> {
    let f = v as f32;
    if f.is_finite() {
        Some(f)
    } else {
        None
    }
}

/// Branch-free form of [`f64_to_f32_checked`]: returns `(f, ok)` where `ok`
/// mirrors the `Option` (`f` is the raw narrowed value either way, ±∞ or NaN
/// when `ok` is false). Lets hot loops fold the overflow check into a wider
/// select instead of an early exit.
#[inline]
pub fn f64_to_f32_select(v: f64) -> (f32, bool) {
    let f = v as f32;
    (f, f.is_finite())
}

/// Converts a float estimate to a slot index clamped to `0..len`:
/// non-finite or negative inputs map to 0, anything past the end maps to
/// the last slot. Replaces bare `as usize` on float expressions (rule R6),
/// whose NaN→0 / overflow saturation semantics are easy to invoke by
/// accident on corrupt statistics.
#[inline]
pub fn float_to_index(v: f64, len: usize) -> usize {
    debug_assert!(len > 0, "float_to_index: empty range");
    if !(v > 0.0) {
        return 0;
    }
    // `as` saturates for out-of-range floats, so the min() is the only
    // clamp needed on the high side.
    (v as usize).min(len.saturating_sub(1))
}

/// Reads a little-endian `u32` from the front of `b`; `None` on short input.
#[inline]
pub fn u32_le(b: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(..4)?.try_into().ok()?))
}

/// Reads a little-endian `u64` from the front of `b`; `None` on short input.
#[inline]
pub fn u64_le(b: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(..8)?.try_into().ok()?))
}

/// Reads a little-endian `f32` from the front of `b`; `None` on short input.
#[inline]
pub fn f32_le(b: &[u8]) -> Option<f32> {
    Some(f32::from_le_bytes(b.get(..4)?.try_into().ok()?))
}

/// Reads a little-endian `f64` from the front of `b`; `None` on short input.
#[inline]
pub fn f64_le(b: &[u8]) -> Option<f64> {
    Some(f64::from_le_bytes(b.get(..8)?.try_into().ok()?))
}

/// Deliberate truncation to the low 8 bits (bit-packing only).
#[inline]
pub fn low_u8(v: impl Into<u64>) -> u8 {
    (v.into() & 0xFF) as u8
}

/// Deliberate truncation to the low 16 bits (bit-packing only).
#[inline]
pub fn low_u16(v: impl Into<u64>) -> u16 {
    (v.into() & 0xFFFF) as u16
}

/// Deliberate truncation to the low 32 bits (bit-packing only).
#[inline]
pub fn low_u32(v: impl Into<u64>) -> u32 {
    (v.into() & 0xFFFF_FFFF) as u32
}

/// Narrows an encode-side length to `u32` for container headers.
///
/// # Panics
/// Panics if `len` exceeds `u32::MAX`. This is an encoder invariant (all
/// CliZ container formats cap section payloads at 4 GiB), not an input
/// validation path — decoders never call this.
#[inline]
pub fn u32_len(len: usize) -> u32 {
    // xtask-allow: R5 -- encoder-only length narrowing (see doc above); decoders never call this
    u32::try_from(len).expect("encoder section length exceeds u32 range")
}

/// Converts a quantizer bin estimate to its `i32` index, folding in the
/// radius check: `None` means the value quantizes outside `±radius` and
/// must be escaped (stored losslessly), never wrapped.
#[inline]
pub fn quantize_index(bin_f: f64, radius: i32) -> Option<i32> {
    if !bin_f.is_finite() {
        return None;
    }
    let r = f64::from(radius);
    if bin_f < -r || bin_f > r {
        return None;
    }
    // In range by the check above, so the cast is exact for integral bin_f.
    Some(bin_f as i32)
}

/// [`quantize_index`] fused with the encoder's rounding step: for every
/// input this returns exactly `quantize_index(bin_f.round(), radius)`, but
/// without the `round()` call (`f64::round` is a library call at the SSE2
/// baseline and dominates otherwise-branchless quantization loops).
///
/// Round-half-away-from-zero is rebuilt from truncation: `trunc(|x| + 0.5)`
/// overshoots by one only when the `+ 0.5` addition rounds upward across an
/// integer, and that case is detected exactly because `k − 0.5` is
/// representable for every admissible `k` (`k ≤ radius + 1 < 2^31`).
// xtask-allow-fn: R6 -- the float->int cast is range-limited by the radius
// comparison above it and exactness-corrected below; this helper exists to
// replace `.round()` + quantize_index with identical semantics.
#[inline]
pub fn quantize_round_index(bin_f: f64, radius: i32) -> Option<i32> {
    let (bin, ok) = quantize_round_index_select(bin_f, radius);
    if ok {
        Some(bin)
    } else {
        None
    }
}

/// Branch-free core of [`quantize_round_index`]: returns `(bin, ok)` where
/// `bin` equals `bin_f.round() as i32` whenever `ok` is true and is
/// meaningless otherwise. Every operation is a straight-line select, so hot
/// quantization loops carry no data-dependent branches (`ok` combines into
/// the caller's own selects instead of an early exit).
// xtask-allow-fn: R6 -- the float->int cast is range-limited by the `ok` radius comparison (callers discard `bin` when it is false) and exactness-corrected below
#[inline]
pub fn quantize_round_index_select(bin_f: f64, radius: i32) -> (i32, bool) {
    let a = bin_f.abs();
    // round(|x|) > radius  ⇔  |x| ≥ radius + 0.5 (exact: radius + 0.5 is
    // representable for every i32). The comparison is false for NaN.
    let ok = a < f64::from(radius) + 0.5;
    let mut k = (a + 0.5) as i32;
    k -= i32::from(f64::from(k) - 0.5 > a);
    let bin = if bin_f < 0.0 { -k } else { k };
    (bin, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_conversions() {
        assert_eq!(to_u32_checked(5usize), Some(5));
        assert_eq!(to_u32_checked(u64::MAX), None);
        assert_eq!(to_u16_checked(65_535u32), Some(65_535));
        assert_eq!(to_u16_checked(65_536u32), None);
        assert_eq!(to_u8_checked(255u32), Some(255));
        assert_eq!(to_u8_checked(256u32), None);
        assert_eq!(to_i32_checked(u32::MAX), None);
        assert_eq!(to_i8_checked(-128i32), Some(-128));
        assert_eq!(to_i8_checked(128i32), None);
    }

    #[test]
    fn truncating_helpers() {
        assert_eq!(low_u8(0x1234u32), 0x34);
        assert_eq!(low_u16(0xABCD_EF01u32), 0xEF01);
        assert_eq!(low_u32(0x1_0000_0002u64), 2);
    }

    #[test]
    fn quantize_index_bounds() {
        assert_eq!(quantize_index(5.0, 10), Some(5));
        assert_eq!(quantize_index(-10.0, 10), Some(-10));
        assert_eq!(quantize_index(11.0, 10), None);
        assert_eq!(quantize_index(-11.0, 10), None);
        assert_eq!(quantize_index(f64::NAN, 10), None);
        assert_eq!(quantize_index(f64::INFINITY, 10), None);
    }

    #[test]
    fn quantize_round_index_matches_round_exactly() {
        // Differential sweep against the specification
        // `quantize_index(v.round(), r)`, hammering the half-step boundaries
        // where truncation-based rounding goes wrong first.
        let mut probes: Vec<f64> = vec![
            0.0,
            -0.0,
            0.49999999999999994,  // largest f64 < 0.5: + 0.5 rounds to 1.0
            -0.49999999999999994,
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            10.499999999999998,
            10.5,
            32767.5,
            32768.0,
            32768.49,
            32768.5,
            -32768.5,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e300,
        ];
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mag = f64::from(low_u32(state >> 32)) / 65536.0; // 0 .. 65536
            probes.push(if state & 1 == 0 { mag } else { -mag });
        }
        for radius in [1, 4, 255, 32768, i32::MAX] {
            for &v in &probes {
                assert_eq!(
                    quantize_round_index(v, radius),
                    quantize_index(v.round(), radius),
                    "v = {v:?}, radius = {radius}"
                );
                // The select form must agree with the Option form on `ok`,
                // and on the bin whenever `ok` holds.
                let (bin, ok) = quantize_round_index_select(v, radius);
                assert_eq!(ok, quantize_round_index(v, radius).is_some());
                if ok {
                    assert_eq!(Some(bin), quantize_round_index(v, radius));
                }
            }
        }
    }

    #[test]
    fn f32_select_mirrors_checked() {
        for v in [1.5, 1e-300, 1e300, f64::NEG_INFINITY, f64::NAN, -0.0, 3.25e38] {
            let (f, ok) = f64_to_f32_select(v);
            match f64_to_f32_checked(v) {
                Some(c) => {
                    assert!(ok, "v = {v:?}");
                    assert_eq!(f.to_bits(), c.to_bits(), "v = {v:?}");
                }
                None => assert!(!ok, "v = {v:?}"),
            }
        }
    }

    #[test]
    fn u32_len_roundtrip() {
        assert_eq!(u32_len(0), 0);
        assert_eq!(u32_len(1 << 20), 1 << 20);
    }

    #[test]
    fn f32_narrowing_is_checked() {
        assert_eq!(f64_to_f32_checked(1.5), Some(1.5f32));
        // Precision rounding is allowed…
        assert_eq!(f64_to_f32_checked(1e-300), Some(0.0f32));
        // …but overflow to ±∞ and non-finite inputs are not.
        assert_eq!(f64_to_f32_checked(1e300), None);
        assert_eq!(f64_to_f32_checked(f64::NEG_INFINITY), None);
        assert_eq!(f64_to_f32_checked(f64::NAN), None);
    }

    #[test]
    fn float_to_index_clamps() {
        assert_eq!(float_to_index(3.7, 10), 3);
        assert_eq!(float_to_index(-2.0, 10), 0);
        assert_eq!(float_to_index(f64::NAN, 10), 0);
        assert_eq!(float_to_index(1e30, 10), 9);
        assert_eq!(float_to_index(9.999, 10), 9);
    }

    #[test]
    fn le_readers_check_bounds() {
        let b = 0xDEAD_BEEFu32.to_le_bytes();
        assert_eq!(u32_le(&b), Some(0xDEAD_BEEF));
        assert_eq!(u32_le(&b[..3]), None);
        let b = 42u64.to_le_bytes();
        assert_eq!(u64_le(&b), Some(42));
        assert_eq!(u64_le(&[]), None);
        let b = 1.25f32.to_le_bytes();
        assert_eq!(f32_le(&b), Some(1.25));
        assert_eq!(f32_le(&b[..2]), None);
        let b = (-3.5f64).to_le_bytes();
        assert_eq!(f64_le(&b), Some(-3.5));
        assert_eq!(f64_le(&b[..7]), None);
    }
}
