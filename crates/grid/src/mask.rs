//! Validity mask maps (Sec. V-A).
//!
//! CESM ocean/land variables mark uninteresting grid points with huge fill
//! values (on the order of 2^122). The dataset ships a *mask map* — an integer
//! field whose zero entries are invalid positions (e.g. land for an ocean
//! variable). [`MaskMap`] is CliZ's boolean distillation of that map: one
//! validity flag per grid point, with bit-packed (de)serialization so the
//! classification/ablation harnesses can account for its storage cost.

use crate::grid::Grid;
use crate::shape::Shape;

/// Per-point validity: `true` = real data, `false` = fill/missing.
#[derive(Clone, Debug, PartialEq)]
pub struct MaskMap {
    shape: Shape,
    valid: Vec<bool>,
}

impl MaskMap {
    /// All points valid.
    pub fn all_valid(shape: Shape) -> Self {
        let n = shape.len();
        Self {
            shape,
            valid: vec![true; n],
        }
    }

    pub fn from_flags(shape: Shape, valid: Vec<bool>) -> Self {
        assert_eq!(valid.len(), shape.len(), "mask length mismatch");
        Self { shape, valid }
    }

    /// Derives a mask from the data itself: points whose magnitude reaches
    /// `fill_threshold`, or that are non-finite, are invalid. CESM fill values
    /// (~2^122) dwarf any physical quantity, so a generous threshold such as
    /// `1e30` is safe for every variable in Table III.
    pub fn from_fill_value(data: &Grid<f32>, fill_threshold: f32) -> Self {
        let valid = data
            .as_slice()
            .iter()
            .map(|&v| v.is_finite() && v.abs() < fill_threshold)
            .collect();
        Self {
            shape: data.shape().clone(),
            valid,
        }
    }

    /// Derives a mask from a CESM-style integer region map: zero entries are
    /// invalid, non-zero (positive ocean basins, negative inland seas) valid.
    pub fn from_region_map(regions: &Grid<i32>) -> Self {
        let valid = regions.as_slice().iter().map(|&r| r != 0).collect();
        Self {
            shape: regions.shape().clone(),
            valid,
        }
    }

    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Validity of the point at linear index `i`.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.valid[i]
    }

    #[inline]
    pub fn as_slice(&self) -> &[bool] {
        &self.valid
    }

    /// Number of valid points.
    pub fn valid_count(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Fraction of invalid points (0.0 when fully valid).
    pub fn invalid_fraction(&self) -> f64 {
        1.0 - self.valid_count() as f64 / self.len() as f64
    }

    /// True when every point is valid — lets callers skip mask-aware paths.
    pub fn is_all_valid(&self) -> bool {
        self.valid.iter().all(|&v| v)
    }

    /// Reinterprets the mask under a permuted axis order (matching
    /// [`Grid::permuted`]).
    pub fn permuted(&self, perm: &[usize]) -> MaskMap {
        let g = Grid::from_vec(self.shape.clone(), self.valid.clone());
        let p = g.permuted(perm);
        MaskMap {
            shape: p.shape().clone(),
            valid: p.into_vec(),
        }
    }

    /// Bit-packs the mask (8 flags per byte, little-endian within the byte).
    pub fn pack_bits(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.valid.len().div_ceil(8)];
        for (i, &v) in self.valid.iter().enumerate() {
            if v {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Inverse of [`MaskMap::pack_bits`]. Callers pass a buffer sized from
    /// the shape (`len().div_ceil(8)`); a short buffer is a programmer
    /// error, and any byte past the end reads as all-invalid flags.
    pub fn unpack_bits(shape: Shape, bytes: &[u8]) -> Self {
        let n = shape.len();
        assert!(bytes.len() * 8 >= n, "packed mask too short");
        let valid = (0..n)
            .map(|i| bytes.get(i / 8).is_some_and(|&b| b >> (i % 8) & 1 == 1))
            .collect();
        Self { shape, valid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_value_detection() {
        let g = Grid::from_vec(
            Shape::new(&[5]),
            vec![1.0f32, 1.0e31, -3.0, f32::NAN, 2.0f32.powi(122)],
        );
        let m = MaskMap::from_fill_value(&g, 1e30);
        assert_eq!(m.as_slice(), &[true, false, true, false, false]);
        assert_eq!(m.valid_count(), 2);
        assert!((m.invalid_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn region_map_signs() {
        let r = Grid::from_vec(Shape::new(&[4]), vec![0, 3, -2, 0]);
        let m = MaskMap::from_region_map(&r);
        assert_eq!(m.as_slice(), &[false, true, true, false]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let shape = Shape::new(&[3, 7]);
        let valid: Vec<bool> = (0..21).map(|i| i % 3 != 0).collect();
        let m = MaskMap::from_flags(shape.clone(), valid);
        let packed = m.pack_bits();
        assert_eq!(packed.len(), 3); // ceil(21/8)
        let back = MaskMap::unpack_bits(shape, &packed);
        assert_eq!(back, m);
    }

    #[test]
    fn all_valid_shortcut() {
        let m = MaskMap::all_valid(Shape::new(&[2, 2]));
        assert!(m.is_all_valid());
        assert_eq!(m.invalid_fraction(), 0.0);
    }

    #[test]
    fn permuted_mask_follows_data() {
        let shape = Shape::new(&[2, 3]);
        let valid = vec![true, false, true, false, true, false];
        let m = MaskMap::from_flags(shape, valid);
        let p = m.permuted(&[1, 0]);
        assert_eq!(p.shape().dims(), &[3, 2]);
        // (i,j) valid in m <=> (j,i) valid in p
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(
                    m.is_valid(i * 3 + j),
                    p.is_valid(j * 2 + i),
                    "({i},{j})"
                );
            }
        }
    }
}
