//! Iteration over 1-D lines of an N-dimensional grid.
//!
//! The interpolation predictor and the FFT period estimator both operate on
//! "lines": runs of elements that vary along one axis with all other
//! coordinates fixed. A line is fully described by a base linear offset, the
//! axis stride, and the axis length — no data is copied.

use crate::shape::Shape;

/// One line along an axis: elements `base + k*stride` for `k in 0..len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Line {
    pub base: usize,
    pub stride: usize,
    pub len: usize,
}

impl Line {
    /// Gathers the line's values from backing storage into a `Vec`.
    ///
    /// The line must fit in `data`: true by construction for lines produced
    /// by [`LineIter`] over the grid's own shape, and asserted here so a
    /// mismatched buffer fails loudly at the algorithm boundary.
    // xtask-allow-fn: R5 -- offsets come from LineIter over the grid's own Shape; extent asserted at entry
    pub fn gather<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert!(
            self.len == 0 || self.base + (self.len - 1) * self.stride < data.len(),
            "Line::gather: line extends past the buffer"
        );
        (0..self.len).map(|k| data[self.base + k * self.stride]).collect()
    }
}

/// Iterates every line of `shape` along axis `axis`.
pub struct LineIter {
    shape: Shape,
    axis: usize,
    /// Odometer over all axes except `axis`.
    coords: Vec<usize>,
    done: bool,
}

impl LineIter {
    pub fn new(shape: &Shape, axis: usize) -> Self {
        assert!(axis < shape.ndim(), "axis {axis} out of range");
        Self {
            shape: shape.clone(),
            axis,
            coords: vec![0; shape.ndim()],
            done: false,
        }
    }

    /// Total number of lines this iterator yields.
    pub fn count_lines(shape: &Shape, axis: usize) -> usize {
        shape.len() / shape.dim(axis)
    }
}

impl Iterator for LineIter {
    type Item = Line;

    fn next(&mut self) -> Option<Line> {
        if self.done {
            return None;
        }
        let line = Line {
            base: self.shape.index_of(&self.coords),
            stride: self.shape.stride(self.axis),
            len: self.shape.dim(self.axis),
        };
        // Advance the odometer over every axis but `self.axis`.
        let ndim = self.shape.ndim();
        let mut i = ndim;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if i == self.axis {
                continue;
            }
            self.coords[i] += 1;
            if self.coords[i] < self.shape.dim(i) {
                break;
            }
            self.coords[i] = 0;
        }
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_along_last_axis_are_contiguous() {
        let s = Shape::new(&[2, 3, 4]);
        let lines: Vec<Line> = LineIter::new(&s, 2).collect();
        assert_eq!(lines.len(), 6);
        assert!(lines.iter().all(|l| l.stride == 1 && l.len == 4));
        let bases: Vec<usize> = lines.iter().map(|l| l.base).collect();
        assert_eq!(bases, vec![0, 4, 8, 12, 16, 20]);
    }

    #[test]
    fn lines_along_first_axis() {
        let s = Shape::new(&[2, 3]);
        let lines: Vec<Line> = LineIter::new(&s, 0).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.stride == 3 && l.len == 2));
        let bases: Vec<usize> = lines.iter().map(|l| l.base).collect();
        assert_eq!(bases, vec![0, 1, 2]);
    }

    #[test]
    fn gather_reads_strided() {
        let s = Shape::new(&[3, 2]);
        let data: Vec<i32> = (0..6).collect();
        let line = LineIter::new(&s, 0).next().unwrap();
        assert_eq!(line.gather(&data), vec![0, 2, 4]);
    }

    #[test]
    fn count_matches_iteration() {
        let s = Shape::new(&[4, 5, 6]);
        for axis in 0..3 {
            assert_eq!(
                LineIter::new(&s, axis).count(),
                LineIter::count_lines(&s, axis)
            );
        }
    }

    #[test]
    fn one_dim_single_line() {
        let s = Shape::new(&[9]);
        let lines: Vec<Line> = LineIter::new(&s, 0).collect();
        assert_eq!(lines, vec![Line { base: 0, stride: 1, len: 9 }]);
    }
}
