//! Dimension fusion (Sec. VI-C).
//!
//! Fusion treats several *adjacent* dimensions as a single one "without
//! affecting the data storage sequence": fusing axes `i..=j` of a row-major
//! grid is a pure reshape that multiplies their extents. After fusion, the
//! interpolation predictor sees one long axis, which suppresses short-stride
//! predictions along the fused axes except the last — exactly the behaviour
//! the paper exploits on rough dimensions.

use crate::shape::Shape;

/// A contiguous run of axes to merge, expressed on the *permuted* shape.
/// `FusionSpec { start: 0, len: 2 }` is the paper's "0&1";
/// `len == 1` (or [`FusionSpec::none`]) means no fusion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FusionSpec {
    pub start: usize,
    pub len: usize,
}

impl FusionSpec {
    /// No fusion.
    pub const fn none() -> Self {
        Self { start: 0, len: 1 }
    }

    #[inline]
    pub fn is_none(&self) -> bool {
        self.len <= 1
    }

    /// Paper-style label: "No", "0&1", "1&2", "0&1&2", ...
    pub fn label(&self) -> String {
        if self.is_none() {
            return "No".to_string();
        }
        (self.start..self.start + self.len)
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join("&")
    }

    /// Every fusion candidate for an `ndim`-dimensional grid: none, plus every
    /// contiguous run of ≥2 axes. For 3-D this yields the paper's four cases
    /// {No, 0&1, 1&2, 0&1&2}.
    pub fn candidates(ndim: usize) -> Vec<FusionSpec> {
        let mut out = vec![FusionSpec::none()];
        for len in 2..=ndim {
            for start in 0..=(ndim - len) {
                out.push(FusionSpec { start, len });
            }
        }
        out
    }
}

/// Applies a fusion to a shape: axes `spec.start .. spec.start+spec.len`
/// collapse into one axis with the product extent. Data layout is unchanged,
/// so the caller just reinterprets the same buffer under the fused shape.
pub fn fuse_shape(shape: &Shape, spec: FusionSpec) -> Shape {
    if spec.is_none() {
        return shape.clone();
    }
    assert!(
        spec.start + spec.len <= shape.ndim(),
        "fusion {spec:?} out of range for {shape:?}"
    );
    let mut dims = Vec::with_capacity(shape.ndim() - spec.len + 1);
    dims.extend_from_slice(&shape.dims()[..spec.start]);
    dims.push(shape.dims()[spec.start..spec.start + spec.len].iter().product());
    dims.extend_from_slice(&shape.dims()[spec.start + spec.len..]);
    Shape::new(&dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuse_none_is_identity() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(fuse_shape(&s, FusionSpec::none()), s);
    }

    #[test]
    fn fuse_front_pair() {
        let s = Shape::new(&[3, 4, 5]);
        let f = fuse_shape(&s, FusionSpec { start: 0, len: 2 });
        assert_eq!(f.dims(), &[12, 5]);
    }

    #[test]
    fn fuse_back_pair() {
        let s = Shape::new(&[3, 4, 5]);
        let f = fuse_shape(&s, FusionSpec { start: 1, len: 2 });
        assert_eq!(f.dims(), &[3, 20]);
    }

    #[test]
    fn fuse_all() {
        let s = Shape::new(&[3, 4, 5]);
        let f = fuse_shape(&s, FusionSpec { start: 0, len: 3 });
        assert_eq!(f.dims(), &[60]);
    }

    #[test]
    fn fusion_preserves_linear_index() {
        // Fusing must not move data: linear indices of corresponding points
        // must coincide.
        let s = Shape::new(&[3, 4, 5]);
        let f = fuse_shape(&s, FusionSpec { start: 0, len: 2 });
        // point (2, 3, 1) in s == fused coords (2*4+3, 1)
        assert_eq!(s.index_of(&[2, 3, 1]), f.index_of(&[11, 1]));
    }

    #[test]
    fn candidates_3d_match_paper() {
        let c = FusionSpec::candidates(3);
        let labels: Vec<String> = c.iter().map(|f| f.label()).collect();
        assert_eq!(labels, vec!["No", "0&1", "1&2", "0&1&2"]);
    }

    #[test]
    fn candidates_4d_count() {
        // none + 3 pairs + 2 triples + 1 quad = 7
        assert_eq!(FusionSpec::candidates(4).len(), 7);
    }

    #[test]
    fn candidates_1d_only_none() {
        assert_eq!(FusionSpec::candidates(1), vec![FusionSpec::none()]);
    }
}
