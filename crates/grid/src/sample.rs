//! Auto-tuning block sampler (Sec. VI-A).
//!
//! The tuner never compresses the whole dataset while searching pipelines.
//! Instead it extracts 2^n blocks centred at the 1/3 and 2/3 points of each
//! dimension, each with side length ≈ `rate^(1/n) / 2` of the corresponding
//! full side (so total sampled volume ≈ `rate` × full volume), and
//! concatenates them along the first axis into one small test grid.

use crate::grid::Grid;
use crate::mask::MaskMap;
use crate::shape::Shape;

/// Sampling parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleSpec {
    /// Target ratio between sampled volume and full volume, in (0, 1].
    pub rate: f64,
    /// Blocks are never smaller than this per side (keeps the cubic predictor
    /// meaningful on tiny rates; the paper notes petite blocks mislead it).
    pub min_side: usize,
    /// Optional per-axis floor `(axis, min_len)`. The auto-tuner uses this to
    /// keep the time axis long enough to cover several detected periods —
    /// otherwise low sampling rates would silently exclude every periodic
    /// candidate pipeline. Other axes shrink to compensate, preserving the
    /// target volume where possible.
    pub axis_floor: Option<(usize, usize)>,
}

impl SampleSpec {
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "sampling rate must be in (0,1]");
        Self {
            rate,
            min_side: 4,
            axis_floor: None,
        }
    }

    /// [`SampleSpec::new`] plus a per-axis floor.
    pub fn with_axis_floor(rate: f64, axis: usize, min_len: usize) -> Self {
        let mut s = Self::new(rate);
        s.axis_floor = Some((axis, min_len));
        s
    }

    /// Side lengths of each sampled block for a given shape.
    pub fn block_sides(&self, shape: &Shape) -> Vec<usize> {
        let n = shape.ndim() as f64;
        let frac = self.rate.powf(1.0 / n) / 2.0;
        let mut sides: Vec<usize> = shape
            .dims()
            .iter()
            .map(|&d| {
                let side = (d as f64 * frac).round() as usize;
                side.clamp(self.min_side.min(d), d)
            })
            .collect();
        if let Some((axis, min_len)) = self.axis_floor {
            assert!(axis < sides.len(), "axis floor out of range");
            let want = min_len.min(shape.dim(axis));
            if sides[axis] < want {
                // Grow the floored axis, shrink the others to roughly keep
                // the sampled volume.
                let grow = want as f64 / sides[axis] as f64;
                sides[axis] = want;
                if sides.len() > 1 {
                    let shrink = grow.powf(1.0 / (sides.len() - 1) as f64);
                    for (d, s) in sides.iter_mut().enumerate() {
                        if d != axis {
                            *s = ((*s as f64 / shrink).round() as usize)
                                .clamp(self.min_side.min(shape.dim(d)), shape.dim(d));
                        }
                    }
                }
            }
        }
        sides
    }
}

/// Result of sampling: the concatenated test grid plus the matching mask.
#[derive(Clone, Debug)]
pub struct Sampled {
    pub data: Grid<f32>,
    pub mask: MaskMap,
    /// Start coordinates of each extracted block in the source grid.
    pub block_starts: Vec<Vec<usize>>,
}

/// Extracts the paper's 2^n anchor blocks and stacks them along axis 0.
///
/// When `rate == 1.0` the whole grid (and mask) is returned unchanged, which
/// is what "sampling rate = 1 means all pipelines are tested on the whole
/// dataset" requires.
pub fn sample_blocks(data: &Grid<f32>, mask: &MaskMap, spec: SampleSpec) -> Sampled {
    assert_eq!(data.shape(), mask.shape(), "data/mask shape mismatch");
    if spec.rate >= 1.0 {
        return Sampled {
            data: data.clone(),
            mask: mask.clone(),
            block_starts: vec![vec![0; data.shape().ndim()]],
        };
    }
    let shape = data.shape();
    let ndim = shape.ndim();
    let sides = spec.block_sides(shape);

    // Anchor fractions 1/3 and 2/3 per dimension -> 2^n blocks.
    let n_blocks = 1usize << ndim;
    let mut block_starts = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let mut start = Vec::with_capacity(ndim);
        for d in 0..ndim {
            let frac = if b >> d & 1 == 0 { 1.0 / 3.0 } else { 2.0 / 3.0 };
            let center = (shape.dim(d) as f64 * frac) as usize;
            let s = center.saturating_sub(sides[d] / 2);
            start.push(s.min(shape.dim(d) - sides[d]));
        }
        block_starts.push(start);
    }

    // Stack blocks along axis 0.
    let mut out_dims = sides.clone();
    out_dims[0] *= n_blocks;
    let out_shape = Shape::new(&out_dims);
    let mut out_data = Vec::with_capacity(out_shape.len());
    let mut out_valid = Vec::with_capacity(out_shape.len());
    let mask_grid = Grid::from_vec(shape.clone(), mask.as_slice().to_vec());
    for start in &block_starts {
        let block = data.block(start, &sides);
        out_data.extend_from_slice(block.as_slice());
        let mblock = mask_grid.block(start, &sides);
        out_valid.extend_from_slice(mblock.as_slice());
    }
    Sampled {
        data: Grid::from_vec(out_shape.clone(), out_data),
        mask: MaskMap::from_flags(out_shape, out_valid),
        block_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: &[usize]) -> Grid<f32> {
        let shape = Shape::new(dims);
        let n = shape.len();
        Grid::from_vec(shape, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn rate_one_returns_whole_grid() {
        let g = iota(&[10, 10]);
        let m = MaskMap::all_valid(g.shape().clone());
        let s = sample_blocks(&g, &m, SampleSpec::new(1.0));
        assert_eq!(s.data, g);
        assert_eq!(s.block_starts.len(), 1);
    }

    #[test]
    fn block_count_is_two_pow_n() {
        let g = iota(&[40, 40, 40]);
        let m = MaskMap::all_valid(g.shape().clone());
        let s = sample_blocks(&g, &m, SampleSpec::new(0.01));
        assert_eq!(s.block_starts.len(), 8);
        assert_eq!(s.data.shape().ndim(), 3);
    }

    #[test]
    fn sampled_volume_tracks_rate() {
        let g = iota(&[64, 64, 64]);
        let m = MaskMap::all_valid(g.shape().clone());
        let rate = 0.05;
        let spec = SampleSpec {
            rate,
            min_side: 1,
            axis_floor: None,
        };
        let s = sample_blocks(&g, &m, spec);
        let got = s.data.len() as f64 / g.len() as f64;
        // 2^n blocks x (rate^(1/n)/2)^n == rate up to rounding of sides.
        assert!(
            (got / rate) > 0.4 && (got / rate) < 2.5,
            "volume ratio {got} vs rate {rate}"
        );
    }

    #[test]
    fn sides_respect_min_side() {
        let spec = SampleSpec::new(1e-6);
        let sides = spec.block_sides(&Shape::new(&[100, 100]));
        assert!(sides.iter().all(|&s| s >= 4));
    }

    #[test]
    fn blocks_are_in_bounds_and_distinct_anchors() {
        let g = iota(&[30, 60]);
        let m = MaskMap::all_valid(g.shape().clone());
        let s = sample_blocks(&g, &m, SampleSpec::new(0.04));
        let sides = SampleSpec::new(0.04).block_sides(g.shape());
        for start in &s.block_starts {
            for d in 0..2 {
                assert!(start[d] + sides[d] <= g.shape().dim(d));
            }
        }
        // 4 distinct anchor corners for 2-D
        assert_eq!(s.block_starts.len(), 4);
        let uniq: std::collections::HashSet<_> = s.block_starts.iter().collect();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn axis_floor_preserves_time_extent() {
        let shape = Shape::new(&[100, 100, 240]);
        let plain = SampleSpec::new(0.001);
        let floored = SampleSpec::with_axis_floor(0.001, 2, 36);
        let ps = plain.block_sides(&shape);
        let fs = floored.block_sides(&shape);
        assert!(ps[2] < 36, "plain time side {} unexpectedly large", ps[2]);
        assert_eq!(fs[2], 36);
        // Other axes shrank (down to min_side) to compensate.
        assert!(fs[0] <= ps[0] && fs[1] <= ps[1]);
        // Sampled volume stays in the same ballpark.
        let vol = |s: &[usize]| s.iter().product::<usize>() as f64;
        assert!(vol(&fs) < 8.0 * vol(&ps));
    }

    #[test]
    fn axis_floor_clamped_to_dim() {
        let shape = Shape::new(&[10, 20]);
        let s = SampleSpec::with_axis_floor(0.5, 1, 999);
        assert_eq!(s.block_sides(&shape)[1], 20);
    }

    #[test]
    fn mask_travels_with_data() {
        let g = iota(&[30, 30]);
        // invalidate a band
        let valid: Vec<bool> = (0..900).map(|i| i % 30 < 15).collect();
        let m = MaskMap::from_flags(g.shape().clone(), valid);
        let s = sample_blocks(&g, &m, SampleSpec::new(0.1));
        // each sampled point's validity must match the source's rule
        for (k, &v) in s.data.as_slice().iter().enumerate() {
            let src_col = v as usize % 30;
            assert_eq!(s.mask.is_valid(k), src_col < 15);
        }
    }
}
