//! N-dimensional array container and shape algebra for CliZ.
//!
//! Climate datasets are dense rectangular grids (2D--4D). This crate provides
//! the small, allocation-conscious core every other CliZ crate builds on:
//!
//! * [`Shape`] — dimension sizes plus row-major stride math;
//! * [`Grid`] — an owned dense array of `T` over a [`Shape`];
//! * [`MaskMap`] — validity map for datasets with missing/fill values;
//! * dimension [`permute`](Grid::permuted) and [`fuse`](fuse_shape)
//!   operations used by the CliZ dimension permutation/fusion search;
//! * [`sample`] — the 2^n-block auto-tuning sampler from the paper (Sec. VI-A);
//! * [`smooth`] — per-dimension smoothness statistics (Sec. V-B).
//!
//! Layout convention is row-major ("C order"): the **last** dimension is
//! contiguous in memory, matching how CESM NetCDF variables are stored.

pub mod cast;
pub mod fuse;
pub mod grid;
pub mod line;
pub mod mask;
pub mod sample;
pub mod shape;
pub mod smooth;

pub use fuse::{fuse_shape, FusionSpec};
pub use grid::Grid;
pub use line::{Line, LineIter};
pub use mask::MaskMap;
pub use sample::{sample_blocks, Sampled, SampleSpec};
pub use shape::Shape;
pub use smooth::{dimension_smoothness, smoothness_order, Smoothness};
