//! Dimension sizes and row-major stride math.

use std::fmt;

/// Maximum number of dimensions CliZ supports. CESM variables are at most 4-D
/// (time × height × lat × lon); we allow a little headroom.
pub const MAX_DIMS: usize = 6;

/// The extent of an N-dimensional rectangular grid.
///
/// Row-major: `dims[ndim-1]` is the contiguous (fastest-varying) axis.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
    /// Row-major strides, in elements. `strides[i]` is the linear-index step
    /// produced by incrementing coordinate `i` by one.
    strides: Vec<usize>,
}

impl Shape {
    /// Builds a shape from dimension sizes.
    ///
    /// # Panics
    /// Panics if `dims` is empty, longer than [`MAX_DIMS`], or contains a zero
    /// extent — climate grids are never degenerate, and the prediction code
    /// relies on every axis having at least one point.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "Shape: need at least one dimension");
        assert!(
            dims.len() <= MAX_DIMS,
            "Shape: at most {MAX_DIMS} dimensions supported, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "Shape: zero-sized dimension in {dims:?}"
        );
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1]
                .checked_mul(dims[i + 1])
                // xtask-allow: R5 -- construction invariant: decoders cap total volume before building a Shape
                .expect("Shape: element count overflows usize");
        }
        Self {
            dims: dims.to_vec(),
            strides,
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Row-major strides in elements.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Stride of dimension `d` in elements.
    #[inline]
    pub fn stride(&self, d: usize) -> usize {
        self.strides[d]
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the grid holds no elements. Always false for a valid shape
    /// (zero extents are rejected in [`Shape::new`]), kept for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linearizes a coordinate tuple.
    ///
    /// # Panics
    /// Panics (debug) if `coords` has the wrong arity or is out of bounds.
    #[inline]
    pub fn index_of(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.ndim());
        let mut idx = 0usize;
        for (i, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[i], "coordinate {c} out of bounds in dim {i}");
            idx += c * self.strides[i];
        }
        idx
    }

    /// Inverse of [`Shape::index_of`]: recovers coordinates from a linear index.
    #[inline]
    pub fn coords_of(&self, mut index: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.ndim());
        for i in 0..self.ndim() {
            out[i] = index / self.strides[i];
            index %= self.strides[i];
        }
    }

    /// Applies a permutation: `perm[i]` is the *source* axis that becomes
    /// axis `i` of the result. E.g. `perm = [2,0,1]` moves the old last axis
    /// to the front.
    pub fn permuted(&self, perm: &[usize]) -> Shape {
        assert_eq!(perm.len(), self.ndim(), "permutation arity mismatch");
        let mut seen = [false; MAX_DIMS];
        for &p in perm {
            assert!(p < self.ndim() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let dims: Vec<usize> = perm.iter().map(|&p| self.dims[p]).collect();
        Shape::new(&dims)
    }

    /// All `ndim!` axis permutations in lexicographic order. Used by the
    /// auto-tuner's pipeline enumeration (6 cases for 3-D data).
    pub fn all_permutations(ndim: usize) -> Vec<Vec<usize>> {
        fn rec(prefix: &mut Vec<usize>, remaining: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if remaining.is_empty() {
                out.push(prefix.clone());
                return;
            }
            for i in 0..remaining.len() {
                let v = remaining.remove(i);
                prefix.push(v);
                rec(prefix, remaining, out);
                prefix.pop();
                remaining.insert(i, v);
            }
        }
        let mut out = Vec::new();
        rec(&mut Vec::new(), &mut (0..ndim).collect(), &mut out);
        out
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", strs.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[4, 5, 6]);
        assert_eq!(s.strides(), &[30, 6, 1]);
        assert_eq!(s.len(), 120);
    }

    #[test]
    fn index_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        let mut coords = [0usize; 3];
        for i in 0..s.len() {
            s.coords_of(i, &mut coords);
            assert_eq!(s.index_of(&coords), i);
        }
    }

    #[test]
    fn one_dim() {
        let s = Shape::new(&[7]);
        assert_eq!(s.strides(), &[1]);
        assert_eq!(s.index_of(&[3]), 3);
    }

    #[test]
    fn permuted_shape() {
        let s = Shape::new(&[2, 3, 4]);
        let p = s.permuted(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
    }

    #[test]
    fn all_permutations_count() {
        assert_eq!(Shape::all_permutations(1).len(), 1);
        assert_eq!(Shape::all_permutations(2).len(), 2);
        assert_eq!(Shape::all_permutations(3).len(), 6);
        assert_eq!(Shape::all_permutations(4).len(), 24);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn rejects_zero_extent() {
        Shape::new(&[3, 0, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        Shape::new(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn rejects_bad_perm() {
        Shape::new(&[2, 3]).permuted(&[0, 0]);
    }
}
