//! Per-dimension smoothness statistics (Sec. V-B).
//!
//! The paper's CESM-T example: variation along height averages 4.425 while
//! lat/lon average 0.053 and 0.017 — the predictor should therefore run most
//! of its predictions along lat/lon. These statistics feed the dimension
//! permutation/fusion search and the harness that reproduces that analysis.

use crate::grid::Grid;
use crate::line::LineIter;
use crate::mask::MaskMap;

/// Smoothness summary for one axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Smoothness {
    /// Mean `|x[i+1] - x[i]|` over valid adjacent pairs.
    pub mean_abs_diff: f64,
    /// Max `|x[i+1] - x[i]|` over valid adjacent pairs.
    pub max_abs_diff: f64,
    /// Number of valid adjacent pairs measured.
    pub pairs: usize,
}

/// Measures first-difference smoothness along every axis, skipping pairs with
/// an invalid endpoint. Returns one [`Smoothness`] per axis.
// xtask-allow-fn: R5 -- offsets come from LineIter over data's own Shape; shape equality asserted at entry
pub fn dimension_smoothness(data: &Grid<f32>, mask: &MaskMap) -> Vec<Smoothness> {
    assert_eq!(data.shape(), mask.shape());
    let ndim = data.shape().ndim();
    let buf = data.as_slice();
    let flags = mask.as_slice();
    let mut out = Vec::with_capacity(ndim);
    for axis in 0..ndim {
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        let mut pairs = 0usize;
        for line in LineIter::new(data.shape(), axis) {
            for k in 1..line.len {
                let a = line.base + (k - 1) * line.stride;
                let b = line.base + k * line.stride;
                if flags[a] && flags[b] {
                    let d = (buf[b] as f64 - buf[a] as f64).abs();
                    sum += d;
                    if d > max {
                        max = d;
                    }
                    pairs += 1;
                }
            }
        }
        out.push(Smoothness {
            mean_abs_diff: if pairs > 0 { sum / pairs as f64 } else { 0.0 },
            max_abs_diff: max,
            pairs,
        });
    }
    out
}

/// Axis order from smoothest (smallest mean first difference) to roughest.
/// This is the heuristic seed for the permutation search: predict most often
/// along the smoothest axes.
pub fn smoothness_order(stats: &[Smoothness]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..stats.len()).collect();
    // total_cmp: NaN smoothness (conceivable on an all-NaN masked axis)
    // sorts last instead of collapsing to Equal, which would make the
    // seed order depend on the incoming index order.
    order.sort_by(|&a, &b| stats[a].mean_abs_diff.total_cmp(&stats[b].mean_abs_diff));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn anisotropic_field_detected() {
        // value = 10*i + 0.1*j : rough along axis 0, smooth along axis 1.
        let g = Grid::from_fn(Shape::new(&[8, 8]), |c| {
            10.0 * c[0] as f32 + 0.1 * c[1] as f32
        });
        let m = MaskMap::all_valid(g.shape().clone());
        let s = dimension_smoothness(&g, &m);
        assert!((s[0].mean_abs_diff - 10.0).abs() < 1e-4);
        assert!((s[1].mean_abs_diff - 0.1).abs() < 1e-4);
        assert_eq!(smoothness_order(&s), vec![1, 0]);
    }

    #[test]
    fn masked_pairs_excluded() {
        let g = Grid::from_vec(Shape::new(&[4]), vec![0.0, 100.0, 1.0, 2.0]);
        // position 1 invalid: pairs (0,1) and (1,2) dropped.
        let m = MaskMap::from_flags(g.shape().clone(), vec![true, false, true, true]);
        let s = dimension_smoothness(&g, &m);
        assert_eq!(s[0].pairs, 1);
        assert!((s[0].mean_abs_diff - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_field_zero_diff() {
        let g = Grid::filled(Shape::new(&[5, 5]), 3.5f32);
        let m = MaskMap::all_valid(g.shape().clone());
        let s = dimension_smoothness(&g, &m);
        assert!(s.iter().all(|x| x.mean_abs_diff == 0.0 && x.max_abs_diff == 0.0));
    }

    #[test]
    fn fully_masked_has_no_pairs() {
        let g = Grid::filled(Shape::new(&[3, 3]), 1.0f32);
        let m = MaskMap::from_flags(g.shape().clone(), vec![false; 9]);
        let s = dimension_smoothness(&g, &m);
        assert!(s.iter().all(|x| x.pairs == 0 && x.mean_abs_diff == 0.0));
    }
}
