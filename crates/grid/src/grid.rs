//! Owned dense N-dimensional array.

use crate::shape::Shape;

/// An owned, dense, row-major N-dimensional array.
///
/// This is the canonical in-memory form of a climate variable in CliZ.
/// It is deliberately minimal: the compressor kernels work on the raw slice
/// (`as_slice`) plus the [`Shape`] stride table, so `Grid` never needs views
/// or broadcasting.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Copy> Grid<T> {
    /// Wraps existing data. `data.len()` must equal `shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "Grid: data length {} does not match shape {shape:?}",
            data.len()
        );
        Self { shape, data }
    }

    /// A grid filled with `fill`.
    pub fn filled(shape: Shape, fill: T) -> Self {
        let n = shape.len();
        Self {
            shape,
            data: vec![fill; n],
        }
    }

    /// Builds a grid by evaluating `f` at every coordinate tuple.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let n = shape.len();
        let ndim = shape.ndim();
        let mut data = Vec::with_capacity(n);
        let mut coords = vec![0usize; ndim];
        for i in 0..n {
            shape.coords_of(i, &mut coords);
            data.push(f(&coords));
        }
        Self { shape, data }
    }

    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning its backing storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at a coordinate tuple.
    #[inline]
    pub fn get(&self, coords: &[usize]) -> T {
        self.data[self.shape.index_of(coords)]
    }

    /// Sets the element at a coordinate tuple.
    #[inline]
    pub fn set(&mut self, coords: &[usize], v: T) {
        let i = self.shape.index_of(coords);
        self.data[i] = v;
    }

    /// Physically transposes the grid: axis `i` of the result is source axis
    /// `perm[i]`. This materializes a new grid; CliZ permutes once per
    /// compression, so a view abstraction would buy nothing.
    pub fn permuted(&self, perm: &[usize]) -> Grid<T> {
        let out_shape = self.shape.permuted(perm);
        let ndim = self.shape.ndim();
        // Walk the *output* in linear order and gather from the source, so the
        // write stream is sequential (the larger of the two working sets).
        let in_strides = self.shape.strides();
        let gather_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let mut out = Vec::with_capacity(out_shape.len());
        let mut coords = vec![0usize; ndim];
        // Manual odometer loop: faster than coords_of per element.
        let dims = out_shape.dims().to_vec();
        let mut src = 0usize;
        loop {
            out.push(self.data[src]);
            // increment odometer from the last axis
            let mut axis = ndim;
            loop {
                if axis == 0 {
                    debug_assert_eq!(out.len(), out_shape.len());
                    return Grid::from_vec(out_shape, out);
                }
                axis -= 1;
                coords[axis] += 1;
                src += gather_strides[axis];
                if coords[axis] < dims[axis] {
                    break;
                }
                src -= gather_strides[axis] * dims[axis];
                coords[axis] = 0;
            }
        }
    }

    /// Inverse of [`Grid::permuted`]: undoes the permutation `perm`.
    pub fn unpermuted(&self, perm: &[usize]) -> Grid<T> {
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        self.permuted(&inverse)
    }

    /// Reinterprets the grid under a new shape with the same element count
    /// (used by dimension fusion, which never moves data).
    pub fn reshaped(self, shape: Shape) -> Grid<T> {
        assert_eq!(
            shape.len(),
            self.data.len(),
            "reshape: element count mismatch"
        );
        Grid {
            shape,
            data: self.data,
        }
    }

    /// Copies a rectangular block `[start, start+size)` into a new grid.
    pub fn block(&self, start: &[usize], size: &[usize]) -> Grid<T> {
        let ndim = self.shape.ndim();
        assert_eq!(start.len(), ndim);
        assert_eq!(size.len(), ndim);
        for d in 0..ndim {
            assert!(
                start[d] + size[d] <= self.shape.dim(d),
                "block out of bounds in dim {d}"
            );
        }
        let out_shape = Shape::new(size);
        let mut out = Vec::with_capacity(out_shape.len());
        let mut coords = vec![0usize; ndim];
        let n = out_shape.len();
        let mut abs = vec![0usize; ndim];
        for i in 0..n {
            out_shape.coords_of(i, &mut coords);
            for d in 0..ndim {
                abs[d] = start[d] + coords[d];
            }
            out.push(self.data[self.shape.index_of(&abs)]);
        }
        Grid::from_vec(out_shape, out)
    }

    /// Extracts the 2-D slice obtained by fixing every axis except `keep_a`
    /// and `keep_b` (with `keep_a` becoming the slower axis of the result).
    pub fn slice2d(&self, keep_a: usize, keep_b: usize, fixed: &[usize]) -> Grid<T> {
        let ndim = self.shape.ndim();
        assert!(keep_a != keep_b && keep_a < ndim && keep_b < ndim);
        assert_eq!(fixed.len(), ndim);
        let (na, nb) = (self.shape.dim(keep_a), self.shape.dim(keep_b));
        let out_shape = Shape::new(&[na, nb]);
        let mut out = Vec::with_capacity(na * nb);
        let mut coords = fixed.to_vec();
        for a in 0..na {
            coords[keep_a] = a;
            for b in 0..nb {
                coords[keep_b] = b;
                out.push(self.data[self.shape.index_of(&coords)]);
            }
        }
        Grid::from_vec(out_shape, out)
    }
}

impl Grid<f32> {
    /// Minimum and maximum over the grid, ignoring non-finite values.
    /// Returns `None` when every value is non-finite.
    pub fn finite_min_max(&self) -> Option<(f32, f32)> {
        let mut mn = f32::INFINITY;
        let mut mx = f32::NEG_INFINITY;
        let mut any = false;
        for &v in &self.data {
            if v.is_finite() {
                any = true;
                mn = mn.min(v);
                mx = mx.max(v);
            }
        }
        any.then_some((mn, mx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: &[usize]) -> Grid<f32> {
        let shape = Shape::new(dims);
        let n = shape.len();
        Grid::from_vec(shape, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn get_set_roundtrip() {
        let mut g = Grid::filled(Shape::new(&[3, 4]), 0.0f32);
        g.set(&[2, 1], 7.5);
        assert_eq!(g.get(&[2, 1]), 7.5);
        assert_eq!(g.as_slice()[2 * 4 + 1], 7.5);
    }

    #[test]
    fn permute_2d_is_transpose() {
        let g = iota(&[2, 3]);
        let t = g.permuted(&[1, 0]);
        assert_eq!(t.shape().dims(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(g.get(&[i, j]), t.get(&[j, i]));
            }
        }
    }

    #[test]
    fn permute_then_unpermute_identity() {
        let g = iota(&[3, 4, 5]);
        for perm in Shape::all_permutations(3) {
            let back = g.permuted(&perm).unpermuted(&perm);
            assert_eq!(back, g, "perm {perm:?}");
        }
    }

    #[test]
    fn block_extracts_expected() {
        let g = iota(&[4, 5]);
        let b = g.block(&[1, 2], &[2, 3]);
        assert_eq!(b.shape().dims(), &[2, 3]);
        assert_eq!(b.get(&[0, 0]), g.get(&[1, 2]));
        assert_eq!(b.get(&[1, 2]), g.get(&[2, 4]));
    }

    #[test]
    fn slice2d_center() {
        let g = iota(&[3, 4, 5]);
        let s = g.slice2d(0, 2, &[0, 2, 0]);
        assert_eq!(s.shape().dims(), &[3, 5]);
        assert_eq!(s.get(&[1, 3]), g.get(&[1, 2, 3]));
    }

    #[test]
    fn finite_min_max_skips_nan() {
        let g = Grid::from_vec(
            Shape::new(&[4]),
            vec![1.0f32, f32::NAN, -2.0, f32::INFINITY],
        );
        assert_eq!(g.finite_min_max(), Some((-2.0, 1.0)));
    }

    #[test]
    fn from_fn_matches_coords() {
        let g = Grid::from_fn(Shape::new(&[2, 3]), |c| (c[0] * 10 + c[1]) as f32);
        assert_eq!(g.get(&[1, 2]), 12.0);
    }
}
