//! Storage layer for CliZ: self-describing array files and a random-access
//! chunk store.
//!
//! Two on-disk formats live here:
//!
//! * **CAF** ([`caf`]) — the uncompressed NetCDF-flavoured substrate the
//!   `cliz` CLI reads and writes: named dimensions, string attributes, one
//!   f32 variable, and an optional bit-packed validity mask.
//! * **CZS** ([`format`]) — the *indexed chunk store*: the same dataset
//!   metadata plus a per-slab index (offset, length, CRC32) over a CLZC
//!   chunked-compression payload, so any slab is seekable without scanning
//!   the stream. [`pack_store`] builds one; [`ChunkStoreReader`] serves
//!   region queries against it, decoding only the chunks a query touches
//!   and sharing decoded slabs between concurrent readers through a
//!   byte-budgeted LRU cache ([`ChunkCache`]).
//!
//! See `docs/STORE.md` for the format layout, the index invariants, and the
//! cache/concurrency model.
//!
//! ```
//! use cliz_store::{pack_store, ChunkStoreReader, Dataset};
//! use cliz_core::config::PipelineConfig;
//! use cliz_grid::{Grid, Shape};
//! use cliz_quant::ErrorBound;
//!
//! let data = Grid::from_fn(Shape::new(&[16, 12]), |c| (c[0] + c[1]) as f32);
//! let ds = Dataset::new("T", data, None);
//! let bytes = pack_store(
//!     &ds, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2), 4, 1,
//! ).unwrap();
//! let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
//! // Rows 5..7 live in chunk 1 only: one chunk decoded, not four.
//! let region = reader.read_region(&[5..7, 0..12]).unwrap();
//! assert_eq!(region.shape().dims(), &[2, 12]);
//! assert_eq!(reader.decode_count(), 1);
//! ```

pub mod caf;
pub mod cache;
pub mod checksum;
pub mod error;
pub mod format;
pub mod pack;
pub mod reader;
pub(crate) mod sync;

pub use caf::{load, read_caf, save, write_caf, Dataset};
pub use cache::{CacheStats, ChunkCache};
pub use error::StoreError;
pub use format::{IndexEntry, StoreIndex};
pub use pack::{pack_store, pack_store_to, save_store};
pub use reader::{ChunkStoreReader, StoreStats, DEFAULT_CACHE_BUDGET, DEFAULT_COALESCE_GAP};

/// The pluggable byte-range backends the reader reads through
/// (re-exported from `cliz-storage` so store users need one import path).
pub mod storage {
    pub use cliz_storage::*;
}
