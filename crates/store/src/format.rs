//! CZS — the indexed random-access chunk store format.
//!
//! A CZS file is dataset metadata plus a per-slab index over a CLZC
//! chunked-compression payload (see `cliz_core::chunked`):
//!
//! ```text
//! magic     u32   "CZS1"
//! version   u8    1
//! name      string                 variable name
//! nattrs    u16   then nattrs × (key string, value string)
//! ndim      u8    then ndim × (dim-name string, extent u64)
//! flags     u8    bit0 = mask present
//! chunk_len u64   slab thickness along axis 0
//! n_chunks  u32   must equal ceil(dims[0] / chunk_len)
//! index     n_chunks × (offset u64, len u64, crc32 u32)
//! plen      u64   payload length in bytes
//! [mask]    ceil(len/8) bytes, bit-packed (LSB-first)
//! payload   plen bytes — one CLZC container
//! ```
//!
//! Index invariants (checked on parse, and cross-checked against the CLZC
//! offset table when a [`crate::ChunkStoreReader`] opens the file):
//!
//! * `n_chunks` is derived from the validated dims, never trusted raw;
//! * entries are contiguous: `offset[i] + len[i] == offset[i+1]`, and every
//!   entry lies inside `payload`;
//! * `checksum` is the CRC32 of the chunk's payload bytes, verified before
//!   a chunk is ever handed to the codec.
//!
//! Every length that steers an allocation is bounded by the bytes actually
//! present before the allocation happens — a corrupt index surfaces as
//! [`StoreError::Corrupt`], never as a panic or a giant `Vec`.

use crate::error::StoreError;
use crate::caf::Dataset;
use cliz_format::{spec::CZS1, HeaderReader, HeaderWriter};
use cliz_grid::{MaskMap, Shape};
use std::io::Write;

/// Largest element count a store header may claim (matches the CAF cap).
const MAX_ELEMS: usize = 1 << 36;

/// Bytes per serialized index entry (offset u64 + len u64 + crc u32).
const ENTRY_BYTES: usize = 20;

/// One chunk's location inside the payload, plus its integrity checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the chunk blob, relative to the payload start.
    pub offset: usize,
    /// Blob length in bytes.
    pub len: usize,
    /// CRC32 of the blob.
    pub checksum: u32,
}

/// Parsed store metadata: everything except the mask bits and the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreIndex {
    pub name: String,
    pub dim_names: Vec<String>,
    pub attrs: Vec<(String, String)>,
    pub dims: Vec<usize>,
    pub chunk_len: usize,
    pub has_mask: bool,
    pub entries: Vec<IndexEntry>,
}

impl StoreIndex {
    /// Total element count (validated against [`MAX_ELEMS`] on parse).
    pub fn total_elems(&self) -> usize {
        self.dims.iter().product()
    }
}

/// A successfully parsed store: metadata, unpacked mask, and where the
/// payload lives inside the original byte buffer (no copy).
#[derive(Debug)]
pub struct ParsedStore {
    pub index: StoreIndex,
    pub mask: Option<MaskMap>,
    /// Payload byte range within the buffer handed to [`parse_store`].
    pub payload: std::ops::Range<usize>,
}

/// Store metadata parsed from a (possibly partial) buffer: everything up
/// to where the payload begins, plus where it begins. Storage-backed
/// openers fetch a prefix, parse this, and then range-read the payload.
#[derive(Debug)]
pub struct StoreMeta {
    pub index: StoreIndex,
    pub mask: Option<MaskMap>,
    /// Byte offset of the payload within the whole store object.
    pub payload_start: usize,
    /// Payload length in bytes (the `plen` field).
    pub payload_len: usize,
}

/// Parses and validates a CZS store from one in-memory buffer. All reads go
/// through the `cliz-format` [`HeaderReader`], so truncation is an error at
/// the read site and nothing downstream ever indexes past the buffer.
pub fn parse_store(bytes: &[u8]) -> Result<ParsedStore, StoreError> {
    let meta = parse_store_prefix(bytes, bytes.len())?;
    let end = meta
        .payload_start
        .checked_add(meta.payload_len)
        .ok_or(StoreError::Corrupt("index entry overflows"))?;
    if end > bytes.len() {
        return Err(StoreError::Corrupt("truncated"));
    }
    if end < bytes.len() {
        return Err(StoreError::Corrupt("trailing bytes after payload"));
    }
    Ok(ParsedStore {
        index: meta.index,
        mask: meta.mask,
        payload: meta.payload_start..end,
    })
}

/// Parses store metadata from a *prefix* of an object whose full size is
/// `full_len` bytes.
///
/// Remote openers cannot afford to download a store just to learn where
/// its chunks live; they fetch the first N bytes and call this. Reads past
/// the prefix surface as [`StoreError::Corrupt`]`("truncated")` — the
/// caller's cue to fetch a longer prefix — while the plausibility guards
/// that bound allocations compare claimed counts against `full_len`, the
/// size the object actually has, so a legitimate store with a big index or
/// mask is never misdiagnosed as corrupt just because the prefix was
/// short. The payload itself is *not* required to be present; its
/// location is returned instead.
pub fn parse_store_prefix(bytes: &[u8], full_len: usize) -> Result<StoreMeta, StoreError> {
    let mut cur = HeaderReader::new(bytes);
    cur.expect_magic(&CZS1)?;
    let name = cur.str16()?.to_string();
    let nattrs = cur.u16()? as usize;
    // Each attr needs ≥ 4 bytes (two empty strings); bound the Vec by what
    // the full object can physically hold before allocating. (Using the
    // object size, not the prefix length, keeps a short prefix looking
    // "truncated" rather than "corrupt".)
    if nattrs > full_len.saturating_sub(cur.pos()) / 4 {
        return Err(StoreError::Corrupt("attribute count exceeds file size"));
    }
    let mut attrs = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        let k = cur.str16()?.to_string();
        let v = cur.str16()?.to_string();
        attrs.push((k, v));
    }
    let ndim = cur.u8()? as usize;
    if ndim == 0 || ndim > cliz_grid::shape::MAX_DIMS {
        return Err(StoreError::Corrupt("bad rank"));
    }
    let mut dim_names = Vec::with_capacity(ndim);
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dim_names.push(cur.str16()?.to_string());
        let e = cur.u64()? as usize;
        if e == 0 {
            return Err(StoreError::Corrupt("zero extent"));
        }
        dims.push(e);
    }
    let total = dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .filter(|&t| t <= MAX_ELEMS)
        .ok_or(StoreError::Corrupt("implausible size"))?;
    let flags = cur.u8()?;
    if flags & !1 != 0 {
        return Err(StoreError::Corrupt("unknown flag bits"));
    }
    let has_mask = flags & 1 == 1;
    let chunk_len = cur.u64()? as usize;
    if chunk_len == 0 || chunk_len > MAX_ELEMS {
        return Err(StoreError::Corrupt("bad chunk length"));
    }
    let n_chunks = cur.u32()? as usize;
    // The only admissible chunk count is the one the validated geometry
    // implies; checking before the index allocation also bounds it.
    if n_chunks != dims[0].div_ceil(chunk_len) {
        return Err(StoreError::Corrupt("chunk count mismatch"));
    }
    if n_chunks > full_len.saturating_sub(cur.pos()) / ENTRY_BYTES {
        return Err(StoreError::Corrupt("index exceeds file size"));
    }
    let mut entries = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let offset = cur.u64()? as usize;
        let len = cur.u64()? as usize;
        let checksum = cur.u32()?;
        entries.push(IndexEntry {
            offset,
            len,
            checksum,
        });
    }
    let payload_len = cur.u64()? as usize;

    // Index invariants against the payload extent: entries are contiguous
    // and in-bounds. (The reader additionally cross-checks these offsets
    // against the CLZC container's own offset table.)
    let mut expected_next: Option<usize> = None;
    for (i, e) in entries.iter().enumerate() {
        let end = e
            .offset
            .checked_add(e.len)
            .ok_or(StoreError::Corrupt("index entry overflows"))?;
        if end > payload_len {
            return Err(StoreError::Corrupt("index entry past payload end"));
        }
        if let Some(next) = expected_next {
            if e.offset != next {
                return Err(StoreError::Corrupt("index entries not contiguous"));
            }
        } else if e.offset > payload_len {
            return Err(StoreError::Corrupt("index entry past payload end"));
        }
        expected_next = Some(end);
        let _ = i;
    }
    if let Some(last_end) = expected_next {
        if last_end != payload_len {
            return Err(StoreError::Corrupt("index does not cover payload"));
        }
    }

    let mask = if has_mask {
        let packed = cur.take(total.div_ceil(8))?;
        Some(MaskMap::unpack_bits(Shape::new(&dims), packed))
    } else {
        None
    };
    let payload_start = cur.pos();
    if payload_start
        .checked_add(payload_len)
        .is_none_or(|end| end > full_len)
    {
        return Err(StoreError::Corrupt("truncated"));
    }
    Ok(StoreMeta {
        index: StoreIndex {
            name,
            dim_names,
            attrs,
            dims,
            chunk_len,
            has_mask,
            entries,
        },
        mask,
        payload_start,
        payload_len,
    })
}

/// Serializes a store: metadata + index, then mask bits, then the payload.
/// The write side re-checks the same invariants the parser enforces so a
/// buggy caller cannot produce a file its own reader rejects.
pub fn write_store(
    w: &mut impl Write,
    index: &StoreIndex,
    mask: Option<&MaskMap>,
    payload: &[u8],
) -> Result<(), StoreError> {
    if index.dims.is_empty() || index.dims.len() > cliz_grid::shape::MAX_DIMS {
        return Err(StoreError::Invalid("bad rank"));
    }
    if index.dim_names.len() != index.dims.len() {
        return Err(StoreError::Invalid("dimension-name arity mismatch"));
    }
    if index.chunk_len == 0 {
        return Err(StoreError::Invalid("chunk length must be positive"));
    }
    if index.entries.len() != index.dims[0].div_ceil(index.chunk_len) {
        return Err(StoreError::Invalid("entry count does not match geometry"));
    }
    if index.has_mask != mask.is_some() {
        return Err(StoreError::Invalid("mask flag does not match mask"));
    }
    if index.attrs.len() > u16::MAX as usize {
        return Err(StoreError::Invalid("too many attributes"));
    }
    let mut next = index.entries.first().map_or(0, |e| e.offset);
    for e in &index.entries {
        if e.offset != next {
            return Err(StoreError::Invalid("index entries not contiguous"));
        }
        next = e
            .offset
            .checked_add(e.len)
            .ok_or(StoreError::Invalid("index entry overflows"))?;
    }
    if next != payload.len() && !index.entries.is_empty() {
        return Err(StoreError::Invalid("index does not cover payload"));
    }

    // The metadata prefix is assembled through the shared cursor (the exact
    // mirror of the reads in `parse_store`); mask bits and the bulk payload
    // stream straight to the sink afterwards.
    let mut hw = HeaderWriter::new();
    hw.magic(&CZS1);
    hw.str16(&index.name)
        .map_err(|_| StoreError::Invalid("string too long"))?;
    hw.u16(index.attrs.len() as u16);
    for (k, v) in &index.attrs {
        hw.str16(k).map_err(|_| StoreError::Invalid("string too long"))?;
        hw.str16(v).map_err(|_| StoreError::Invalid("string too long"))?;
    }
    hw.u8(index.dims.len() as u8);
    for (name, &extent) in index.dim_names.iter().zip(&index.dims) {
        hw.str16(name)
            .map_err(|_| StoreError::Invalid("string too long"))?;
        hw.u64(extent as u64);
    }
    hw.u8(u8::from(index.has_mask));
    hw.u64(index.chunk_len as u64);
    hw.u32(index.entries.len() as u32);
    for e in &index.entries {
        hw.u64(e.offset as u64);
        hw.u64(e.len as u64);
        hw.u32(e.checksum);
    }
    hw.u64(payload.len() as u64);
    w.write_all(&hw.finish())?;
    if let Some(m) = mask {
        w.write_all(&m.pack_bits())?;
    }
    w.write_all(payload)?;
    Ok(())
}

/// Builds a [`StoreIndex`] from a dataset's metadata plus slab entries.
pub(crate) fn index_for(
    ds: &Dataset,
    chunk_len: usize,
    entries: Vec<IndexEntry>,
) -> StoreIndex {
    StoreIndex {
        name: ds.name.clone(),
        dim_names: ds.dim_names.clone(),
        attrs: ds.attrs.clone(),
        dims: ds.data.shape().dims().to_vec(),
        chunk_len,
        has_mask: ds.mask.is_some(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_index() -> (StoreIndex, Vec<u8>) {
        let payload = vec![7u8; 30];
        let entries = vec![
            IndexEntry { offset: 0, len: 12, checksum: crate::checksum::crc32(&payload[..12]) },
            IndexEntry { offset: 12, len: 18, checksum: crate::checksum::crc32(&payload[12..]) },
        ];
        let index = StoreIndex {
            name: "T".into(),
            dim_names: vec!["t".into(), "x".into()],
            attrs: vec![("units".into(), "K".into())],
            dims: vec![6, 4],
            chunk_len: 3,
            has_mask: false,
            entries,
        };
        (index, payload)
    }

    #[test]
    fn metadata_and_index_roundtrip() {
        let (index, payload) = tiny_index();
        let mut buf = Vec::new();
        write_store(&mut buf, &index, None, &payload).unwrap();
        let parsed = parse_store(&buf).unwrap();
        assert_eq!(parsed.index, index);
        assert!(parsed.mask.is_none());
        assert_eq!(&buf[parsed.payload.clone()], payload.as_slice());
    }

    #[test]
    fn non_contiguous_index_rejected_both_ways() {
        let (mut index, payload) = tiny_index();
        index.entries[1].offset = 13;
        let mut buf = Vec::new();
        assert!(matches!(
            write_store(&mut buf, &index, None, &payload),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn chunk_count_must_match_geometry() {
        let (index, payload) = tiny_index();
        let mut buf = Vec::new();
        write_store(&mut buf, &index, None, &payload).unwrap();
        let parsed = parse_store(&buf).unwrap();
        assert_eq!(parsed.index.entries.len(), 2); // ceil(6/3)
        // Claiming a different chunk_len breaks the derived count.
        let mut bad = StoreIndex { chunk_len: 2, ..index };
        bad.entries.truncate(2);
        let mut buf = Vec::new();
        assert!(write_store(&mut buf, &bad, None, &payload).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (index, payload) = tiny_index();
        let mut buf = Vec::new();
        write_store(&mut buf, &index, None, &payload).unwrap();
        buf.push(0xAA);
        assert!(matches!(
            parse_store(&buf),
            Err(StoreError::Corrupt("trailing bytes after payload"))
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let (index, payload) = tiny_index();
        let mut buf = Vec::new();
        write_store(&mut buf, &index, None, &payload).unwrap();
        for cut in 0..buf.len() {
            assert!(parse_store(&buf[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn oversize_claims_bounded_by_file_size() {
        // A header claiming 2^32 attrs or chunks must fail the plausibility
        // guard before any allocation, not OOM.
        let (index, payload) = tiny_index();
        let mut buf = Vec::new();
        write_store(&mut buf, &index, None, &payload).unwrap();
        // nattrs lives right after magic(4)+version(1)+name(u16 len + 1).
        let nattrs_pos = 4 + 1 + 2 + index.name.len();
        let mut bad = buf.clone();
        bad[nattrs_pos] = 0xFF;
        bad[nattrs_pos + 1] = 0xFF;
        assert!(parse_store(&bad).is_err());
    }
}
