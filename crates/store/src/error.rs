//! Error taxonomy shared by the CAF file format and the CZS chunk store.

use cliz_core::ClizError;

/// Read/write failure in the storage layer.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Not a CAF/CZS stream at all.
    BadMagic,
    UnsupportedVersion(u8),
    /// Structurally invalid stream (truncation, inconsistent index,
    /// implausible geometry).
    Corrupt(&'static str),
    /// Caller-side validation failure on the write path (arity or shape
    /// mismatches, oversized strings).
    Invalid(&'static str),
    /// A chunk's stored CRC32 does not match its payload bytes.
    Checksum { chunk: usize },
    /// A region query that does not fit the dataset's geometry.
    BadRegion(&'static str),
    /// The chunk codec rejected a payload.
    Codec(ClizError),
    /// The storage backend failed to produce the requested bytes.
    Storage(cliz_storage::StorageError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store: io error: {e}"),
            StoreError::BadMagic => write!(f, "store: not a CAF/CZS file"),
            StoreError::UnsupportedVersion(v) => write!(f, "store: unsupported version {v}"),
            StoreError::Corrupt(w) => write!(f, "store: corrupt file ({w})"),
            StoreError::Invalid(w) => write!(f, "store: invalid dataset ({w})"),
            StoreError::Checksum { chunk } => {
                write!(f, "store: checksum mismatch in chunk {chunk}")
            }
            StoreError::BadRegion(w) => write!(f, "store: bad region query ({w})"),
            StoreError::Codec(e) => write!(f, "store: codec error: {e}"),
            StoreError::Storage(e) => write!(f, "store: storage backend error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<cliz_format::FormatError> for StoreError {
    fn from(e: cliz_format::FormatError) -> Self {
        match e {
            // Truncation while parsing store structure is a corrupt store;
            // the store layer has no standalone Truncated variant.
            cliz_format::FormatError::Truncated => StoreError::Corrupt("truncated"),
            cliz_format::FormatError::BadMagic => StoreError::BadMagic,
            cliz_format::FormatError::UnsupportedVersion(v) => StoreError::UnsupportedVersion(v),
            cliz_format::FormatError::Corrupt(what) => StoreError::Corrupt(what),
        }
    }
}

impl From<cliz_storage::StorageError> for StoreError {
    fn from(e: cliz_storage::StorageError) -> Self {
        StoreError::Storage(e)
    }
}

impl From<ClizError> for StoreError {
    fn from(e: ClizError) -> Self {
        // Truncation discovered while parsing store structure is a corrupt
        // *store*, not a codec failure; everything else keeps its origin.
        match e {
            ClizError::Truncated => StoreError::Corrupt("truncated"),
            other => StoreError::Codec(other),
        }
    }
}
