//! Random-access reads over a CZS store.
//!
//! [`ChunkStoreReader`] owns the store bytes and serves region queries by
//! decoding only the slabs a query intersects. It is `Sync`: concurrent
//! readers share one decoded-chunk LRU cache, and a per-chunk decode lock
//! guarantees a cold chunk is decompressed exactly once no matter how many
//! threads race for it (no decode stampede):
//!
//! 1. probe the cache (lock-free of the decode path; records hit/miss);
//! 2. on miss, take that chunk's decode mutex;
//! 3. re-probe quietly — a racing thread may have decoded while we waited;
//! 4. verify the chunk's CRC32, decode into a pooled [`ScratchArena`], and
//!    publish the `Arc` into the cache.
//!
//! The decode counter counts step 4 only, so tests can assert that a query
//! touched exactly the chunks its row range intersects and nothing else.

use crate::cache::{CacheStats, ChunkCache};
use crate::checksum::crc32;
use crate::error::StoreError;
use crate::format::{parse_store, StoreIndex};
use crate::sync::{lock_or_recover, AtomicU64, Mutex, MutexGuard, Ordering};
use cliz_core::{decompress_chunk_arena, read_header, ChunkIndex, ChunkedHeader, ScratchArena};
use cliz_grid::{Grid, MaskMap, Shape};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// Default decoded-chunk cache budget: 64 MiB.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// Reader-level counters: decodes actually performed plus cache counters.
#[derive(Clone, Copy, Debug)]
pub struct StoreStats {
    /// Chunks decompressed (cache misses that did real work).
    pub decodes: u64,
    pub cache: CacheStats,
}

/// Concurrent random-access reader over an in-memory CZS store.
pub struct ChunkStoreReader {
    raw: Vec<u8>,
    index: StoreIndex,
    payload: Range<usize>,
    header: ChunkedHeader,
    geometry: ChunkIndex,
    mask: Option<MaskMap>,
    /// Mask flags as a grid, the shape `decompress_chunk_arena` slices
    /// per-slab mask views from.
    mask_grid: Option<Grid<bool>>,
    cache: ChunkCache,
    /// One decode lock per chunk; holders are decoding that chunk.
    locks: Vec<Mutex<()>>,
    /// Pool of scratch arenas so concurrent decodes reuse buffers without
    /// a shared bottleneck.
    arenas: Mutex<Vec<ScratchArena>>,
    decodes: AtomicU64,
}

// The whole point of the reader: shared across scoped threads.
const _: () = {
    const fn require_sync<T: Sync + Send>() {}
    require_sync::<ChunkStoreReader>()
};

impl ChunkStoreReader {
    /// Opens a store from bytes with the [`DEFAULT_CACHE_BUDGET`].
    pub fn from_bytes(raw: Vec<u8>) -> Result<Self, StoreError> {
        Self::with_cache_budget(raw, DEFAULT_CACHE_BUDGET)
    }

    /// Opens a store file with the [`DEFAULT_CACHE_BUDGET`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Opens a store from bytes with an explicit cache byte budget.
    ///
    /// Open-time validation parses both headers and cross-checks the store
    /// index against the CLZC container's own offset table, so a store
    /// whose index lies about chunk locations is rejected before any
    /// region query runs. Chunk CRCs are verified lazily, per decode.
    pub fn with_cache_budget(raw: Vec<u8>, budget: usize) -> Result<Self, StoreError> {
        let parsed = parse_store(&raw)?;
        let container = raw
            .get(parsed.payload.clone())
            .ok_or(StoreError::Corrupt("payload range out of bounds"))?;
        let header = read_header(container)?;
        let index = parsed.index;
        if header.dims != index.dims {
            return Err(StoreError::Corrupt("container dims disagree with index"));
        }
        if header.chunk_len != index.chunk_len {
            return Err(StoreError::Corrupt(
                "container chunk length disagrees with index",
            ));
        }
        if header.n_chunks != index.entries.len() {
            return Err(StoreError::Corrupt(
                "container chunk count disagrees with index",
            ));
        }
        for (i, e) in index.entries.iter().enumerate() {
            let start = header.offsets.get(i).copied();
            let end = header.offsets.get(i + 1).copied();
            if start != Some(e.offset) || end != e.offset.checked_add(e.len) {
                return Err(StoreError::Corrupt("index disagrees with offset table"));
            }
        }
        let geometry = header.index()?;
        let mask_grid = parsed
            .mask
            .as_ref()
            .map(|m| Grid::from_vec(m.shape().clone(), m.as_slice().to_vec()));
        let n = index.entries.len();
        Ok(Self {
            index,
            payload: parsed.payload,
            header,
            geometry,
            mask: parsed.mask,
            mask_grid,
            cache: ChunkCache::new(budget),
            locks: (0..n).map(|_| Mutex::new(())).collect(),
            arenas: Mutex::new(Vec::new()),
            decodes: AtomicU64::new(0),
            raw,
        })
    }

    /// Variable name.
    pub fn name(&self) -> &str {
        &self.index.name
    }

    /// Dataset extents, slowest axis first.
    pub fn dims(&self) -> &[usize] {
        &self.index.dims
    }

    /// Dimension names, parallel to [`dims`](Self::dims).
    pub fn dim_names(&self) -> &[String] {
        &self.index.dim_names
    }

    /// String attributes in file order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.index.attrs
    }

    /// Slab thickness along axis 0.
    pub fn chunk_len(&self) -> usize {
        self.index.chunk_len
    }

    /// Number of slabs in the store.
    pub fn n_chunks(&self) -> usize {
        self.index.entries.len()
    }

    /// The validity mask, if the dataset has one.
    pub fn mask(&self) -> Option<&MaskMap> {
        self.mask.as_ref()
    }

    /// Chunks decompressed so far (not counting cache hits).
    pub fn decode_count(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// Reader and cache counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            decodes: self.decode_count(),
            cache: self.cache.stats(),
        }
    }

    fn container(&self) -> &[u8] {
        // Validated at open; an empty slice here would mean `raw` shrank,
        // which nothing does.
        self.raw.get(self.payload.clone()).unwrap_or(&[])
    }

    fn lock_arena(&self) -> MutexGuard<'_, Vec<ScratchArena>> {
        lock_or_recover(&self.arenas)
    }

    /// Returns decoded chunk `i`, from cache when resident. On a cold
    /// chunk the CRC32 is verified against the store index before the
    /// codec sees a byte. The stampede protocol itself lives in
    /// [`ChunkCache::get_or_decode`]; this method supplies the per-chunk
    /// lock and the CRC-check-plus-decompress closure.
    pub fn chunk(&self, i: usize) -> Result<Arc<Grid<f32>>, StoreError> {
        let lock = self
            .locks
            .get(i)
            .ok_or(StoreError::BadRegion("chunk index out of range"))?;
        self.cache.get_or_decode(i, lock, || {
            let entry = self
                .index
                .entries
                .get(i)
                .copied()
                .ok_or(StoreError::Corrupt("index entry missing"))?;
            let end = entry
                .offset
                .checked_add(entry.len)
                .ok_or(StoreError::Corrupt("index entry overflows"))?;
            let blob = self
                .container()
                .get(entry.offset..end)
                .ok_or(StoreError::Corrupt("index entry past payload end"))?;
            if crc32(blob) != entry.checksum {
                return Err(StoreError::Checksum { chunk: i });
            }
            let mut arena = self.lock_arena().pop().unwrap_or_default();
            let decoded = decompress_chunk_arena(
                self.container(),
                &self.header,
                self.mask_grid.as_ref(),
                i,
                &mut arena,
            );
            self.lock_arena().push(arena);
            let grid = Arc::new(decoded?);
            self.decodes.fetch_add(1, Ordering::Relaxed);
            Ok(grid)
        })
    }

    /// Reads the axis-aligned region `ranges` (one half-open range per
    /// dimension), decoding only the slabs whose rows intersect
    /// `ranges[0]`. Returns a grid shaped by the range lengths.
    pub fn read_region(&self, ranges: &[Range<usize>]) -> Result<Grid<f32>, StoreError> {
        let dims = self.dims().to_vec();
        if ranges.len() != dims.len() {
            return Err(StoreError::BadRegion("rank mismatch"));
        }
        for (r, &d) in ranges.iter().zip(&dims) {
            if r.start >= r.end {
                return Err(StoreError::BadRegion("empty range"));
            }
            if r.end > d {
                return Err(StoreError::BadRegion("range exceeds extent"));
            }
        }
        let lens: Vec<usize> = ranges.iter().map(Range::len).collect();
        let trailing: usize = lens.iter().skip(1).product();
        let full_trailing = ranges
            .iter()
            .zip(&dims)
            .skip(1)
            .all(|(r, &d)| r.start == 0 && r.end == d);
        let mut out = vec![0f32; lens.iter().product()];

        let row0 = ranges
            .first()
            .cloned()
            .ok_or(StoreError::BadRegion("rank mismatch"))?;
        for ci in self.geometry.intersecting(&row0) {
            let rows = self
                .geometry
                .rows(ci)
                .ok_or(StoreError::Corrupt("chunk geometry out of range"))?;
            let isect = row0.start.max(rows.start)..row0.end.min(rows.end);
            let chunk = self.chunk(ci)?;
            let dst_start = (isect.start - row0.start) * trailing;
            let dst = out
                .get_mut(dst_start..dst_start + isect.len() * trailing)
                .ok_or(StoreError::Corrupt("region assembly out of bounds"))?;
            if full_trailing {
                // Trailing dims are read whole: the chunk's contribution is
                // one contiguous run of rows.
                let src_start = (isect.start - rows.start) * self.geometry.slab_stride();
                let src = chunk
                    .as_slice()
                    .get(src_start..src_start + isect.len() * trailing)
                    .ok_or(StoreError::Corrupt("chunk shorter than its geometry"))?;
                dst.copy_from_slice(src);
            } else {
                let mut start = vec![isect.start - rows.start];
                let mut size = vec![isect.len()];
                for (r, l) in ranges.iter().zip(&lens).skip(1) {
                    start.push(r.start);
                    size.push(*l);
                }
                let block = chunk.block(&start, &size);
                dst.copy_from_slice(block.as_slice());
            }
        }
        Ok(Grid::from_vec(Shape::new(&lens), out))
    }

    /// Decodes the entire dataset (a region query over every extent).
    pub fn read_all(&self) -> Result<Grid<f32>, StoreError> {
        let ranges: Vec<Range<usize>> = self.dims().iter().map(|&d| 0..d).collect();
        self.read_region(&ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caf::Dataset;
    use crate::pack::pack_store;
    use cliz_core::config::PipelineConfig;
    use cliz_quant::ErrorBound;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.23 * (k + 1) as f64).sin() * 4.0;
            }
            v as f32
        })
    }

    fn store_bytes(dims: &[usize], chunk_len: usize) -> (Dataset, Vec<u8>) {
        let ds = Dataset::new("tas", smooth(dims), None);
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, chunk_len, 1).unwrap();
        (ds, bytes)
    }

    #[test]
    fn region_matches_full_decode() {
        let (_, bytes) = store_bytes(&[20, 10, 6], 5);
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        let full = reader.read_all().unwrap();
        let region = reader.read_region(&[7..14, 2..9, 1..5]).unwrap();
        assert_eq!(region.shape().dims(), &[7, 7, 4]);
        for t in 0..7 {
            for y in 0..7 {
                for x in 0..4 {
                    assert_eq!(
                        region.get(&[t, y, x]),
                        full.get(&[t + 7, y + 2, x + 1]),
                        "mismatch at [{t},{y},{x}]"
                    );
                }
            }
        }
    }

    #[test]
    fn decode_counter_tracks_only_intersected_chunks() {
        let (_, bytes) = store_bytes(&[20, 8], 5); // 4 chunks of 5 rows
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        // Rows 6..9 live entirely in chunk 1.
        reader.read_region(&[6..9, 0..8]).unwrap();
        assert_eq!(reader.decode_count(), 1);
        // Rows 4..11 span chunks 0..=2; chunk 1 is already cached.
        reader.read_region(&[4..11, 0..8]).unwrap();
        assert_eq!(reader.decode_count(), 3);
        let stats = reader.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 3);
    }

    #[test]
    fn corrupt_chunk_fails_checksum_not_codec() {
        let (_, bytes) = store_bytes(&[12, 6], 4);
        let parsed = crate::format::parse_store(&bytes).unwrap();
        let victim = parsed.payload.start + parsed.index.entries[1].offset + 4;
        let mut bad = bytes.clone();
        bad[victim] ^= 0x40;
        let reader = ChunkStoreReader::from_bytes(bad).unwrap();
        // Chunk 0 is untouched and decodes fine.
        assert!(reader.read_region(&[0..4, 0..6]).is_ok());
        // Chunk 1's CRC catches the flip before the codec runs.
        assert!(matches!(
            reader.read_region(&[4..8, 0..6]),
            Err(StoreError::Checksum { chunk: 1 })
        ));
    }

    #[test]
    fn lying_index_rejected_at_open() {
        let (_, bytes) = store_bytes(&[12, 6], 4);
        let parsed = crate::format::parse_store(&bytes).unwrap();
        // Shift chunk 1's offset/len pair while keeping the index
        // internally contiguous: grow entry 0 by 1 byte, shrink entry 1.
        let mut bad = bytes.clone();
        let name_len = parsed.index.name.len();
        let mut pos = 4 + 1 + 2 + name_len + 2;
        for (k, v) in &parsed.index.attrs {
            pos += 2 + k.len() + 2 + v.len();
        }
        pos += 1;
        for (n, _) in parsed.index.dim_names.iter().zip(&parsed.index.dims) {
            pos += 2 + n.len() + 8;
        }
        pos += 1 + 8 + 4; // flags, chunk_len, n_chunks
        let e0_len_pos = pos + 8;
        let e1_off_pos = pos + 20;
        let e1_len_pos = pos + 28;
        let bump = |b: &mut [u8], at: usize, delta: i64| {
            let mut v = u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
            v = v.wrapping_add(delta as u64);
            b[at..at + 8].copy_from_slice(&v.to_le_bytes());
        };
        bump(&mut bad, e0_len_pos, 1);
        bump(&mut bad, e1_off_pos, 1);
        bump(&mut bad, e1_len_pos, -1);
        assert!(matches!(
            ChunkStoreReader::from_bytes(bad),
            Err(StoreError::Corrupt("index disagrees with offset table"))
        ));
    }

    #[test]
    fn bad_regions_are_errors() {
        let (_, bytes) = store_bytes(&[10, 4], 4);
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        assert!(matches!(
            reader.read_region(&[0..10]),
            Err(StoreError::BadRegion("rank mismatch"))
        ));
        assert!(matches!(
            reader.read_region(&[3..3, 0..4]),
            Err(StoreError::BadRegion("empty range"))
        ));
        assert!(matches!(
            reader.read_region(&[0..11, 0..4]),
            Err(StoreError::BadRegion("range exceeds extent"))
        ));
    }

    #[test]
    fn metadata_surfaces_through_reader() {
        let g = smooth(&[9, 5]);
        let mut ds = Dataset::new("pr", g, None);
        ds.attrs.push(("units".into(), "mm/day".into()));
        let cfg = PipelineConfig::default_for(2);
        let bytes = pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, 3, 1).unwrap();
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.name(), "pr");
        assert_eq!(reader.dims(), &[9, 5]);
        assert_eq!(reader.n_chunks(), 3);
        assert_eq!(reader.chunk_len(), 3);
        assert_eq!(reader.attrs(), &[("units".into(), "mm/day".into())]);
        assert!(reader.mask().is_none());
    }
}
