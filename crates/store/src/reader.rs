//! Random-access reads over a CZS store, through a pluggable storage
//! backend.
//!
//! [`ChunkStoreReader`] serves region queries by decoding only the slabs a
//! query intersects. Bytes come through a [`cliz_storage::ReadableStorage`]
//! backend — a local file, a memory buffer, or an HTTP range endpoint —
//! never through direct `std::fs` access:
//!
//! * **Open** fetches a small prefix (doubling on truncation) and parses
//!   the store metadata and the CLZC container header out of it, then
//!   cross-checks the store index against the container's own offset
//!   table. No payload bytes are read until a query needs them.
//! * **`chunk(i)`** range-reads exactly that chunk's bytes, CRC-checks
//!   them, and decodes under the per-chunk stampede lock.
//! * **`read_region`** probes the cache for every intersected chunk, then
//!   plans the misses through the range-coalescing planner
//!   ([`cliz_storage::coalesce`]): adjacent or near-adjacent chunk ranges
//!   (gap ≤ [`DEFAULT_COALESCE_GAP`]) merge into single backend gets, so
//!   k contiguous cold chunks cost one round trip, not k.
//!
//! The reader is `Sync`: concurrent readers share one decoded-chunk LRU
//! cache, and a per-chunk decode lock guarantees a cold chunk is
//! decompressed exactly once no matter how many threads race for it:
//!
//! 1. probe the cache (records hit/miss);
//! 2. on miss, fetch the chunk's bytes (coalesced when part of a region);
//! 3. take that chunk's decode mutex and re-probe quietly — a racing
//!    thread may have decoded while we waited;
//! 4. verify the chunk's CRC32, decode into a pooled [`ScratchArena`], and
//!    publish the `Arc` into the cache.
//!
//! The decode counter counts step 4 only, so tests can assert that a query
//! touched exactly the chunks its row range intersects and nothing else.

use crate::cache::{CacheStats, ChunkCache};
use crate::checksum::crc32;
use crate::error::StoreError;
use crate::format::{parse_store_prefix, StoreIndex, StoreMeta};
use crate::sync::{lock_or_recover, AtomicU64, Mutex, MutexGuard, Ordering};
use cliz_core::{
    decompress_chunk_blob_arena, read_header_prefix, ChunkIndex, ChunkedHeader, ClizError,
    ScratchArena,
};
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_storage::{coalesce, FileBackend, MemBackend, RangeItem, ReadableStorage, StorageError};
use std::collections::HashMap;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Default decoded-chunk cache budget: 64 MiB.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// Default coalescing gap: misses whose byte ranges are separated by at
/// most this many bytes (e.g. by a chunk that is already cached) are
/// fetched in one backend get. 64 KiB trades at most that much wasted
/// transfer for one fewer round trip — the right trade everywhere except
/// pathologically slow links.
pub const DEFAULT_COALESCE_GAP: u64 = 64 << 10;

/// First metadata prefix fetched at open; doubled until the store header
/// parses (stores with big indexes or masks need more than one round).
const OPEN_PREFIX_BYTES: u64 = 64 << 10;

/// Reader-level counters: decode work plus backend traffic plus cache
/// counters.
#[derive(Clone, Copy, Debug)]
pub struct StoreStats {
    /// Chunks decompressed (cache misses that did real work).
    pub decodes: u64,
    /// Nanoseconds spent inside the chunk codec (sums across threads).
    pub decode_ns: u64,
    /// Backend `get` calls issued, after coalescing.
    pub backend_gets: u64,
    /// Bytes fetched from the backend.
    pub backend_bytes: u64,
    pub cache: CacheStats,
}

/// Concurrent random-access reader over a CZS store behind a storage
/// backend.
pub struct ChunkStoreReader {
    storage: Arc<dyn ReadableStorage>,
    index: StoreIndex,
    /// Absolute byte range of the CLZC payload within the object.
    payload: Range<u64>,
    header: ChunkedHeader,
    geometry: ChunkIndex,
    mask: Option<MaskMap>,
    /// Mask flags as a grid, the shape the chunk decoder slices per-slab
    /// mask views from.
    mask_grid: Option<Grid<bool>>,
    cache: ChunkCache,
    /// One decode lock per chunk; holders are decoding that chunk.
    locks: Vec<Mutex<()>>,
    /// Pool of scratch arenas so concurrent decodes reuse buffers without
    /// a shared bottleneck.
    arenas: Mutex<Vec<ScratchArena>>,
    decodes: AtomicU64,
    decode_ns: AtomicU64,
    backend_gets: AtomicU64,
    backend_bytes: AtomicU64,
    coalesce_gap: u64,
}

// The whole point of the reader: shared across scoped threads.
const _: () = {
    const fn require_sync<T: Sync + Send>() {}
    require_sync::<ChunkStoreReader>()
};

impl ChunkStoreReader {
    /// Opens a store from bytes with the [`DEFAULT_CACHE_BUDGET`].
    pub fn from_bytes(raw: Vec<u8>) -> Result<Self, StoreError> {
        Self::with_cache_budget(raw, DEFAULT_CACHE_BUDGET)
    }

    /// Opens a store file with the [`DEFAULT_CACHE_BUDGET`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let backend = FileBackend::open(path.as_ref())?;
        Self::from_storage(Arc::new(backend), DEFAULT_CACHE_BUDGET)
    }

    /// Opens a store from bytes with an explicit cache byte budget.
    pub fn with_cache_budget(raw: Vec<u8>, budget: usize) -> Result<Self, StoreError> {
        Self::from_storage(Arc::new(MemBackend::new(raw)), budget)
    }

    /// Opens a store through any [`ReadableStorage`] backend with the
    /// [`DEFAULT_COALESCE_GAP`].
    pub fn from_storage(
        storage: Arc<dyn ReadableStorage>,
        budget: usize,
    ) -> Result<Self, StoreError> {
        Self::from_storage_with(storage, budget, DEFAULT_COALESCE_GAP)
    }

    /// Opens a store through a backend with an explicit coalescing gap.
    ///
    /// Open-time validation range-reads a metadata prefix (doubling on
    /// truncation until the header parses), then parses both headers and
    /// cross-checks the store index against the CLZC container's own
    /// offset table, so a store whose index lies about chunk locations is
    /// rejected before any region query runs. Chunk CRCs are verified
    /// lazily, per decode. No payload bytes beyond the container header
    /// are fetched at open.
    pub fn from_storage_with(
        storage: Arc<dyn ReadableStorage>,
        budget: usize,
        coalesce_gap: u64,
    ) -> Result<Self, StoreError> {
        let size = storage.size()?;
        let full_len =
            usize::try_from(size).map_err(|_| StoreError::Corrupt("implausible size"))?;
        let gets = AtomicU64::new(0);
        let bytes_fetched = AtomicU64::new(0);
        let fetch = |range: Range<u64>| -> Result<Vec<u8>, StoreError> {
            let want = (range.end - range.start) as usize;
            let got = storage.get(range)?;
            gets.fetch_add(1, Ordering::Relaxed);
            bytes_fetched.fetch_add(got.len() as u64, Ordering::Relaxed);
            if got.len() != want {
                return Err(StoreError::Storage(StorageError::ShortRead {
                    expected: want,
                    got: got.len(),
                }));
            }
            Ok(got)
        };

        // Metadata prefix loop: fetch, parse, double on truncation.
        let mut take = OPEN_PREFIX_BYTES.min(size);
        let meta: StoreMeta = loop {
            let prefix = fetch(0..take)?;
            match parse_store_prefix(&prefix, full_len) {
                Ok(m) => break m,
                Err(StoreError::Corrupt("truncated")) if take < size => {
                    take = take.saturating_mul(2).min(size);
                }
                Err(e) => return Err(e),
            }
        };
        let payload_start = meta.payload_start as u64;
        let payload_len = meta.payload_len as u64;
        // parse_store_prefix already rejected payloads past the object
        // end; anything *after* the payload is not part of the format.
        if payload_start + payload_len != size {
            return Err(StoreError::Corrupt("trailing bytes after payload"));
        }

        // Container header prefix loop over the payload range.
        let mut take = OPEN_PREFIX_BYTES.min(payload_len);
        let header: ChunkedHeader = loop {
            let prefix = fetch(payload_start..payload_start + take)?;
            match read_header_prefix(&prefix, meta.payload_len) {
                Ok(h) => break h,
                Err(ClizError::Truncated) if take < payload_len => {
                    take = take.saturating_mul(2).min(payload_len);
                }
                Err(e) => return Err(e.into()),
            }
        };

        let index = meta.index;
        if header.dims != index.dims {
            return Err(StoreError::Corrupt("container dims disagree with index"));
        }
        if header.chunk_len != index.chunk_len {
            return Err(StoreError::Corrupt(
                "container chunk length disagrees with index",
            ));
        }
        if header.n_chunks != index.entries.len() {
            return Err(StoreError::Corrupt(
                "container chunk count disagrees with index",
            ));
        }
        for (i, e) in index.entries.iter().enumerate() {
            let start = header.offsets.get(i).copied();
            let end = header.offsets.get(i + 1).copied();
            if start != Some(e.offset) || end != e.offset.checked_add(e.len) {
                return Err(StoreError::Corrupt("index disagrees with offset table"));
            }
        }
        let geometry = header.index()?;
        let mask_grid = meta
            .mask
            .as_ref()
            .map(|m| Grid::from_vec(m.shape().clone(), m.as_slice().to_vec()));
        let n = index.entries.len();
        Ok(Self {
            storage,
            index,
            payload: payload_start..payload_start + payload_len,
            header,
            geometry,
            mask: meta.mask,
            mask_grid,
            cache: ChunkCache::new(budget),
            locks: (0..n).map(|_| Mutex::new(())).collect(),
            arenas: Mutex::new(Vec::new()),
            decodes: AtomicU64::new(0),
            decode_ns: AtomicU64::new(0),
            backend_gets: gets,
            backend_bytes: bytes_fetched,
            coalesce_gap,
        })
    }

    /// Variable name.
    pub fn name(&self) -> &str {
        &self.index.name
    }

    /// Dataset extents, slowest axis first.
    pub fn dims(&self) -> &[usize] {
        &self.index.dims
    }

    /// Dimension names, parallel to [`dims`](Self::dims).
    pub fn dim_names(&self) -> &[String] {
        &self.index.dim_names
    }

    /// String attributes in file order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.index.attrs
    }

    /// Slab thickness along axis 0.
    pub fn chunk_len(&self) -> usize {
        self.index.chunk_len
    }

    /// Number of slabs in the store.
    pub fn n_chunks(&self) -> usize {
        self.index.entries.len()
    }

    /// The validity mask, if the dataset has one.
    pub fn mask(&self) -> Option<&MaskMap> {
        self.mask.as_ref()
    }

    /// Chunks decompressed so far (not counting cache hits).
    pub fn decode_count(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// Reader, backend, and cache counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            decodes: self.decode_count(),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            backend_gets: self.backend_gets.load(Ordering::Relaxed),
            backend_bytes: self.backend_bytes.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    fn lock_arena(&self) -> MutexGuard<'_, Vec<ScratchArena>> {
        lock_or_recover(&self.arenas)
    }

    /// One counted, length-checked backend get. Every payload byte the
    /// reader ever sees flows through here.
    fn fetch(&self, range: Range<u64>) -> Result<Vec<u8>, StoreError> {
        let want = (range.end.saturating_sub(range.start)) as usize;
        let got = self.storage.get(range)?;
        self.backend_gets.fetch_add(1, Ordering::Relaxed);
        self.backend_bytes.fetch_add(got.len() as u64, Ordering::Relaxed);
        if got.len() != want {
            // A backend that acknowledges a range and then under-delivers
            // (truncated file, lying server, injected fault) is a contract
            // violation, surfaced typed rather than decoded as garbage.
            return Err(StoreError::Storage(StorageError::ShortRead {
                expected: want,
                got: got.len(),
            }));
        }
        Ok(got)
    }

    /// Absolute byte range of chunk `i` within the storage object.
    fn chunk_byte_range(&self, i: usize) -> Result<Range<u64>, StoreError> {
        let entry = self
            .index
            .entries
            .get(i)
            .copied()
            .ok_or(StoreError::Corrupt("index entry missing"))?;
        let end = entry
            .offset
            .checked_add(entry.len)
            .ok_or(StoreError::Corrupt("index entry overflows"))?;
        let abs_start = self
            .payload
            .start
            .checked_add(entry.offset as u64)
            .ok_or(StoreError::Corrupt("index entry overflows"))?;
        let abs_end = self
            .payload
            .start
            .checked_add(end as u64)
            .ok_or(StoreError::Corrupt("index entry overflows"))?;
        Ok(abs_start..abs_end)
    }

    /// CRC-check and decode chunk `i` from its fetched blob. Called only
    /// under the chunk's decode lock (via the cache's stampede protocol).
    fn decode_blob(&self, i: usize, blob: &[u8]) -> Result<Arc<Grid<f32>>, StoreError> {
        let entry = self
            .index
            .entries
            .get(i)
            .copied()
            .ok_or(StoreError::Corrupt("index entry missing"))?;
        if blob.len() != entry.len {
            return Err(StoreError::Storage(StorageError::ShortRead {
                expected: entry.len,
                got: blob.len(),
            }));
        }
        if crc32(blob) != entry.checksum {
            return Err(StoreError::Checksum { chunk: i });
        }
        let mut arena = self.lock_arena().pop().unwrap_or_default();
        let t0 = Instant::now();
        let decoded =
            decompress_chunk_blob_arena(blob, &self.header, self.mask_grid.as_ref(), i, &mut arena);
        self.decode_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.lock_arena().push(arena);
        let grid = Arc::new(decoded?);
        self.decodes.fetch_add(1, Ordering::Relaxed);
        Ok(grid)
    }

    /// Returns decoded chunk `i`, from cache when resident. On a cold
    /// chunk exactly that chunk's byte range is fetched, its CRC32 is
    /// verified against the store index before the codec sees a byte, and
    /// the stampede protocol in [`ChunkCache::get_or_decode`] guarantees
    /// one decode however many threads race.
    pub fn chunk(&self, i: usize) -> Result<Arc<Grid<f32>>, StoreError> {
        let lock = self
            .locks
            .get(i)
            .ok_or(StoreError::BadRegion("chunk index out of range"))?;
        self.cache.get_or_decode(i, lock, || {
            let blob = self.fetch(self.chunk_byte_range(i)?)?;
            self.decode_blob(i, &blob)
        })
    }

    /// Probe the cache for every chunk in `needed`, then fetch the misses
    /// in coalesced backend gets and decode them (once each, across
    /// racing threads). Returns the decoded grid per needed chunk.
    fn gather_chunks(
        &self,
        needed: &[usize],
    ) -> Result<HashMap<usize, Arc<Grid<f32>>>, StoreError> {
        let mut chunks: HashMap<usize, Arc<Grid<f32>>> = HashMap::with_capacity(needed.len());
        let mut missing: Vec<RangeItem> = Vec::new();
        for &ci in needed {
            match self.cache.get(ci) {
                Some(g) => {
                    chunks.insert(ci, g);
                }
                None => missing.push(RangeItem {
                    id: ci,
                    range: self.chunk_byte_range(ci)?,
                }),
            }
        }
        for get in coalesce(&missing, self.coalesce_gap) {
            let fetched = self.fetch(get.range.clone())?;
            for (ci, sub) in get.items {
                let view = fetched
                    .get(sub)
                    .ok_or(StoreError::Corrupt("coalesced fetch shorter than plan"))?;
                let lock = self
                    .locks
                    .get(ci)
                    .ok_or(StoreError::BadRegion("chunk index out of range"))?;
                // The probe above already counted this chunk's miss; the
                // quiet variant re-checks under the lock without
                // double-counting, in case a racing reader published it
                // while we were fetching.
                let grid = self
                    .cache
                    .decode_quiet(ci, lock, || self.decode_blob(ci, view))?;
                chunks.insert(ci, grid);
            }
        }
        Ok(chunks)
    }

    /// Reads the axis-aligned region `ranges` (one half-open range per
    /// dimension), decoding only the slabs whose rows intersect
    /// `ranges[0]`. Cold chunks are fetched in coalesced backend gets —
    /// k contiguous missing chunks cost one `get`, not k. Returns a grid
    /// shaped by the range lengths.
    pub fn read_region(&self, ranges: &[Range<usize>]) -> Result<Grid<f32>, StoreError> {
        let dims = self.dims().to_vec();
        if ranges.len() != dims.len() {
            return Err(StoreError::BadRegion("rank mismatch"));
        }
        for (r, &d) in ranges.iter().zip(&dims) {
            if r.start >= r.end {
                return Err(StoreError::BadRegion("empty range"));
            }
            if r.end > d {
                return Err(StoreError::BadRegion("range exceeds extent"));
            }
        }
        let lens: Vec<usize> = ranges.iter().map(Range::len).collect();
        let trailing: usize = lens.iter().skip(1).product();
        let full_trailing = ranges
            .iter()
            .zip(&dims)
            .skip(1)
            .all(|(r, &d)| r.start == 0 && r.end == d);
        let mut out = vec![0f32; lens.iter().product()];

        let row0 = ranges
            .first()
            .cloned()
            .ok_or(StoreError::BadRegion("rank mismatch"))?;
        let needed: Vec<usize> = self.geometry.intersecting(&row0).collect();
        let chunks = self.gather_chunks(&needed)?;
        for ci in needed {
            let rows = self
                .geometry
                .rows(ci)
                .ok_or(StoreError::Corrupt("chunk geometry out of range"))?;
            let isect = row0.start.max(rows.start)..row0.end.min(rows.end);
            let chunk = chunks
                .get(&ci)
                .ok_or(StoreError::Corrupt("chunk missing after gather"))?;
            let dst_start = (isect.start - row0.start) * trailing;
            let dst = out
                .get_mut(dst_start..dst_start + isect.len() * trailing)
                .ok_or(StoreError::Corrupt("region assembly out of bounds"))?;
            if full_trailing {
                // Trailing dims are read whole: the chunk's contribution is
                // one contiguous run of rows.
                let src_start = (isect.start - rows.start) * self.geometry.slab_stride();
                let src = chunk
                    .as_slice()
                    .get(src_start..src_start + isect.len() * trailing)
                    .ok_or(StoreError::Corrupt("chunk shorter than its geometry"))?;
                dst.copy_from_slice(src);
            } else {
                let mut start = vec![isect.start - rows.start];
                let mut size = vec![isect.len()];
                for (r, l) in ranges.iter().zip(&lens).skip(1) {
                    start.push(r.start);
                    size.push(*l);
                }
                let block = chunk.block(&start, &size);
                dst.copy_from_slice(block.as_slice());
            }
        }
        Ok(Grid::from_vec(Shape::new(&lens), out))
    }

    /// Decodes the entire dataset (a region query over every extent).
    pub fn read_all(&self) -> Result<Grid<f32>, StoreError> {
        let ranges: Vec<Range<usize>> = self.dims().iter().map(|&d| 0..d).collect();
        self.read_region(&ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caf::Dataset;
    use crate::pack::pack_store;
    use cliz_core::config::PipelineConfig;
    use cliz_quant::ErrorBound;
    use cliz_storage::{Fault, FlakyBackend};

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.23 * (k + 1) as f64).sin() * 4.0;
            }
            v as f32
        })
    }

    fn store_bytes(dims: &[usize], chunk_len: usize) -> (Dataset, Vec<u8>) {
        let ds = Dataset::new("tas", smooth(dims), None);
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, chunk_len, 1).unwrap();
        (ds, bytes)
    }

    #[test]
    fn region_matches_full_decode() {
        let (_, bytes) = store_bytes(&[20, 10, 6], 5);
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        let full = reader.read_all().unwrap();
        let region = reader.read_region(&[7..14, 2..9, 1..5]).unwrap();
        assert_eq!(region.shape().dims(), &[7, 7, 4]);
        for t in 0..7 {
            for y in 0..7 {
                for x in 0..4 {
                    assert_eq!(
                        region.get(&[t, y, x]),
                        full.get(&[t + 7, y + 2, x + 1]),
                        "mismatch at [{t},{y},{x}]"
                    );
                }
            }
        }
    }

    #[test]
    fn decode_counter_tracks_only_intersected_chunks() {
        let (_, bytes) = store_bytes(&[20, 8], 5); // 4 chunks of 5 rows
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        // Rows 6..9 live entirely in chunk 1.
        reader.read_region(&[6..9, 0..8]).unwrap();
        assert_eq!(reader.decode_count(), 1);
        // Rows 4..11 span chunks 0..=2; chunk 1 is already cached.
        reader.read_region(&[4..11, 0..8]).unwrap();
        assert_eq!(reader.decode_count(), 3);
        let stats = reader.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 3);
    }

    #[test]
    fn region_over_contiguous_chunks_is_one_coalesced_get() {
        let (_, bytes) = store_bytes(&[20, 8], 5); // 4 chunks of 5 rows
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        let after_open = reader.stats().backend_gets;
        // All 4 chunks are cold and byte-contiguous: the planner must
        // merge them into a single backend get, not issue 4.
        reader.read_all().unwrap();
        let stats = reader.stats();
        assert_eq!(
            stats.backend_gets - after_open,
            1,
            "k contiguous cold chunks must cost exactly 1 coalesced get"
        );
        assert_eq!(reader.decode_count(), 4);
        // Warm repeat: all hits, no new backend traffic at all.
        let bytes_before = stats.backend_bytes;
        reader.read_all().unwrap();
        let warm = reader.stats();
        assert_eq!(warm.backend_gets - after_open, 1);
        assert_eq!(warm.backend_bytes, bytes_before);
    }

    #[test]
    fn cached_hole_reads_through_within_gap_and_splits_at_zero_gap() {
        let (_, bytes) = store_bytes(&[20, 8], 5);
        // Default gap (64 KiB) dwarfs any chunk here: warming chunk 1
        // first leaves a hole the planner reads straight through.
        let reader = ChunkStoreReader::from_bytes(bytes.clone()).unwrap();
        reader.read_region(&[6..9, 0..8]).unwrap(); // warm chunk 1
        let before = reader.stats().backend_gets;
        reader.read_all().unwrap(); // misses 0, 2, 3 around the cached 1
        assert_eq!(reader.stats().backend_gets - before, 1);

        // Gap 0: the hole at chunk 1 splits the plan into two gets.
        let reader =
            ChunkStoreReader::from_storage_with(
                Arc::new(MemBackend::new(bytes)),
                DEFAULT_CACHE_BUDGET,
                0,
            )
            .unwrap();
        reader.read_region(&[6..9, 0..8]).unwrap();
        let before = reader.stats().backend_gets;
        reader.read_all().unwrap();
        assert_eq!(reader.stats().backend_gets - before, 2);
    }

    #[test]
    fn single_chunk_query_fetches_only_that_chunk() {
        let (_, bytes) = store_bytes(&[20, 8], 5);
        let total = bytes.len() as u64;
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        let open_stats = reader.stats();
        reader.read_region(&[6..9, 0..8]).unwrap(); // chunk 1 only
        let stats = reader.stats();
        assert_eq!(stats.backend_gets - open_stats.backend_gets, 1);
        // The fetch was one chunk's bytes, nowhere near the whole store.
        assert!(stats.backend_bytes - open_stats.backend_bytes < total);
    }

    #[test]
    fn transient_backend_failure_is_typed_not_panic() {
        let (_, bytes) = store_bytes(&[20, 8], 5);
        // Open performs 2 gets (metadata + container header); the third
        // get — the first region fetch — fails transiently.
        let backend = FlakyBackend::new(
            MemBackend::new(bytes),
            vec![Fault::Ok, Fault::Ok, Fault::Transient],
        );
        let reader =
            ChunkStoreReader::from_storage(Arc::new(backend), DEFAULT_CACHE_BUDGET).unwrap();
        let err = reader.read_region(&[6..9, 0..8]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Storage(StorageError::Transient(_))
        ));
        // The failure published nothing: a clean retry succeeds.
        assert!(reader.read_region(&[6..9, 0..8]).is_ok());
        assert_eq!(reader.decode_count(), 1);
    }

    #[test]
    fn short_read_mid_region_is_typed_not_panic() {
        let (_, bytes) = store_bytes(&[20, 8], 5);
        let backend = FlakyBackend::new(
            MemBackend::new(bytes),
            vec![Fault::Ok, Fault::Ok, Fault::ShortRead(10)],
        );
        let reader =
            ChunkStoreReader::from_storage(Arc::new(backend), DEFAULT_CACHE_BUDGET).unwrap();
        let err = reader.read_all().unwrap_err();
        assert!(matches!(
            err,
            StoreError::Storage(StorageError::ShortRead { .. })
        ));
    }

    #[test]
    fn eof_truncated_object_fails_open_typed() {
        let (_, bytes) = store_bytes(&[20, 8], 5);
        // The object claims its full size but every read is clipped as if
        // the file were cut off right after the metadata.
        let parsed = crate::format::parse_store(&bytes).unwrap();
        let cut = parsed.payload.start as u64 + 8;
        let backend = FlakyBackend::new(
            MemBackend::new(bytes),
            vec![Fault::TruncateAt(cut), Fault::TruncateAt(cut), Fault::TruncateAt(cut)],
        );
        assert!(matches!(
            ChunkStoreReader::from_storage(Arc::new(backend), DEFAULT_CACHE_BUDGET).err(),
            Some(StoreError::Storage(StorageError::ShortRead { .. }))
        ));
    }

    #[test]
    fn corrupt_chunk_fails_checksum_not_codec() {
        let (_, bytes) = store_bytes(&[12, 6], 4);
        let parsed = crate::format::parse_store(&bytes).unwrap();
        let victim = parsed.payload.start + parsed.index.entries[1].offset + 4;
        let mut bad = bytes.clone();
        bad[victim] ^= 0x40;
        let reader = ChunkStoreReader::from_bytes(bad).unwrap();
        // Chunk 0 is untouched and decodes fine.
        assert!(reader.read_region(&[0..4, 0..6]).is_ok());
        // Chunk 1's CRC catches the flip before the codec runs.
        assert!(matches!(
            reader.read_region(&[4..8, 0..6]),
            Err(StoreError::Checksum { chunk: 1 })
        ));
    }

    #[test]
    fn lying_index_rejected_at_open() {
        let (_, bytes) = store_bytes(&[12, 6], 4);
        let parsed = crate::format::parse_store(&bytes).unwrap();
        // Shift chunk 1's offset/len pair while keeping the index
        // internally contiguous: grow entry 0 by 1 byte, shrink entry 1.
        let mut bad = bytes.clone();
        let name_len = parsed.index.name.len();
        let mut pos = 4 + 1 + 2 + name_len + 2;
        for (k, v) in &parsed.index.attrs {
            pos += 2 + k.len() + 2 + v.len();
        }
        pos += 1;
        for (n, _) in parsed.index.dim_names.iter().zip(&parsed.index.dims) {
            pos += 2 + n.len() + 8;
        }
        pos += 1 + 8 + 4; // flags, chunk_len, n_chunks
        let e0_len_pos = pos + 8;
        let e1_off_pos = pos + 20;
        let e1_len_pos = pos + 28;
        let bump = |b: &mut [u8], at: usize, delta: i64| {
            let mut v = u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
            v = v.wrapping_add(delta as u64);
            b[at..at + 8].copy_from_slice(&v.to_le_bytes());
        };
        bump(&mut bad, e0_len_pos, 1);
        bump(&mut bad, e1_off_pos, 1);
        bump(&mut bad, e1_len_pos, -1);
        assert!(matches!(
            ChunkStoreReader::from_bytes(bad),
            Err(StoreError::Corrupt("index disagrees with offset table"))
        ));
    }

    #[test]
    fn bad_regions_are_errors() {
        let (_, bytes) = store_bytes(&[10, 4], 4);
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        assert!(matches!(
            reader.read_region(&[0..10]),
            Err(StoreError::BadRegion("rank mismatch"))
        ));
        assert!(matches!(
            reader.read_region(&[3..3, 0..4]),
            Err(StoreError::BadRegion("empty range"))
        ));
        assert!(matches!(
            reader.read_region(&[0..11, 0..4]),
            Err(StoreError::BadRegion("range exceeds extent"))
        ));
    }

    #[test]
    fn metadata_surfaces_through_reader() {
        let g = smooth(&[9, 5]);
        let mut ds = Dataset::new("pr", g, None);
        ds.attrs.push(("units".into(), "mm/day".into()));
        let cfg = PipelineConfig::default_for(2);
        let bytes = pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, 3, 1).unwrap();
        let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.name(), "pr");
        assert_eq!(reader.dims(), &[9, 5]);
        assert_eq!(reader.n_chunks(), 3);
        assert_eq!(reader.chunk_len(), 3);
        assert_eq!(reader.attrs(), &[("units".into(), "mm/day".into())]);
        assert!(reader.mask().is_none());
    }
}
