//! Building CZS stores: compress a [`Dataset`] into a CLZC payload and wrap
//! it with the per-slab index the random-access reader needs.

use crate::caf::Dataset;
use crate::checksum::crc32;
use crate::error::StoreError;
use crate::format::{self, IndexEntry};
use cliz_core::config::PipelineConfig;
use cliz_core::{compress_chunked_with_threads, read_header};
use cliz_quant::ErrorBound;
use std::io::Write;
use std::path::Path;

/// Compresses `ds` into an in-memory CZS store.
///
/// The payload is one CLZC container (slabs of `chunk_len` rows along axis
/// 0, compressed with `threads` workers; `0` means all cores). The store
/// index is derived from the container's own offset table, with a CRC32 per
/// chunk so the reader can verify integrity before decoding.
pub fn pack_store(
    ds: &Dataset,
    bound: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
    threads: usize,
) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    pack_store_to(&mut out, ds, bound, config, chunk_len, threads)?;
    Ok(out)
}

/// [`pack_store`] writing to an arbitrary sink.
pub fn pack_store_to(
    w: &mut impl Write,
    ds: &Dataset,
    bound: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
    threads: usize,
) -> Result<(), StoreError> {
    ds.validate()?;
    let blob = compress_chunked_with_threads(
        &ds.data,
        ds.mask.as_ref(),
        bound,
        config,
        chunk_len,
        threads,
    )?;
    let header = read_header(&blob)?;
    let n_chunks = header.n_chunks;
    if header.offsets.len() != n_chunks.saturating_add(1) {
        return Err(StoreError::Corrupt("offset table length mismatch"));
    }
    let mut entries = Vec::with_capacity(n_chunks);
    for i in 0..n_chunks {
        let start = header
            .offsets
            .get(i)
            .copied()
            .ok_or(StoreError::Corrupt("offset table too short"))?;
        let end = header
            .offsets
            .get(i + 1)
            .copied()
            .ok_or(StoreError::Corrupt("offset table too short"))?;
        if start > end || end > blob.len() {
            return Err(StoreError::Corrupt("offset table not monotonic"));
        }
        let chunk = blob
            .get(start..end)
            .ok_or(StoreError::Corrupt("offset past container end"))?;
        entries.push(IndexEntry {
            offset: start,
            len: end - start,
            checksum: crc32(chunk),
        });
    }
    let index = format::index_for(ds, chunk_len, entries);
    format::write_store(w, &index, ds.mask.as_ref(), &blob)
}

/// Packs `ds` and writes the store to `path`.
pub fn save_store(
    path: impl AsRef<Path>,
    ds: &Dataset,
    bound: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
    threads: usize,
) -> Result<(), StoreError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    pack_store_to(&mut w, ds, bound, config, chunk_len, threads)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_store;
    use cliz_grid::{Grid, MaskMap, Shape};

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.17 * (k + 1) as f64).sin() * 2.0;
            }
            v as f32
        })
    }

    #[test]
    fn packed_store_parses_and_index_matches_container() {
        let ds = Dataset::new("tas", smooth(&[14, 9]), None);
        let cfg = PipelineConfig::default_for(2);
        let out = pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, 4, 1).unwrap();
        let parsed = parse_store(&out).unwrap();
        assert_eq!(parsed.index.dims, vec![14, 9]);
        assert_eq!(parsed.index.entries.len(), 4); // ceil(14/4)
        let container = &out[parsed.payload.clone()];
        let header = read_header(container).unwrap();
        for (i, e) in parsed.index.entries.iter().enumerate() {
            assert_eq!(e.offset, header.offsets[i]);
            assert_eq!(e.offset + e.len, header.offsets[i + 1]);
            assert_eq!(e.checksum, crc32(&container[e.offset..e.offset + e.len]));
        }
    }

    #[test]
    fn masked_pack_sets_flag_and_stores_bits() {
        let g = smooth(&[8, 6]);
        let valid: Vec<bool> = (0..48).map(|i| i % 5 != 0).collect();
        let mask = MaskMap::from_flags(Shape::new(&[8, 6]), valid);
        let ds = Dataset::new("sst", g, Some(mask.clone()));
        let cfg = PipelineConfig::default_for(2);
        let out = pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, 3, 1).unwrap();
        let parsed = parse_store(&out).unwrap();
        assert!(parsed.index.has_mask);
        assert_eq!(parsed.mask.unwrap().as_slice(), mask.as_slice());
    }

    #[test]
    fn invalid_dataset_is_an_error_not_a_panic() {
        let mut ds = Dataset::new("x", smooth(&[6, 4]), None);
        ds.dim_names.pop();
        let cfg = PipelineConfig::default_for(2);
        assert!(matches!(
            pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, 2, 1),
            Err(StoreError::Invalid(_))
        ));
    }
}
