//! Synchronization primitives for the store, switchable to model checking.
//!
//! The store's concurrent path (the decoded-chunk cache and the reader's
//! stampede protocol) imports its primitives from this module instead of
//! `std::sync`, so a build with `--cfg loom` swaps in the `cliz-loom`
//! model checker's instrumented equivalents and the loom tests in
//! `tests/loom_models.rs` explore thread interleavings over the *real*
//! cache code, not a re-implementation. A normal build re-exports the
//! `std` types unchanged, so there is no runtime cost.
//!
//! This module is also the single home of the store's lock-poisoning
//! policy: [`lock_or_recover`]. Every mutex in the store protects state
//! that is consistent between statements (the cache map only ever holds
//! complete entries; the arena pool only complete arenas), so a peer
//! thread's panic cannot leave torn data behind and the right response to
//! poison is to keep going with the inner value.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::{Mutex, MutexGuard};

/// Locks `m`, absorbing poison.
///
/// A poisoned mutex means a peer thread panicked while holding the guard.
/// The store's invariant is that every critical section leaves its
/// protected state complete (entries are inserted whole, arenas pushed
/// whole), so recovery is always sound here — which is why this helper,
/// and not ad-hoc `unwrap_or_else(PoisonError::into_inner)` at each call
/// site, is the only poison handling in the crate.
pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}
