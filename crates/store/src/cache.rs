//! Decoded-chunk LRU cache with a byte budget.
//!
//! Decoded slabs are shared as `Arc<Grid<f32>>`, so an eviction never
//! invalidates a grid a reader is still holding — it only drops the cache's
//! reference. Recency is a monotonic tick stamped on every touch; eviction
//! removes the least-recently-used entry until the byte budget is met (the
//! most recent insert is always kept, even if it alone exceeds the budget,
//! so oversized chunks still flow through the cache instead of thrashing).
//!
//! All counters are atomics and the map is behind one mutex, so the cache
//! is safe to share across reader threads. Lock poisoning is absorbed: the
//! map only ever holds complete entries, so continuing after a peer panic
//! cannot observe a torn state.

use cliz_grid::Grid;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to satisfy the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub resident_entries: usize,
}

struct Entry {
    grid: Arc<Grid<f32>>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<usize, Entry>,
    bytes: usize,
    tick: u64,
}

/// Byte-budgeted LRU over decoded chunks, keyed by chunk index.
pub struct ChunkCache {
    inner: Mutex<Inner>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ChunkCache {
    /// Creates a cache that holds at most `budget_bytes` of decoded data.
    /// A budget of zero still caches the most recent chunk (see module
    /// docs); use a reader without warm reads if no caching is wanted.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `chunk`, recording a hit or miss and refreshing recency.
    pub fn get(&self, chunk: usize) -> Option<Arc<Grid<f32>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&chunk) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.grid))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up `chunk` without touching the hit/miss counters. Used for
    /// the double-check after taking a per-chunk decode lock, so one
    /// logical request never counts twice.
    pub fn peek(&self, chunk: usize) -> Option<Arc<Grid<f32>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&chunk).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.grid)
        })
    }

    /// Inserts a decoded chunk, evicting least-recently-used entries until
    /// the byte budget is satisfied. The entry just inserted is never its
    /// own eviction victim.
    pub fn insert(&self, chunk: usize, grid: Arc<Grid<f32>>) {
        let cost = grid.len().saturating_mul(std::mem::size_of::<f32>());
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            chunk,
            Entry {
                grid,
                bytes: cost,
                last_used: tick,
            },
        ) {
            // Replacing an entry (e.g. two racing decoders): net the bytes.
            inner.bytes = inner.bytes.saturating_sub(old.bytes);
        }
        inner.bytes = inner.bytes.saturating_add(cost);
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(&k, _)| k != chunk)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    if let Some(e) = inner.map.remove(&k) {
                        inner.bytes = inner.bytes.saturating_sub(e.bytes);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Snapshot of the counters and residency.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: inner.bytes,
            resident_entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    fn grid_of(n: usize, fill: f32) -> Arc<Grid<f32>> {
        Arc::new(Grid::filled(Shape::new(&[n]), fill))
    }

    #[test]
    fn hit_miss_and_recency() {
        let cache = ChunkCache::new(1 << 20);
        assert!(cache.get(0).is_none());
        cache.insert(0, grid_of(8, 1.0));
        assert!(cache.get(0).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_entries, 1);
        assert_eq!(s.resident_bytes, 32);
    }

    #[test]
    fn evicts_least_recently_used_within_budget() {
        // Budget fits exactly two 16-element (64-byte) grids.
        let cache = ChunkCache::new(128);
        cache.insert(0, grid_of(16, 0.0));
        cache.insert(1, grid_of(16, 1.0));
        assert!(cache.get(0).is_some()); // 0 is now more recent than 1
        cache.insert(2, grid_of(16, 2.0)); // must evict 1
        assert!(cache.get(1).is_none());
        assert!(cache.get(0).is_some());
        assert!(cache.get(2).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= 128);
    }

    #[test]
    fn oversized_entry_keeps_only_itself() {
        let cache = ChunkCache::new(16);
        cache.insert(0, grid_of(4, 0.0));
        cache.insert(1, grid_of(64, 1.0)); // 256 bytes alone
        let s = cache.stats();
        assert_eq!(s.resident_entries, 1);
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn eviction_does_not_invalidate_shared_arcs() {
        let cache = ChunkCache::new(64);
        cache.insert(0, grid_of(16, 7.0));
        let held = cache.get(0).expect("resident");
        cache.insert(1, grid_of(16, 8.0)); // evicts 0
        assert!(cache.get(0).is_none());
        assert_eq!(held.as_slice()[0], 7.0);
    }

    #[test]
    fn peek_does_not_count() {
        let cache = ChunkCache::new(1 << 20);
        cache.insert(3, grid_of(4, 0.0));
        assert!(cache.peek(3).is_some());
        assert!(cache.peek(4).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }
}
