//! Decoded-chunk LRU cache with a byte budget.
//!
//! Decoded slabs are shared as `Arc<Grid<f32>>`, so an eviction never
//! invalidates a grid a reader is still holding — it only drops the cache's
//! reference. Recency is a monotonic tick stamped on every touch; eviction
//! removes the least-recently-used entry until the byte budget is met (the
//! most recent insert is always kept, even if it alone exceeds the budget,
//! so oversized chunks still flow through the cache instead of thrashing).
//!
//! All counters are atomics and the map is behind one mutex, so the cache
//! is safe to share across reader threads. Lock poisoning is absorbed: the
//! map only ever holds complete entries, so continuing after a peer panic
//! cannot observe a torn state.

use crate::sync::{lock_or_recover, AtomicU64, Mutex, MutexGuard, Ordering};
use cliz_grid::Grid;
use std::collections::HashMap;
use std::sync::Arc;

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to satisfy the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub resident_entries: usize,
}

struct Entry {
    grid: Arc<Grid<f32>>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<usize, Entry>,
    bytes: usize,
    tick: u64,
}

/// Byte-budgeted LRU over decoded chunks, keyed by chunk index.
pub struct ChunkCache {
    inner: Mutex<Inner>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ChunkCache {
    /// Creates a cache that holds at most `budget_bytes` of decoded data.
    /// A budget of zero still caches the most recent chunk (see module
    /// docs); use a reader without warm reads if no caching is wanted.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        lock_or_recover(&self.inner)
    }

    /// Looks up `chunk`, recording a hit or miss and refreshing recency.
    pub fn get(&self, chunk: usize) -> Option<Arc<Grid<f32>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&chunk) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.grid))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up `chunk` without touching the hit/miss counters. Used for
    /// the double-check after taking a per-chunk decode lock, so one
    /// logical request never counts twice.
    pub fn peek(&self, chunk: usize) -> Option<Arc<Grid<f32>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&chunk).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.grid)
        })
    }

    /// Inserts a decoded chunk, evicting least-recently-used entries until
    /// the byte budget is satisfied. The entry just inserted is never its
    /// own eviction victim.
    pub fn insert(&self, chunk: usize, grid: Arc<Grid<f32>>) {
        let cost = grid.len().saturating_mul(std::mem::size_of::<f32>());
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            chunk,
            Entry {
                grid,
                bytes: cost,
                last_used: tick,
            },
        ) {
            // Replacing an entry (e.g. two racing decoders): net the bytes.
            inner.bytes = inner.bytes.saturating_sub(old.bytes);
        }
        inner.bytes = inner.bytes.saturating_add(cost);
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(&k, _)| k != chunk)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    if let Some(e) = inner.map.remove(&k) {
                        inner.bytes = inner.bytes.saturating_sub(e.bytes);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// Returns chunk `chunk`, decoding it at most once across racing
    /// threads.
    ///
    /// This is the store's stampede protocol: probe the cache (counting a
    /// hit or miss), then take the caller-supplied per-chunk `decode_lock`,
    /// re-probe quietly — a racing thread may have published the chunk
    /// while we waited on the lock — and only then run `decode`. The
    /// result is published to the cache before the guard drops, so however
    /// many threads race for a cold chunk, exactly one `decode` runs and
    /// the rest observe its published `Arc`. The lock is per chunk, owned
    /// by the caller, so decodes of *different* chunks proceed in
    /// parallel. A `decode` error is returned without publishing anything;
    /// the next requester retries.
    pub fn get_or_decode<E>(
        &self,
        chunk: usize,
        decode_lock: &Mutex<()>,
        decode: impl FnOnce() -> Result<Arc<Grid<f32>>, E>,
    ) -> Result<Arc<Grid<f32>>, E> {
        if let Some(g) = self.get(chunk) {
            return Ok(g);
        }
        self.decode_quiet(chunk, decode_lock, decode)
    }

    /// The decode-once half of the stampede protocol, without the counted
    /// probe.
    ///
    /// Callers that already probed the cache (and counted the miss) — the
    /// coalesced `read_region` path, which plans its backend fetches from
    /// one batch of probes — use this to publish prefetched chunks under
    /// the same per-chunk lock discipline as [`ChunkCache::get_or_decode`]:
    /// take the lock, re-probe quietly (a racing thread may have published
    /// while we waited, making our prefetched bytes redundant), decode,
    /// publish. One logical request still counts at most one hit or miss.
    pub fn decode_quiet<E>(
        &self,
        chunk: usize,
        decode_lock: &Mutex<()>,
        decode: impl FnOnce() -> Result<Arc<Grid<f32>>, E>,
    ) -> Result<Arc<Grid<f32>>, E> {
        let _decode_guard = lock_or_recover(decode_lock);
        if let Some(g) = self.peek(chunk) {
            return Ok(g);
        }
        // xtask-allow: R9 -- the stampede guard must span the decode by design: holding it is what makes racing threads decode a cold chunk exactly once, and it is per chunk, so other chunks still decode in parallel
        let grid = decode()?;
        self.insert(chunk, Arc::clone(&grid));
        Ok(grid)
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Snapshot of the counters and residency.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: inner.bytes,
            resident_entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    fn grid_of(n: usize, fill: f32) -> Arc<Grid<f32>> {
        Arc::new(Grid::filled(Shape::new(&[n]), fill))
    }

    #[test]
    fn hit_miss_and_recency() {
        let cache = ChunkCache::new(1 << 20);
        assert!(cache.get(0).is_none());
        cache.insert(0, grid_of(8, 1.0));
        assert!(cache.get(0).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_entries, 1);
        assert_eq!(s.resident_bytes, 32);
    }

    #[test]
    fn evicts_least_recently_used_within_budget() {
        // Budget fits exactly two 16-element (64-byte) grids.
        let cache = ChunkCache::new(128);
        cache.insert(0, grid_of(16, 0.0));
        cache.insert(1, grid_of(16, 1.0));
        assert!(cache.get(0).is_some()); // 0 is now more recent than 1
        cache.insert(2, grid_of(16, 2.0)); // must evict 1
        assert!(cache.get(1).is_none());
        assert!(cache.get(0).is_some());
        assert!(cache.get(2).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= 128);
    }

    #[test]
    fn oversized_entry_keeps_only_itself() {
        let cache = ChunkCache::new(16);
        cache.insert(0, grid_of(4, 0.0));
        cache.insert(1, grid_of(64, 1.0)); // 256 bytes alone
        let s = cache.stats();
        assert_eq!(s.resident_entries, 1);
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn eviction_does_not_invalidate_shared_arcs() {
        let cache = ChunkCache::new(64);
        cache.insert(0, grid_of(16, 7.0));
        let held = cache.get(0).expect("resident");
        cache.insert(1, grid_of(16, 8.0)); // evicts 0
        assert!(cache.get(0).is_none());
        assert_eq!(held.as_slice()[0], 7.0);
    }

    #[test]
    fn zero_budget_still_serves_the_most_recent_chunk() {
        let cache = ChunkCache::new(0);
        cache.insert(0, grid_of(8, 1.0));
        // The just-inserted entry is never its own victim, so even a zero
        // budget keeps exactly the latest chunk.
        assert!(cache.get(0).is_some());
        cache.insert(1, grid_of(8, 2.0));
        assert!(cache.get(0).is_none());
        assert!(cache.get(1).is_some());
        let s = cache.stats();
        assert_eq!((s.resident_entries, s.evictions), (1, 1));
        assert_eq!(s.resident_bytes, 32);
    }

    #[test]
    fn oversized_decode_is_published_and_served() {
        // A single entry bigger than the whole budget still flows through
        // get_or_decode: published once, then served from cache.
        let cache = ChunkCache::new(16);
        let lock = Mutex::new(());
        let g = cache
            .get_or_decode(0, &lock, || Ok::<_, ()>(grid_of(64, 9.0)))
            .expect("decode succeeds");
        assert_eq!(g.len(), 64);
        let again = cache
            .get_or_decode(0, &lock, || Err::<Arc<Grid<f32>>, ()>(()))
            .expect("served from cache, closure untouched");
        assert_eq!(again.as_slice()[0], 9.0);
        let s = cache.stats();
        assert!(s.resident_bytes > cache.budget());
        assert_eq!((s.resident_entries, s.hits, s.misses), (1, 1, 1));
    }

    #[test]
    fn eviction_under_contention_keeps_stats_balanced() {
        // Four threads hammer 13 keys through a 4-entry budget; whatever
        // the interleaving, the byte account must balance residency, stay
        // within budget, and count every lookup exactly once.
        let cache = ChunkCache::new(128);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let cache = &cache;
                s.spawn(move || {
                    for k in 0..200usize {
                        let key = (t * 7 + k) % 13;
                        if cache.get(key).is_none() {
                            cache.insert(key, grid_of(8, key as f32));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * 200);
        assert_eq!(s.resident_bytes, 32 * s.resident_entries);
        assert!(s.resident_bytes <= cache.budget());
        assert!(s.resident_entries >= 1);
    }

    #[test]
    fn peek_does_not_count() {
        let cache = ChunkCache::new(1 << 20);
        cache.insert(3, grid_of(4, 0.0));
        assert!(cache.peek(3).is_some());
        assert!(cache.peek(4).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }
}
