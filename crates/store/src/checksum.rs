//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for the chunk
//! store index. Chosen over a fancier hash because it is table-driven, has
//! no dependencies, and matches what `cksum`/zlib report — a chunk's stored
//! checksum can be cross-checked with standard tooling.

/// Byte-wise lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// CRC32 of `bytes` (initial value all-ones, final complement — the zlib
/// convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base = crc32(b"chunk payload bytes");
        let mut v = b"chunk payload bytes".to_vec();
        for i in 0..v.len() {
            v[i] ^= 0x01;
            assert_ne!(crc32(&v), base, "flip at {i} undetected");
            v[i] ^= 0x01;
        }
    }
}
