//! CAF — a minimal self-describing **C**limate **A**rray **F**ile format.
//!
//! The paper's future work is integrating CliZ into HDF5/NetCDF. Neither is
//! available offline, so this module provides the NetCDF-flavoured substrate
//! the `cliz` CLI needs: named dimensions, string attributes, one f32
//! variable, and an optional bit-packed validity mask, all in one
//! little-endian file.
//!
//! ```text
//! magic   u32   "CAF1"
//! version u8    1
//! name    string            variable name (e.g. "SSH")
//! nattrs  u16   then nattrs × (key string, value string)
//! ndim    u8    then ndim × (dim-name string, extent u64)
//! dtype   u8    0 = f32
//! flags   u8    bit0 = mask present
//! data    len·4 bytes of f32 LE
//! [mask]  ceil(len/8) bytes, bit-packed (LSB-first within each byte)
//! ```
//!
//! Strings are `u16` length + UTF-8 bytes. Conventional attributes the CLI
//! understands: `time_axis` (decimal axis index) and `period` (cycle length).

use crate::error::StoreError;
use cliz_format::spec::CAF1;
use cliz_grid::{Grid, MaskMap, Shape};
use std::io::{Read, Write};
use std::path::Path;

const DTYPE_F32: u8 = 0;

/// A named climate variable with metadata, as stored in a CAF file.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    pub name: String,
    /// One name per dimension ("lat", "lon", "time", …).
    pub dim_names: Vec<String>,
    /// Free-form attributes; `time_axis`/`period` are conventional.
    pub attrs: Vec<(String, String)>,
    pub data: Grid<f32>,
    pub mask: Option<MaskMap>,
}

impl Dataset {
    /// Builds a dataset with auto-generated dimension names (`dim0`, …).
    pub fn new(name: impl Into<String>, data: Grid<f32>, mask: Option<MaskMap>) -> Self {
        let dim_names = (0..data.shape().ndim()).map(|d| format!("dim{d}")).collect();
        Self {
            name: name.into(),
            dim_names,
            attrs: Vec::new(),
            data,
            mask,
        }
    }

    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// The conventional `time_axis` attribute, parsed.
    pub fn time_axis(&self) -> Option<usize> {
        self.attr("time_axis").and_then(|v| v.parse().ok())
    }

    /// The conventional `period` attribute, parsed.
    pub fn period(&self) -> Option<usize> {
        self.attr("period").and_then(|v| v.parse().ok())
    }

    /// Write-side structural validation shared by CAF and the chunk store:
    /// dimension-name arity and mask shape must match the data grid.
    pub(crate) fn validate(&self) -> Result<(), StoreError> {
        if self.dim_names.len() != self.data.shape().ndim() {
            return Err(StoreError::Invalid("dimension-name arity mismatch"));
        }
        if let Some(m) = &self.mask {
            if m.shape() != self.data.shape() {
                return Err(StoreError::Invalid("mask shape mismatch"));
            }
        }
        Ok(())
    }
}

pub(crate) fn write_string(w: &mut impl Write, s: &str) -> Result<(), StoreError> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        return Err(StoreError::Invalid("string too long"));
    }
    w.write_all(&(bytes.len() as u16).to_le_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

pub(crate) fn read_string(r: &mut impl Read) -> Result<String, StoreError> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    // u16-decoded, so the allocation is capped at 64 KiB by construction.
    let len = usize::from(u16::from_le_bytes(len));
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| StoreError::Corrupt("non-UTF8 string"))
}

/// Serializes a dataset to any writer.
pub fn write_caf(w: &mut impl Write, ds: &Dataset) -> Result<(), StoreError> {
    ds.validate()?;
    w.write_all(&CAF1.magic.to_le_bytes())?;
    w.write_all(&[CAF1.version])?;
    write_string(w, &ds.name)?;
    if ds.attrs.len() > u16::MAX as usize {
        return Err(StoreError::Invalid("too many attributes"));
    }
    w.write_all(&(ds.attrs.len() as u16).to_le_bytes())?;
    for (k, v) in &ds.attrs {
        write_string(w, k)?;
        write_string(w, v)?;
    }
    w.write_all(&[ds.data.shape().ndim() as u8])?;
    for (name, &extent) in ds.dim_names.iter().zip(ds.data.shape().dims()) {
        write_string(w, name)?;
        w.write_all(&(extent as u64).to_le_bytes())?;
    }
    w.write_all(&[DTYPE_F32])?;
    w.write_all(&[u8::from(ds.mask.is_some())])?;
    // Bulk data: one contiguous write of the LE bytes.
    let mut bytes = Vec::with_capacity(ds.data.len() * 4);
    for &v in ds.data.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)?;
    if let Some(m) = &ds.mask {
        w.write_all(&m.pack_bits())?;
    }
    Ok(())
}

/// Deserializes a dataset from any reader.
pub fn read_caf(r: &mut impl Read) -> Result<Dataset, StoreError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if u32::from_le_bytes(magic) != CAF1.magic {
        return Err(StoreError::BadMagic);
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] == 0 || version[0] > CAF1.version {
        return Err(StoreError::UnsupportedVersion(version[0]));
    }
    let name = read_string(r)?;
    let mut nattrs = [0u8; 2];
    r.read_exact(&mut nattrs)?;
    // u16-decoded, so at most 65535 (empty) pairs are pre-reserved.
    let nattrs = usize::from(u16::from_le_bytes(nattrs));
    let mut attrs = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        let k = read_string(r)?;
        let v = read_string(r)?;
        attrs.push((k, v));
    }
    let mut ndim = [0u8; 1];
    r.read_exact(&mut ndim)?;
    let ndim = ndim[0] as usize;
    if ndim == 0 || ndim > cliz_grid::shape::MAX_DIMS {
        return Err(StoreError::Corrupt("bad rank"));
    }
    let mut dim_names = Vec::with_capacity(ndim);
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dim_names.push(read_string(r)?);
        let mut extent = [0u8; 8];
        r.read_exact(&mut extent)?;
        let e = u64::from_le_bytes(extent) as usize;
        if e == 0 {
            return Err(StoreError::Corrupt("zero extent"));
        }
        dims.push(e);
    }
    let total = dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .filter(|&t| t <= 1 << 36)
        .ok_or(StoreError::Corrupt("implausible size"))?;
    let mut dtype = [0u8; 1];
    r.read_exact(&mut dtype)?;
    if dtype[0] != DTYPE_F32 {
        return Err(StoreError::Corrupt("unsupported dtype"));
    }
    let mut flags = [0u8; 1];
    r.read_exact(&mut flags)?;
    let has_mask = flags[0] & 1 == 1;

    let mut bytes = vec![0u8; total * 4];
    r.read_exact(&mut bytes)?;
    let values: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let shape = Shape::new(&dims);
    let data = Grid::from_vec(shape.clone(), values);
    let mask = if has_mask {
        let mut packed = vec![0u8; total.div_ceil(8)];
        r.read_exact(&mut packed)?;
        Some(MaskMap::unpack_bits(shape, &packed))
    } else {
        None
    };
    Ok(Dataset {
        name,
        dim_names,
        attrs,
        data,
        mask,
    })
}

/// Convenience: write to a filesystem path.
pub fn save(path: &Path, ds: &Dataset) -> Result<(), StoreError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_caf(&mut f, ds)
}

/// Convenience: read from a filesystem path.
pub fn load(path: &Path) -> Result<Dataset, StoreError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_caf(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let data = Grid::from_fn(Shape::new(&[4, 6]), |c| (c[0] * 6 + c[1]) as f32 * 0.5);
        let mask = MaskMap::from_flags(
            data.shape().clone(),
            (0..24).map(|i| i % 5 != 0).collect(),
        );
        let mut ds = Dataset::new("SSH", data, Some(mask));
        ds.dim_names = vec!["lat".into(), "lon".into()];
        ds.set_attr("units", "m");
        ds.set_attr("time_axis", "1");
        ds.set_attr("period", "12");
        ds
    }

    #[test]
    fn roundtrip_with_mask_and_attrs() {
        let ds = sample();
        let mut buf = Vec::new();
        write_caf(&mut buf, &ds).unwrap();
        let back = read_caf(&mut buf.as_slice()).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.attr("units"), Some("m"));
        assert_eq!(back.time_axis(), Some(1));
        assert_eq!(back.period(), Some(12));
    }

    #[test]
    fn roundtrip_without_mask() {
        let data = Grid::filled(Shape::new(&[3, 3, 3]), 1.5f32);
        let ds = Dataset::new("T", data, None);
        let mut buf = Vec::new();
        write_caf(&mut buf, &ds).unwrap();
        let back = read_caf(&mut buf.as_slice()).unwrap();
        assert_eq!(back, ds);
        assert!(back.mask.is_none());
        assert_eq!(back.dim_names, vec!["dim0", "dim1", "dim2"]);
    }

    #[test]
    fn attrs_roundtrip_with_empty_values_and_keys() {
        // Attribute machinery must not treat "" specially on either side of
        // the pair — empty values (units-less variables) and even an empty
        // key must survive a write/read cycle verbatim, in order.
        let data = Grid::filled(Shape::new(&[2, 2]), 0.0f32);
        let mut ds = Dataset::new("X", data, None);
        ds.set_attr("units", "");
        ds.set_attr("", "anonymous");
        ds.set_attr("history", "gen; compress; eval");
        let mut buf = Vec::new();
        write_caf(&mut buf, &ds).unwrap();
        let back = read_caf(&mut buf.as_slice()).unwrap();
        assert_eq!(back.attrs, ds.attrs);
        assert_eq!(back.attr("units"), Some(""));
        assert_eq!(back.attr(""), Some("anonymous"));
        // Empty-valued attrs are still replaceable, not duplicated.
        let mut ds2 = back;
        ds2.set_attr("units", "K");
        assert_eq!(ds2.attrs.iter().filter(|(k, _)| k == "units").count(), 1);
        assert_eq!(ds2.attr("units"), Some("K"));
    }

    #[test]
    fn non_utf8_attr_bytes_rejected() {
        // Corrupt an attribute value in place: read must fail with Corrupt,
        // not panic and not return mojibake.
        let mut ds = sample();
        ds.attrs = vec![("units".into(), "mmmm".into())];
        let mut buf = Vec::new();
        write_caf(&mut buf, &ds).unwrap();
        // Find the "mmmm" value bytes and replace them with invalid UTF-8.
        let pos = buf
            .windows(4)
            .position(|w| w == b"mmmm")
            .expect("attr value bytes present");
        buf[pos..pos + 4].copy_from_slice(&[0xFF, 0xFE, 0x80, 0x80]);
        match read_caf(&mut buf.as_slice()) {
            Err(StoreError::Corrupt(w)) => assert_eq!(w, "non-UTF8 string"),
            other => panic!("expected Corrupt(non-UTF8), got {other:?}"),
        }
    }

    #[test]
    fn mask_presence_is_faithful_either_way() {
        // Same data, with and without a mask: the flag byte must drive both
        // the write and the read side, and the mask bits must roundtrip.
        let data = Grid::from_fn(Shape::new(&[5, 7]), |c| (c[0] * 7 + c[1]) as f32);
        let flags: Vec<bool> = (0..35).map(|i| i % 3 != 1).collect();
        let mask = MaskMap::from_flags(data.shape().clone(), flags.clone());

        let masked = Dataset::new("M", data.clone(), Some(mask));
        let plain = Dataset::new("M", data, None);
        for ds in [&masked, &plain] {
            let mut buf = Vec::new();
            write_caf(&mut buf, ds).unwrap();
            let back = read_caf(&mut buf.as_slice()).unwrap();
            assert_eq!(back.mask.is_some(), ds.mask.is_some());
            assert_eq!(&back, ds);
        }
        let mut buf = Vec::new();
        write_caf(&mut buf, &masked).unwrap();
        let back = read_caf(&mut buf.as_slice()).unwrap();
        let m = back.mask.expect("mask present");
        assert_eq!(m.as_slice(), flags.as_slice());
    }

    #[test]
    fn write_side_validation_errors_not_panics() {
        // Arity mismatch between dim names and shape.
        let data = Grid::filled(Shape::new(&[2, 2]), 1.0f32);
        let mut ds = Dataset::new("bad", data.clone(), None);
        ds.dim_names.pop();
        let mut buf = Vec::new();
        assert!(matches!(
            write_caf(&mut buf, &ds),
            Err(StoreError::Invalid(_))
        ));
        // Mask shape mismatch.
        let wrong_mask = MaskMap::all_valid(Shape::new(&[3, 3]));
        let ds = Dataset {
            mask: Some(wrong_mask),
            ..Dataset::new("bad", data, None)
        };
        let mut buf = Vec::new();
        assert!(matches!(
            write_caf(&mut buf, &ds),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn set_attr_replaces() {
        let mut ds = sample();
        ds.set_attr("units", "cm");
        assert_eq!(ds.attr("units"), Some("cm"));
        assert_eq!(ds.attrs.iter().filter(|(k, _)| k == "units").count(), 1);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_caf(&mut &b"NOTCAF??"[..]).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let ds = sample();
        let mut buf = Vec::new();
        write_caf(&mut buf, &ds).unwrap();
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(read_caf(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn nan_and_fill_values_survive() {
        let data = Grid::from_vec(
            Shape::new(&[3]),
            vec![f32::NAN, 9.96921e36, -0.0],
        );
        let ds = Dataset::new("weird", data, None);
        let mut buf = Vec::new();
        write_caf(&mut buf, &ds).unwrap();
        let back = read_caf(&mut buf.as_slice()).unwrap();
        assert!(back.data.as_slice()[0].is_nan());
        assert_eq!(back.data.as_slice()[1], 9.96921e36);
        assert_eq!(back.data.as_slice()[2].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn implausible_header_rejected() {
        // Handcraft a header claiming a gigantic grid.
        let mut buf = Vec::new();
        buf.extend_from_slice(&CAF1.magic.to_le_bytes());
        buf.push(CAF1.version);
        buf.extend_from_slice(&1u16.to_le_bytes()); // name len 1
        buf.push(b'x');
        buf.extend_from_slice(&0u16.to_le_bytes()); // no attrs
        buf.push(2); // ndim
        for _ in 0..2 {
            buf.extend_from_slice(&1u16.to_le_bytes());
            buf.push(b'd');
            buf.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        buf.push(DTYPE_F32);
        buf.push(0);
        assert!(matches!(
            read_caf(&mut buf.as_slice()),
            Err(StoreError::Corrupt(_))
        ));
    }
}
