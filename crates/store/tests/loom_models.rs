//! Model-checked interleaving tests for the store's concurrency core.
//!
//! Built and run only with `RUSTFLAGS="--cfg loom"` (see the loom CI job
//! and `docs/CONCURRENCY.md`); a normal build compiles this file to an
//! empty crate. Under `--cfg loom`, `cliz-store`'s `src/sync.rs` swaps its
//! `std::sync` primitives for the `cliz-loom` checker's instrumented ones,
//! so these models explore every bounded interleaving of the *production*
//! [`ChunkCache`] code — the LRU bookkeeping and the stampede protocol in
//! `get_or_decode` — not a test double.
#![cfg(loom)]

use cliz_grid::{Grid, Shape};
use cliz_store::ChunkCache;
use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

fn grid_of(n: usize, fill: f32) -> Arc<Grid<f32>> {
    Arc::new(Grid::filled(Shape::new(&[n]), fill))
}

/// The headline stampede property: two threads racing for the same cold
/// chunk perform exactly one decode in every schedule, both observe the
/// published grid, and each logical request is counted exactly once.
#[test]
fn raced_cold_chunk_decodes_exactly_once() {
    loom::model(|| {
        let cache = Arc::new(ChunkCache::new(1 << 16));
        let lock = Arc::new(Mutex::new(()));
        let decodes = Arc::new(AtomicU64::new(0));
        let request = |cache: Arc<ChunkCache>, lock: Arc<Mutex<()>>, decodes: Arc<AtomicU64>| {
            let grid = cache
                .get_or_decode(0, &lock, || {
                    decodes.fetch_add(1, Ordering::Relaxed);
                    Ok::<_, ()>(grid_of(8, 3.5))
                })
                .expect("decode closure never fails");
            assert_eq!(grid.as_slice()[0], 3.5);
        };
        let (c2, l2, d2) = (Arc::clone(&cache), Arc::clone(&lock), Arc::clone(&decodes));
        let peer = thread::spawn(move || request(c2, l2, d2));
        request(Arc::clone(&cache), Arc::clone(&lock), Arc::clone(&decodes));
        peer.join().unwrap();
        assert_eq!(
            decodes.load(Ordering::Relaxed),
            1,
            "stampede: a cold chunk was decoded more than once"
        );
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2, "each request counts exactly once");
        assert_eq!((s.resident_entries, s.resident_bytes), (1, 32));
    });
}

/// Soundness of the quiet re-check: a failed decode publishes nothing, the
/// next request under the same lock really retries, and a resident chunk
/// is never decoded again.
#[test]
fn failed_decode_is_not_published() {
    loom::model(|| {
        let cache = ChunkCache::new(1 << 16);
        let lock = Mutex::new(());
        let r = cache.get_or_decode(0, &lock, || Err::<Arc<Grid<f32>>, &str>("bad crc"));
        assert_eq!(r.unwrap_err(), "bad crc");
        let calls = std::cell::Cell::new(0u32);
        let grid = cache
            .get_or_decode(0, &lock, || {
                calls.set(calls.get() + 1);
                Ok::<_, &str>(grid_of(4, 1.0))
            })
            .expect("retry succeeds");
        assert_eq!((calls.get(), grid.as_slice()[0]), (1, 1.0));
        let again = cache
            .get_or_decode(0, &lock, || {
                calls.set(calls.get() + 1);
                Ok::<_, &str>(grid_of(4, 2.0))
            })
            .expect("resident chunk");
        assert_eq!(calls.get(), 1, "resident chunk must not decode again");
        assert_eq!(again.as_slice()[0], 1.0);
    });
}

/// The coalesced-fetch race: one thread walks the `read_region` path (a
/// counted probe planning a batch fetch, then `decode_quiet` to publish
/// the prefetched chunk), while a peer requests the same chunk through
/// `get_or_decode`. In every schedule exactly one decode runs — the
/// prefetched bytes become redundant, never a second decode — and each
/// logical request still counts exactly one hit or miss.
#[test]
fn prefetch_publish_races_direct_request_decodes_once() {
    loom::model(|| {
        let cache = Arc::new(ChunkCache::new(1 << 16));
        let lock = Arc::new(Mutex::new(()));
        let decodes = Arc::new(AtomicU64::new(0));

        // Peer: the direct `chunk(i)` path.
        let (c2, l2, d2) = (Arc::clone(&cache), Arc::clone(&lock), Arc::clone(&decodes));
        let peer = thread::spawn(move || {
            let grid = c2
                .get_or_decode(0, &l2, || {
                    d2.fetch_add(1, Ordering::Relaxed);
                    Ok::<_, ()>(grid_of(8, 3.5))
                })
                .expect("decode closure never fails");
            assert_eq!(grid.as_slice()[0], 3.5);
        });

        // Main: the coalesced `read_region` path — probe (counts the
        // miss or hit), "fetch", publish via the quiet variant.
        let grid = match cache.get(0) {
            Some(g) => g,
            None => cache
                .decode_quiet(0, &lock, || {
                    decodes.fetch_add(1, Ordering::Relaxed);
                    Ok::<_, ()>(grid_of(8, 3.5))
                })
                .expect("decode closure never fails"),
        };
        assert_eq!(grid.as_slice()[0], 3.5);
        peer.join().unwrap();

        assert_eq!(
            decodes.load(Ordering::Relaxed),
            1,
            "prefetch racing a direct request must still decode exactly once"
        );
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2, "each request counts exactly once");
        assert_eq!((s.resident_entries, s.resident_bytes), (1, 32));
    });
}

/// LRU bookkeeping under racing insert/evict/get: whatever the schedule,
/// the byte account balances against residency and the eviction counter
/// accounts for every insert that is no longer resident.
#[test]
fn lru_insert_evict_get_interleavings_keep_stats_balanced() {
    loom::model(|| {
        // Budget fits two 32-byte entries; three distinct chunks race.
        let cache = Arc::new(ChunkCache::new(64));
        let c2 = Arc::clone(&cache);
        let peer = thread::spawn(move || {
            c2.insert(1, grid_of(8, 1.0));
            let _ = c2.get(1);
            c2.insert(2, grid_of(8, 2.0));
        });
        cache.insert(0, grid_of(8, 0.0));
        let _ = cache.get(0);
        peer.join().unwrap();
        let s = cache.stats();
        assert_eq!(s.resident_bytes, 32 * s.resident_entries);
        assert_eq!(
            s.resident_entries as u64 + s.evictions,
            3,
            "every insert is either resident or counted as an eviction"
        );
        assert!(s.resident_bytes <= cache.budget());
        assert_eq!(s.hits + s.misses, 2);
    });
}
