//! End-to-end: a CZS store served over HTTP, read through
//! `HttpRangeBackend` with coalesced range requests.
//!
//! The store never exists as a local file: it is packed in memory, handed
//! to the loopback blob server, and every byte the reader sees travels
//! through real `Range: bytes=` requests. Results must be bit-identical
//! to a memory-backed reader over the same bytes, and the request count
//! must reflect the coalescing planner, not per-chunk round trips.

use cliz_core::config::PipelineConfig;
use cliz_grid::{Grid, Shape};
use cliz_quant::ErrorBound;
use cliz_store::storage::{BlobHttpServer, HttpRangeBackend, Misbehaviour};
use cliz_store::{ChunkStoreReader, Dataset};
use std::sync::Arc;

fn packed_store() -> Vec<u8> {
    let dims = [20usize, 12];
    let grid = Grid::from_fn(Shape::new(&dims), |c| {
        (((c[0] as f64) * 0.31).sin() * 3.0 + ((c[1] as f64) * 0.17).cos()) as f32
    });
    let ds = Dataset::new("tas", grid, None);
    let cfg = PipelineConfig::default_for(2);
    cliz_store::pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, 5, 1).expect("pack succeeds")
}

#[test]
fn http_reader_matches_memory_reader_with_coalesced_requests() {
    let bytes = packed_store();
    let local = ChunkStoreReader::from_bytes(bytes.clone()).expect("local open");

    let server = BlobHttpServer::start(bytes).expect("loopback server");
    let backend = HttpRangeBackend::new(&server.url()).expect("url parses");
    let remote = ChunkStoreReader::from_storage(Arc::new(backend), 64 << 20)
        .expect("remote open");

    assert_eq!(remote.name(), local.name());
    assert_eq!(remote.dims(), local.dims());

    let a = remote.read_region(&[3..17, 2..10]).expect("remote region");
    let b = local.read_region(&[3..17, 2..10]).expect("local region");
    assert_eq!(a.as_slice(), b.as_slice(), "remote bytes must match local");

    let stats = remote.stats();
    // Open costs a size probe + prefix fetches; the region itself (4
    // contiguous cold chunks) must be one coalesced request, so the
    // total request count stays far below one-per-chunk naivety.
    assert_eq!(stats.decodes, 4);
    assert!(
        stats.backend_gets <= 4,
        "expected coalesced fetches, saw {} backend gets",
        stats.backend_gets
    );
    // Warm repeat: served from cache, zero new HTTP traffic.
    let before = server.requests();
    remote.read_region(&[3..17, 2..10]).expect("warm region");
    assert_eq!(server.requests(), before);
}

#[test]
fn transient_server_errors_are_retried_transparently() {
    let bytes = packed_store();
    let server = BlobHttpServer::start(bytes.clone()).expect("loopback server");
    let backend = HttpRangeBackend::new(&server.url()).expect("url parses");
    let remote = ChunkStoreReader::from_storage(Arc::new(backend), 64 << 20)
        .expect("remote open");

    // Two consecutive 500s: the backend's retry budget (3) absorbs them
    // and the region still decodes correctly.
    server.misbehave(Misbehaviour::ServerError, 2);
    let local = ChunkStoreReader::from_bytes(bytes).expect("local open");
    let a = remote.read_region(&[0..5, 0..12]).expect("survives 5xx burst");
    let b = local.read_region(&[0..5, 0..12]).expect("local region");
    assert_eq!(a.as_slice(), b.as_slice());
}
