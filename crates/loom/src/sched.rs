//! Token-passing scheduler and depth-first interleaving explorer.
//!
//! One [`Exec`] is a single execution of the model closure. Logical
//! threads run on real OS threads but are serialized by a token
//! (`Central::current`): a thread may only execute model code while it
//! holds the token, and hands it over at schedule points. All scheduling
//! decisions therefore happen in a deterministic sequence, which is what
//! makes replay-based DFS exploration sound.
//!
//! The thread-local [`ctx`] links a running OS thread to its `Exec` and
//! logical id; when it is unset, the `sync`/`thread` wrappers pass straight
//! through to `std`. Nothing here is global to the process, so independent
//! models (e.g. two `#[test]`s on different harness threads) cannot
//! interfere.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Logical id of the thread that calls `model`'s closure.
pub(crate) const MAIN_THREAD: usize = 0;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Runnable,
    BlockedOnMutex(usize),
    BlockedOnJoin(usize),
    Finished,
}

struct Central {
    states: Vec<State>,
    /// Thread ids whose `JoinHandle::join` completed.
    joined: Vec<bool>,
    /// Thread ids whose body panicked.
    panicked: Vec<bool>,
    /// Per-mutex logical holder.
    holders: Vec<Option<usize>>,
    /// The token: the one logical thread allowed to execute model code.
    current: usize,
    finished: usize,
    /// Branch taken at each decision point; a prefix replays the previous
    /// execution, the tail records fresh first-branch choices.
    replay: Vec<usize>,
    /// Number of branches that existed at each decision point.
    options: Vec<usize>,
    step: usize,
    preemptions: usize,
    max_preemptions: usize,
    aborted: Option<String>,
}

/// Scheduler state for one execution of the model closure.
pub(crate) struct Exec {
    central: Mutex<Central>,
    cv: Condvar,
}

/// What the explorer needs from a finished execution.
pub(crate) struct Outcome {
    pub(crate) aborted: Option<String>,
    pub(crate) options: Vec<usize>,
    pub(crate) replay: Vec<usize>,
    pub(crate) unjoined_panic: Option<usize>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(exec: Arc<Exec>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, id)));
}

/// Clears the calling thread's model context on drop, even on unwind, so
/// a failed model never leaves a test-harness thread wired to a dead
/// scheduler.
pub(crate) struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

/// Schedule point for the calling thread, if it is inside a model. During
/// unwind the token is deliberately kept: drop handlers run to completion
/// and the token moves on at `finish`.
pub(crate) fn sched_point() {
    if std::thread::panicking() {
        return;
    }
    if let Some((exec, me)) = ctx() {
        exec.schedule(me);
    }
}

fn relock(m: &Mutex<Central>) -> MutexGuard<'_, Central> {
    // Central is poisoned whenever a model assertion fails while a
    // scheduler call holds it; the state itself is still consistent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Central {
    /// Picks the next thread to run. `me_runnable` distinguishes a
    /// voluntary yield (the caller could continue; switching away is a
    /// preemption) from a forced block (no charge). Returns `None` when
    /// nothing is runnable — the caller decides whether that is deadlock.
    fn pick_next(&mut self, me: usize, me_runnable: bool) -> Option<usize> {
        let ready: Vec<usize> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == State::Runnable)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            return None;
        }
        let out_of_budget =
            me_runnable && self.preemptions >= self.max_preemptions && ready.contains(&me);
        let picked = if out_of_budget || ready.len() == 1 {
            if out_of_budget {
                me
            } else {
                ready[0]
            }
        } else {
            let k = self.decide(ready.len());
            ready[k]
        };
        if me_runnable && picked != me {
            self.preemptions += 1;
        }
        Some(picked)
    }

    /// Records (or replays) one decision with `n` branches.
    fn decide(&mut self, n: usize) -> usize {
        let k = match self.replay.get(self.step) {
            // A replayed branch index always fits `n` because the decision
            // sequence is deterministic; min() is belt and braces.
            Some(&k) => k.min(n - 1),
            None => {
                self.replay.push(0);
                0
            }
        };
        self.options.push(n);
        self.step += 1;
        k
    }

    fn abort_check(&self) {
        if let Some(msg) = &self.aborted {
            panic!("loom: execution aborted ({msg})");
        }
    }
}

impl Exec {
    pub(crate) fn new(replay: Vec<usize>, max_preemptions: usize) -> Arc<Self> {
        Arc::new(Self {
            central: Mutex::new(Central {
                states: vec![State::Runnable],
                joined: vec![false],
                panicked: vec![false],
                holders: Vec::new(),
                current: MAIN_THREAD,
                finished: 0,
                replay,
                options: Vec::new(),
                step: 0,
                preemptions: 0,
                max_preemptions,
                aborted: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Registers a new logical thread (caller holds the token).
    pub(crate) fn register_thread(&self) -> usize {
        let mut c = relock(&self.central);
        c.states.push(State::Runnable);
        c.joined.push(false);
        c.panicked.push(false);
        c.states.len() - 1
    }

    /// Registers a mutex on first use within this execution.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut c = relock(&self.central);
        c.holders.push(None);
        c.holders.len() - 1
    }

    /// A plain schedule point: possibly hand the token to another runnable
    /// thread, then wait for it to come back.
    pub(crate) fn schedule(&self, me: usize) {
        let mut c = relock(&self.central);
        c.abort_check();
        // `me` holds the token and is runnable, so the ready set is
        // non-empty and pick_next cannot return None.
        let next = c.pick_next(me, true).unwrap_or(me);
        if next == me {
            return;
        }
        c.current = next;
        self.cv.notify_all();
        self.wait_token(c, me);
    }

    fn wait_token(&self, mut c: MutexGuard<'_, Central>, me: usize) {
        while c.current != me {
            c = self.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
            c.abort_check();
        }
    }

    /// Blocks until the spawned thread `me` is first given the token.
    pub(crate) fn wait_initial(&self, me: usize) {
        let c = relock(&self.central);
        self.wait_token(c, me);
    }

    /// Logically acquires mutex `mid`, blocking while another thread holds
    /// it. The caller locks the underlying `std` mutex only after this
    /// returns, so the OS-level lock is never contended.
    pub(crate) fn acquire(&self, me: usize, mid: usize) {
        self.schedule(me);
        let mut c = relock(&self.central);
        loop {
            c.abort_check();
            if c.holders[mid].is_none() {
                c.holders[mid] = Some(me);
                return;
            }
            c.states[me] = State::BlockedOnMutex(mid);
            match c.pick_next(me, false) {
                Some(next) => {
                    c.current = next;
                    self.cv.notify_all();
                }
                None => {
                    return self.abort(
                        c,
                        format!("deadlock: every thread is blocked (thread {me} waiting on mutex {mid})"),
                    );
                }
            }
            while c.current != me {
                c = self.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
                c.abort_check();
            }
        }
    }

    /// Logically releases mutex `mid` and wakes its waiters. Runs during
    /// unwind too (guard drops), in which case the schedule point is
    /// skipped and the token kept until `finish`.
    pub(crate) fn release(&self, me: usize, mid: usize) {
        {
            let mut c = relock(&self.central);
            if c.holders[mid] == Some(me) {
                c.holders[mid] = None;
            }
            for s in c.states.iter_mut() {
                if *s == State::BlockedOnMutex(mid) {
                    *s = State::Runnable;
                }
            }
        }
        if !std::thread::panicking() {
            self.schedule(me);
        }
    }

    /// Blocks until thread `target` finishes, then records the join.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        self.schedule(me);
        let mut c = relock(&self.central);
        c.abort_check();
        if c.states[target] != State::Finished {
            c.states[me] = State::BlockedOnJoin(target);
            match c.pick_next(me, false) {
                Some(next) => {
                    c.current = next;
                    self.cv.notify_all();
                }
                None => {
                    return self.abort(
                        c,
                        format!("deadlock: thread {me} joins thread {target}, but every other thread is blocked"),
                    );
                }
            }
            while c.current != me {
                c = self.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
                c.abort_check();
            }
        }
        c.joined[target] = true;
    }

    /// Marks `me` finished, wakes its joiners, and hands the token on.
    /// Never panics: it runs on unwinding threads.
    pub(crate) fn finish(&self, me: usize, panicked: bool) {
        let mut c = relock(&self.central);
        c.states[me] = State::Finished;
        c.finished += 1;
        c.panicked[me] = panicked;
        for s in c.states.iter_mut() {
            if *s == State::BlockedOnJoin(me) {
                *s = State::Runnable;
            }
        }
        if c.finished < c.states.len() {
            match c.pick_next(me, false) {
                Some(next) => c.current = next,
                None => {
                    let msg = format!(
                        "deadlock: thread {me} finished but every remaining thread is blocked"
                    );
                    c.aborted.get_or_insert(msg);
                }
            }
        }
        self.cv.notify_all();
    }

    /// Waits until every logical thread has finished (the model driver
    /// calls this after the closure returns).
    pub(crate) fn wait_all(&self) {
        let mut c = relock(&self.central);
        while c.finished < c.states.len() {
            c = self.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn outcome(&self) -> Outcome {
        let c = relock(&self.central);
        Outcome {
            aborted: c.aborted.clone(),
            options: c.options.clone(),
            replay: c.replay.clone(),
            unjoined_panic: (0..c.states.len())
                .find(|&i| i != MAIN_THREAD && c.panicked[i] && !c.joined[i]),
        }
    }

    /// Records the failure, wakes everyone so blocked threads can unwind,
    /// and panics the calling thread with the message.
    fn abort(&self, mut c: MutexGuard<'_, Central>, msg: String) {
        c.aborted.get_or_insert(msg.clone());
        self.cv.notify_all();
        drop(c);
        panic!("loom: {msg}");
    }
}
