//! Self-tests for the model checker: each drives `model` with a small
//! protocol whose set of legal outcomes is known, and asserts both that
//! illegal outcomes never appear and that the explorer actually reaches
//! the distinct legal ones (i.e. it really does enumerate interleavings).

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use crate::{model, thread};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex as StdMutex;

#[test]
fn single_threaded_model_runs_exactly_once() {
    let runs = Arc::new(StdMutex::new(0u32));
    let r = Arc::clone(&runs);
    model(move || {
        *r.lock().unwrap() += 1;
    });
    assert_eq!(*runs.lock().unwrap(), 1);
}

#[test]
fn explores_both_outcomes_of_a_lost_update_race() {
    // Two threads do a non-atomic increment (load; store) on the same
    // atomic. Sequential schedules give 2; the interleaved schedule loses
    // one update and gives 1. The explorer must witness both.
    let seen = Arc::new(StdMutex::new(HashSet::new()));
    let s = Arc::clone(&seen);
    model(move || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        h.join().unwrap();
        s.lock().unwrap().insert(n.load(Ordering::SeqCst));
    });
    let outcomes = seen.lock().unwrap().clone();
    assert_eq!(outcomes, HashSet::from([1, 2]));
}

#[test]
fn mutex_serializes_increments_in_every_interleaving() {
    model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || {
            let mut g = n2.lock().unwrap();
            let v = *g;
            thread::yield_now();
            *g = v + 1;
        });
        {
            let mut g = n.lock().unwrap();
            let v = *g;
            thread::yield_now();
            *g = v + 1;
        }
        h.join().unwrap();
        match n.lock() {
            Ok(g) => assert_eq!(*g, 2),
            Err(p) => assert_eq!(*p.into_inner(), 2),
        };
    });
}

#[test]
fn detects_abba_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            h.join().unwrap();
        });
    }));
    let err = result.expect_err("AB-BA order must deadlock in some schedule");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
}

#[test]
fn poisoned_lock_surfaces_and_recovers() {
    model(|| {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            let _g = m2.lock().unwrap_or_else(|p| p.into_inner());
            panic!("holder dies");
        });
        // The panic must surface through join, never hang the model.
        assert!(h.join().is_err());
        // Whether we observed the poison depends on the schedule, but the
        // value is intact either way.
        match m.lock() {
            Ok(g) => assert_eq!(*g, 7),
            Err(p) => assert_eq!(*p.into_inner(), 7),
        };
    });
}

#[test]
fn double_check_publication_never_double_fires() {
    // The store's stampede shape in miniature: probe, lock, re-probe,
    // fire once. `fired` must end at exactly 1 under every schedule.
    model(|| {
        let published = Arc::new(Mutex::new(false));
        let fired = Arc::new(AtomicU64::new(0));
        let work = |published: Arc<Mutex<bool>>, fired: Arc<AtomicU64>| {
            let mut g = published.lock().unwrap_or_else(|p| p.into_inner());
            if !*g {
                fired.fetch_add(1, Ordering::SeqCst);
                *g = true;
            }
        };
        let (p2, f2) = (Arc::clone(&published), Arc::clone(&fired));
        let h = thread::spawn(move || work(p2, f2));
        work(Arc::clone(&published), Arc::clone(&fired));
        h.join().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    });
}

#[test]
fn primitives_pass_through_outside_a_model() {
    let m = Mutex::new(3u8);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 4);
    let a = AtomicU64::new(1);
    assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
    assert_eq!(a.load(Ordering::Relaxed), 3);
    let h = thread::spawn(|| 5u8);
    assert_eq!(h.join().unwrap(), 5);
}
