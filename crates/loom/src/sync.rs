//! Model-checked stand-ins for the `std::sync` types the store uses.
//!
//! Inside [`crate::model`] these route every acquire, release, and atomic
//! op through the scheduler as a schedule point; outside a model they pass
//! straight through to `std`. `Arc` is re-exported unchanged — reference
//! counting is not a source of interleaving bugs the store cares about.

use crate::sched;
use std::ops::{Deref, DerefMut};
use std::sync::Arc as StdArc;
use std::sync::{LockResult, OnceLock, PoisonError};

pub use std::sync::Arc;

/// Mutual exclusion with the same surface as [`std::sync::Mutex`],
/// including poisoning: a holder's panic poisons the lock and later
/// `lock()` calls get `Err(PoisonError)` carrying a usable guard.
pub struct Mutex<T> {
    cell: std::sync::Mutex<T>,
    /// Scheduler id, assigned on first contention-relevant use. A mutex
    /// never outlives the execution that registered it (models rebuild
    /// their state every execution), so one slot suffices.
    id: OnceLock<usize>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            cell: std::sync::Mutex::new(value),
            id: OnceLock::new(),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let token = match sched::ctx() {
            Some((exec, me)) if !std::thread::panicking() => {
                let mid = *self.id.get_or_init(|| exec.register_mutex());
                // Blocks logically until free; the std lock below is then
                // uncontended, because only the logical holder touches it.
                exec.acquire(me, mid);
                Some((exec, me, mid))
            }
            _ => None,
        };
        match self.cell.lock() {
            Ok(inner) => Ok(MutexGuard {
                inner: Some(inner),
                token,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                inner: Some(poisoned.into_inner()),
                token,
            })),
        }
    }
}

/// Guard for [`Mutex`]; logically releases the lock on drop, after the
/// underlying `std` guard is gone, so a successor's `std` lock never
/// contends.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    token: Option<(StdArc<sched::Exec>, usize, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken only in drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken only in drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me, mid)) = self.token.take() {
            exec.release(me, mid);
        }
    }
}

pub mod atomic {
    //! Atomics whose every operation is a schedule point. The checker
    //! serializes all memory accesses, so the `Ordering` argument is
    //! accepted for API compatibility but the effective ordering is
    //! always sequentially consistent (see the crate docs).

    use crate::sched;
    pub use std::sync::atomic::Ordering;

    pub struct AtomicU64 {
        cell: std::sync::atomic::AtomicU64,
    }

    impl AtomicU64 {
        pub const fn new(value: u64) -> Self {
            Self {
                cell: std::sync::atomic::AtomicU64::new(value),
            }
        }

        pub fn load(&self, _order: Ordering) -> u64 {
            sched::sched_point();
            self.cell.load(Ordering::SeqCst)
        }

        pub fn store(&self, value: u64, _order: Ordering) {
            sched::sched_point();
            self.cell.store(value, Ordering::SeqCst);
        }

        pub fn fetch_add(&self, value: u64, _order: Ordering) -> u64 {
            sched::sched_point();
            self.cell.fetch_add(value, Ordering::SeqCst)
        }

        pub fn fetch_sub(&self, value: u64, _order: Ordering) -> u64 {
            sched::sched_point();
            self.cell.fetch_sub(value, Ordering::SeqCst)
        }

        pub fn swap(&self, value: u64, _order: Ordering) -> u64 {
            sched::sched_point();
            self.cell.swap(value, Ordering::SeqCst)
        }
    }
}
