//! A minimal, vendored loom-style model checker for the store's
//! concurrency tests.
//!
//! The real [loom](https://github.com/tokio-rs/loom) crate cannot be a
//! dependency here (the workspace builds with no registry access), so this
//! crate reimplements the slice of it the store needs: [`model`] runs a
//! closure repeatedly, exploring every distinguishable thread interleaving
//! of the [`sync`] and [`thread`] primitives used inside it, up to a
//! preemption bound. The store's `src/sync.rs` swaps these types in for
//! `std::sync` under `--cfg loom`, so the interleavings explored are those
//! of the *production* cache and stampede code.
//!
//! # How it works
//!
//! Every logical thread inside a model runs on a real OS thread, but at
//! most one may execute at a time: a token is handed from thread to thread
//! at *schedule points* (mutex acquire/release, atomic ops, spawn, join,
//! [`thread::yield_now`]). At each point where more than one thread could
//! run next, the explorer consults a replay vector; when the vector is
//! exhausted it takes the first branch and records the decision. After the
//! execution finishes, the deepest decision with an untried branch is
//! advanced and the closure runs again — a depth-first enumeration of the
//! schedule tree. Determinism holds because only the token holder ever
//! executes model code, so the decision sequence is a pure function of the
//! choices made.
//!
//! Two guards keep the tree finite and honest:
//!
//! * **Preemption bounding** — switching away from a thread that could
//!   have kept running counts against `LOOM_MAX_PREEMPTIONS` (default 2).
//!   Most real concurrency bugs need very few preemptions, and the bound
//!   turns an exponential tree into a small polynomial one.
//! * **Execution cap** — more than `LOOM_MAX_ITERATIONS` (default 50 000)
//!   executions panics rather than spinning forever on an unbounded model.
//!
//! # Failure modes surfaced
//!
//! * A panic inside the model (an assertion) aborts exploration and
//!   re-raises the panic, reporting the execution number and schedule.
//! * **Deadlock**: every unfinished thread blocked — reported with the
//!   blocking site.
//! * A spawned thread that panicked and was never joined fails the model
//!   (a joined one surfaces through [`thread::JoinHandle::join`]'s `Err`,
//!   mirroring `std`).
//!
//! # Deliberate limits
//!
//! Weak memory is *not* modelled: atomics are sequentially consistent
//! under the checker regardless of the `Ordering` argument (every op is a
//! schedule point, which is what drives the interesting interleavings).
//! This explores strictly fewer behaviours than real hardware, so a
//! finding here is always real, while a clean pass does not certify
//! `Relaxed` protocols — that is what the ThreadSanitizer CI job and the
//! R10 ordering-consistency lint are for. Outside [`model`], every
//! primitive passes straight through to its `std` counterpart.

mod sched;
pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` under every distinguishable interleaving of the loom
/// primitives used inside it (see the crate docs for bounds and caveats).
///
/// `f` must be self-contained: state that should persist across
/// executions (e.g. a set of observed outcomes) belongs in captured
/// `Arc`s, everything else is rebuilt per execution.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 50_000);
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exceeded {max_iterations} executions without exhausting \
             the schedule tree; simplify the model or raise LOOM_MAX_ITERATIONS"
        );
        let exec = sched::Exec::new(std::mem::take(&mut replay), max_preemptions);
        sched::set_ctx(Arc::clone(&exec), sched::MAIN_THREAD);
        let ctx = sched::CtxGuard;
        let result = catch_unwind(AssertUnwindSafe(&f));
        exec.finish(sched::MAIN_THREAD, result.is_err());
        exec.wait_all();
        drop(ctx);
        let out = exec.outcome();
        if let Err(e) = result {
            eprintln!(
                "loom: model failed on execution {iterations}, schedule {:?}",
                out.replay
            );
            resume_unwind(e);
        }
        if let Some(msg) = out.aborted {
            panic!(
                "loom: {msg} (execution {iterations}, schedule {:?})",
                out.replay
            );
        }
        if let Some(t) = out.unjoined_panic {
            panic!("loom: spawned thread {t} panicked and was never joined (execution {iterations})");
        }
        replay = out.replay;
        if !advance(&mut replay, &out.options) {
            break;
        }
    }
}

/// Advances `replay` to the next unexplored schedule: backtracks to the
/// deepest decision point with an untried branch. Returns `false` when
/// the tree is exhausted.
fn advance(replay: &mut Vec<usize>, options: &[usize]) -> bool {
    while let Some(taken) = replay.pop() {
        let available = options.get(replay.len()).copied().unwrap_or(0);
        if taken + 1 < available {
            replay.push(taken + 1);
            return true;
        }
    }
    false
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests;
