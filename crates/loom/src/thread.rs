//! Model-checked `thread::spawn`/`join`/`yield_now`.
//!
//! A spawned closure runs on a real OS thread but participates in the
//! token protocol: it first waits to be scheduled, and its panics are
//! caught and delivered through [`JoinHandle::join`] exactly as `std`
//! does. Outside a model, `spawn` is `std::thread::spawn`.

use crate::sched;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

/// Result slot shared between a model thread's body and its handle.
type Slot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

enum Inner<T> {
    Model {
        exec: Arc<sched::Exec>,
        id: usize,
        slot: Slot<T>,
        os: std::thread::JoinHandle<()>,
    },
    Direct(std::thread::JoinHandle<T>),
}

/// Owned permission to join a spawned thread, mirroring
/// [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((exec, me)) = sched::ctx() else {
        return JoinHandle {
            inner: Inner::Direct(std::thread::spawn(f)),
        };
    };
    let id = exec.register_thread();
    let slot: Slot<T> = Arc::new(Mutex::new(None));
    let os = {
        let exec = Arc::clone(&exec);
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            sched::set_ctx(Arc::clone(&exec), id);
            let _ctx = sched::CtxGuard;
            let result = catch_unwind(AssertUnwindSafe(|| {
                exec.wait_initial(id);
                f()
            }));
            let panicked = result.is_err();
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            exec.finish(id, panicked);
        })
    };
    // Schedule point: the child is runnable from here on.
    exec.schedule(me);
    JoinHandle {
        inner: Inner::Model {
            exec,
            id,
            slot,
            os,
        },
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Direct(h) => h.join(),
            Inner::Model { exec, id, slot, os } => {
                if let Some((_, me)) = sched::ctx() {
                    exec.join_wait(me, id);
                }
                // Logically finished; the OS thread exits imminently.
                let _ = os.join();
                let result = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                match result {
                    Some(r) => r,
                    None => Err(Box::new("loom: joined thread left no result")),
                }
            }
        }
    }
}

/// A bare schedule point.
pub fn yield_now() {
    sched::sched_point();
}
