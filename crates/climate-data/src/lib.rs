//! Synthetic CESM-like climate datasets for CliZ experiments.
//!
//! We do not ship the paper's CESM / Hurricane-Isabel files, so this crate
//! generates fields that reproduce the *properties CliZ exploits* (see
//! DESIGN.md "Substitutions"):
//!
//! * land/ocean **masks** with CESM's huge fill value (≈9.97e36) covering
//!   realistic fractions of the globe (Sec. V-A);
//! * strong **smoothness anisotropy** — e.g. CESM-T varies ~4.4 K per height
//!   level but only ~0.02–0.05 K per lat/lon step (Sec. V-B);
//! * an **annual cycle** along the time axis of the monthly datasets
//!   (Sec. V-C, period 12);
//! * **topography-coupled variance** — rough terrain ⇒ locally rough fields,
//!   the pattern the quantization-bin classifier feeds on (Sec. V-D).
//!
//! Every generator is deterministic in its seed, and each Table III dataset
//! has a paper-sized default plus arbitrary-dims variants so experiments can
//! scale down to CI-friendly sizes.

pub mod datasets;
pub mod terrain;

pub use datasets::{
    cesm_t, hurricane_t, relhum, salt, soilliq, ssh, tsfc, ClimateDataset, DatasetKind,
};
pub use terrain::{terrain_field, TerrainSpec};

/// CESM's standard fill value for invalid points.
pub const FILL_VALUE: f32 = 9.96921e36;
