//! The six Table III datasets, synthesized.
//!
//! Each generator documents which paper-relevant property it engineers.
//! Dimensions default to the paper's sizes; every generator also accepts
//! explicit dims so experiments can scale down (see EXPERIMENTS.md).

use crate::terrain::{gradient_magnitude, terrain_field, TerrainSpec};
use crate::FILL_VALUE;
use cliz_grid::{Grid, MaskMap, Shape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which Table III variable a dataset instance represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Sea surface height (ocean model, monthly, masked, periodic).
    Ssh,
    /// Atmosphere temperature snapshot (26 pressure levels).
    CesmT,
    /// Atmosphere relative humidity snapshot.
    Relhum,
    /// Soil liquid water (land model, monthly, masked, periodic, 4-D).
    Soilliq,
    /// Snow/ice surface temperature (ice model, monthly, masked, periodic).
    Tsfc,
    /// Temperature around Hurricane Isabel (no mask, no periodicity).
    HurricaneT,
    /// Ocean salinity (ocean model, monthly, masked, periodic, 4-D).
    Salt,
}

impl DatasetKind {
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Ssh => "SSH",
            DatasetKind::CesmT => "CESM-T",
            DatasetKind::Relhum => "RELHUM",
            DatasetKind::Soilliq => "SOILLIQ",
            DatasetKind::Tsfc => "Tsfc",
            DatasetKind::HurricaneT => "Hurricane-T",
            DatasetKind::Salt => "SALT",
        }
    }

    /// Paper Table III dimensions, in this crate's storage order.
    pub fn paper_dims(&self) -> Vec<usize> {
        match self {
            DatasetKind::Ssh => vec![384, 320, 1032],       // lat × lon × time
            DatasetKind::CesmT => vec![26, 1800, 3600],     // height × lat × lon
            DatasetKind::Relhum => vec![26, 1800, 3600],
            DatasetKind::Soilliq => vec![360, 15, 96, 144], // time × depth × lat × lon
            DatasetKind::Tsfc => vec![384, 320, 360],       // lat × lon × time
            DatasetKind::HurricaneT => vec![100, 500, 500], // height × y × x
            DatasetKind::Salt => vec![30, 384, 320, 120], // depth × lat × lon × time
        }
    }
}

/// A generated variable plus the metadata CliZ's tuner consumes.
#[derive(Clone, Debug)]
pub struct ClimateDataset {
    pub kind: DatasetKind,
    pub data: Grid<f32>,
    pub mask: Option<MaskMap>,
    /// Axis carrying time, when the variable has one.
    pub time_axis: Option<usize>,
    /// The cycle length the generator injected (12 = annual on monthly data).
    pub nominal_period: Option<usize>,
}

impl ClimateDataset {
    /// Invalid fraction, 0 when unmasked.
    pub fn invalid_fraction(&self) -> f64 {
        self.mask.as_ref().map_or(0.0, |m| m.invalid_fraction())
    }
}

/// Sea surface height, `[lat, lon, time]`. Engineering targets: land mask
/// (fill values), annual cycle along time, smooth mesoscale spatial field.
pub fn ssh(dims: &[usize; 3], seed: u64) -> ClimateDataset {
    let [nlat, nlon, ntime] = *dims;
    let terrain = terrain_field(nlat, nlon, TerrainSpec { seed, ..TerrainSpec::default() });
    let rough = gradient_magnitude(&terrain);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x55AA);

    let shape = Shape::new(dims);
    let n = shape.len();
    let mut data = Vec::with_capacity(n);
    let mut valid = Vec::with_capacity(n);
    for lat in 0..nlat {
        let lat_frac = lat as f64 / nlat as f64;
        // Hemispheres out of phase, stronger cycle at mid-latitudes.
        let hemi = if lat < nlat / 2 { 0.0 } else { std::f64::consts::PI };
        for lon in 0..nlon {
            let t2 = terrain.get(&[lat, lon]);
            let is_ocean = t2 <= 0.2;
            // Mesoscale circulation: smooth in space.
            let gyre = 0.6
                * ((lat as f64 * 0.045).sin() * (lon as f64 * 0.03).cos()
                    + 0.5 * (lon as f64 * 0.011).sin());
            let r = rough.get(&[lat, lon]) as f64;
            // Per-location seasonal amplitude/phase/harmonics keyed to the
            // local seabed: the annual cycle repeats exactly at each point
            // but differs *between* points, so spatial interpolation cannot
            // absorb it — only the template/residual split can (Sec. V-C).
            let amp = 0.15 + 0.12 * (lat_frac * std::f64::consts::PI).sin() + 0.8 * r;
            let phase = hemi + t2 as f64 * 2.0;
            let second_harmonic = 0.4 * amp * (t2 as f64 * 5.0).sin();
            for t in 0..ntime {
                if !is_ocean {
                    data.push(FILL_VALUE);
                    valid.push(false);
                    continue;
                }
                let wt = std::f64::consts::TAU * (t % 12) as f64 / 12.0;
                let season = amp * (wt + phase).sin() + second_harmonic * (2.0 * wt + phase).cos();
                let noise: f64 = rng.random_range(-1.0..1.0) * (0.002 + 0.02 * r);
                data.push((gyre + season + 1e-4 * t as f64 + noise) as f32);
                valid.push(true);
            }
        }
    }
    let data = Grid::from_vec(shape.clone(), data);
    let mask = MaskMap::from_flags(shape, valid);
    ClimateDataset {
        kind: DatasetKind::Ssh,
        data,
        mask: Some(mask),
        time_axis: Some(2),
        nominal_period: Some(12),
    }
}

/// Atmosphere temperature `[height, lat, lon]`. Engineering target: the
/// Sec. V-B anisotropy — big jumps between pressure levels (~4.4 K), tiny
/// steps along lat (~0.05 K) and lon (~0.017 K) — plus topography-coupled
/// texture near the surface (Sec. V-D).
pub fn cesm_t(dims: &[usize; 3], seed: u64) -> ClimateDataset {
    atmosphere_field(DatasetKind::CesmT, dims, seed, 255.0, 60.0, 0.15)
}

/// Atmosphere relative humidity `[height, lat, lon]`: same structure as
/// CESM-T with a noisier texture and values clamped to [0, 100].
pub fn relhum(dims: &[usize; 3], seed: u64) -> ClimateDataset {
    let mut d = atmosphere_field(DatasetKind::Relhum, dims, seed ^ 0x9e37, 55.0, 35.0, 1.2);
    for v in d.data.as_mut_slice() {
        *v = v.clamp(0.0, 100.0);
    }
    d
}

fn atmosphere_field(
    kind: DatasetKind,
    dims: &[usize; 3],
    seed: u64,
    base: f64,
    lat_amplitude: f64,
    noise_scale: f64,
) -> ClimateDataset {
    let [nh, nlat, nlon] = *dims;
    let terrain = terrain_field(nlat, nlon, TerrainSpec { seed, ..TerrainSpec::default() });
    let rough = gradient_magnitude(&terrain);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA7A7);

    // Per-level profile: mean step ≈ 4.4 (paper's measured height variation),
    // alternating lapses so it is not a pure ramp.
    let mut level = vec![0.0f64; nh];
    let mut acc = base;
    for (h, l) in level.iter_mut().enumerate() {
        *l = acc;
        acc += 4.4 * if h % 7 == 3 { -0.6 } else { 1.0 };
    }
    // Lat profile: warm equator, ±lat_amplitude/2 swing.
    let latp: Vec<f64> = (0..nlat)
        .map(|i| lat_amplitude / 2.0 * ((i as f64 / nlat as f64) * std::f64::consts::PI).sin())
        .collect();
    // Lon waves: small amplitude, long wavelength.
    let lonp: Vec<f64> = (0..nlon)
        .map(|i| {
            2.5 * (i as f64 / nlon as f64 * std::f64::consts::TAU * 3.0).sin()
                + 1.5 * (i as f64 / nlon as f64 * std::f64::consts::TAU * 7.0).cos()
        })
        .collect();

    let shape = Shape::new(dims);
    let mut data = Vec::with_capacity(shape.len());
    for h in 0..nh {
        // Surface-coupled term decays with height.
        let surf_w = (-(h as f64) / 6.0).exp();
        for lat in 0..nlat {
            for lon in 0..nlon {
                let topo = terrain.get(&[lat, lon]) as f64;
                let r = rough.get(&[lat, lon]) as f64;
                let noise: f64 = rng.random_range(-1.0..1.0);
                let v = level[h]
                    + latp[lat]
                    + lonp[lon]
                    - 6.0 * topo.max(0.0) * surf_w
                    + noise * noise_scale * (0.3 + 3.0 * r) * surf_w;
                data.push(v as f32);
            }
        }
    }
    ClimateDataset {
        kind,
        data: Grid::from_vec(shape, data),
        mask: None,
        time_axis: None,
        nominal_period: None,
    }
}

/// Soil liquid water `[time, depth, lat, lon]` — the land-model variable
/// whose ocean points are all invalid (the paper notes ~70% of Earth is
/// masked for it, driving CliZ's biggest win).
pub fn soilliq(dims: &[usize; 4], seed: u64) -> ClimateDataset {
    let [ntime, ndepth, nlat, nlon] = *dims;
    let terrain = terrain_field(nlat, nlon, TerrainSpec { seed, ..TerrainSpec::default() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50_11);

    let shape = Shape::new(dims);
    let mut data = Vec::with_capacity(shape.len());
    let mut valid = Vec::with_capacity(shape.len());
    for t in 0..ntime {
        let season = (std::f64::consts::TAU * (t % 12) as f64 / 12.0).cos();
        for d in 0..ndepth {
            let depth_w = 1.0 / (1.0 + d as f64 * 0.35);
            for lat in 0..nlat {
                for lon in 0..nlon {
                    let topo = terrain.get(&[lat, lon]) as f64;
                    // Land = elevated terrain; threshold chosen so oceans +
                    // inland seas dominate, like the real variable.
                    let is_land = topo > 0.2;
                    if !is_land {
                        data.push(FILL_VALUE);
                        valid.push(false);
                        continue;
                    }
                    let wet = 18.0 * (topo - 0.2) * depth_w;
                    let cyc = 5.0 * season * depth_w;
                    let noise: f64 = rng.random_range(-0.2..0.2);
                    data.push((wet + cyc + noise).max(0.0) as f32);
                    valid.push(true);
                }
            }
        }
    }
    let mask = MaskMap::from_flags(shape.clone(), valid);
    ClimateDataset {
        kind: DatasetKind::Soilliq,
        data: Grid::from_vec(shape, data),
        mask: Some(mask),
        time_axis: Some(0),
        nominal_period: Some(12),
    }
}

/// Ocean salinity `[depth, lat, lon, time]` — a second ocean-model variable
/// sharing SSH's mask/periodicity structure, used to demonstrate the
/// paper's "one offline tuning per climate model, reused across fields"
/// workflow across *different* variables of the same model.
pub fn salt(dims: &[usize; 4], seed: u64) -> ClimateDataset {
    let [ndepth, nlat, nlon, ntime] = *dims;
    let terrain = terrain_field(nlat, nlon, TerrainSpec { seed, ..TerrainSpec::default() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A17);

    let shape = Shape::new(dims);
    let mut data = Vec::with_capacity(shape.len());
    let mut valid = Vec::with_capacity(shape.len());
    for d in 0..ndepth {
        // Halocline: salinity rises then stabilizes with depth.
        let depth_base = 33.0 + 2.0 * (1.0 - (-(d as f64) / 3.0).exp());
        // The seasonal cycle penetrates the mixed layer (slow decay).
        let season_w = (-(d as f64) / 6.0).exp();
        for lat in 0..nlat {
            let lat_frac = lat as f64 / nlat as f64;
            // Evaporation-dominated subtropics are saltier.
            let lat_term = 1.2 * (2.0 * std::f64::consts::PI * lat_frac).cos();
            for lon in 0..nlon {
                let t2 = terrain.get(&[lat, lon]);
                // Deeper cells are masked under shallow seabeds too.
                let is_water = (t2 as f64) < 0.2 - 0.05 * d as f64 / ndepth as f64;
                let phase = t2 as f64 * 3.0;
                for t in 0..ntime {
                    if !is_water {
                        data.push(FILL_VALUE);
                        valid.push(false);
                        continue;
                    }
                    let wt = std::f64::consts::TAU * (t % 12) as f64 / 12.0;
                    let season = 0.6 * season_w * (wt + phase).sin();
                    let noise: f64 = rng.random_range(-0.01..0.01);
                    data.push((depth_base + lat_term + season + noise) as f32);
                    valid.push(true);
                }
            }
        }
    }
    let mask = MaskMap::from_flags(shape.clone(), valid);
    ClimateDataset {
        kind: DatasetKind::Salt,
        data: Grid::from_vec(shape, data),
        mask: Some(mask),
        time_axis: Some(3),
        nominal_period: Some(12),
    }
}

/// Snow/ice surface temperature `[lat, lon, time]`: valid only near the
/// poles and on high terrain; strong annual cycle.
pub fn tsfc(dims: &[usize; 3], seed: u64) -> ClimateDataset {
    let [nlat, nlon, ntime] = *dims;
    let terrain = terrain_field(nlat, nlon, TerrainSpec { seed, ..TerrainSpec::default() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7afc);

    let shape = Shape::new(dims);
    let mut data = Vec::with_capacity(shape.len());
    let mut valid = Vec::with_capacity(shape.len());
    for lat in 0..nlat {
        let lat_frac = lat as f64 / nlat as f64;
        let polar = lat_frac < 0.15 || lat_frac > 0.85;
        // Colder toward poles.
        let lat_temp = -25.0 + 20.0 * (lat_frac * std::f64::consts::PI).sin();
        for lon in 0..nlon {
            let topo = terrain.get(&[lat, lon]) as f64;
            let icy = polar || topo > 0.75;
            for t in 0..ntime {
                if !icy {
                    data.push(FILL_VALUE);
                    valid.push(false);
                    continue;
                }
                let hemi = if lat_frac < 0.5 { 0.0 } else { std::f64::consts::PI };
                let season =
                    12.0 * (std::f64::consts::TAU * (t % 12) as f64 / 12.0 + hemi).cos();
                let noise: f64 = rng.random_range(-0.4..0.4);
                data.push((lat_temp - 8.0 * topo.max(0.0) + season + noise) as f32);
                valid.push(true);
            }
        }
    }
    let mask = MaskMap::from_flags(shape.clone(), valid);
    ClimateDataset {
        kind: DatasetKind::Tsfc,
        data: Grid::from_vec(shape, data),
        mask: Some(mask),
        time_axis: Some(2),
        nominal_period: Some(12),
    }
}

/// Hurricane temperature `[height, y, x]`: a warm-core vortex with spiral
/// bands — rough everywhere, no mask, no periodicity (paper Sec. VII-C3
/// notes convection destroys the topographic patterns).
pub fn hurricane_t(dims: &[usize; 3], seed: u64) -> ClimateDataset {
    let [nh, ny, nx] = *dims;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4444);
    let (cy, cx) = (ny as f64 / 2.0, nx as f64 / 2.0);
    let sigma = nx as f64 / 6.0;

    let shape = Shape::new(dims);
    let mut data = Vec::with_capacity(shape.len());
    for h in 0..nh {
        let base = 300.0 - 0.65 * h as f64;
        let core_amp = 8.0 * (-(h as f64 - nh as f64 * 0.6).powi(2) / (nh as f64)).exp();
        for y in 0..ny {
            for x in 0..nx {
                let dy = y as f64 - cy;
                let dx = x as f64 - cx;
                let r = (dx * dx + dy * dy).sqrt();
                let theta = dy.atan2(dx);
                let core = core_amp * (-(r * r) / (2.0 * sigma * sigma)).exp();
                let spiral =
                    1.5 * ((r / sigma * 4.0 - 2.0 * theta).sin()) * (-(r) / (3.0 * sigma)).exp();
                let noise: f64 = rng.random_range(-0.3..0.3);
                data.push((base + core + spiral + noise) as f32);
            }
        }
    }
    ClimateDataset {
        kind: DatasetKind::HurricaneT,
        data: Grid::from_vec(shape, data),
        mask: None,
        time_axis: None,
        nominal_period: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::dimension_smoothness;

    #[test]
    fn ssh_has_mask_and_cycle() {
        let d = ssh(&[48, 40, 72], 7);
        let frac = d.invalid_fraction();
        assert!(frac > 0.05 && frac < 0.7, "land fraction {frac}");
        // Fill values only at masked positions.
        let m = d.mask.as_ref().unwrap();
        for (i, &v) in d.data.as_slice().iter().enumerate() {
            assert_eq!(v == FILL_VALUE, !m.is_valid(i));
        }
        // Annual cycle: value at (lat,lon,t) close to value at t+12.
        let mut diffs = 0.0f64;
        let mut n = 0usize;
        for lat in 0..48 {
            for t in 0..60 {
                let i = d.data.shape().index_of(&[lat, 10, t]);
                let j = d.data.shape().index_of(&[lat, 10, t + 12]);
                if m.is_valid(i) {
                    diffs += (d.data.as_slice()[i] - d.data.as_slice()[j]).abs() as f64;
                    n += 1;
                }
            }
        }
        if n > 0 {
            assert!(diffs / n as f64 <= 0.2, "periodicity too weak: {}", diffs / n as f64);
        }
    }

    #[test]
    fn cesm_t_smoothness_anisotropy() {
        let d = cesm_t(&[26, 120, 240], 7);
        let all = MaskMap::all_valid(d.data.shape().clone());
        let s = dimension_smoothness(&d.data, &all);
        // Height must be far rougher than lat/lon (paper: 4.425 vs 0.05/0.017).
        assert!(
            s[0].mean_abs_diff > 5.0 * s[1].mean_abs_diff,
            "height {} vs lat {}",
            s[0].mean_abs_diff,
            s[1].mean_abs_diff
        );
        assert!(s[0].mean_abs_diff > 5.0 * s[2].mean_abs_diff);
        // Height step magnitude in the right ballpark.
        assert!(s[0].mean_abs_diff > 2.0 && s[0].mean_abs_diff < 10.0);
    }

    #[test]
    fn relhum_in_physical_range() {
        let d = relhum(&[8, 40, 80], 3);
        assert!(d
            .data
            .as_slice()
            .iter()
            .all(|&v| (0.0..=100.0).contains(&v)));
    }

    #[test]
    fn soilliq_mostly_masked() {
        let d = soilliq(&[24, 5, 32, 48], 7);
        let frac = d.invalid_fraction();
        // Paper: ~70% of the surface is water for the land model.
        assert!(frac > 0.4, "invalid fraction {frac}");
        assert_eq!(d.time_axis, Some(0));
        assert_eq!(d.data.shape().ndim(), 4);
    }

    #[test]
    fn tsfc_polar_mask() {
        let d = tsfc(&[60, 40, 36], 7);
        let m = d.mask.as_ref().unwrap();
        // Polar rows fully valid, temperate rows mostly invalid.
        let row_valid = |lat: usize| {
            (0..40)
                .map(|lon| m.is_valid(d.data.shape().index_of(&[lat, lon, 0])) as usize)
                .sum::<usize>()
        };
        assert_eq!(row_valid(2), 40);
        assert!(row_valid(30) < 20);
    }

    #[test]
    fn hurricane_has_warm_core() {
        let d = hurricane_t(&[20, 64, 64], 7);
        let center = d.data.get(&[12, 32, 32]);
        let edge = d.data.get(&[12, 2, 2]);
        assert!(center > edge + 2.0, "core {center} vs edge {edge}");
        assert!(d.mask.is_none());
    }

    #[test]
    fn salt_shares_ocean_model_structure() {
        let d = salt(&[6, 32, 40, 36], 7);
        assert_eq!(d.data.shape().ndim(), 4);
        assert_eq!(d.time_axis, Some(3));
        assert_eq!(d.nominal_period, Some(12));
        let frac = d.invalid_fraction();
        assert!(frac > 0.1 && frac < 0.9, "invalid fraction {frac}");
        // Salinity in a physical range on valid points.
        let m = d.mask.as_ref().unwrap();
        for (i, &v) in d.data.as_slice().iter().enumerate() {
            if m.is_valid(i) {
                assert!((25.0..45.0).contains(&v), "salinity {v}");
            } else {
                assert_eq!(v, FILL_VALUE);
            }
        }
        // Deeper masks are supersets of surface masks (shallow seabeds).
        let shape = d.data.shape();
        for lat in 0..32 {
            for lon in 0..40 {
                let surf = m.is_valid(shape.index_of(&[0, lat, lon, 0]));
                let deep = m.is_valid(shape.index_of(&[5, lat, lon, 0]));
                assert!(surf || !deep, "water at depth but not surface");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = ssh(&[24, 20, 36], 42);
        let b = ssh(&[24, 20, 36], 42);
        assert_eq!(a.data, b.data);
        let c = ssh(&[24, 20, 36], 43);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn paper_dims_match_table3() {
        assert_eq!(DatasetKind::Ssh.paper_dims(), vec![384, 320, 1032]);
        assert_eq!(DatasetKind::CesmT.paper_dims(), vec![26, 1800, 3600]);
        assert_eq!(DatasetKind::Soilliq.paper_dims(), vec![360, 15, 96, 144]);
        assert_eq!(DatasetKind::HurricaneT.paper_dims(), vec![100, 500, 500]);
    }
}
