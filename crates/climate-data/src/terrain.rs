//! Spectral terrain synthesis.
//!
//! A smooth pseudo-topography is built as a sum of random-phase sinusoids
//! with a power-law amplitude spectrum (`1/f^β`), the classic fractal-terrain
//! recipe. Thresholding the field yields continent-like land/ocean masks;
//! its gradient magnitude provides the "roughness" that modulates local
//! variance in the generated climate variables.

use cliz_grid::{Grid, Shape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Terrain synthesis parameters.
#[derive(Clone, Copy, Debug)]
pub struct TerrainSpec {
    /// Number of sinusoidal octaves summed.
    pub modes: usize,
    /// Spectral slope β: larger = smoother terrain.
    pub beta: f64,
    /// RNG seed (fully determines the terrain).
    pub seed: u64,
}

impl Default for TerrainSpec {
    fn default() -> Self {
        Self {
            modes: 24,
            beta: 1.6,
            seed: 0xC11A_7E00,
        }
    }
}

/// Generates an `h × w` terrain height field, roughly zero-mean with O(1)
/// amplitude. Positive values read as "land", negative as "ocean";
/// the global land fraction comes out near 30% with the default threshold
/// used by the dataset generators.
pub fn terrain_field(h: usize, w: usize, spec: TerrainSpec) -> Grid<f32> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Random plane waves: frequency grows per mode, amplitude ~ 1/f^β.
    struct Mode {
        kx: f64,
        ky: f64,
        phase: f64,
        amp: f64,
    }
    let modes: Vec<Mode> = (0..spec.modes)
        .map(|m| {
            let f = 1.0 + m as f64 * 0.75;
            let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
            Mode {
                kx: f * theta.cos(),
                ky: f * theta.sin(),
                phase: rng.random_range(0.0..std::f64::consts::TAU),
                amp: 1.0 / f.powf(spec.beta),
            }
        })
        .collect();
    let norm: f64 = modes.iter().map(|m| m.amp * m.amp).sum::<f64>().sqrt();

    Grid::from_fn(Shape::new(&[h, w]), |c| {
        let y = c[0] as f64 / h as f64 * std::f64::consts::TAU;
        let x = c[1] as f64 / w as f64 * std::f64::consts::TAU;
        let mut v = 0.0f64;
        for m in &modes {
            v += m.amp * (m.kx * x + m.ky * y + m.phase).sin();
        }
        (v / norm) as f32
    })
}

/// Central-difference gradient magnitude of a 2-D field — the "roughness"
/// driver for topography-coupled variance.
pub fn gradient_magnitude(field: &Grid<f32>) -> Grid<f32> {
    assert_eq!(field.shape().ndim(), 2);
    let dims = field.shape().dims();
    let (h, w) = (dims[0], dims[1]);
    Grid::from_fn(field.shape().clone(), |c| {
        let (r, cc) = (c[0], c[1]);
        let up = field.get(&[r.saturating_sub(1), cc]);
        let down = field.get(&[(r + 1).min(h - 1), cc]);
        let left = field.get(&[r, cc.saturating_sub(1)]);
        let right = field.get(&[r, (cc + 1).min(w - 1)]);
        (((down - up) / 2.0).powi(2) + ((right - left) / 2.0).powi(2)).sqrt()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = terrain_field(32, 48, TerrainSpec::default());
        let b = terrain_field(32, 48, TerrainSpec::default());
        assert_eq!(a, b);
        let c = terrain_field(
            32,
            48,
            TerrainSpec {
                seed: 99,
                ..TerrainSpec::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn roughly_zero_mean_unit_scale() {
        let t = terrain_field(64, 64, TerrainSpec::default());
        let mean: f64 = t.as_slice().iter().map(|&v| v as f64).sum::<f64>() / t.len() as f64;
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!(var > 0.05 && var < 5.0, "variance {var}");
    }

    #[test]
    fn land_fraction_plausible() {
        let t = terrain_field(96, 96, TerrainSpec::default());
        let land = t.as_slice().iter().filter(|&&v| v > 0.2).count();
        let frac = land as f64 / t.len() as f64;
        // Continents, not a water-world and not Pangaea-covered-everything.
        assert!(frac > 0.05 && frac < 0.6, "land fraction {frac}");
    }

    #[test]
    fn terrain_is_smooth() {
        let t = terrain_field(64, 64, TerrainSpec::default());
        let g = gradient_magnitude(&t);
        let max_grad = g.as_slice().iter().cloned().fold(0.0f32, f32::max);
        // Smooth by construction: adjacent-cell steps are small vs amplitude.
        assert!(max_grad < 1.0, "max gradient {max_grad}");
    }

    #[test]
    fn gradient_highlights_slopes() {
        // A ramp has uniform nonzero gradient; a constant has zero.
        let ramp = Grid::from_fn(Shape::new(&[8, 8]), |c| c[1] as f32);
        let g = gradient_magnitude(&ramp);
        assert!((g.get(&[4, 4]) - 1.0).abs() < 1e-6);
        let flat = Grid::filled(Shape::new(&[8, 8]), 3.0f32);
        assert!(gradient_magnitude(&flat).as_slice().iter().all(|&v| v == 0.0));
    }
}
