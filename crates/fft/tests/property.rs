//! Property tests: transform invariants for arbitrary signals and lengths.

use cliz_fft::{fft, ifft, Complex};
use proptest::prelude::*;

fn signal_strategy() -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..300)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ifft(fft(x)) == x for every length, including non-powers-of-two
    /// (Bluestein path).
    #[test]
    fn inverse_roundtrip(x in signal_strategy()) {
        let mut buf = x.clone();
        fft(&mut buf);
        ifft(&mut buf);
        let scale = x.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
        for (a, b) in x.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-9 * scale * x.len() as f64);
        }
    }

    /// Linearity: fft(a + b) == fft(a) + fft(b).
    #[test]
    fn linearity(pairs in prop::collection::vec(
        ((-100f64..100.0, -100f64..100.0), (-100f64..100.0, -100f64..100.0)), 2..128)
    ) {
        let a: Vec<Complex> = pairs.iter().map(|((re, im), _)| Complex::new(*re, *im)).collect();
        let b: Vec<Complex> = pairs.iter().map(|(_, (re, im))| Complex::new(*re, *im)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        fft(&mut fa);
        let mut fb = b.clone();
        fft(&mut fb);
        let mut fsum = sum;
        fft(&mut fsum);
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fsum) {
            prop_assert!((*x + *y - *z).abs() < 1e-6 * (1.0 + z.abs()));
        }
    }

    /// Parseval: energy is preserved (up to the 1/n convention).
    #[test]
    fn parseval(x in signal_strategy()) {
        let n = x.len() as f64;
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut f = x.clone();
        fft(&mut f);
        let freq: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() <= 1e-9 * (1.0 + time) * n);
    }

    /// DC bin equals the plain sum of the signal.
    #[test]
    fn dc_bin_is_sum(x in signal_strategy()) {
        let sum = x.iter().fold(Complex::ZERO, |a, &b| a + b);
        let mut f = x.clone();
        fft(&mut f);
        let scale = 1.0 + sum.abs() + x.iter().map(|z| z.abs()).sum::<f64>();
        prop_assert!((f[0] - sum).abs() < 1e-8 * scale);
    }
}
