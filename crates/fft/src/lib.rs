//! FFT and periodicity estimation for CliZ.
//!
//! The paper uses FFTW to estimate the dominant period of climate variables
//! along the time dimension (Sec. VI-D): sample a handful of time rows,
//! transform them, and pick the smallest frequency whose amplitude peaks —
//! e.g. the SSH dataset (1032 monthly snapshots) peaks at frequency 86,
//! giving a period of 1032/86 = 12 months.
//!
//! This crate is a from-scratch substitute: a [`Complex`] type, an iterative
//! radix-2 FFT for power-of-two lengths, Bluestein's chirp-z algorithm for
//! arbitrary lengths, and the row-sampling [`period`] estimator used by the
//! CliZ auto-tuner.

pub mod complex;
pub mod period;
pub mod transform;

pub use complex::Complex;
pub use period::{estimate_period, PeriodEstimate, PeriodSpec};
pub use transform::{fft, ifft, real_fft_magnitudes};
