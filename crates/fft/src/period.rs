//! Period estimation along the time axis (Sec. VI-D).
//!
//! CliZ samples a handful of rows along the time dimension, transforms each,
//! averages the one-sided amplitude spectra, and looks for a dominant peak.
//! Multiple harmonics appear at integer multiples of the fundamental
//! frequency; the paper adopts "the peak with the smallest frequency, which
//! means the largest period". A significance test rejects aperiodic data.

use crate::transform::real_fft_magnitudes;
use cliz_grid::{Grid, LineIter, MaskMap};

/// Tuning knobs for the estimator.
#[derive(Clone, Copy, Debug)]
pub struct PeriodSpec {
    /// How many rows (lines along the time axis) to sample. The paper's
    /// walkthrough uses 10.
    pub rows: usize,
    /// A frequency bin counts as a "high peak" when its averaged amplitude is
    /// at least this fraction of the global maximum.
    pub peak_fraction: f64,
    /// The global peak must exceed `significance × median amplitude` for the
    /// data to be declared periodic at all.
    pub significance: f64,
    /// Deterministic row-selection seed (rows are taken at evenly spaced
    /// offsets scrambled by this value).
    pub seed: u64,
}

impl Default for PeriodSpec {
    fn default() -> Self {
        Self {
            rows: 10,
            peak_fraction: 0.7,
            significance: 8.0,
            seed: 0x5eed_c11f,
        }
    }
}

/// Outcome of period detection.
#[derive(Clone, Debug, PartialEq)]
pub struct PeriodEstimate {
    /// Detected period length in samples (e.g. 12 for monthly data with an
    /// annual cycle), or `None` when no significant peak exists.
    pub period: Option<usize>,
    /// Frequency bin of the adopted peak (0 when aperiodic).
    pub peak_frequency: usize,
    /// Averaged one-sided amplitude spectrum (index = frequency bin), kept so
    /// the Fig. 8 harness can plot it.
    pub spectrum: Vec<f64>,
}

/// Estimates the dominant period of `data` along `time_axis`.
///
/// Rows containing any masked point are skipped (fill values would otherwise
/// dominate the spectrum); if every sampled row is masked the data is
/// reported aperiodic.
pub fn estimate_period(
    data: &Grid<f32>,
    mask: &MaskMap,
    time_axis: usize,
    spec: PeriodSpec,
) -> PeriodEstimate {
    let n = data.shape().dim(time_axis);
    if n < 4 {
        return PeriodEstimate {
            period: None,
            peak_frequency: 0,
            spectrum: Vec::new(),
        };
    }

    let lines: Vec<_> = LineIter::new(data.shape(), time_axis).collect();
    let total = lines.len();
    let want = spec.rows.max(1).min(total);

    // Deterministic low-discrepancy row choice: golden-ratio stepping.
    // A plain `total/want` stride aliases with structured grids (e.g. on a
    // [depth, lat, lon, time] ocean variable it lands on one (lat, lon)
    // column at every depth — all land or all water), so masked rows could
    // systematically exhaust the sample. The irrational step spreads
    // candidates across the grid, and we allow extra attempts so invalid
    // rows are skipped without starving the spectrum.
    let step = (((total as f64) * 0.618_033_988_749_895) as usize).max(1) | 1;
    let offset = (spec.seed as usize) % total;

    let buf = data.as_slice();
    let flags = mask.as_slice();
    let mut spectrum = vec![0.0f64; n / 2 + 1];
    let mut used = 0usize;
    let mut attempts = 0usize;
    let max_attempts = total.min(want * 64);
    while used < want && attempts < max_attempts {
        let line = lines[(offset + attempts * step) % total];
        attempts += 1;
        let all_valid = (0..line.len).all(|k| flags[line.base + k * line.stride]);
        if !all_valid {
            continue;
        }
        let row: Vec<f64> = line.gather(buf).into_iter().map(f64::from).collect();
        // Remove the mean so the DC bin doesn't dwarf the cycle.
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        let centered: Vec<f64> = row.iter().map(|v| v - mean).collect();
        let mags = real_fft_magnitudes(&centered);
        for (s, m) in spectrum.iter_mut().zip(mags) {
            *s += m;
        }
        used += 1;
    }

    if used == 0 {
        return PeriodEstimate {
            period: None,
            peak_frequency: 0,
            spectrum,
        };
    }
    for s in spectrum.iter_mut() {
        *s /= used as f64;
    }

    // Peak picking over non-DC bins.
    let body = &spectrum[1..];
    let max_amp = body.iter().cloned().fold(0.0f64, f64::max);
    let mut sorted: Vec<f64> = body.to_vec();
    sorted.sort_by(f64::total_cmp);
    // An empty body (n < 2) falls through to the `max_amp <= 0.0` bail-out.
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);

    if max_amp <= 0.0 || max_amp < spec.significance * median.max(f64::MIN_POSITIVE) {
        return PeriodEstimate {
            period: None,
            peak_frequency: 0,
            spectrum,
        };
    }

    // Smallest frequency among high peaks = fundamental = largest period.
    let threshold = spec.peak_fraction * max_amp;
    let fundamental = body
        .iter()
        .position(|&a| a >= threshold)
        .map(|p| p + 1)
        .unwrap_or(0);

    if fundamental == 0 {
        return PeriodEstimate {
            period: None,
            peak_frequency: 0,
            spectrum,
        };
    }
    let period = ((n as f64 / fundamental as f64).round() as usize).max(2);
    // A "period" as long as the axis is no period at all.
    if period >= n {
        return PeriodEstimate {
            period: None,
            peak_frequency: fundamental,
            spectrum,
        };
    }
    PeriodEstimate {
        period: Some(period),
        peak_frequency: fundamental,
        spectrum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    /// 2-D grid: axis 1 is time with an exact 12-sample cycle.
    fn periodic_grid(rows: usize, n: usize, period: usize) -> Grid<f32> {
        Grid::from_fn(Shape::new(&[rows, n]), |c| {
            let phase = 2.0 * std::f64::consts::PI * c[1] as f64 / period as f64;
            (10.0 + c[0] as f64 + 3.0 * phase.sin()) as f32
        })
    }

    #[test]
    fn detects_annual_cycle_like_paper() {
        // 1032 monthly snapshots, period 12 => fundamental frequency 86.
        let g = periodic_grid(16, 1032, 12);
        let m = MaskMap::all_valid(g.shape().clone());
        let est = estimate_period(&g, &m, 1, PeriodSpec::default());
        assert_eq!(est.peak_frequency, 86);
        assert_eq!(est.period, Some(12));
    }

    #[test]
    fn detects_cycle_on_non_power_of_two() {
        let g = periodic_grid(8, 360, 12);
        let m = MaskMap::all_valid(g.shape().clone());
        let est = estimate_period(&g, &m, 1, PeriodSpec::default());
        assert_eq!(est.period, Some(12));
    }

    #[test]
    fn white_noise_is_aperiodic() {
        // Deterministic pseudo-noise via an LCG.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let shape = Shape::new(&[12, 512]);
        let n = shape.len();
        let g = Grid::from_vec(shape, (0..n).map(|_| next() as f32).collect());
        let m = MaskMap::all_valid(g.shape().clone());
        let est = estimate_period(&g, &m, 1, PeriodSpec::default());
        assert_eq!(est.period, None);
    }

    #[test]
    fn constant_data_is_aperiodic() {
        let g = Grid::filled(Shape::new(&[4, 256]), 7.0f32);
        let m = MaskMap::all_valid(g.shape().clone());
        let est = estimate_period(&g, &m, 1, PeriodSpec::default());
        assert_eq!(est.period, None);
    }

    #[test]
    fn masked_rows_are_skipped() {
        let g = periodic_grid(16, 240, 12);
        // Invalidate half the rows entirely; estimator must still find 12.
        let valid: Vec<bool> = (0..g.len()).map(|i| (i / 240) % 2 == 0).collect();
        let m = MaskMap::from_flags(g.shape().clone(), valid);
        let est = estimate_period(&g, &m, 1, PeriodSpec::default());
        assert_eq!(est.period, Some(12));
    }

    #[test]
    fn fully_masked_reports_aperiodic() {
        let g = periodic_grid(4, 120, 12);
        let m = MaskMap::from_flags(g.shape().clone(), vec![false; g.len()]);
        let est = estimate_period(&g, &m, 1, PeriodSpec::default());
        assert_eq!(est.period, None);
    }

    #[test]
    fn short_axis_rejected() {
        let g = Grid::filled(Shape::new(&[5, 3]), 1.0f32);
        let m = MaskMap::all_valid(g.shape().clone());
        assert_eq!(estimate_period(&g, &m, 1, PeriodSpec::default()).period, None);
    }
}
