//! Discrete Fourier transforms: iterative radix-2 plus Bluestein for
//! arbitrary lengths.
//!
//! Climate time axes are rarely powers of two (SSH has 1032 snapshots), so
//! the arbitrary-length path matters. Bluestein re-expresses an n-point DFT
//! as a convolution of length ≥ 2n−1, which is evaluated with the radix-2
//! kernel at the next power of two.

use crate::complex::Complex;

/// In-place forward DFT (negative-exponent convention):
/// `X[k] = Σ_j x[j] e^{-2πi jk/n}`. Handles any `n ≥ 1`.
pub fn fft(x: &mut [Complex]) {
    dft(x, false);
}

/// In-place inverse DFT, normalized by `1/n` so `ifft(fft(x)) == x`.
pub fn ifft(x: &mut [Complex]) {
    dft(x, true);
    let scale = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(scale);
    }
}

fn dft(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(x, inverse);
    } else {
        bluestein(x, inverse);
    }
}

/// Iterative Cooley–Tukey radix-2 with bit-reversal permutation.
fn radix2(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    let levels = n.trailing_zeros();

    // Bit-reversal permutation.
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - levels)) as usize;
        if j > i {
            x.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in x.chunks_exact_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's chirp-z transform for arbitrary n.
fn bluestein(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    let m = (2 * n - 1).next_power_of_two();
    let sign = if inverse { 1.0 } else { -1.0 };

    // Chirp c[j] = e^{sign * πi j² / n}. Compute j² mod 2n to avoid the
    // catastrophic angle blow-up for large j.
    let mut chirp = Vec::with_capacity(n);
    let two_n = 2 * n as u64;
    for j in 0..n as u64 {
        let jj = (j * j) % two_n;
        chirp.push(Complex::cis(sign * std::f64::consts::PI * jj as f64 / n as f64));
    }

    let mut a = vec![Complex::ZERO; m];
    for j in 0..n {
        a[j] = x[j] * chirp[j];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for j in 1..n {
        let c = chirp[j].conj();
        b[j] = c;
        b[m - j] = c;
    }

    radix2(&mut a, false);
    radix2(&mut b, false);
    for j in 0..m {
        a[j] = a[j] * b[j];
    }
    radix2(&mut a, true);
    let scale = 1.0 / m as f64;
    for (j, out) in x.iter_mut().enumerate() {
        *out = (a[j] * chirp[j]).scale(scale);
    }
}

/// Amplitude spectrum of a real signal: returns `|X[k]|` for
/// `k = 0 ..= n/2` (the one-sided spectrum the period estimator inspects).
pub fn real_fft_magnitudes(signal: &[f64]) -> Vec<f64> {
    let mut buf: Vec<Complex> = signal.iter().map(|&v| Complex::from(v)).collect();
    fft(&mut buf);
    buf.iter().take(signal.len() / 2 + 1).map(|z| z.abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    acc += v * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i * i % 7) as f64 * 0.11))
            .collect()
    }

    #[test]
    fn radix2_matches_naive() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = ramp(n);
            let mut got = x.clone();
            fft(&mut got);
            assert_close(&got, &naive_dft(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for n in [3usize, 5, 6, 7, 12, 86, 100, 129] {
            let x = ramp(n);
            let mut got = x.clone();
            fft(&mut got);
            assert_close(&got, &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn inverse_roundtrip_all_lengths() {
        for n in [1usize, 2, 3, 5, 8, 12, 86, 128, 1032] {
            let x = ramp(n);
            let mut buf = x.clone();
            fft(&mut buf);
            ifft(&mut buf);
            assert_close(&buf, &x, 1e-8 * n as f64);
        }
    }

    #[test]
    fn pure_tone_has_single_peak() {
        let n = 1032;
        let freq = 86; // 12-month cycle over 1032 monthly snapshots
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * freq as f64 * t as f64 / n as f64).sin())
            .collect();
        let mags = real_fft_magnitudes(&signal);
        let peak = mags
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, freq);
    }

    #[test]
    fn dc_signal_concentrates_at_zero() {
        let mags = real_fft_magnitudes(&[5.0; 48]);
        assert!((mags[0] - 5.0 * 48.0).abs() < 1e-9);
        assert!(mags[1..].iter().all(|&m| m < 1e-9));
    }

    #[test]
    fn parseval_energy_preserved() {
        let x = ramp(100);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = x.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 100.0;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }
}
