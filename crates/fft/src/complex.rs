//! Minimal double-precision complex arithmetic.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number over `f64`. Only the operations the FFT kernels need.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{i theta}` — the FFT twiddle factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude |z|.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, cheaper when only comparisons are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i^2 = -4 - 5.5i
        assert_eq!(a * b, Complex::new(-4.0, -5.5));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn cis_unit_circle() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
        assert!((z.abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }
}
