//! Console + CSV reporting.

use std::io::Write;
use std::path::PathBuf;

/// Writes experiment rows to stdout and mirrors them to
/// `target/experiments/<name>.csv`.
pub struct Report {
    file: Option<std::fs::File>,
}

impl Report {
    pub fn new(name: &str, header: &str) -> Self {
        let dir = PathBuf::from("target/experiments");
        let file = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::File::create(dir.join(format!("{name}.csv"))))
            .ok();
        let mut r = Self { file };
        if let Some(f) = r.file.as_mut() {
            let _ = writeln!(f, "{header}");
        }
        r
    }

    /// Logs a CSV row (comma-separated, matching the header).
    pub fn row(&mut self, csv: &str) {
        if let Some(f) = self.file.as_mut() {
            let _ = writeln!(f, "{csv}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_csv_file() {
        let mut r = Report::new("unit_test_report", "a,b");
        r.row("1,2");
        r.row("3,4");
        drop(r);
        let content =
            std::fs::read_to_string("target/experiments/unit_test_report.csv").unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }
}
