//! Tiny flag parser shared by the harness binaries (no clap offline).

/// Common harness flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct Args {
    /// Run at the paper's full dataset sizes instead of the scaled defaults.
    pub full: bool,
    /// Extra-small sizes for smoke testing (`--quick`).
    pub quick: bool,
}

impl Args {
    /// Parses `std::env::args()`. Unknown flags abort with usage.
    pub fn parse() -> Self {
        let mut out = Args::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--full" => out.full = true,
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    eprintln!("flags: --full (paper-size datasets)  --quick (smoke-test sizes)");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_scaled() {
        let a = Args::default();
        assert!(!a.full && !a.quick);
    }
}
