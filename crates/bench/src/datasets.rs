//! Dataset size policy for the harnesses.
//!
//! The paper's full sizes (Table III) reach 674 MB per variable; scaled
//! defaults keep every harness in CI territory while preserving the
//! structural properties (mask fraction, anisotropy, periodicity,
//! topography coupling) that drive each experiment's shape.

use cliz::data::{self, ClimateDataset, DatasetKind};

/// Size tier selected by the flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaledDims {
    Quick,
    Scaled,
    Full,
}

impl ScaledDims {
    pub fn from_args(args: &crate::Args) -> Self {
        if args.full {
            ScaledDims::Full
        } else if args.quick {
            ScaledDims::Quick
        } else {
            ScaledDims::Scaled
        }
    }
}

/// Builds a dataset at the chosen tier. Seeds are fixed so every harness
/// reports reproducible numbers.
pub fn scaled(kind: DatasetKind, tier: ScaledDims) -> ClimateDataset {
    use DatasetKind::*;
    use ScaledDims::*;
    let seed = 0xC11Au64;
    match (kind, tier) {
        (Ssh, Quick) => data::ssh(&[48, 40, 120], seed),
        (Ssh, Scaled) => data::ssh(&[96, 80, 360], seed),
        (Ssh, Full) => data::ssh(&[384, 320, 1032], seed),

        (CesmT, Quick) => data::cesm_t(&[13, 90, 180], seed),
        (CesmT, Scaled) => data::cesm_t(&[26, 240, 480], seed),
        (CesmT, Full) => data::cesm_t(&[26, 1800, 3600], seed),

        (Relhum, Quick) => data::relhum(&[13, 90, 180], seed),
        (Relhum, Scaled) => data::relhum(&[26, 240, 480], seed),
        (Relhum, Full) => data::relhum(&[26, 1800, 3600], seed),

        (Soilliq, Quick) => data::soilliq(&[36, 5, 32, 48], seed),
        (Soilliq, Scaled) => data::soilliq(&[120, 8, 48, 72], seed),
        (Soilliq, Full) => data::soilliq(&[360, 15, 96, 144], seed),

        (Tsfc, Quick) => data::tsfc(&[48, 40, 60], seed),
        (Tsfc, Scaled) => data::tsfc(&[96, 80, 180], seed),
        (Tsfc, Full) => data::tsfc(&[384, 320, 360], seed),

        (HurricaneT, Quick) => data::hurricane_t(&[20, 100, 100], seed),
        (HurricaneT, Scaled) => data::hurricane_t(&[50, 250, 250], seed),
        (HurricaneT, Full) => data::hurricane_t(&[100, 500, 500], seed),

        (Salt, Quick) => data::salt(&[6, 32, 28, 36], seed),
        (Salt, Scaled) => data::salt(&[15, 96, 80, 60], seed),
        (Salt, Full) => data::salt(&[30, 384, 320, 120], seed),
    }
}

/// The five datasets Fig. 10 sweeps.
pub fn fig10_kinds() -> Vec<DatasetKind> {
    vec![
        DatasetKind::Ssh,
        DatasetKind::CesmT,
        DatasetKind::Relhum,
        DatasetKind::Soilliq,
        DatasetKind::Tsfc,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_smaller_than_scaled() {
        for kind in fig10_kinds() {
            let q = scaled(kind, ScaledDims::Quick);
            let s = scaled(kind, ScaledDims::Scaled);
            assert!(q.data.len() < s.data.len(), "{:?}", kind);
        }
    }

    #[test]
    fn full_matches_table3() {
        // Spot check the smallest full dataset to avoid generating giants.
        let d = scaled(DatasetKind::Soilliq, ScaledDims::Full);
        assert_eq!(d.data.shape().dims(), DatasetKind::Soilliq.paper_dims().as_slice());
    }
}
