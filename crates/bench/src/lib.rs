//! Shared support for the experiment harness binaries.
//!
//! Each `fig*_*` / `table*_*` binary regenerates one table or figure from the
//! paper (see DESIGN.md's experiment index). They print paper-style rows to
//! stdout and mirror them as CSV under `target/experiments/` so
//! EXPERIMENTS.md can cite exact numbers.

pub mod args;
pub mod datasets;
pub mod report;
pub mod sweep;

pub use args::Args;
pub use datasets::{scaled, ScaledDims};
pub use report::Report;
pub use sweep::{rd_point, RdPoint};
