//! Rate-distortion measurement shared by the figure harnesses.

use cliz::data::ClimateDataset;
use cliz::metrics::{psnr, ssim, SsimSpec};
use cliz::prelude::*;

/// One point on a rate-distortion curve.
#[derive(Clone, Debug)]
pub struct RdPoint {
    pub compressor: &'static str,
    pub rel_eb: f64,
    pub compressed_bytes: usize,
    pub ratio: f64,
    pub bit_rate: f64,
    pub psnr_db: f64,
    pub ssim: f64,
    pub compress_s: f64,
    pub decompress_s: f64,
}

/// Runs one compressor at one relative tolerance on one dataset. The
/// tolerance is resolved on the valid value range for every compressor so
/// mask-blind baselines are held to the same fidelity target (distortion is
/// likewise measured on valid points only, as climate evaluations do).
pub fn rd_point(
    compressor: &dyn Compressor,
    dataset: &ClimateDataset,
    rel_eb: f64,
) -> RdPoint {
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), rel_eb);

    let t0 = std::time::Instant::now();
    let bytes = compressor
        .compress(&dataset.data, dataset.mask.as_ref(), bound)
        .unwrap_or_else(|e| panic!("{} failed: {e}", compressor.name()));
    let compress_s = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let recon = compressor
        .decompress(&bytes, dataset.mask.as_ref())
        .unwrap_or_else(|e| panic!("{} decode failed: {e}", compressor.name()));
    let decompress_s = t0.elapsed().as_secs_f64();

    let original = dataset.data.len() * std::mem::size_of::<f32>();
    RdPoint {
        compressor: compressor.name(),
        rel_eb,
        compressed_bytes: bytes.len(),
        ratio: original as f64 / bytes.len() as f64,
        bit_rate: bytes.len() as f64 * 8.0 / dataset.data.len() as f64,
        psnr_db: psnr(
            dataset.data.as_slice(),
            recon.as_slice(),
            dataset.mask.as_ref(),
        ),
        ssim: ssim(
            &dataset.data,
            &recon,
            dataset.mask.as_ref(),
            SsimSpec::default(),
        ),
        compress_s,
        decompress_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rd_point_sane() {
        let d = cliz::data::ssh(&[32, 24, 48], 3);
        let p = rd_point(&Cliz::new(), &d, 1e-3);
        assert!(p.ratio > 1.0);
        assert!(p.psnr_db > 40.0);
        assert!(p.ssim > 0.8);
        assert!((p.bit_rate - 32.0 / p.ratio).abs() < 1e-9);
    }
}
