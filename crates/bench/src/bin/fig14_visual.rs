//! Fig. 14: visual quality at a matched compression ratio (≈25x) — PGM dumps
//! of an SSH slice reconstructed by CliZ, SZ3, and QoZ, plus per-slice
//! PSNR/SSIM so the eyeball comparison has numbers attached.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig14_visual [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::grid::MaskMap;
use cliz::metrics::{write_pgm, SsimSpec};
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};
use std::path::Path;

/// Bisects the relative eb until the compression ratio is ≈ `target`.
fn match_ratio(
    compressor: &dyn Compressor,
    dataset: &cliz::data::ClimateDataset,
    target: f64,
) -> (f64, Vec<u8>) {
    let original = (dataset.data.len() * 4) as f64;
    let mut lo = 1e-7f64;
    let mut hi = 0.3f64;
    let mut best = (1e-3, Vec::new());
    for _ in 0..14 {
        let mid = (lo * hi).sqrt();
        let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), mid);
        let bytes = compressor
            .compress(&dataset.data, dataset.mask.as_ref(), bound)
            .unwrap();
        let ratio = original / bytes.len() as f64;
        best = (mid, bytes);
        if (ratio - target).abs() / target < 0.05 {
            break;
        }
        if ratio > target {
            hi = mid; // too compressed: tighten the bound
        } else {
            lo = mid;
        }
    }
    best
}

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let target_ratio = 25.0; // the paper's Fig. 14 operating point
    let dir = Path::new("target/experiments");
    let mut report = Report::new(
        "fig14_visual",
        "compressor,rel_eb,ratio,slice_psnr_db,slice_ssim",
    );

    // The slice everyone gets judged on: mid-time horizontal plane.
    let time_axis = dataset.time_axis.unwrap();
    let t_mid = dataset.data.shape().dim(time_axis) / 2;
    let fixed = vec![0, 0, t_mid];
    let mask = dataset.mask.clone().unwrap();
    let mask_grid =
        cliz::grid::Grid::from_vec(dataset.data.shape().clone(), mask.as_slice().to_vec());
    let slice_mask = MaskMap::from_flags(
        cliz::grid::Shape::new(&[
            dataset.data.shape().dim(0),
            dataset.data.shape().dim(1),
        ]),
        mask_grid.slice2d(0, 1, &fixed).into_vec(),
    );
    let orig_slice = dataset.data.slice2d(0, 1, &fixed);
    write_pgm(&dir.join("fig14_original.pgm"), &orig_slice, Some(&slice_mask)).unwrap();

    println!(
        "Fig. 14 — visual quality at matched ratio ≈ {target_ratio}x ({} {})\n",
        dataset.kind.name(),
        dataset.data.shape()
    );
    println!(
        "{:<8} {:>9} {:>8} {:>12} {:>12}  {}",
        "comp", "rel_eb", "ratio", "slice PSNR", "slice SSIM", "image"
    );

    for compressor in [&Cliz::new() as &dyn Compressor, &SzInterp, &Qoz] {
        let (rel, bytes) = match_ratio(compressor, &dataset, target_ratio);
        let ratio = (dataset.data.len() * 4) as f64 / bytes.len() as f64;
        let recon = compressor
            .decompress(&bytes, dataset.mask.as_ref())
            .unwrap();
        let recon_slice = recon.slice2d(0, 1, &fixed);
        let psnr = cliz::metrics::psnr(
            orig_slice.as_slice(),
            recon_slice.as_slice(),
            Some(&slice_mask),
        );
        let ssim = cliz::metrics::ssim(
            &orig_slice,
            &recon_slice,
            Some(&slice_mask),
            SsimSpec::default(),
        );
        let path = dir.join(format!("fig14_{}.pgm", compressor.name().to_lowercase()));
        write_pgm(&path, &recon_slice, Some(&slice_mask)).unwrap();
        println!(
            "{:<8} {:>9.1e} {:>8.2} {:>11.2}dB {:>12.5}  {}",
            compressor.name(),
            rel,
            ratio,
            psnr,
            ssim,
            path.display()
        );
        report.row(&format!(
            "{},{rel:e},{ratio},{psnr},{ssim}",
            compressor.name()
        ));
    }
    println!(
        "\nExpected shape (paper Fig. 14): at the same ratio CliZ's slice stays closest to \
         the original (highest PSNR/SSIM); SZ3 and QoZ show visible distortion."
    );
    println!("original written to target/experiments/fig14_original.pgm");
}
