//! Table V: ablation on SSH — compression ratio and time of the tuned
//! pipeline versus the same pipeline with each strategy cancelled
//! (mask / classification / permutation+fusion / periodicity), plus a λ
//! sweep backing Theorem 2's λ = 0.4.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin table5_ablation_ssh [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::grid::FusionSpec;
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn run(
    label: &str,
    dataset: &cliz::data::ClimateDataset,
    bound: cliz::quant::ErrorBound,
    cfg: &PipelineConfig,
    baseline: Option<(f64, f64)>,
    report: &mut Report,
) -> (f64, f64) {
    let original = dataset.data.len() * 4;
    let t0 = std::time::Instant::now();
    let bytes = cliz::compress(&dataset.data, dataset.mask.as_ref(), bound, cfg).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let ratio = original as f64 / bytes.len() as f64;
    let (cr_impr, time_incr) = match baseline {
        Some((r0, t0)) => ((r0 / ratio - 1.0) * 100.0, (t0 / secs - 1.0) * 100.0),
        None => (0.0, 0.0),
    };
    println!(
        "{:<22} {:>8} {:>6} {:>6} {:>7} {:>7} {:>9.3} {:>9.2}% {:>8.3} {:>9.2}%",
        label,
        cfg.periodicity.label(),
        if cfg.classification { "Yes" } else { "No" },
        cfg.permutation_label(),
        cfg.fusion.label(),
        cfg.fitting.label(),
        ratio,
        cr_impr,
        secs,
        time_incr
    );
    report.row(&format!(
        "{label},{},{},{},{},{},{ratio},{cr_impr},{secs},{time_incr}",
        cfg.periodicity.label(),
        cfg.classification,
        cfg.permutation_label(),
        cfg.fusion.label(),
        cfg.fitting.label(),
    ));
    (ratio, secs)
}

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
    let mut report = Report::new(
        "table5_ablation_ssh",
        "case,periodicity,classification,permutation,fusion,fitting,ratio,cr_improvement_pct,seconds,time_increment_pct",
    );

    // The tuned pipeline (1% sampling, as in the paper's Table V).
    let tuned = cliz::autotune(
        &dataset.data,
        dataset.mask.as_ref(),
        TuneSpec {
            sampling_rate: 0.01,
            time_axis: dataset.time_axis,
            bound,
        },
    )
    .expect("autotune")
    .best;

    println!(
        "Table V — SSH ablation ({} {}, rel eb 1e-3)\n",
        dataset.kind.name(),
        dataset.data.shape()
    );
    println!(
        "{:<22} {:>8} {:>6} {:>6} {:>7} {:>7} {:>9} {:>10} {:>8} {:>10}",
        "case", "period", "class", "perm", "fusion", "fit", "ratio", "CR impr", "time_s", "time incr"
    );

    // Optimal, then each strategy cancelled (the paper's column layout).
    let opt = run("optimal", &dataset, bound, &tuned, None, &mut report);

    let mut no_mask = tuned.clone();
    no_mask.use_mask = false;
    run("mask off", &dataset, bound, &no_mask, Some(opt), &mut report);

    let mut no_class = tuned.clone();
    no_class.classification = false;
    let mut with_class = tuned.clone();
    with_class.classification = true;
    // Paper table reports classification-on as optimal; show both states.
    run("classification off", &dataset, bound, &no_class, Some(opt), &mut report);
    run("classification on", &dataset, bound, &with_class, Some(opt), &mut report);

    let mut no_perm = tuned.clone();
    no_perm.permutation = (0..3).collect();
    no_perm.fusion = FusionSpec::none();
    run("perm+fusion off", &dataset, bound, &no_perm, Some(opt), &mut report);

    let mut no_period = tuned.clone();
    no_period.periodicity = Periodicity::None;
    run("periodicity off", &dataset, bound, &no_period, Some(opt), &mut report);

    // λ sweep (extension backing Theorem 2): classification quality around 0.4.
    println!("\nλ sweep (classification threshold; Theorem 2 optimum is 0.4):");
    println!("{:>8} {:>10}", "lambda", "ratio");
    for lambda in [0.1, 0.25, 0.4, 0.6, 0.8] {
        let mut cfg = tuned.clone();
        cfg.classification = true;
        cfg.lambda = lambda;
        let bytes = cliz::compress(&dataset.data, dataset.mask.as_ref(), bound, &cfg).unwrap();
        let ratio = (dataset.data.len() * 4) as f64 / bytes.len() as f64;
        println!("{lambda:>8.2} {ratio:>10.3}");
        report.row(&format!("lambda_{lambda},,,,,,{ratio},,,"));
    }
    println!("\nCSV mirrored to target/experiments/table5_ablation_ssh.csv");
}
