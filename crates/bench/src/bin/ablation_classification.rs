//! Extension ablation: quantization-bin classification internals.
//!
//! The paper fixes j = k = 1 (shift ∈ {−1,0,+1}, two Huffman trees) and
//! λ = 0.4, reporting that larger j/k do not pay (Sec. VI-E). This harness
//! probes those choices on a field engineered to exhibit both shifting and
//! dispersion patterns: group counts 1–4, shift radii 0–2, and λ across
//! Theorem 2's critical range.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin ablation_classification
//! ```

use cliz::entropy::{multi_encode, huffman};
use cliz::quant::classify::{apply_shifts, classify, ClassifySpec};
use cliz::quant::{bin_to_symbol, symbol_to_bin};
use cliz_bench::Report;

/// Synthesizes a bin grid with per-position shifting and dispersion:
/// `slices × h_len` symbols where each horizontal position has its own bias
/// (topography-style) and its own spread.
fn synthetic_bins(slices: usize, h_len: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(slices * h_len);
    let mut state = 0xBEEF_u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    // Per-position character: bias in [-1, 1] (the paper observed real
    // climate bins peak within ±1, motivating j = 1), spread in {1, 6}.
    let bias: Vec<i32> = (0..h_len).map(|p| (p % 3) as i32 - 1).collect();
    let wide: Vec<bool> = (0..h_len).map(|p| (p / 7) % 3 == 0).collect();
    for _s in 0..slices {
        for p in 0..h_len {
            let spread = if wide[p] { 6 } else { 1 };
            let jitter = (rnd() % (2 * spread + 1)) as i32 - spread as i32;
            out.push(bin_to_symbol(bias[p] + jitter));
        }
    }
    out
}

fn main() {
    let slices = 64usize;
    let h_len = 1024usize;
    let symbols = synthetic_bins(slices, h_len);
    let baseline = huffman::encode_stream(&symbols).len();
    let mut report = Report::new(
        "ablation_classification",
        "variant,parameter,bytes,vs_single_tree_pct",
    );

    println!(
        "Classification ablation on a {slices}x{h_len} bin grid \
         (single-tree Huffman baseline: {baseline} bytes)\n"
    );

    // --- shift radius sweep (paper: j = 1 suffices) ---
    println!("{:<28} {:>10} {:>12}", "variant", "bytes", "vs single");
    for max_shift in 0..=2i32 {
        let spec = ClassifySpec {
            max_shift,
            ..ClassifySpec::default()
        };
        let class = classify(&symbols, h_len, None, spec);
        let mut shifted = symbols.clone();
        apply_shifts(&mut shifted, &class, None);
        let groups = class.group_sequence(shifted.len(), None);
        let bytes = multi_encode(&shifted, &groups, 2).len() + class.marker_bytes().len();
        let delta = (1.0 - bytes as f64 / baseline as f64) * 100.0;
        println!("{:<28} {:>10} {:>11.2}%", format!("shift j={max_shift}, 2 trees"), bytes, delta);
        report.row(&format!("shift_radius,{max_shift},{bytes},{delta}"));
    }

    // --- group count sweep (paper: 2 trees suffice) ---
    // Groups beyond 2 split the dispersed class by spread quartile.
    println!();
    for n_groups in 1..=4usize {
        let spec = ClassifySpec::default();
        let class = classify(&symbols, h_len, None, spec);
        let mut shifted = symbols.clone();
        apply_shifts(&mut shifted, &class, None);
        let groups: Vec<u8> = (0..shifted.len())
            .map(|i| {
                let p = i % h_len;
                if n_groups == 1 {
                    0
                } else if class.groups[p] == 0 {
                    0
                } else {
                    // Sub-split dispersed positions round-robin.
                    (1 + (p % (n_groups - 1))) as u8
                }
            })
            .collect();
        let bytes = multi_encode(&shifted, &groups, n_groups).len()
            + if n_groups > 1 { class.marker_bytes().len() } else { 0 };
        let delta = (1.0 - bytes as f64 / baseline as f64) * 100.0;
        println!("{:<28} {:>10} {:>11.2}%", format!("{n_groups} tree(s), j=1"), bytes, delta);
        report.row(&format!("group_count,{n_groups},{bytes},{delta}"));
    }

    // --- λ sweep around Theorem 2's 0.4 ---
    println!();
    for lambda in [0.2, 0.3, 0.38, 0.4, 0.5, 0.7] {
        let spec = ClassifySpec {
            lambda,
            ..ClassifySpec::default()
        };
        let class = classify(&symbols, h_len, None, spec);
        let mut shifted = symbols.clone();
        apply_shifts(&mut shifted, &class, None);
        let groups = class.group_sequence(shifted.len(), None);
        let bytes = multi_encode(&shifted, &groups, 2).len() + class.marker_bytes().len();
        let delta = (1.0 - bytes as f64 / baseline as f64) * 100.0;
        println!("{:<28} {:>10} {:>11.2}%", format!("lambda={lambda}"), bytes, delta);
        report.row(&format!("lambda,{lambda},{bytes},{delta}"));
    }

    // Sanity: shifting must be lossless (the decoder inverts it).
    let spec = ClassifySpec::default();
    let class = classify(&symbols, h_len, None, spec);
    let mut check = symbols.clone();
    apply_shifts(&mut check, &class, None);
    cliz::quant::classify::unapply_shifts(&mut check, &class, None);
    assert_eq!(check, symbols, "shift inversion broken");
    let _ = symbol_to_bin(bin_to_symbol(0));

    println!(
        "\nExpected shape (Sec. VI-E): j=1 and two trees capture nearly all of the gain; \
         larger j/k add marker cost without ratio; the λ curve is flat near 0.4."
    );
    println!("CSV mirrored to target/experiments/ablation_classification.csv");
}
