//! Region-server load benchmark: concurrent `cliz serve` clients over
//! pluggable storage backends.
//!
//! A synthetic field is packed into a CZS store once, then served from a
//! fresh [`Server`] per configuration — every combination of backend
//! (`mem`, `file`, `delay` = in-memory plus simulated per-call/per-KiB
//! network latency) and client count (1, 8, 64). Each client thread drives
//! its own TCP connection through a deterministic region-spec schedule
//! (seeded LCG, shared pool) and records per-request round-trip latency.
//!
//! Two gates, both fatal (exit 1) on violation:
//!
//! 1. **identity** — every concurrent response is compared f32-exact
//!    against a serial `read_region` on a private reader; the shared
//!    LRU/stampede path must never change bytes.
//! 2. **scaling** (scaled/full tiers) — 64-client aggregate MB/s must be
//!    at least the 1-client figure for every backend: the shared cache and
//!    worker pool must add throughput under concurrency, not serialize.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin serve_bench [--quick|--full]
//! # writes BENCH_serve.json into the current directory
//! ```
//!
//! See docs/SERVING.md and docs/PERFORMANCE.md ("Region server") for how
//! to read the output.

use cliz::grid::{Grid, Shape};
use cliz::quant::ErrorBound;
use cliz::store::storage::{DelayBackend, FileBackend, MemBackend, ReadableStorage};
use cliz::store::{pack_store, ChunkStoreReader, Dataset, DEFAULT_CACHE_BUDGET};
use cliz::PipelineConfig;
use cliz_bench::Args;
use cliz_serve::{Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const EB: f64 = 1e-3;
const SERVER_THREADS: usize = 4;

fn smooth(dims: &[usize]) -> Grid<f32> {
    Grid::from_fn(Shape::new(dims), |c| {
        let mut v = 0.0f64;
        for (k, &x) in c.iter().enumerate() {
            v += ((x as f64) * 0.07 * (k + 1) as f64).sin() * 5.0;
        }
        v as f32
    })
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Deterministic spec pool: row windows (and two thin slices) over axis 0,
/// full extent on the trailing axes — the access pattern a time-series
/// dashboard issues against a `[time, lat, lon]` store.
fn spec_pool(dims: &[usize]) -> Vec<String> {
    let mut lcg = 0x2545F491_4F6CDD1Du64;
    let mut next = move |bound: usize| {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((lcg >> 33) as usize) % bound.max(1)
    };
    let tail: String = dims[1..].iter().map(|_| ",:".to_string()).collect();
    let span = (dims[0] / 4).max(1);
    let mut pool = Vec::new();
    for _ in 0..6 {
        let start = next(dims[0] - span + 1);
        pool.push(format!("{start}:{}{tail}", start + span));
    }
    for _ in 0..2 {
        let start = next(dims[0].saturating_sub(4).max(1));
        pool.push(format!("{start}:{}{tail}", (start + 4).min(dims[0])));
    }
    pool
}

/// Per-request latencies and streamed bytes for one client thread.
struct ClientRun {
    latencies_ms: Vec<f64>,
    bytes: u64,
    diverged: bool,
}

fn drive_client(
    addr: std::net::SocketAddr,
    schedule: &[usize],
    pool: &[String],
    expected: &[Grid<f32>],
) -> Result<ClientRun, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut run = ClientRun {
        latencies_ms: Vec::with_capacity(schedule.len()),
        bytes: 0,
        diverged: false,
    };
    for &idx in schedule {
        let t0 = Instant::now();
        let (shape, values) = client
            .region(&pool[idx])
            .map_err(|e| format!("region {}: {e}", pool[idx]))?;
        run.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        run.bytes += (values.len() * 4) as u64;
        let want = &expected[idx];
        if shape != want.shape().dims() || values != want.as_slice() {
            eprintln!("DIVERGENCE: response for {} != serial read_region", pool[idx]);
            run.diverged = true;
        }
    }
    client.quit().map_err(|e| format!("quit: {e}"))?;
    Ok(run)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let pos = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[pos.min(sorted_ms.len() - 1)]
}

fn main() {
    let args = Args::parse();
    let dims: Vec<usize> = if args.quick {
        vec![32, 16, 24]
    } else if args.full {
        vec![256, 96, 128]
    } else {
        vec![96, 48, 64]
    };
    let reqs_per_client: usize = if args.quick { 3 } else { 12 };
    let chunk_len = dims[0].div_ceil(12).max(1);
    let n_chunks = dims[0].div_ceil(chunk_len);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mb = (dims.iter().product::<usize>() * 4) as f64 / 1e6;

    let ds = Dataset::new("T", smooth(&dims), None);
    let config = PipelineConfig::default_for(dims.len());
    let bytes = pack_store(&ds, ErrorBound::Abs(EB), &config, chunk_len, 1).expect("pack");
    println!(
        "serve_bench: {dims:?} ({mb:.1} MB) -> {} store bytes, {n_chunks} chunks of \
         {chunk_len} rows, {host_cores} host core(s), {SERVER_THREADS} server threads",
        bytes.len()
    );

    // The identity oracle: serial reads on a private reader, once per spec.
    let pool = spec_pool(&dims);
    let oracle = ChunkStoreReader::from_bytes(bytes.clone()).expect("open oracle");
    let expected: Vec<Grid<f32>> = pool
        .iter()
        .map(|spec| {
            let ranges = cliz_serve::parse_region(spec, oracle.dims()).expect("oracle spec");
            oracle.read_region(&ranges).expect("oracle read")
        })
        .collect();

    // The file backend serves the same bytes from disk.
    let dir = std::env::temp_dir().join("cliz_serve_bench");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let store_path = dir.join("bench.czs");
    std::fs::write(&store_path, &bytes).expect("write store file");

    let backends = ["mem", "file", "delay"];
    let client_counts = [1usize, 8, 64];
    let mut diverged = false;
    let mut backend_json = Vec::new();

    for backend in backends {
        let mut results_json = Vec::new();
        let mut agg_by_clients = Vec::new();
        for &clients in &client_counts {
            // Fresh storage + reader + server per configuration: every run
            // starts cache-cold so the backend actually gets exercised.
            let storage: Arc<dyn ReadableStorage> = match backend {
                "mem" => Arc::new(MemBackend::new(bytes.clone())),
                "file" => Arc::new(FileBackend::open(&store_path).expect("file backend")),
                _ => Arc::new(DelayBackend::new(
                    MemBackend::new(bytes.clone()),
                    Duration::from_micros(1500),
                    Duration::from_micros(4),
                )),
            };
            let reader = Arc::new(
                ChunkStoreReader::from_storage(storage, DEFAULT_CACHE_BUDGET).expect("open"),
            );
            let server = Server::start(
                reader,
                "127.0.0.1:0",
                ServerConfig {
                    threads: SERVER_THREADS,
                    ..ServerConfig::default()
                },
            )
            .expect("server start");
            let addr = server.addr();

            let t0 = Instant::now();
            let runs: Vec<Result<ClientRun, String>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|i| {
                        let (pool, expected) = (&pool, &expected);
                        // Staggered start points so concurrent clients hit a
                        // mix of shared (cache-hot) and fresh (cold) specs.
                        let schedule: Vec<usize> = (0..reqs_per_client)
                            .map(|r| (i * 7 + r) % pool.len())
                            .collect();
                        s.spawn(move || drive_client(addr, &schedule, pool, expected))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err("client thread panicked".into()))
                    })
                    .collect()
            });
            let wall_s = t0.elapsed().as_secs_f64();
            server.stop();

            let mut latencies = Vec::new();
            let mut total_bytes = 0u64;
            for run in runs {
                match run {
                    Ok(r) => {
                        diverged |= r.diverged;
                        latencies.extend(r.latencies_ms);
                        total_bytes += r.bytes;
                    }
                    Err(e) => {
                        eprintln!("DIVERGENCE: {backend} x{clients}: {e}");
                        diverged = true;
                    }
                }
            }
            latencies.sort_by(|a, b| a.total_cmp(b));
            let (p50, p99) = (percentile(&latencies, 50.0), percentile(&latencies, 99.0));
            let streamed_mb = total_bytes as f64 / 1e6;
            let agg = streamed_mb / wall_s;
            agg_by_clients.push((clients, agg));
            println!(
                "  {backend:<5} x{clients:<3} {:>4} reqs  p50 {p50:>7.2} ms  p99 {p99:>7.2} ms  \
                 {agg:>8.1} MB/s aggregate ({streamed_mb:.1} MB in {wall_s:.2}s)",
                latencies.len()
            );
            results_json.push(format!(
                "{{\"clients\":{clients},\"requests\":{},\"p50_ms\":{},\"p99_ms\":{},\
                 \"wall_s\":{},\"streamed_mb\":{},\"agg_mb_s\":{}}}",
                latencies.len(),
                json_f64(p50),
                json_f64(p99),
                json_f64(wall_s),
                json_f64(streamed_mb),
                json_f64(agg),
            ));
        }
        // Shared-cache scaling gate: concurrency must add throughput. Only
        // on the bigger tiers — --quick runs too few requests to time.
        let one = agg_by_clients.first().map_or(0.0, |&(_, a)| a);
        let many = agg_by_clients.last().map_or(0.0, |&(_, a)| a);
        let scaling_ok = args.quick || many >= one;
        if !scaling_ok {
            eprintln!(
                "DIVERGENCE: {backend}: 64-client aggregate {many:.1} MB/s < \
                 1-client {one:.1} MB/s"
            );
            diverged = true;
        }
        backend_json.push(format!(
            "{{\"backend\":\"{backend}\",\"results\":[{}],\"scaling_ok\":{scaling_ok}}}",
            results_json.join(",")
        ));
    }

    let tier = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "scaled"
    };
    let json = format!(
        "{{\"schema\":\"cliz-serve-bench-v1\",\"tier\":\"{tier}\",\"dims\":{dims:?},\
         \"host_cores\":{host_cores},\"server_threads\":{SERVER_THREADS},\
         \"chunk_len\":{chunk_len},\"n_chunks\":{n_chunks},\"store_bytes\":{},\
         \"requests_per_client\":{reqs_per_client},\"spec_pool\":{},\
         \"backends\":[{}],\"identical\":{}}}\n",
        bytes.len(),
        pool.len(),
        backend_json.join(","),
        !diverged,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    if diverged {
        eprintln!("FAIL: serve invariants violated");
        std::process::exit(1);
    }
}
