//! End-to-end pipeline benchmark: the zero-copy hot path against the frozen
//! allocation baseline, and the chunked worker pool across thread counts.
//!
//! Three synthetic fields (smooth, masked, periodic) at three sizes each run
//! through:
//!
//! 1. **single-shot**: `compress_alloc_baseline` (frozen pre-optimization
//!    pipeline) vs `compress` (borrowed identity permutation, arena-recycled
//!    scratch, gather-free entropy input) — bytes asserted identical;
//! 2. **chunked**: `compress_chunked_alloc_baseline` (serial, fresh
//!    allocations per slab) vs `compress_chunked_with_threads` at 1/2/4/host
//!    workers — containers asserted identical at every worker count;
//! 3. **chunked decode**: serial vs pooled decode, grids asserted identical.
//!
//! Every thread count reports a *measured* wall time plus an *LPT-projected*
//! wall time: each slab is timed individually on one core and the measured
//! durations are scheduled onto N cores with
//! [`cliz::transfer::schedule_lpt`] — the same model the paper's Fig. 13
//! farm uses. On a single-core host the measured speedup is necessarily ~1×
//! and the projection is the meaningful number; `host_cores` is recorded so
//! readers can tell which regime produced the file. See
//! docs/PERFORMANCE.md for how to read and refresh the output.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin pipeline_bench [--quick|--full]
//! # writes BENCH_pipeline.json into the current directory
//! ```
//!
//! Exits non-zero if any parallel output diverges from serial — CI runs
//! `--quick` as a smoke test of exactly that invariant.

use cliz::grid::{Grid, MaskMap, Shape};
use cliz::quant::ErrorBound;
use cliz::transfer::schedule_lpt;
use cliz::PipelineConfig;
use cliz_bench::Args;
use std::time::Instant;

const EB: f64 = 1e-3;

fn smooth(dims: &[usize]) -> Grid<f32> {
    Grid::from_fn(Shape::new(dims), |c| {
        let mut v = 0.0f64;
        for (k, &x) in c.iter().enumerate() {
            v += ((x as f64) * 0.07 * (k + 1) as f64).sin() * 5.0;
        }
        v as f32
    })
}

/// Smooth field with a CESM-style fill mask over a coherent "land" region
/// (~25% of points), like SSH over continents.
fn masked(dims: &[usize]) -> (Grid<f32>, MaskMap) {
    let mut g = smooth(dims);
    let shape = g.shape().clone();
    let land = Grid::from_fn(shape.clone(), |c| {
        ((c[c.len() - 1] as f64 * 0.11).sin() + (c[c.len() - 2] as f64 * 0.13).cos()) > 0.9
    });
    let mut valid = vec![true; g.len()];
    for (i, (&is_land, v)) in land
        .as_slice()
        .iter()
        .zip(g.as_mut_slice().iter_mut())
        .enumerate()
    {
        if is_land {
            *v = 9.96921e36;
            valid[i] = false;
        }
    }
    (g, MaskMap::from_flags(shape, valid))
}

/// Field with a strong period-12 cycle along axis 0 plus smooth spatial
/// structure — periodic *data* through the plain pipeline (the frozen
/// baseline covers plain mode; periodic-mode thread identity is covered by
/// the test suite).
fn periodic(dims: &[usize]) -> Grid<f32> {
    Grid::from_fn(Shape::new(dims), |c| {
        let phase = 2.0 * std::f64::consts::PI * (c[0] % 12) as f64 / 12.0;
        let mut v = 6.0 * phase.sin();
        for (k, &x) in c.iter().enumerate().skip(1) {
            v += ((x as f64) * 0.09 * k as f64).cos() * 2.0;
        }
        v as f32
    })
}

/// Best-of-`reps` wall time plus the last result.
fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

#[cfg(target_os = "linux")]
fn reset_peak_rss() {
    // "5" resets the peak-RSS (VmHWM) counter to the current RSS.
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

#[cfg(not(target_os = "linux"))]
fn reset_peak_rss() {}

#[cfg(target_os = "linux")]
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_mb() -> Option<f64> {
    None
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn main() {
    let args = Args::parse();
    let sizes: Vec<Vec<usize>> = if args.quick {
        vec![vec![16, 24, 32]]
    } else if args.full {
        vec![
            vec![64, 128, 128],
            vec![128, 192, 256],
            vec![256, 320, 384],
        ]
    } else {
        vec![vec![32, 64, 64], vec![64, 96, 128], vec![96, 160, 192]]
    };
    let reps = if args.quick { 1 } else { 2 };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("pipeline_bench: {host_cores} host core(s)");
    let mut thread_counts = vec![1usize, 2, 4, host_cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut diverged = false;
    let mut field_json: Vec<String> = Vec::new();

    type Build = fn(&[usize]) -> (Grid<f32>, Option<MaskMap>);
    let fields: [(&str, Build); 3] = [
        ("smooth", |d| (smooth(d), None)),
        ("masked", |d| {
            let (g, m) = masked(d);
            (g, Some(m))
        }),
        ("periodic", |d| (periodic(d), None)),
    ];
    for (name, build) in fields {
        for dims in &sizes {
            let (data, mask) = build(dims);
            let mask_ref = mask.as_ref();
            let config = PipelineConfig::default_for(dims.len());
            let bound = ErrorBound::Abs(EB);
            let mb = (data.len() * 4) as f64 / 1e6;
            // ~7 slabs with an uneven tail — the load-balancing case.
            let chunk_len = dims[0].div_ceil(7).max(1);
            println!("\n=== {name} {dims:?} ({mb:.1} MB, chunk_len {chunk_len})");

            // --- 1. single-shot: frozen baseline vs zero-copy hot path ---
            reset_peak_rss();
            let (base_s, base_bytes) = time(reps, || {
                cliz::compress_alloc_baseline(&data, mask_ref, bound, &config).unwrap()
            });
            let base_rss = peak_rss_mb();
            reset_peak_rss();
            let (opt_s, opt_bytes) =
                time(reps, || cliz::compress(&data, mask_ref, bound, &config).unwrap());
            let opt_rss = peak_rss_mb();
            let single_identical = base_bytes == opt_bytes;
            if !single_identical {
                eprintln!("DIVERGENCE: single-shot optimized bytes != baseline ({name} {dims:?})");
                diverged = true;
            }
            println!(
                "  single-shot  baseline {:>8.1} MB/s   zero-copy {:>8.1} MB/s   speedup {:.2}x",
                mb / base_s,
                mb / opt_s,
                base_s / opt_s
            );

            // --- 2. chunked compression across worker counts ---
            reset_peak_rss();
            let (cbase_s, cbase_bytes) = time(reps, || {
                cliz::compress_chunked_alloc_baseline(&data, mask_ref, bound, &config, chunk_len)
                    .unwrap()
            });
            let cbase_rss = peak_rss_mb();

            // Per-slab durations on one core feed the LPT projection (the
            // Fig. 13 farm methodology): projected wall at N workers is the
            // LPT makespan of the measured durations.
            let n_chunks = dims[0].div_ceil(chunk_len);
            let mask_grid =
                mask_ref.map(|m| Grid::from_vec(m.shape().clone(), m.as_slice().to_vec()));
            let mut slab_s = Vec::with_capacity(n_chunks);
            {
                let mut arena = cliz::ScratchArena::new();
                for i in 0..n_chunks {
                    let start = i * chunk_len;
                    let rows = chunk_len.min(dims[0] - start);
                    let mut s = vec![0usize; dims.len()];
                    s[0] = start;
                    let mut size = dims.clone();
                    size[0] = rows;
                    let slab = data.block(&s, &size);
                    let slab_mask = mask_grid.as_ref().map(|mg| {
                        let b = mg.block(&s, &size);
                        MaskMap::from_flags(b.shape().clone(), b.into_vec())
                    });
                    let t0 = Instant::now();
                    let _ = cliz::compress_with_stats_arena(
                        &slab,
                        slab_mask.as_ref(),
                        bound,
                        &config,
                        &mut arena,
                    )
                    .unwrap();
                    slab_s.push(t0.elapsed().as_secs_f64());
                }
            }
            let serial_sum: f64 = slab_s.iter().sum();

            let mut thread_json = Vec::new();
            for &threads in &thread_counts {
                reset_peak_rss();
                let (t_s, t_bytes) = time(reps, || {
                    cliz::compress_chunked_with_threads(
                        &data, mask_ref, bound, &config, chunk_len, threads,
                    )
                    .unwrap()
                });
                let t_rss = peak_rss_mb();
                let identical = t_bytes == cbase_bytes;
                if !identical {
                    eprintln!(
                        "DIVERGENCE: chunked bytes at {threads} thread(s) != serial baseline \
                         ({name} {dims:?})"
                    );
                    diverged = true;
                }
                let projected_s = schedule_lpt(&slab_s, threads);
                println!(
                    "  chunked x{threads:<2}  measured {:>8.1} MB/s ({:.2}x)   \
                     LPT-projected {:>8.1} MB/s ({:.2}x)   identical {identical}",
                    mb / t_s,
                    cbase_s / t_s,
                    mb / projected_s,
                    serial_sum / projected_s,
                );
                thread_json.push(format!(
                    "{{\"threads\":{threads},\"measured_s\":{},\"measured_mb_s\":{},\
                     \"measured_speedup\":{},\"lpt_projected_s\":{},\
                     \"lpt_projected_speedup\":{},\"peak_rss_mb\":{},\
                     \"bytes_identical\":{identical}}}",
                    json_f64(t_s),
                    json_f64(mb / t_s),
                    json_f64(cbase_s / t_s),
                    json_f64(projected_s),
                    json_f64(serial_sum / projected_s),
                    json_opt(t_rss),
                ));
            }

            // --- 3. chunked decode, serial vs pooled ---
            let (d1_s, d1) = time(reps, || {
                cliz::decompress_chunked_with_threads(&cbase_bytes, mask_ref, 1).unwrap()
            });
            let (dn_s, dn) = time(reps, || {
                cliz::decompress_chunked_with_threads(&cbase_bytes, mask_ref, host_cores).unwrap()
            });
            let decode_identical = d1 == dn;
            if !decode_identical {
                eprintln!("DIVERGENCE: pooled decode != serial decode ({name} {dims:?})");
                diverged = true;
            }
            println!(
                "  decode       serial {:>8.1} MB/s   x{host_cores} {:>8.1} MB/s   identical {decode_identical}",
                mb / d1_s,
                mb / dn_s
            );

            field_json.push(format!(
                "{{\"field\":\"{name}\",\"dims\":{dims:?},\"mb\":{},\
                 \"single_shot\":{{\"baseline_s\":{},\"baseline_mb_s\":{},\
                 \"optimized_s\":{},\"optimized_mb_s\":{},\"speedup\":{},\
                 \"baseline_peak_rss_mb\":{},\"optimized_peak_rss_mb\":{},\
                 \"bytes_identical\":{single_identical}}},\
                 \"chunked\":{{\"chunk_len\":{chunk_len},\"n_chunks\":{n_chunks},\
                 \"serial_baseline_s\":{},\"serial_baseline_peak_rss_mb\":{},\
                 \"per_slab_s\":[{}],\"threads\":[{}],\
                 \"decode\":{{\"serial_s\":{},\"pooled_s\":{},\"pooled_threads\":{host_cores},\
                 \"identical\":{decode_identical}}}}}}}",
                json_f64(mb),
                json_f64(base_s),
                json_f64(mb / base_s),
                json_f64(opt_s),
                json_f64(mb / opt_s),
                json_f64(base_s / opt_s),
                json_opt(base_rss),
                json_opt(opt_rss),
                json_f64(cbase_s),
                json_opt(cbase_rss),
                slab_s.iter().map(|&s| json_f64(s)).collect::<Vec<_>>().join(","),
                thread_json.join(","),
                json_f64(d1_s),
                json_f64(dn_s),
            ));
        }
    }

    let tier = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "scaled"
    };
    let json = format!(
        "{{\"schema\":\"cliz-pipeline-bench-v1\",\"tier\":\"{tier}\",\
         \"host_cores\":{host_cores},\"eb_abs\":{EB},\"reps\":{reps},\
         \"fields\":[{}]}}\n",
        field_json.join(",")
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("\nwrote BENCH_pipeline.json ({} field runs)", field_json.len());

    if diverged {
        eprintln!("FAIL: parallel output diverged from serial");
        std::process::exit(1);
    }
}
