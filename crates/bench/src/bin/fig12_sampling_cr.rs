//! Fig. 12: estimated compression ratio of every candidate pipeline across
//! sampling rates (SSH), with pipelines ordered by their full-data (rate=1)
//! estimate — the ordering stability this figure demonstrates is what makes
//! low-rate tuning safe.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig12_sampling_cr [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
    let rates = [1.0, 0.1, 0.01, 1e-3];
    let mut report = Report::new(
        "fig12_sampling_cr",
        "pipeline,rank_at_full,rate,est_ratio",
    );

    // Estimates per pipeline (keyed by description) per rate.
    let mut per_rate: Vec<HashMap<String, f64>> = Vec::new();
    for &rate in &rates {
        let result = cliz::autotune(
            &dataset.data,
            dataset.mask.as_ref(),
            TuneSpec {
                sampling_rate: rate,
                time_axis: dataset.time_axis,
                bound,
            },
        )
        .expect("autotune");
        per_rate.push(
            result
                .ranking
                .iter()
                .map(|c| (c.config.describe(), c.est_ratio))
                .collect(),
        );
    }

    // Order pipelines by the rate=1 ("precise") estimate.
    let mut order: Vec<(String, f64)> = per_rate[0]
        .iter()
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!(
        "Fig. 12 — estimated CR per pipeline across sampling rates ({} {}, {} pipelines)\n",
        dataset.kind.name(),
        dataset.data.shape(),
        order.len()
    );
    println!("{:<66} {:>8} {:>8} {:>8} {:>8}", "pipeline (sorted by rate=1 estimate)", "100%", "10%", "1%", "0.1%");
    for (rank, (desc, _)) in order.iter().enumerate() {
        let cells: Vec<String> = per_rate
            .iter()
            .map(|m| m.get(desc).map_or("-".into(), |v| format!("{v:.2}")))
            .collect();
        if rank < 12 || rank >= order.len() - 3 {
            println!(
                "{:<66} {:>8} {:>8} {:>8} {:>8}",
                desc, cells[0], cells[1], cells[2], cells[3]
            );
        } else if rank == 12 {
            println!("  ... ({} more pipelines, see CSV) ...", order.len() - 15);
        }
        for (ri, &rate) in rates.iter().enumerate() {
            if let Some(v) = per_rate[ri].get(desc) {
                report.row(&format!("{desc},{rank},{rate:e},{v}"));
            }
        }
    }

    // Ordering stability: the rate=1 winner must stay near the top at 1%.
    let winner = &order[0].0;
    let mut at_1pct: Vec<(String, f64)> = per_rate[2]
        .iter()
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    at_1pct.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let pos = at_1pct.iter().position(|(k, _)| k == winner).unwrap_or(usize::MAX);
    println!(
        "\nfull-data winner ranks #{} of {} under 1% sampling (paper: near-stable ordering)",
        pos + 1,
        at_1pct.len()
    );
    println!("CSV mirrored to target/experiments/fig12_sampling_cr.csv");
}
