//! Fig. 11: auto-tuning (sampling + candidate testing) time versus sampling
//! rate, on SSH (periodic, 192 pipelines) and CESM-T (aperiodic, 96).
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig11_sampling_time [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let rates = [1.0, 0.1, 0.01, 1e-3, 1e-4];
    let mut report = Report::new(
        "fig11_sampling_time",
        "dataset,sampling_rate,pipelines,sample_points,tuning_s,full_compress_s",
    );

    for kind in [DatasetKind::Ssh, DatasetKind::CesmT] {
        let dataset = datasets::scaled(kind, tier);
        let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
        println!(
            "\n=== {} {} ({} candidate pipelines expected)",
            kind.name(),
            dataset.data.shape(),
            if dataset.nominal_period.is_some() { 192 } else { 96 }
        );
        println!(
            "{:>10} {:>10} {:>12} {:>10} {:>14}",
            "rate", "pipelines", "samplepoints", "tuning_s", "full_comp_s"
        );
        for &rate in &rates {
            let result = cliz::autotune(
                &dataset.data,
                dataset.mask.as_ref(),
                TuneSpec {
                    sampling_rate: rate,
                    time_axis: dataset.time_axis,
                    bound,
                },
            )
            .expect("autotune");

            // Compression of the full data under the estimated-best pipeline.
            let t0 = std::time::Instant::now();
            let _ = cliz::compress(&dataset.data, dataset.mask.as_ref(), bound, &result.best)
                .unwrap();
            let full_s = t0.elapsed().as_secs_f64();

            println!(
                "{:>10.0e} {:>10} {:>12} {:>10.3} {:>14.3}",
                rate,
                result.ranking.len(),
                result.sample_points,
                result.seconds,
                full_s
            );
            report.row(&format!(
                "{},{:e},{},{},{},{}",
                kind.name(),
                rate,
                result.ranking.len(),
                result.sample_points,
                result.seconds,
                full_s
            ));
        }
    }
    println!(
        "\nExpected shape (paper Fig. 11): tuning time ~linear in sampling rate, with a \
         constant floor from FFT period detection; SSH carries 2x the pipelines of CESM-T."
    );
    println!("CSV mirrored to target/experiments/fig11_sampling_time.csv");
}
