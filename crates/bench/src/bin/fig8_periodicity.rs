//! Fig. 8: FFT amplitude spectra of sampled time rows of the SSH dataset —
//! the peak at frequency `len/12` that drives period detection.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig8_periodicity [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::fft::{estimate_period, PeriodSpec};
use cliz::grid::MaskMap;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let time_axis = dataset.time_axis.expect("SSH has a time axis");
    let n_time = dataset.data.shape().dim(time_axis);
    let mut report = Report::new("fig8_periodicity", "frequency,amplitude");

    let all_valid = MaskMap::all_valid(dataset.data.shape().clone());
    let mask = dataset.mask.as_ref().unwrap_or(&all_valid);
    let est = estimate_period(&dataset.data, mask, time_axis, PeriodSpec::default());

    println!(
        "Fig. 8 — averaged amplitude spectrum of 10 sampled SSH time rows ({n_time} snapshots)\n"
    );
    // Print the spectrum as an ASCII profile (frequencies up to 2.5x the peak).
    let peak = est.peak_frequency.max(1);
    let max_amp = est.spectrum.iter().skip(1).cloned().fold(0.0f64, f64::max);
    let upto = (peak * 5 / 2).min(est.spectrum.len().saturating_sub(1));
    for f in 1..=upto {
        let amp = est.spectrum[f];
        report.row(&format!("{f},{amp}"));
        if f % (upto / 48).max(1) == 0 || amp > 0.5 * max_amp {
            let bar = "#".repeat((amp / max_amp * 60.0) as usize);
            println!("f={f:>4} {amp:>12.2} {bar}");
        }
    }

    println!("\npeak frequency: {}", est.peak_frequency);
    match est.period {
        Some(p) => println!(
            "detected period: {n_time}/{} = {p} snapshots (paper: 1032/86 = 12)",
            est.peak_frequency
        ),
        None => println!("no significant period detected"),
    }
    assert_eq!(est.period, Some(12), "SSH must show the annual cycle");
    println!("CSV mirrored to target/experiments/fig8_periodicity.csv");
}
