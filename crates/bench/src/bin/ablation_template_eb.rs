//! Extension ablation: the template error-bound factor.
//!
//! The periodic split takes the residual against the *reconstructed*
//! template, so the template may be stored at any accuracy without breaking
//! the user bound. Tighter templates cost template bits but make residuals
//! smaller/smoother; looser templates do the opposite. This sweep locates
//! the trade-off empirically (DESIGN.md design-choice ablation).
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin ablation_template_eb [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
    let original = dataset.data.len() * 4;
    let mut report = Report::new("ablation_template_eb", "factor,ratio,max_err,bound");

    let base = PipelineConfig {
        periodicity: Periodicity::Extract {
            time_axis: dataset.time_axis.unwrap(),
            period: dataset.nominal_period.unwrap(),
        },
        ..PipelineConfig::default_for(3)
    };
    let ErrorBound::Abs(eb) = bound else { unreachable!() };

    println!(
        "Template-bound ablation on {} {} (residual bound fixed at {eb:.3e})\n",
        dataset.kind.name(),
        dataset.data.shape()
    );
    println!("{:>8} {:>10} {:>14}", "factor", "ratio", "max err");
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let cfg = PipelineConfig {
            template_eb_factor: factor,
            ..base.clone()
        };
        let bytes = cliz::compress(&dataset.data, dataset.mask.as_ref(), bound, &cfg).unwrap();
        let recon = cliz::decompress(&bytes, dataset.mask.as_ref()).unwrap();
        let max_err = cliz::metrics::max_abs_error(
            dataset.data.as_slice(),
            recon.as_slice(),
            dataset.mask.as_ref(),
        );
        assert!(
            max_err <= eb * (1.0 + 1e-9),
            "user bound must hold at every factor"
        );
        let ratio = original as f64 / bytes.len() as f64;
        println!("{factor:>8.2} {ratio:>10.3} {max_err:>14.3e}");
        report.row(&format!("{factor},{ratio},{max_err},{eb}"));
    }
    println!(
        "\nKey invariant verified: the user-facing bound holds at *every* factor — the \
         knob only moves bits between the template and residual stages."
    );
    println!("CSV mirrored to target/experiments/ablation_template_eb.csv");
}
