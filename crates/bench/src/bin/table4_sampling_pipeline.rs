//! Table IV: the pipeline the tuner picks at each sampling rate, the *actual*
//! full-data compression ratio under that pipeline, and the loss versus the
//! rate=100% choice.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin table4_sampling_pipeline [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
    let original = dataset.data.len() * 4;
    let rates = [1.0, 0.1, 0.01, 1e-3, 1e-4, 1e-5];
    let mut report = Report::new(
        "table4_sampling_pipeline",
        "rate,periodicity,classification,permutation,fusion,fitting,actual_ratio,loss_pct",
    );

    println!(
        "Table IV — estimated-optimal pipeline and CR loss per sampling rate ({} {})\n",
        dataset.kind.name(),
        dataset.data.shape()
    );
    println!(
        "{:>8} {:>8} {:>6} {:>6} {:>7} {:>7} {:>10} {:>8}",
        "rate", "period", "class", "perm", "fusion", "fit", "ratio", "loss"
    );

    let mut baseline_ratio: Option<f64> = None;
    for &rate in &rates {
        let result = cliz::autotune(
            &dataset.data,
            dataset.mask.as_ref(),
            TuneSpec {
                sampling_rate: rate,
                time_axis: dataset.time_axis,
                bound,
            },
        )
        .expect("autotune");
        let cfg = &result.best;
        let bytes = cliz::compress(&dataset.data, dataset.mask.as_ref(), bound, cfg).unwrap();
        let ratio = original as f64 / bytes.len() as f64;
        let base = *baseline_ratio.get_or_insert(ratio);
        let loss = (1.0 - ratio / base) * 100.0;
        println!(
            "{:>8.0e} {:>8} {:>6} {:>6} {:>7} {:>7} {:>10.3} {:>7.2}%",
            rate,
            cfg.periodicity.label(),
            if cfg.classification { "Yes" } else { "No" },
            cfg.permutation_label(),
            cfg.fusion.label(),
            cfg.fitting.label(),
            ratio,
            loss
        );
        report.row(&format!(
            "{rate:e},{},{},{},{},{},{ratio},{loss}",
            cfg.periodicity.label(),
            cfg.classification,
            cfg.permutation_label(),
            cfg.fusion.label(),
            cfg.fitting.label(),
        ));
    }
    println!(
        "\nExpected shape (paper Table IV): losses stay within a few percent down to 0.1% \
         sampling, then grow as tiny blocks mislead the search."
    );
    println!("CSV mirrored to target/experiments/table4_sampling_pipeline.csv");
}
