//! Fig. 9: a horizontal SSH slice before and after periodic-component
//! removal — the residual is far smoother, which is why the split pays.
//!
//! Writes PGM images of both slices and prints smoothness statistics.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig9_residual [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::grid::{dimension_smoothness, MaskMap};
use cliz::metrics::write_pgm;
use cliz_bench::{datasets, Args, Report, ScaledDims};
use std::path::Path;

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let time_axis = dataset.time_axis.unwrap();
    let period = dataset.nominal_period.unwrap();
    let mask = dataset.mask.clone().expect("SSH is masked");
    let mut report = Report::new(
        "fig9_residual",
        "field,axis,mean_abs_diff,max_abs_diff",
    );

    // Template + residual, exactly as the compressor does it.
    let template = cliz::periodic::build_template(
        &dataset.data,
        Some(&mask),
        time_axis,
        period,
    );
    let residual = cliz::periodic::subtract_template(
        &dataset.data,
        &template,
        Some(&mask),
        time_axis,
    );

    // Smoothness along the two spatial axes (0 = lat, 1 = lon), valid only.
    println!(
        "Fig. 9 — spatial smoothness before/after periodic-component removal ({} {})\n",
        dataset.kind.name(),
        dataset.data.shape()
    );
    println!(
        "{:<10} {:>6} {:>14} {:>14}",
        "field", "axis", "mean|Δ|", "max|Δ|"
    );
    for (label, grid) in [("original", &dataset.data), ("residual", &residual)] {
        let s = dimension_smoothness(grid, &mask);
        for axis in 0..2 {
            println!(
                "{:<10} {:>6} {:>14.6} {:>14.6}",
                label, axis, s[axis].mean_abs_diff, s[axis].max_abs_diff
            );
            report.row(&format!(
                "{label},{axis},{},{}",
                s[axis].mean_abs_diff, s[axis].max_abs_diff
            ));
        }
    }

    // Dump mid-time slices as PGM for eyeballing (Fig. 9's panels).
    let t_mid = dataset.data.shape().dim(time_axis) / 2;
    let fixed = vec![0, 0, t_mid];
    let orig_slice = dataset.data.slice2d(0, 1, &fixed);
    let res_slice = residual.slice2d(0, 1, &fixed);
    let mask_grid = cliz::grid::Grid::from_vec(
        dataset.data.shape().clone(),
        mask.as_slice().to_vec(),
    );
    let slice_mask = MaskMap::from_flags(
        orig_slice.shape().clone(),
        mask_grid.slice2d(0, 1, &fixed).into_vec(),
    );
    let dir = Path::new("target/experiments");
    write_pgm(&dir.join("fig9_original_slice.pgm"), &orig_slice, Some(&slice_mask)).unwrap();
    write_pgm(&dir.join("fig9_residual_slice.pgm"), &res_slice, Some(&slice_mask)).unwrap();
    println!("\nslices written to target/experiments/fig9_{{original,residual}}_slice.pgm");

    // Residual variance must collapse relative to the original's seasonal swing.
    let var = |g: &cliz::grid::Grid<f32>| {
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        let mut n = 0usize;
        for (i, &v) in g.as_slice().iter().enumerate() {
            if mask.is_valid(i) {
                sum += v as f64;
                sq += (v as f64) * (v as f64);
                n += 1;
            }
        }
        sq / n as f64 - (sum / n as f64).powi(2)
    };
    let vo = var(&dataset.data);
    let vr = var(&residual);
    println!(
        "valid-point variance: original {vo:.5}, residual {vr:.5} ({:.1}x reduction)",
        vo / vr
    );
}
