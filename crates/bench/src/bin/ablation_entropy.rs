//! Extension ablation: the encoding stage.
//!
//! CliZ's contribution at this stage is *multi*-Huffman (Sec. VI-E). This
//! harness measures what that choice costs or gains against the
//! alternatives on a real quantization-bin stream (produced by the actual
//! predictor on SSH): single Huffman (SZ3's stage), multi-Huffman with the
//! classification map, an order-0 range coder (entropy-optimal static
//! model), and each followed by the zlite byte-level pass, plus wall time —
//! the speed/ratio trade-off that justifies Huffman-family coding in the
//! paper's "comparable speed" claim.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin ablation_entropy [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::entropy::{huffman, multi_encode, range_encode_stream};
use cliz::predict::{predict_quantize, Fitting, InterpParams};
use cliz::quant::classify::{apply_shifts, classify, ClassifySpec};
use cliz::quant::LinearQuantizer;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::Ssh, tier);
    let mask_slice = dataset.mask.as_ref().map(|m| m.as_slice());
    let mut report = Report::new(
        "ablation_entropy",
        "stage,bytes,bits_per_symbol,encode_s",
    );

    // Produce the real bin stream the encoder would see.
    let (mn, mx) = cliz::valid_min_max(&dataset.data, dataset.mask.as_ref());
    let eb = 1e-3 * (mx - mn) as f64;
    let q = LinearQuantizer::new(eb);
    let params = match mask_slice {
        Some(m) => InterpParams::with_mask(Fitting::Cubic, m),
        None => InterpParams::new(Fitting::Cubic),
    };
    let dims = dataset.data.shape().dims().to_vec();
    let mut buf = dataset.data.as_slice().to_vec();
    let mut symbols = vec![0u32; buf.len()];
    predict_quantize(&mut buf, &dims, &params, &q, &mut symbols);

    // Valid-position stream (what actually gets encoded).
    let valid: Vec<u32> = symbols
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask_slice.is_none_or(|m| m[i]))
        .map(|(_, &s)| s)
        .collect();
    let n = valid.len();
    println!(
        "Entropy-stage ablation on the real SSH bin stream ({n} symbols, rel eb 1e-3)\n"
    );
    println!(
        "{:<34} {:>10} {:>10} {:>10}",
        "stage", "bytes", "bits/sym", "encode_s"
    );

    let mut run = |name: &str, f: &dyn Fn() -> Vec<u8>| {
        let t0 = std::time::Instant::now();
        let bytes = f();
        let secs = t0.elapsed().as_secs_f64();
        let packed = cliz::lossless::compress(&bytes);
        for (label, len) in [(name.to_string(), bytes.len()), (format!("{name} + zlite"), packed.len())] {
            let bps = (len * 8) as f64 / n as f64;
            println!("{label:<34} {len:>10} {bps:>10.4} {secs:>10.3}");
            report.row(&format!("{label},{len},{bps},{secs}"));
        }
    };

    run("single Huffman (SZ3 stage)", &|| huffman::encode_stream(&valid));

    // Multi-Huffman with the real classification map.
    let h_len = dims[dims.len() - 2] * dims[dims.len() - 1];
    let class = classify(&symbols, h_len, mask_slice, ClassifySpec::default());
    let mut shifted = symbols.clone();
    apply_shifts(&mut shifted, &class, mask_slice);
    let shifted_valid: Vec<u32> = shifted
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask_slice.is_none_or(|m| m[i]))
        .map(|(_, &s)| s)
        .collect();
    let groups = class.group_sequence(shifted.len(), mask_slice);
    run("multi-Huffman (CliZ stage)", &|| {
        let mut out = multi_encode(&shifted_valid, &groups, 2);
        out.extend_from_slice(&class.marker_bytes());
        out
    });

    run("range coder (order-0)", &|| range_encode_stream(&valid));

    println!(
        "\nReading: multi-Huffman wins when the classification map finds real structure; \
         the range coder shows the remaining fractional-bit headroom; zlite recovers \
         byte-level redundancy for all three. Huffman decode is table-driven and \
         fastest — the trade the paper makes."
    );
    println!("CSV mirrored to target/experiments/ablation_entropy.csv");
}
