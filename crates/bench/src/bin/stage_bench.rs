//! Per-stage kernel benchmark with built-in byte-identity gates.
//!
//! Measures each pipeline stage in isolation, and — for the stages that
//! were rewritten for throughput (entropy coding, zlite) — diffs the new
//! kernels against the frozen pre-rewrite references
//! (`cliz::entropy::reference`, `cliz::lossless::reference`) on every run:
//!
//! 1. **entropy encode/decode** — canonical-Huffman stream coding. The new
//!    word-at-a-time writer must produce byte-identical streams, the packed
//!    multi-symbol decoder must reproduce the symbols exactly, and (in the
//!    scaled/full tiers) decode must run ≥ 3× faster than the reference;
//! 2. **lossless compress/decompress** — the zlite container. Compressed
//!    bytes and roundtrip output are diffed against the reference;
//! 3. **quant classify/shift** — per-position classification and the
//!    shift/unshift transforms (unshift must invert shift exactly);
//! 4. **predict quantize/reconstruct** — the interpolation walk; the
//!    decoder reconstruction must equal the encoder's in-place buffer
//!    bit-for-bit.
//!
//! Any divergence (or a missed speedup gate) exits non-zero — CI runs
//! `--quick` as a smoke test of the identity gates.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin stage_bench [--quick|--full]
//! # writes BENCH_stages.json into the current directory
//! ```
//!
//! See docs/PERFORMANCE.md ("Decode kernel architecture") for how the
//! rewritten kernels earn the speedups recorded here.

use cliz::entropy::huffman::{decode_stream, encode_stream};
use cliz::entropy::reference::{ref_decode_stream, ref_encode_stream};
use cliz::lossless::reference::{ref_compress, ref_decompress};
use cliz::lossless::{compress, decompress};
use cliz::predict::{predict_quantize, reconstruct, Fitting, InterpParams};
use cliz::quant::classify::{apply_shifts, unapply_shifts};
use cliz::quant::{classify, ClassifySpec, LinearQuantizer, ESCAPE};
use cliz_bench::Args;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Geometric-ish quantization-symbol stream: mostly small bins with a long
/// tail, the shape the predictor actually hands the entropy stage.
fn symbol_stream(n: usize) -> Vec<u32> {
    let mut state = 0x2545F491_4F6CDD1Du64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = ((state >> 40) as u32) | 1;
        // leading_zeros of a 24-bit draw: geometric with ratio ~1/2.
        out.push((r.leading_zeros() - 8).min(40));
    }
    // Singletons deepen the tree past the LUT so the slow path is exercised.
    out.extend(100..108);
    out
}

/// Byte stream shaped like a Huffman-coded residual payload: long
/// low-entropy runs with sparse punctuation (LZ matches + literals).
fn residual_bytes(n: usize) -> Vec<u8> {
    let mut state = 0x9E3779B9_7F4A7C15u64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let run = 3 + ((state >> 48) as usize & 31);
        let byte = ((state >> 32) & 0x7) as u8;
        for _ in 0..run.min(n - out.len()) {
            out.push(byte);
        }
        if out.len() < n {
            out.push((state >> 56) as u8);
        }
    }
    out
}

/// Smooth 3-D field, the predictor's intended input.
fn smooth_field(dims: &[usize]) -> Vec<f32> {
    let (a, b, c) = (dims[0], dims[1], dims[2]);
    let mut v = Vec::with_capacity(a * b * c);
    for i in 0..a {
        for j in 0..b {
            for k in 0..c {
                let x = i as f64 / a as f64;
                let y = j as f64 / b as f64;
                let z = k as f64 / c as f64;
                v.push((12.0 * (x * 2.9).sin() + 6.0 * (y * 2.1).cos() + 3.0 * z * z) as f32);
            }
        }
    }
    v
}

struct Stage {
    name: &'static str,
    input_mb: f64,
    new_s: f64,
    ref_s: Option<f64>,
    identical: bool,
}

impl Stage {
    fn print(&self) {
        let new_tp = self.input_mb / self.new_s;
        match self.ref_s {
            Some(ref_s) => println!(
                "  {:<22} {:>8.1} MB/s   (reference {:>7.1} MB/s, {:>5.2}x)   identical: {}",
                self.name,
                new_tp,
                self.input_mb / ref_s,
                ref_s / self.new_s,
                self.identical
            ),
            None => println!(
                "  {:<22} {:>8.1} MB/s   identical: {}",
                self.name, new_tp, self.identical
            ),
        }
    }

    fn json(&self) -> String {
        let speedup = self.ref_s.map(|r| r / self.new_s);
        format!(
            "{{\"stage\":\"{}\",\"input_mb\":{},\"new_s\":{},\"new_mb_s\":{},\
             \"ref_s\":{},\"ref_mb_s\":{},\"speedup\":{},\"identical\":{}}}",
            self.name,
            json_f64(self.input_mb),
            json_f64(self.new_s),
            json_f64(self.input_mb / self.new_s),
            self.ref_s.map_or("null".into(), json_f64),
            self.ref_s.map_or("null".into(), |r| json_f64(self.input_mb / r)),
            speedup.map_or("null".into(), json_f64),
            self.identical,
        )
    }
}

fn main() {
    let args = Args::parse();
    let (tier, n_syms, n_bytes, dims, reps) = if args.quick {
        ("quick", 200_000usize, 1usize << 20, vec![16, 48, 48], 3usize)
    } else if args.full {
        ("full", 16_000_000, 48 << 20, vec![64, 384, 384], 5)
    } else {
        ("scaled", 4_000_000, 16 << 20, vec![32, 192, 192], 5)
    };
    println!(
        "stage_bench ({tier}): {n_syms} symbols, {} MB bytes, {dims:?} field",
        n_bytes >> 20
    );

    let mut stages: Vec<Stage> = Vec::new();
    let mut diverged = false;
    let mut check = |name: &str, ok: bool| {
        if !ok {
            eprintln!("DIVERGENCE: {name}");
            diverged = true;
        }
    };

    // --- entropy: canonical Huffman stream coding ---
    let symbols = symbol_stream(n_syms);
    let sym_mb = (symbols.len() * 4) as f64 / 1e6;

    let enc_s = time_best(reps, || encode_stream(&symbols));
    let ref_enc_s = time_best(reps, || ref_encode_stream(&symbols));
    let bytes = encode_stream(&symbols);
    check("entropy encode bytes != reference", bytes == ref_encode_stream(&symbols));
    stages.push(Stage {
        name: "entropy_encode",
        input_mb: sym_mb,
        new_s: enc_s,
        ref_s: Some(ref_enc_s),
        identical: bytes == ref_encode_stream(&symbols),
    });

    let dec_s = time_best(reps, || decode_stream(&bytes));
    let ref_dec_s = time_best(reps, || ref_decode_stream(&bytes));
    let decoded = decode_stream(&bytes);
    let dec_ok = decoded.as_deref() == Some(&symbols[..])
        && decoded == ref_decode_stream(&bytes);
    check("entropy decode != original symbols / reference", dec_ok);
    stages.push(Stage {
        name: "entropy_decode",
        input_mb: sym_mb,
        new_s: dec_s,
        ref_s: Some(ref_dec_s),
        identical: dec_ok,
    });
    let decode_speedup = ref_dec_s / dec_s;

    // --- lossless: zlite container ---
    let payload = residual_bytes(n_bytes);
    let mb = payload.len() as f64 / 1e6;

    let comp_s = time_best(reps, || compress(&payload));
    let ref_comp_s = time_best(reps, || ref_compress(&payload));
    let packed = compress(&payload);
    let comp_ok = packed == ref_compress(&payload);
    check("zlite compress bytes != reference", comp_ok);
    stages.push(Stage {
        name: "zlite_compress",
        input_mb: mb,
        new_s: comp_s,
        ref_s: Some(ref_comp_s),
        identical: comp_ok,
    });

    let dec_s = time_best(reps, || decompress(&packed));
    let ref_dec_s2 = time_best(reps, || ref_decompress(&packed));
    let unpacked = decompress(&packed);
    let unp_ok = unpacked.as_deref().ok() == Some(&payload[..])
        && unpacked.as_deref().ok() == ref_decompress(&packed).as_deref().ok();
    check("zlite decompress != original / reference", unp_ok);
    stages.push(Stage {
        name: "zlite_decompress",
        input_mb: mb,
        new_s: dec_s,
        ref_s: Some(ref_dec_s2),
        identical: unp_ok,
    });

    // --- quant: classification + shift transforms ---
    let field = smooth_field(&dims);
    let field_mb = (field.len() * 4) as f64 / 1e6;
    let h_len = dims[1] * dims[2];
    let q = LinearQuantizer::new(1e-3);
    let params = InterpParams::new(Fitting::Cubic);
    let mut buf = field.clone();
    let mut symbols_grid = vec![0u32; field.len()];
    predict_quantize(&mut buf, &dims, &params, &q, &mut symbols_grid);

    let class = classify(&symbols_grid, h_len, None, ClassifySpec::default());
    let classify_s = time_best(reps, || {
        classify(&symbols_grid, h_len, None, ClassifySpec::default())
    });
    let mut shifted = symbols_grid.clone();
    let shift_s = time_best(reps, || {
        apply_shifts(&mut shifted, &class, None);
        unapply_shifts(&mut shifted, &class, None);
    });
    let shift_ok = shifted == symbols_grid;
    check("quant shift/unshift not an identity", shift_ok);
    stages.push(Stage {
        name: "quant_classify",
        input_mb: field_mb,
        new_s: classify_s,
        ref_s: None,
        identical: true,
    });
    stages.push(Stage {
        name: "quant_shift_roundtrip",
        input_mb: field_mb,
        new_s: shift_s,
        ref_s: None,
        identical: shift_ok,
    });

    // --- predict: interpolation walk, both directions ---
    let pq_s = time_best(reps, || {
        let mut b = field.clone();
        let mut s = vec![0u32; field.len()];
        predict_quantize(&mut b, &dims, &params, &q, &mut s)
    });
    let literals: Vec<f32> = symbols_grid
        .iter()
        .zip(&field)
        .filter(|&(&s, _)| s == ESCAPE)
        .map(|(_, &v)| v)
        .collect();
    let mut out = vec![0.0f32; field.len()];
    let rec_s = time_best(reps, || {
        reconstruct(&mut out, &dims, &params, &q, &symbols_grid, &literals, 0.0)
    });
    reconstruct(&mut out, &dims, &params, &q, &symbols_grid, &literals, 0.0)
        .expect("reconstruct");
    let rec_ok = out == buf;
    check("predict reconstruct != encoder reconstruction", rec_ok);
    stages.push(Stage {
        name: "predict_quantize",
        input_mb: field_mb,
        new_s: pq_s,
        ref_s: None,
        identical: true,
    });
    stages.push(Stage {
        name: "predict_reconstruct",
        input_mb: field_mb,
        new_s: rec_s,
        ref_s: None,
        identical: rec_ok,
    });

    for s in &stages {
        s.print();
    }

    // The decode-kernel overhaul this harness guards (ROADMAP item 1)
    // promises ≥ 3× entropy decode over the frozen reference; quick-tier
    // inputs are too small to time reliably, so the gate applies to the
    // tiers whose JSON gets committed.
    let gate = 3.0;
    let gated = !args.quick;
    println!(
        "\nentropy decode speedup over pre-rewrite reference: {decode_speedup:.2}x \
         (gate {gate}x, {})",
        if gated { "enforced" } else { "quick tier: not enforced" }
    );
    if gated && decode_speedup < gate {
        eprintln!("FAIL: entropy decode speedup {decode_speedup:.2}x below the {gate}x gate");
        diverged = true;
    }

    let json = format!(
        "{{\"schema\":\"cliz-stage-bench-v1\",\"tier\":\"{tier}\",\
         \"symbols\":{n_syms},\"payload_bytes\":{n_bytes},\"field_dims\":{dims:?},\
         \"entropy_decode_speedup\":{},\"speedup_gate\":{},\
         \"stages\":[{}]}}\n",
        json_f64(decode_speedup),
        json_f64(gate),
        stages.iter().map(Stage::json).collect::<Vec<_>>().join(","),
    );
    std::fs::write("BENCH_stages.json", &json).expect("write BENCH_stages.json");
    println!("wrote BENCH_stages.json");

    if diverged {
        eprintln!("FAIL: stage identity/performance gates violated");
        std::process::exit(1);
    }
}
