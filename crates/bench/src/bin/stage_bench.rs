//! Per-stage kernel benchmark with built-in byte-identity gates.
//!
//! Measures each pipeline stage in isolation, and — for the stages that
//! were rewritten for throughput (entropy coding, zlite, the prediction
//! walk) — diffs the new kernels against the frozen pre-rewrite references
//! (`cliz::entropy::reference`, `cliz::lossless::reference`,
//! `cliz::predict::ref_predict_quantize`) on every run:
//!
//! 1. **entropy encode/decode** — canonical-Huffman stream coding. The new
//!    word-at-a-time writer must produce byte-identical streams, the packed
//!    multi-symbol decoder must reproduce the symbols exactly, and (in the
//!    scaled/full tiers) decode must run ≥ 3× faster than the reference;
//! 2. **lossless compress/decompress** — the zlite container. Compressed
//!    bytes and roundtrip output are diffed against the reference, and the
//!    identity-pinned bucket-ring compressor must beat the reference by the
//!    encode gate. A second `zlite_compress_fast` stage runs the
//!    throughput-biased [`Effort::fast`] profile, which is only required to
//!    roundtrip (its stream is *not* reference-pinned) but must clear a
//!    larger speedup gate;
//! 3. **quant classify/shift** — per-position classification and the
//!    shift/unshift transforms (unshift must invert shift exactly);
//! 4. **predict quantize/reconstruct** — the interpolation walk. The
//!    two-phase branch-hoisted encode walk is diffed against the frozen
//!    reference (escape count, symbol grid, and reconstruction bits) and
//!    gated on speedup; the decoder reconstruction must equal the encoder's
//!    in-place buffer bit-for-bit.
//!
//! Speedup-gated pairs are timed *interleaved* (new/reference alternating
//! inside one loop, best-of-N each) so clock drift and host noise land on
//! both sides of every ratio equally.
//!
//! Any divergence (or a missed speedup gate) exits non-zero — CI runs
//! `--quick` as a smoke test of the identity gates.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin stage_bench [--quick|--full]
//! # writes BENCH_stages.json into the current directory
//! ```
//!
//! See docs/PERFORMANCE.md ("Decode kernel architecture" and "Encode kernel
//! architecture") for how the rewritten kernels earn the speedups recorded
//! here, and for why each gate sits at its level.

use cliz::entropy::huffman::{decode_stream, encode_stream};
use cliz::entropy::reference::{ref_decode_stream, ref_encode_stream};
use cliz::lossless::lz::Effort;
use cliz::lossless::reference::{ref_compress, ref_decompress};
use cliz::lossless::{compress, compress_with, decompress};
use cliz::predict::{predict_quantize, ref_predict_quantize, reconstruct, Fitting, InterpParams};
use cliz::quant::classify::{apply_shifts, unapply_shifts};
use cliz::quant::{classify, ClassifySpec, LinearQuantizer, ESCAPE};
use cliz_bench::Args;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Interleaved best-of-`reps` for a gated (new, reference) pair: the two
/// sides alternate within a single rep loop, so frequency drift and noisy
/// neighbours perturb both numerators of the speedup ratio alike. On a
/// 1-core CI host, back-to-back block timing of the same binary varies by
/// 25%+ run to run; interleaving keeps the *ratio* stable within a few
/// percent.
fn time_pair<A, B>(
    reps: usize,
    mut new_f: impl FnMut() -> A,
    mut ref_f: impl FnMut() -> B,
) -> (f64, f64) {
    let mut best_new = f64::INFINITY;
    let mut best_ref = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(new_f());
        best_new = best_new.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        black_box(ref_f());
        best_ref = best_ref.min(t0.elapsed().as_secs_f64());
    }
    (best_new, best_ref)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Geometric-ish quantization-symbol stream: mostly small bins with a long
/// tail, the shape the predictor actually hands the entropy stage.
fn symbol_stream(n: usize) -> Vec<u32> {
    let mut state = 0x2545F491_4F6CDD1Du64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = ((state >> 40) as u32) | 1;
        // leading_zeros of a 24-bit draw: geometric with ratio ~1/2.
        out.push((r.leading_zeros() - 8).min(40));
    }
    // Singletons deepen the tree past the LUT so the slow path is exercised.
    out.extend(100..108);
    out
}

/// Byte stream shaped like a Huffman-coded residual payload: long
/// low-entropy runs with sparse punctuation (LZ matches + literals).
fn residual_bytes(n: usize) -> Vec<u8> {
    let mut state = 0x9E3779B9_7F4A7C15u64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let run = 3 + ((state >> 48) as usize & 31);
        let byte = ((state >> 32) & 0x7) as u8;
        for _ in 0..run.min(n - out.len()) {
            out.push(byte);
        }
        if out.len() < n {
            out.push((state >> 56) as u8);
        }
    }
    out
}

/// Smooth 3-D field, the predictor's intended input.
fn smooth_field(dims: &[usize]) -> Vec<f32> {
    let (a, b, c) = (dims[0], dims[1], dims[2]);
    let mut v = Vec::with_capacity(a * b * c);
    for i in 0..a {
        for j in 0..b {
            for k in 0..c {
                let x = i as f64 / a as f64;
                let y = j as f64 / b as f64;
                let z = k as f64 / c as f64;
                v.push((12.0 * (x * 2.9).sin() + 6.0 * (y * 2.1).cos() + 3.0 * z * z) as f32);
            }
        }
    }
    v
}

struct Stage {
    name: &'static str,
    input_mb: f64,
    new_s: f64,
    ref_s: Option<f64>,
    identical: bool,
}

impl Stage {
    fn print(&self) {
        let new_tp = self.input_mb / self.new_s;
        match self.ref_s {
            Some(ref_s) => println!(
                "  {:<22} {:>8.1} MB/s   (reference {:>7.1} MB/s, {:>5.2}x)   identical: {}",
                self.name,
                new_tp,
                self.input_mb / ref_s,
                ref_s / self.new_s,
                self.identical
            ),
            None => println!(
                "  {:<22} {:>8.1} MB/s   identical: {}",
                self.name, new_tp, self.identical
            ),
        }
    }

    fn json(&self) -> String {
        let speedup = self.ref_s.map(|r| r / self.new_s);
        format!(
            "{{\"stage\":\"{}\",\"input_mb\":{},\"new_s\":{},\"new_mb_s\":{},\
             \"ref_s\":{},\"ref_mb_s\":{},\"speedup\":{},\"identical\":{}}}",
            self.name,
            json_f64(self.input_mb),
            json_f64(self.new_s),
            json_f64(self.input_mb / self.new_s),
            self.ref_s.map_or("null".into(), json_f64),
            self.ref_s.map_or("null".into(), |r| json_f64(self.input_mb / r)),
            speedup.map_or("null".into(), json_f64),
            self.identical,
        )
    }
}

fn main() {
    let args = Args::parse();
    let (tier, n_syms, n_bytes, dims, reps) = if args.quick {
        ("quick", 200_000usize, 1usize << 20, vec![16, 48, 48], 3usize)
    } else if args.full {
        ("full", 16_000_000, 48 << 20, vec![64, 384, 384], 5)
    } else {
        ("scaled", 4_000_000, 16 << 20, vec![32, 192, 192], 5)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "stage_bench ({tier}): {n_syms} symbols, {} MB bytes, {dims:?} field, {host_cores} host core(s)",
        n_bytes >> 20
    );

    let mut stages: Vec<Stage> = Vec::new();
    let mut diverged = false;
    let mut check = |name: &str, ok: bool| {
        if !ok {
            eprintln!("DIVERGENCE: {name}");
            diverged = true;
        }
    };

    // --- entropy: canonical Huffman stream coding ---
    let symbols = symbol_stream(n_syms);
    let sym_mb = (symbols.len() * 4) as f64 / 1e6;

    let (enc_s, ref_enc_s) =
        time_pair(reps, || encode_stream(&symbols), || ref_encode_stream(&symbols));
    let bytes = encode_stream(&symbols);
    check("entropy encode bytes != reference", bytes == ref_encode_stream(&symbols));
    stages.push(Stage {
        name: "entropy_encode",
        input_mb: sym_mb,
        new_s: enc_s,
        ref_s: Some(ref_enc_s),
        identical: bytes == ref_encode_stream(&symbols),
    });

    let (dec_s, ref_dec_s) =
        time_pair(reps, || decode_stream(&bytes), || ref_decode_stream(&bytes));
    let decoded = decode_stream(&bytes);
    let dec_ok = decoded.as_deref() == Some(&symbols[..])
        && decoded == ref_decode_stream(&bytes);
    check("entropy decode != original symbols / reference", dec_ok);
    stages.push(Stage {
        name: "entropy_decode",
        input_mb: sym_mb,
        new_s: dec_s,
        ref_s: Some(ref_dec_s),
        identical: dec_ok,
    });
    let decode_speedup = ref_dec_s / dec_s;

    // --- lossless: zlite container ---
    let payload = residual_bytes(n_bytes);
    let mb = payload.len() as f64 / 1e6;

    let (comp_s, ref_comp_s) =
        time_pair(reps, || compress(&payload), || ref_compress(&payload));
    let packed = compress(&payload);
    let comp_ok = packed == ref_compress(&payload);
    check("zlite compress bytes != reference", comp_ok);
    stages.push(Stage {
        name: "zlite_compress",
        input_mb: mb,
        new_s: comp_s,
        ref_s: Some(ref_comp_s),
        identical: comp_ok,
    });
    let compress_speedup = ref_comp_s / comp_s;

    // Fast profile: not reference-pinned (shorter chain walks change the
    // token stream), so "identical" here means the stream roundtrips and
    // its ratio give-up against the pinned profile stays bounded. The
    // speedup is still measured against the *reference default-effort*
    // compressor — the honest denominator for "what did the encode
    // overhaul buy when byte-identity is not required".
    let (fast_s, ref_fast_s) =
        time_pair(reps, || compress_with(&payload, Effort::fast()), || ref_compress(&payload));
    let fast_packed = compress_with(&payload, Effort::fast());
    let fast_ok = decompress(&fast_packed).as_deref().ok() == Some(&payload[..])
        && (fast_packed.len() as f64) <= (packed.len() as f64) * 1.2;
    check("zlite fast profile roundtrip/ratio", fast_ok);
    stages.push(Stage {
        name: "zlite_compress_fast",
        input_mb: mb,
        new_s: fast_s,
        ref_s: Some(ref_fast_s),
        identical: fast_ok,
    });
    let fast_speedup = ref_fast_s / fast_s;

    let (dec_s, ref_dec_s2) =
        time_pair(reps, || decompress(&packed), || ref_decompress(&packed));
    let unpacked = decompress(&packed);
    let unp_ok = unpacked.as_deref().ok() == Some(&payload[..])
        && unpacked.as_deref().ok() == ref_decompress(&packed).as_deref().ok();
    check("zlite decompress != original / reference", unp_ok);
    stages.push(Stage {
        name: "zlite_decompress",
        input_mb: mb,
        new_s: dec_s,
        ref_s: Some(ref_dec_s2),
        identical: unp_ok,
    });

    // --- quant: classification + shift transforms ---
    let field = smooth_field(&dims);
    let field_mb = (field.len() * 4) as f64 / 1e6;
    let h_len = dims[1] * dims[2];
    let q = LinearQuantizer::new(1e-3);
    let params = InterpParams::new(Fitting::Cubic);
    let mut buf = field.clone();
    let mut symbols_grid = vec![0u32; field.len()];
    predict_quantize(&mut buf, &dims, &params, &q, &mut symbols_grid);

    let class = classify(&symbols_grid, h_len, None, ClassifySpec::default());
    let classify_s = time_best(reps, || {
        classify(&symbols_grid, h_len, None, ClassifySpec::default())
    });
    let mut shifted = symbols_grid.clone();
    let shift_s = time_best(reps, || {
        apply_shifts(&mut shifted, &class, None);
        unapply_shifts(&mut shifted, &class, None);
    });
    let shift_ok = shifted == symbols_grid;
    check("quant shift/unshift not an identity", shift_ok);
    stages.push(Stage {
        name: "quant_classify",
        input_mb: field_mb,
        new_s: classify_s,
        ref_s: None,
        identical: true,
    });
    stages.push(Stage {
        name: "quant_shift_roundtrip",
        input_mb: field_mb,
        new_s: shift_s,
        ref_s: None,
        identical: shift_ok,
    });

    // --- predict: interpolation walk, both directions ---
    // Encode side diffed against the frozen single-loop reference: the
    // branch-hoisted two-phase walk must reproduce the exact escape count,
    // symbol grid, and reconstruction bits, and beat the reference by the
    // encode gate. Timed by hand rather than through `time_pair`: the
    // input buffer must be re-seeded between calls (the walk reconstructs
    // in place), and that copy has to happen *outside* the timed region —
    // it is identical absolute cost on both sides, so leaving it inside
    // dilutes the ratio toward 1× and drowns the gate in its own noise.
    // More reps than the other pairs for the same reason: this ratio sits
    // closest to its gate.
    let (pq_s, ref_pq_s) = {
        let mut best_new = f64::INFINITY;
        let mut best_ref = f64::INFINITY;
        let mut b = vec![0.0f32; field.len()];
        let mut sg = vec![0u32; field.len()];
        for _ in 0..reps.max(7) {
            b.copy_from_slice(&field);
            sg.fill(0);
            let t0 = Instant::now();
            black_box(predict_quantize(&mut b, &dims, &params, &q, &mut sg));
            best_new = best_new.min(t0.elapsed().as_secs_f64());
            b.copy_from_slice(&field);
            sg.fill(0);
            let t0 = Instant::now();
            black_box(ref_predict_quantize(&mut b, &dims, &params, &q, &mut sg));
            best_ref = best_ref.min(t0.elapsed().as_secs_f64());
        }
        (best_new, best_ref)
    };
    let pq_ok = {
        let mut b_ref = field.clone();
        let mut s_ref = vec![0u32; field.len()];
        let esc_ref = ref_predict_quantize(&mut b_ref, &dims, &params, &q, &mut s_ref);
        let mut b_new = field.clone();
        let mut s_new = vec![0u32; field.len()];
        let esc_new = predict_quantize(&mut b_new, &dims, &params, &q, &mut s_new);
        esc_new == esc_ref
            && s_new == s_ref
            && b_new.iter().zip(&b_ref).all(|(a, b)| a.to_bits() == b.to_bits())
    };
    check("predict quantize != frozen reference", pq_ok);
    let literals: Vec<f32> = symbols_grid
        .iter()
        .zip(&field)
        .filter(|&(&s, _)| s == ESCAPE)
        .map(|(_, &v)| v)
        .collect();
    let mut out = vec![0.0f32; field.len()];
    let rec_s = time_best(reps, || {
        reconstruct(&mut out, &dims, &params, &q, &symbols_grid, &literals, 0.0)
    });
    reconstruct(&mut out, &dims, &params, &q, &symbols_grid, &literals, 0.0)
        .expect("reconstruct");
    let rec_ok = out == buf;
    check("predict reconstruct != encoder reconstruction", rec_ok);
    stages.push(Stage {
        name: "predict_quantize",
        input_mb: field_mb,
        new_s: pq_s,
        ref_s: Some(ref_pq_s),
        identical: pq_ok,
    });
    let pq_speedup = ref_pq_s / pq_s;
    stages.push(Stage {
        name: "predict_reconstruct",
        input_mb: field_mb,
        new_s: rec_s,
        ref_s: None,
        identical: rec_ok,
    });

    for s in &stages {
        s.print();
    }

    // Speedup gates over the frozen pre-rewrite references. Quick-tier
    // inputs are too small to time reliably, so the gates apply to the
    // tiers whose JSON gets committed. Levels are honest floors below the
    // *minimum* observed over repeated runs on a 1-core CI-class host —
    // run-to-run ratios swing several percent even interleaved, so each
    // gate sits under its observed range while staying far above what any
    // real regression to the reference kernel would score (see
    // docs/PERFORMANCE.md for the measurements behind each):
    //
    // * entropy decode ≥ 3×      — the decode-kernel overhaul's headline
    //   (observed 3.16–3.50×);
    // * zlite compress ≥ 1.4×    — bucket-ring match finder, byte-identical
    //   stream (observed 1.87–1.99×; identity pinning caps how much the
    //   parse may change);
    // * zlite fast ≥ 2.5×        — Effort::fast vs the reference default
    //   effort, roundtrip-only contract (observed 3.00–3.44×);
    // * predict quantize ≥ 1.02× — two-phase branch-hoisted walk (observed
    //   1.04–1.17×; a regression to the reference's in-place single loop
    //   scores ~0.9× or worse, well below the floor). Bit-identity plus
    //   the walk's strided-stencil memory traffic bound the ceiling here:
    //   the win is real but modest, and the gate says so.
    let gated = !args.quick;
    let gates: [(&str, f64, f64); 4] = [
        ("entropy_decode", decode_speedup, 3.0),
        ("zlite_compress", compress_speedup, 1.4),
        ("zlite_compress_fast", fast_speedup, 2.5),
        ("predict_quantize", pq_speedup, 1.02),
    ];
    println!();
    for (name, got, min) in gates {
        println!(
            "{name:<22} speedup over pre-rewrite reference: {got:.2}x (gate {min}x, {})",
            if gated { "enforced" } else { "quick tier: not enforced" }
        );
        if gated && got < min {
            eprintln!("FAIL: {name} speedup {got:.2}x below the {min}x gate");
            diverged = true;
        }
    }

    let gates_json = gates
        .iter()
        .map(|(name, got, min)| {
            format!(
                "{{\"stage\":\"{name}\",\"speedup\":{},\"gate\":{},\"enforced\":{gated}}}",
                json_f64(*got),
                json_f64(*min)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"schema\":\"cliz-stage-bench-v2\",\"tier\":\"{tier}\",\"host_cores\":{host_cores},\
         \"symbols\":{n_syms},\"payload_bytes\":{n_bytes},\"field_dims\":{dims:?},\
         \"gates\":[{gates_json}],\
         \"stages\":[{}]}}\n",
        stages.iter().map(Stage::json).collect::<Vec<_>>().join(","),
    );
    std::fs::write("BENCH_stages.json", &json).expect("write BENCH_stages.json");
    println!("wrote BENCH_stages.json");

    if diverged {
        eprintln!("FAIL: stage identity/performance gates violated");
        std::process::exit(1);
    }
}
