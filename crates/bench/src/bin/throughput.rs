//! Sec. VII-C4 speed comparison: compression and decompression throughput
//! per compressor per dataset, at the evaluation's working bound.
//!
//! The paper's claim: CliZ has "very similar compression and decompression
//! time cost with SZ3 and ZFP … and is substantially faster than SPERR."
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin throughput [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let mut report = Report::new(
        "throughput",
        "dataset,compressor,compress_mb_s,decompress_mb_s,ratio",
    );

    for kind in [DatasetKind::Ssh, DatasetKind::CesmT, DatasetKind::HurricaneT] {
        let dataset = datasets::scaled(kind, tier);
        let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
        let mb = (dataset.data.len() * 4) as f64 / 1e6;
        println!(
            "\n=== {} {} ({mb:.1} MB, rel eb 1e-3)",
            kind.name(),
            dataset.data.shape()
        );
        println!(
            "{:<8} {:>14} {:>16} {:>9}",
            "comp", "compress MB/s", "decompress MB/s", "ratio"
        );
        for compressor in cliz::all_compressors_extended(None) {
            // Two timed repetitions, keep the faster (warm) one.
            let mut c_best = f64::INFINITY;
            let mut d_best = f64::INFINITY;
            let mut bytes = Vec::new();
            for _ in 0..2 {
                let t0 = std::time::Instant::now();
                bytes = compressor
                    .compress(&dataset.data, dataset.mask.as_ref(), bound)
                    .unwrap();
                c_best = c_best.min(t0.elapsed().as_secs_f64());
                let t0 = std::time::Instant::now();
                let _ = compressor
                    .decompress(&bytes, dataset.mask.as_ref())
                    .unwrap();
                d_best = d_best.min(t0.elapsed().as_secs_f64());
            }
            let ratio = (dataset.data.len() * 4) as f64 / bytes.len() as f64;
            println!(
                "{:<8} {:>14.1} {:>16.1} {:>9.2}",
                compressor.name(),
                mb / c_best,
                mb / d_best,
                ratio
            );
            report.row(&format!(
                "{},{},{},{},{ratio}",
                kind.name(),
                compressor.name(),
                mb / c_best,
                mb / d_best
            ));
        }
    }
    println!("\nCSV mirrored to target/experiments/throughput.csv");
}
