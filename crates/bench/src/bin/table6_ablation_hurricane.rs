//! Table VI: ablation on Hurricane-T — a dataset with no mask and no
//! periodicity, where classification may *not* pay (the paper shows it
//! slightly hurting) and a random permutation/fusion choice costs ratio.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin table6_ablation_hurricane [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::grid::FusionSpec;
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::HurricaneT, tier);
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
    let original = dataset.data.len() * 4;
    let mut report = Report::new(
        "table6_ablation_hurricane",
        "case,classification,permutation,fusion,fitting,ratio,cr_improvement_pct,seconds,time_increment_pct",
    );

    let tuned = cliz::autotune(
        &dataset.data,
        dataset.mask.as_ref(),
        TuneSpec {
            sampling_rate: 0.01,
            time_axis: None,
            bound,
        },
    )
    .expect("autotune")
    .best;

    println!(
        "Table VI — Hurricane-T ablation ({} {}, rel eb 1e-3; no mask, no periodicity)\n",
        dataset.kind.name(),
        dataset.data.shape()
    );
    println!(
        "{:<24} {:>6} {:>6} {:>7} {:>7} {:>9} {:>10} {:>8} {:>10}",
        "case", "class", "perm", "fusion", "fit", "ratio", "CR impr", "time_s", "time incr"
    );

    let mut run = |label: &str, cfg: &PipelineConfig, baseline: Option<(f64, f64)>| {
        let t0 = std::time::Instant::now();
        let bytes = cliz::compress(&dataset.data, dataset.mask.as_ref(), bound, cfg).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let ratio = original as f64 / bytes.len() as f64;
        let (cr_impr, time_incr) = match baseline {
            Some((r0, t0)) => ((r0 / ratio - 1.0) * 100.0, (t0 / secs - 1.0) * 100.0),
            None => (0.0, 0.0),
        };
        println!(
            "{:<24} {:>6} {:>6} {:>7} {:>7} {:>9.3} {:>9.2}% {:>8.3} {:>9.2}%",
            label,
            if cfg.classification { "Yes" } else { "No" },
            cfg.permutation_label(),
            cfg.fusion.label(),
            cfg.fitting.label(),
            ratio,
            cr_impr,
            secs,
            time_incr
        );
        report.row(&format!(
            "{label},{},{},{},{},{ratio},{cr_impr},{secs},{time_incr}",
            cfg.classification,
            cfg.permutation_label(),
            cfg.fusion.label(),
            cfg.fitting.label(),
        ));
        (ratio, secs)
    };

    let opt = run("estimated optimal", &tuned, None);

    let mut toggled = tuned.clone();
    toggled.classification = !tuned.classification;
    run(
        if tuned.classification {
            "classification off"
        } else {
            "classification on"
        },
        &toggled,
        Some(opt),
    );

    // A deliberately poor permutation/fusion, as the paper's third column.
    let mut random_cfg = tuned.clone();
    random_cfg.permutation = vec![0, 2, 1];
    random_cfg.fusion = FusionSpec { start: 0, len: 2 };
    run("random perm+fusion", &random_cfg, Some(opt));

    println!(
        "\nExpected shape (paper Table VI): classification is ~neutral-to-negative here \
         (convection destroys topographic bin patterns), while a bad permutation costs ratio."
    );
    println!("CSV mirrored to target/experiments/table6_ablation_hurricane.csv");
}
