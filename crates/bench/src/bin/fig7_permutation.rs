//! Fig. 7: bit-rates of every dimension permutation × fusion case on the
//! global atmosphere temperature dataset (CESM-T).
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig7_permutation [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::grid::{FusionSpec, Shape};
use cliz::prelude::*;
use cliz_bench::{datasets, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let dataset = datasets::scaled(DatasetKind::CesmT, tier);
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
    let original = dataset.data.len() * 4;
    let mut report = Report::new("fig7_permutation", "permutation,fusion,bit_rate,ratio");

    println!(
        "Fig. 7 — bit-rate per permutation × fusion on {} {} (rel eb 1e-3)\n",
        dataset.kind.name(),
        dataset.data.shape()
    );
    println!("{:<6} {:<8} {:>9} {:>8}", "perm", "fusion", "bitrate", "ratio");

    let mut best: Option<(f64, String)> = None;
    let mut worst: Option<(f64, String)> = None;
    for perm in Shape::all_permutations(3) {
        for fusion in FusionSpec::candidates(3) {
            let config = PipelineConfig {
                permutation: perm.clone(),
                fusion,
                ..PipelineConfig::default_for(3)
            };
            let bytes =
                cliz::compress(&dataset.data, dataset.mask.as_ref(), bound, &config).unwrap();
            let bit_rate = bytes.len() as f64 * 8.0 / dataset.data.len() as f64;
            let label = format!("{} {}", config.permutation_label(), fusion.label());
            println!(
                "{:<6} {:<8} {:>9.4} {:>8.2}",
                config.permutation_label(),
                fusion.label(),
                bit_rate,
                original as f64 / bytes.len() as f64
            );
            report.row(&format!(
                "{},{},{},{}",
                config.permutation_label(),
                fusion.label(),
                bit_rate,
                original as f64 / bytes.len() as f64
            ));
            if best.as_ref().is_none_or(|(b, _)| bit_rate < *b) {
                best = Some((bit_rate, label.clone()));
            }
            if worst.as_ref().is_none_or(|(w, _)| bit_rate > *w) {
                worst = Some((bit_rate, label));
            }
        }
    }
    let (bb, bl) = best.unwrap();
    let (wb, wl) = worst.unwrap();
    println!(
        "\nbest case: {bl} at {bb:.4} bits/value; worst: {wl} at {wb:.4} \
         ({:.1}% spread — the diversity Fig. 7 visualizes)",
        (wb / bb - 1.0) * 100.0
    );
    println!("CSV mirrored to target/experiments/fig7_permutation.csv");
}
