//! Random-access chunk store benchmark: cold vs warm region reads, cache
//! hit rates across region sizes, and a concurrent-query identity gate.
//!
//! A synthetic field is packed into an in-memory CZS store — once per
//! worker count (1, 2, host), reporting pack throughput in MB/s and
//! asserting the packed bytes are identical at every count — then queried:
//!
//! 1. **cold** — fresh reader per region size, so every intersected chunk
//!    is decompressed (decode count == intersection set, asserted);
//! 2. **warm** — the same region re-read on the same reader, served
//!    entirely from the decoded-chunk LRU cache (zero new decodes,
//!    asserted);
//! 3. **full-decode comparison** — `read_all` wall time, showing what the
//!    region read avoids;
//! 4. **concurrent** — `threads` scoped readers issue overlapping region
//!    queries against one shared reader; every result is asserted
//!    byte-identical to a serial read and the decode count must equal the
//!    union of intersected chunks (no stampede). Divergence exits non-zero
//!    — CI runs `--quick` as a smoke test of exactly that invariant.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin store_bench [--quick|--full]
//! # writes BENCH_store.json into the current directory
//! ```
//!
//! See docs/PERFORMANCE.md ("Random-access store") for how to read the
//! output.

use cliz::grid::{Grid, Shape};
use cliz::quant::ErrorBound;
use cliz::store::{pack_store, ChunkStoreReader, Dataset};
use cliz::PipelineConfig;
use cliz_bench::Args;
use std::time::Instant;

const EB: f64 = 1e-3;

fn smooth(dims: &[usize]) -> Grid<f32> {
    Grid::from_fn(Shape::new(dims), |c| {
        let mut v = 0.0f64;
        for (k, &x) in c.iter().enumerate() {
            v += ((x as f64) * 0.07 * (k + 1) as f64).sin() * 5.0;
        }
        v as f32
    })
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Row ranges for a region covering `frac` of axis 0, centred.
fn centred_rows(dim0: usize, frac: f64) -> std::ops::Range<usize> {
    let len = ((dim0 as f64 * frac) as usize).max(1).min(dim0);
    let start = (dim0 - len) / 2;
    start..start + len
}

fn main() {
    let args = Args::parse();
    let dims: Vec<usize> = if args.quick {
        vec![48, 24, 32]
    } else if args.full {
        vec![512, 192, 256]
    } else {
        vec![192, 96, 128]
    };
    let chunk_len = dims[0].div_ceil(16).max(1);
    let n_chunks = dims[0].div_ceil(chunk_len);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // At least 4 scoped readers even on small hosts — the identity gate is
    // about interleaving, which oversubscription exercises just as well.
    let threads = host_cores.clamp(4, 8);
    let mb = (dims.iter().product::<usize>() * 4) as f64 / 1e6;

    let data = smooth(&dims);
    let ds = Dataset::new("T", data, None);
    let config = PipelineConfig::default_for(dims.len());
    println!("store_bench: {dims:?} ({mb:.1} MB), {host_cores} host core(s)");

    let mut diverged = false;

    // --- pack throughput across worker counts ---
    // The encode path is what bounds incremental append, so it gets the
    // same per-thread treatment the read side gets below. Bytes must be
    // identical at every worker count (the pool's slab order is
    // deterministic); the 1-thread bytes seed the read-side sections.
    let mut pack_counts = vec![1usize, 2, host_cores];
    pack_counts.sort_unstable();
    pack_counts.dedup();
    let mut pack_json = Vec::new();
    let mut bytes: Vec<u8> = Vec::new();
    let mut pack_s = f64::INFINITY;
    for &workers in &pack_counts {
        let t0 = Instant::now();
        let b = pack_store(&ds, ErrorBound::Abs(EB), &config, chunk_len, workers).expect("pack");
        let s = t0.elapsed().as_secs_f64();
        let identical = bytes.is_empty() || b == bytes;
        if !identical {
            eprintln!("DIVERGENCE: pack bytes at {workers} worker(s) != 1-worker pack");
            diverged = true;
        }
        println!(
            "  pack x{workers:<2} {:>8.1} MB/s ({s:.2}s, {} bytes)   identical: {identical}",
            mb / s,
            b.len()
        );
        pack_json.push(format!(
            "{{\"threads\":{workers},\"pack_s\":{},\"pack_mb_s\":{},\"bytes_identical\":{identical}}}",
            json_f64(s),
            json_f64(mb / s)
        ));
        if bytes.is_empty() {
            bytes = b;
            pack_s = s;
        } else {
            pack_s = pack_s.min(s);
        }
    }
    println!(
        "packed {dims:?} ({mb:.1} MB) into {n_chunks} chunks of {chunk_len} rows: {} bytes",
        bytes.len()
    );

    // --- cold vs warm across region sizes ---
    let fracs = [0.05f64, 0.25, 0.5, 1.0];
    let mut region_json = Vec::new();
    for &frac in &fracs {
        let rows = centred_rows(dims[0], frac);
        let ranges = vec![rows.clone(), 0..dims[1], 0..dims[2]];
        let reader = ChunkStoreReader::from_bytes(bytes.clone()).expect("open");
        let expected = (rows.end - 1) / chunk_len - rows.start / chunk_len + 1;

        let t0 = Instant::now();
        let cold = reader.read_region(&ranges).expect("cold read");
        let cold_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            reader.decode_count() as usize,
            expected,
            "cold decode count != intersection set"
        );

        let t0 = Instant::now();
        let warm = reader.read_region(&ranges).expect("warm read");
        let warm_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            reader.decode_count() as usize,
            expected,
            "warm read decoded new chunks"
        );
        if cold != warm {
            eprintln!("DIVERGENCE: warm region read != cold ({frac})");
            diverged = true;
        }
        let stats = reader.stats();
        let lookups = stats.cache.hits + stats.cache.misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            stats.cache.hits as f64 / lookups as f64
        };
        let region_mb = (cold.len() * 4) as f64 / 1e6;
        println!(
            "  region {:>4.0}% ({expected:>2} of {n_chunks} chunks, {region_mb:>6.1} MB)  \
             cold {:>8.1} MB/s   warm {:>8.1} MB/s   hit rate {:.2}",
            frac * 100.0,
            region_mb / cold_s,
            region_mb / warm_s,
            hit_rate
        );
        region_json.push(format!(
            "{{\"rows_fraction\":{},\"rows\":[{},{}],\"chunks_intersected\":{expected},\
             \"region_mb\":{},\"cold_s\":{},\"cold_mb_s\":{},\"warm_s\":{},\
             \"warm_mb_s\":{},\"cache_hit_rate\":{},\"decodes\":{}}}",
            json_f64(frac),
            rows.start,
            rows.end,
            json_f64(region_mb),
            json_f64(cold_s),
            json_f64(region_mb / cold_s),
            json_f64(warm_s),
            json_f64(region_mb / warm_s),
            json_f64(hit_rate),
            reader.decode_count(),
        ));
    }

    // --- full decode for scale ---
    let reader = ChunkStoreReader::from_bytes(bytes.clone()).expect("open");
    let t0 = Instant::now();
    let full = reader.read_all().expect("read_all");
    let full_s = t0.elapsed().as_secs_f64();
    println!("  full decode: {:.1} MB/s", mb / full_s);

    // --- concurrent overlapping queries against one shared reader ---
    let regions: Vec<Vec<std::ops::Range<usize>>> = (0..threads)
        .map(|i| {
            let span = dims[0] / 2;
            let start = (i * (dims[0] - span)) / threads.max(1);
            vec![start..start + span, 0..dims[1], 0..dims[2]]
        })
        .collect();
    let serial: Vec<Grid<f32>> = regions
        .iter()
        .map(|r| full.block(&[r[0].start, 0, 0], &[r[0].len(), dims[1], dims[2]]))
        .collect();
    let shared = ChunkStoreReader::from_bytes(bytes.clone()).expect("open");
    let t0 = Instant::now();
    std::thread::scope(|s| {
        // Each reader returns its Result through the join handle instead of
        // expecting inside the thread, so one failing region reports which
        // reader and row span broke instead of tearing down the scope.
        let handles: Vec<_> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let shared = &shared;
                (i, r, s.spawn(move || shared.read_region(r)))
            })
            .collect();
        for ((i, r, h), want) in handles.into_iter().zip(&serial) {
            match h.join() {
                Ok(Ok(got)) => {
                    if &got != want {
                        eprintln!(
                            "DIVERGENCE: reader {i} (rows {:?}): concurrent read != serial",
                            r[0]
                        );
                        diverged = true;
                    }
                }
                Ok(Err(e)) => {
                    eprintln!("DIVERGENCE: reader {i} (rows {:?}) failed: {e}", r[0]);
                    diverged = true;
                }
                Err(_) => {
                    eprintln!("DIVERGENCE: reader {i} (rows {:?}) panicked", r[0]);
                    diverged = true;
                }
            }
        }
    });
    let conc_s = t0.elapsed().as_secs_f64();
    // Union of all row spans = chunks intersecting [first_start, last_end).
    let first = regions
        .iter()
        .map(|r| r[0].start)
        .min()
        .unwrap_or(0);
    let last = regions.iter().map(|r| r[0].end).max().unwrap_or(dims[0]);
    let union = (last - 1) / chunk_len - first / chunk_len + 1;
    let conc_stats = shared.stats();
    if conc_stats.decodes as usize != union {
        eprintln!(
            "DIVERGENCE: concurrent decode count {} != union of intersections {union}",
            conc_stats.decodes
        );
        diverged = true;
    }
    let conc_lookups = conc_stats.cache.hits + conc_stats.cache.misses;
    println!(
        "  concurrent x{threads}: {:.3}s, decoded {} of {n_chunks} chunks (union {union}), \
         {} cache hits / {} lookups",
        conc_s, conc_stats.decodes, conc_stats.cache.hits, conc_lookups
    );

    let tier = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "scaled"
    };
    let json = format!(
        "{{\"schema\":\"cliz-store-bench-v2\",\"tier\":\"{tier}\",\"dims\":{dims:?},\
         \"host_cores\":{host_cores},\
         \"mb\":{},\"chunk_len\":{chunk_len},\"n_chunks\":{n_chunks},\
         \"store_bytes\":{},\"pack_s\":{},\"pack\":[{}],\
         \"full_decode_s\":{},\"full_decode_mb_s\":{},\
         \"regions\":[{}],\
         \"concurrent\":{{\"threads\":{threads},\"wall_s\":{},\"decodes\":{},\
         \"union_chunks\":{union},\"cache_hits\":{},\"cache_lookups\":{conc_lookups},\
         \"identical\":{}}}}}\n",
        json_f64(mb),
        bytes.len(),
        json_f64(pack_s),
        pack_json.join(","),
        json_f64(full_s),
        json_f64(mb / full_s),
        region_json.join(","),
        json_f64(conc_s),
        conc_stats.decodes,
        conc_stats.cache.hits,
        !diverged,
    );
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("\nwrote BENCH_store.json");

    if diverged {
        eprintln!("FAIL: store invariants violated");
        std::process::exit(1);
    }
}
