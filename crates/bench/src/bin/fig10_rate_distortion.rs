//! Fig. 10: rate-distortion (PSNR and SSIM vs bit-rate) for five climate
//! datasets × five compressors.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig10_rate_distortion [--full|--quick]
//! ```

use cliz::prelude::*;
use cliz_bench::{datasets, rd_point, Args, Report, ScaledDims};

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let rel_ebs = [1e-1, 1e-2, 1e-3, 1e-4];
    let mut report = Report::new(
        "fig10_rate_distortion",
        "dataset,compressor,rel_eb,bit_rate,ratio,psnr_db,ssim,compress_s,decompress_s",
    );

    // Table III recap, printed once for context.
    println!("Table III — tested datasets:");
    println!(
        "{:<12} {:>18} {:>8} {:>8} {:>8}",
        "Name", "Dims", "Mask", "Period", "Masked%"
    );
    for kind in datasets::fig10_kinds() {
        let d = datasets::scaled(kind, tier);
        println!(
            "{:<12} {:>18} {:>8} {:>8} {:>7.0}%",
            kind.name(),
            format!("{}", d.data.shape()),
            if d.mask.is_some() { "Yes" } else { "No" },
            d.nominal_period.map_or("No".into(), |p| p.to_string()),
            d.invalid_fraction() * 100.0
        );
    }

    for kind in datasets::fig10_kinds() {
        let dataset = datasets::scaled(kind, tier);

        // The paper tunes CliZ offline per climate model; do the same here.
        let tuned = cliz::autotune(
            &dataset.data,
            dataset.mask.as_ref(),
            TuneSpec {
                sampling_rate: 0.01,
                time_axis: dataset.time_axis,
                bound: cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3),
            },
        )
        .expect("autotune");

        println!(
            "\n=== {} {} — CliZ pipeline: {}",
            kind.name(),
            dataset.data.shape(),
            tuned.best.describe()
        );
        println!(
            "{:<8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9}",
            "comp", "rel_eb", "bitrate", "ratio", "PSNR", "SSIM", "comp_s", "decomp_s"
        );
        for &rel in &rel_ebs {
            for compressor in cliz::all_compressors(Some(tuned.best.clone())) {
                let p = rd_point(compressor.as_ref(), &dataset, rel);
                println!(
                    "{:<8} {:>8.0e} {:>9.4} {:>9.2} {:>9.2} {:>8.5} {:>9.3} {:>9.3}",
                    p.compressor,
                    p.rel_eb,
                    p.bit_rate,
                    p.ratio,
                    p.psnr_db,
                    p.ssim,
                    p.compress_s,
                    p.decompress_s
                );
                report.row(&format!(
                    "{},{},{:e},{},{},{},{},{},{}",
                    kind.name(),
                    p.compressor,
                    p.rel_eb,
                    p.bit_rate,
                    p.ratio,
                    p.psnr_db,
                    p.ssim,
                    p.compress_s,
                    p.decompress_s
                ));
            }
        }
    }
    println!("\nCSV mirrored to target/experiments/fig10_rate_distortion.csv");
}
