//! The shared-configuration claim (Fig. 1 / Sec. VII-C4): one offline tuning
//! per climate model, reused across its fields and snapshots.
//!
//! Tunes on one SSH training member, then compresses (a) other SSH ensemble
//! members, (b) the Tsfc variable (same [lat, lon, time] family), and — for
//! the 4-D ocean family — tunes on one SALT member and reuses across SALT
//! members. Reports the tuned-shared ratio against per-field tuning and the
//! untuned default, plus the fast heuristic tuner.
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin shared_config [--full|--quick]
//! ```

use cliz::data::ClimateDataset;
use cliz::prelude::*;
use cliz_bench::{Args, Report, ScaledDims};

fn ratio(
    field: &ClimateDataset,
    config: &PipelineConfig,
) -> f64 {
    let bound = cliz::rel_bound_on_valid(&field.data, field.mask.as_ref(), 1e-3);
    let bytes = cliz::compress(&field.data, field.mask.as_ref(), bound, config).unwrap();
    (field.data.len() * 4) as f64 / bytes.len() as f64
}

fn tune(field: &ClimateDataset, fast: bool) -> (PipelineConfig, f64) {
    let spec = TuneSpec {
        sampling_rate: 0.01,
        time_axis: field.time_axis,
        bound: cliz::rel_bound_on_valid(&field.data, field.mask.as_ref(), 1e-3),
    };
    let r = if fast {
        cliz::autotune_fast(&field.data, field.mask.as_ref(), spec).unwrap()
    } else {
        cliz::autotune(&field.data, field.mask.as_ref(), spec).unwrap()
    };
    (r.best, r.seconds)
}

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let (d3, t3): (&[usize; 3], &[usize; 3]) = match tier {
        ScaledDims::Quick => (&[48, 40, 72], &[48, 40, 60]),
        _ => (&[96, 80, 240], &[96, 80, 120]),
    };
    let d4: &[usize; 4] = match tier {
        ScaledDims::Quick => &[5, 32, 28, 36],
        _ => &[10, 64, 56, 60],
    };
    let mut report = Report::new(
        "shared_config",
        "field,config_source,ratio,tuning_s",
    );

    // --- ocean-surface family: tune on SSH member 0 ---
    let train = cliz::data::ssh(d3, 500);
    let (shared, shared_s) = tune(&train, false);
    let (fast_cfg, fast_s) = tune(&train, true);
    println!(
        "ocean-surface model: tuned on SSH member 500 in {shared_s:.2}s \
         (fast heuristic: {fast_s:.2}s)\n  shared pipeline: {}\n",
        shared.describe()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "field", "shared", "fast", "own-tune", "untuned"
    );
    let mut fields: Vec<(String, ClimateDataset)> = (501..=503)
        .map(|s| (format!("SSH member {s}"), cliz::data::ssh(d3, s)))
        .collect();
    fields.push(("Tsfc (same family)".into(), cliz::data::tsfc(t3, 500)));
    for (name, field) in &fields {
        let r_shared = ratio(field, &shared);
        let r_fast = ratio(field, &fast_cfg);
        let (own, _) = tune(field, false);
        let r_own = ratio(field, &own);
        let r_untuned = ratio(field, &PipelineConfig::default_for(3));
        println!(
            "{name:<22} {r_shared:>10.2} {r_fast:>10.2} {r_own:>10.2} {r_untuned:>10.2}"
        );
        report.row(&format!("{name},shared,{r_shared},{shared_s}"));
        report.row(&format!("{name},own,{r_own},"));
        report.row(&format!("{name},untuned,{r_untuned},"));
    }

    // --- 4-D ocean-interior family: SALT across members ---
    // Note the higher sampling rate: at 1% a 4-D grid's per-axis block side
    // shrinks like rate^(1/4)/2 ≈ 0.16, leaving spatial blocks too petite to
    // judge smoothness (the paper's own caveat about small blocks, amplified
    // by the extra dimension).
    let strain = cliz::data::salt(d4, 700);
    let (s_shared, s_secs) = {
        let spec = TuneSpec {
            sampling_rate: 0.05,
            time_axis: strain.time_axis,
            bound: cliz::rel_bound_on_valid(&strain.data, strain.mask.as_ref(), 1e-3),
        };
        let r = cliz::autotune(&strain.data, strain.mask.as_ref(), spec).unwrap();
        (r.best, r.seconds)
    };
    println!(
        "\nocean-interior model (4-D): tuned on SALT member 700 in {s_secs:.2}s\n  \
         shared pipeline: {}\n",
        s_shared.describe()
    );
    println!("{:<22} {:>10} {:>10}", "field", "shared", "untuned");
    for s in 701..=702 {
        let field = cliz::data::salt(d4, s);
        let r_shared = ratio(&field, &s_shared);
        let r_untuned = ratio(&field, &PipelineConfig::default_for(4));
        println!("SALT member {s:<9} {r_shared:>10.2} {r_untuned:>10.2}");
        report.row(&format!("SALT member {s},shared,{r_shared},{s_secs}"));
        report.row(&format!("SALT member {s},untuned,{r_untuned},"));
    }

    println!(
        "\nExpected shape (paper Fig. 1 workflow): the shared configuration lands within a \
         few percent of per-field tuning at zero additional tuning cost, and well above \
         the untuned default on masked/periodic variables."
    );
    println!("CSV mirrored to target/experiments/shared_config.csv");
}
