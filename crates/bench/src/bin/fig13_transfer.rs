//! Fig. 13: compression + Globus-style WAN transfer time for CliZ, SZ3 and
//! ZFP at matched PSNR, across 256 / 512 / 1024 simulated cores (one file
//! per core).
//!
//! Per-file compression time and compressed size are measured for real on a
//! set of distinct ensemble members, then replicated across the core count
//! (DESIGN.md documents this substitution for the Bebop→Anvil testbed).
//!
//! ```sh
//! cargo run -p cliz-bench --release --bin fig13_transfer [--full|--quick]
//! ```

use cliz::data::DatasetKind;
use cliz::prelude::*;
use cliz::transfer::{schedule_lpt, WanLink};
use cliz_bench::{datasets, Args, Report, ScaledDims};

/// Finds a relative eb giving roughly the target PSNR for this compressor
/// (bisection over log10(eb)).
fn match_psnr(
    compressor: &dyn Compressor,
    dataset: &cliz::data::ClimateDataset,
    target_db: f64,
) -> f64 {
    let mut lo = 1e-7f64; // tight -> high PSNR
    let mut hi = 1e-1f64; // loose -> low PSNR
    for _ in 0..12 {
        let mid = (lo * hi).sqrt(); // geometric midpoint in eb space
        let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), mid);
        let bytes = compressor
            .compress(&dataset.data, dataset.mask.as_ref(), bound)
            .unwrap();
        let recon = compressor
            .decompress(&bytes, dataset.mask.as_ref())
            .unwrap();
        let psnr = cliz::metrics::psnr(
            dataset.data.as_slice(),
            recon.as_slice(),
            dataset.mask.as_ref(),
        );
        if psnr > target_db {
            lo = mid; // can afford a looser bound
        } else {
            hi = mid;
        }
        if (psnr - target_db).abs() < 1.5 {
            return mid;
        }
    }
    lo
}

fn main() {
    let args = Args::parse();
    let tier = ScaledDims::from_args(&args);
    let target_db = 90.0; // matched-PSNR point (paper used ~117 dB on its data)
    let distinct_files = 8usize;
    let core_counts = [256usize, 512, 1024];
    let link = WanLink::bebop_to_anvil();
    let mut report = Report::new(
        "fig13_transfer",
        "compressor,cores,files,psnr_db,compress_s,transfer_s,total_s,shipped_bytes",
    );

    // Distinct ensemble members; per-core files cycle through them.
    let base = datasets::scaled(DatasetKind::Ssh, tier);
    let dims: Vec<usize> = base.data.shape().dims().to_vec();
    let members: Vec<_> = (0..distinct_files)
        .map(|i| cliz::data::ssh(&[dims[0], dims[1], dims[2]], 9000 + i as u64))
        .collect();
    let original = members[0].data.len() * 4;

    // CliZ runs with the climate model's shared tuned configuration
    // (Sec. VII-C4: "datasets with shared configuration files").
    let tuned = cliz::autotune(
        &members[0].data,
        members[0].mask.as_ref(),
        TuneSpec {
            sampling_rate: 0.01,
            time_axis: members[0].time_axis,
            bound: cliz::rel_bound_on_valid(&members[0].data, members[0].mask.as_ref(), 1e-3),
        },
    )
    .expect("autotune")
    .best;

    println!(
        "Fig. 13 — compression + WAN transfer at matched PSNR ≈ {target_db} dB \
         ({} files of {} bytes per core count; link {:.1} Gb/s)\n",
        distinct_files,
        original,
        link.bandwidth_bps * 8.0 / 1e9
    );
    println!(
        "{:<8} {:>6} {:>9} {:>11} {:>11} {:>10} {:>14}",
        "comp", "cores", "PSNR", "compress_s", "transfer_s", "total_s", "shipped_MB"
    );

    let cliz_tuned = Cliz::tuned(tuned);
    for compressor in [&cliz_tuned as &dyn Compressor, &SzInterp, &Zfp] {
        // Tune eb to the PSNR target on the first member.
        let rel = match_psnr(compressor, &members[0], target_db);

        // Measure each distinct member once.
        let mut times = Vec::with_capacity(distinct_files);
        let mut sizes = Vec::with_capacity(distinct_files);
        let mut psnr_sum = 0.0;
        for m in &members {
            let bound = cliz::rel_bound_on_valid(&m.data, m.mask.as_ref(), rel);
            let t0 = std::time::Instant::now();
            let bytes = compressor.compress(&m.data, m.mask.as_ref(), bound).unwrap();
            times.push(t0.elapsed().as_secs_f64());
            let recon = compressor.decompress(&bytes, m.mask.as_ref()).unwrap();
            psnr_sum += cliz::metrics::psnr(m.data.as_slice(), recon.as_slice(), m.mask.as_ref());
            sizes.push(bytes.len() as u64);
        }
        let psnr = psnr_sum / distinct_files as f64;

        for &cores in &core_counts {
            // One file per core, cycling through measured members.
            let file_times: Vec<f64> = (0..cores).map(|i| times[i % distinct_files]).collect();
            let file_sizes: Vec<u64> = (0..cores).map(|i| sizes[i % distinct_files]).collect();
            let compress_s = schedule_lpt(&file_times, cores);
            let transfer = link.transfer(&file_sizes);
            let total = compress_s + transfer.seconds;
            println!(
                "{:<8} {:>6} {:>8.1} {:>11.3} {:>11.3} {:>10.3} {:>14.2}",
                compressor.name(),
                cores,
                psnr,
                compress_s,
                transfer.seconds,
                total,
                transfer.total_bytes as f64 / 1e6
            );
            report.row(&format!(
                "{},{cores},{cores},{psnr},{compress_s},{},{total},{}",
                compressor.name(),
                transfer.seconds,
                transfer.total_bytes
            ));
        }
    }
    println!(
        "\nExpected shape (paper Fig. 13): similar compression times, but CliZ's higher \
         ratio shrinks the transfer leg — total cost drops ~32-38% vs SZ3/ZFP."
    );
    println!("CSV mirrored to target/experiments/fig13_transfer.csv");
}
