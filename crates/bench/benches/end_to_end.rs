//! End-to-end compression/decompression throughput per compressor on an
//! SSH-like field — the Sec. VII-C4 "comparable speed" comparison (CliZ vs
//! SZ3 vs ZFP, with SPERR expected substantially slower).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let dataset = cliz::data::ssh(&[48, 40, 120], 7);
    let bound = cliz::rel_bound_on_valid(&dataset.data, dataset.mask.as_ref(), 1e-3);
    let bytes_in = (dataset.data.len() * 4) as u64;

    let mut g = c.benchmark_group("end_to_end_ssh_230k");
    g.throughput(Throughput::Bytes(bytes_in));
    for compressor in cliz::all_compressors(None) {
        g.bench_function(format!("{}_compress", compressor.name()), |b| {
            b.iter(|| {
                compressor
                    .compress(black_box(&dataset.data), dataset.mask.as_ref(), bound)
                    .unwrap()
            })
        });
        let packed = compressor
            .compress(&dataset.data, dataset.mask.as_ref(), bound)
            .unwrap();
        g.bench_function(format!("{}_decompress", compressor.name()), |b| {
            b.iter(|| {
                compressor
                    .decompress(black_box(&packed), dataset.mask.as_ref())
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
);
criterion_main!(benches);
