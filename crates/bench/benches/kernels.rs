//! Criterion micro-benchmarks for CliZ's kernels: Huffman vs multi-Huffman,
//! interpolation predictors, FFT, and the zlite lossless backend. These back
//! the paper's "comparable compression/decompression speed" claim
//! (Sec. VII-C4) with per-stage numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn bin_stream(n: usize) -> Vec<u32> {
    // A realistic quantization-bin stream: peaked at the zero bin with
    // geometric tails.
    (0..n)
        .map(|i| {
            let x = (i * 2654435761) % 100;
            match x {
                0..=69 => 1,          // bin 0
                70..=84 => 2,         // bin -1
                85..=94 => 3,         // bin +1
                95..=97 => 4,
                _ => 5 + (i % 11) as u32,
            }
        })
        .collect()
}

fn bench_huffman(c: &mut Criterion) {
    let n = 1 << 20;
    let symbols = bin_stream(n);
    let groups: Vec<u8> = (0..n).map(|i| ((i / 64) % 2) as u8).collect();

    let mut g = c.benchmark_group("entropy");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("huffman_encode_1M_bins", |b| {
        b.iter(|| cliz::entropy::huffman::encode_stream(black_box(&symbols)))
    });
    let encoded = cliz::entropy::huffman::encode_stream(&symbols);
    g.bench_function("huffman_decode_1M_bins", |b| {
        b.iter(|| cliz::entropy::huffman::decode_stream(black_box(&encoded)).unwrap())
    });
    g.bench_function("multi_huffman_encode_1M_bins_2trees", |b| {
        b.iter(|| cliz::entropy::multi_encode(black_box(&symbols), black_box(&groups), 2))
    });
    let multi = cliz::entropy::multi_encode(&symbols, &groups, 2);
    g.bench_function("multi_huffman_decode_1M_bins_2trees", |b| {
        b.iter(|| cliz::entropy::multi_decode(black_box(&multi), black_box(&groups)).unwrap())
    });
    g.bench_function("range_encode_1M_bins", |b| {
        b.iter(|| cliz::entropy::range_encode_stream(black_box(&symbols)))
    });
    let rc = cliz::entropy::range_encode_stream(&symbols);
    g.bench_function("range_decode_1M_bins", |b| {
        b.iter(|| cliz::entropy::range_decode_stream(black_box(&rc)).unwrap())
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    use cliz::predict::{predict_quantize, Fitting, InterpParams};
    use cliz::quant::LinearQuantizer;

    let dims = [64usize, 128, 128];
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|i| ((i as f64 * 0.002).sin() * 40.0 + (i % 977) as f64 * 0.001) as f32)
        .collect();
    let q = LinearQuantizer::new(1e-3);
    let mask: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();

    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(n as u64));
    for (name, fitting) in [("linear", Fitting::Linear), ("cubic", Fitting::Cubic)] {
        g.bench_function(format!("interp_{name}_1M_points"), |b| {
            b.iter_batched(
                || (data.clone(), vec![0u32; n]),
                |(mut buf, mut symbols)| {
                    predict_quantize(
                        &mut buf,
                        &dims,
                        &InterpParams::new(fitting),
                        &q,
                        &mut symbols,
                    )
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.bench_function("interp_cubic_masked_1M_points", |b| {
        b.iter_batched(
            || (data.clone(), vec![0u32; n]),
            |(mut buf, mut symbols)| {
                predict_quantize(
                    &mut buf,
                    &dims,
                    &InterpParams::with_mask(Fitting::Cubic, &mask),
                    &q,
                    &mut symbols,
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    use cliz::fft::{fft, Complex};
    let mut g = c.benchmark_group("fft");
    for n in [1024usize, 1032] {
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        g.bench_function(format!("fft_{n}"), |b| {
            b.iter_batched(
                || signal.clone(),
                |mut s| {
                    fft(&mut s);
                    s
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_lossless(c: &mut Criterion) {
    // Huffman-stream-like bytes: runs with sparse punctuation.
    let data: Vec<u8> = (0..1usize << 20)
        .map(|i| if i % 17 == 0 { (i % 251) as u8 } else { 0 })
        .collect();
    let mut g = c.benchmark_group("zlite");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_1MiB", |b| {
        b.iter(|| cliz::lossless::compress(black_box(&data)))
    });
    let packed = cliz::lossless::compress(&data);
    g.bench_function("decompress_1MiB", |b| {
        b.iter(|| cliz::lossless::decompress(black_box(&packed)).unwrap())
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_huffman, bench_predictor, bench_fft, bench_lossless
);
criterion_main!(benches);
