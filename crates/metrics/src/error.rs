//! Pointwise error statistics: RMSE, PSNR (paper Eq. 3), max error, and the
//! error-bound compliance check every compressor in this repo must pass.

use cliz_grid::MaskMap;

/// Summary of reconstruction error over the valid points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorStats {
    pub rmse: f64,
    pub max_abs: f64,
    /// `d_max − d_min` of the *original* data (PSNR denominator).
    pub value_range: f64,
    pub points: usize,
}

impl ErrorStats {
    /// PSNR per Eq. 3: `20·log10((d_max − d_min) / RMSE)`. Infinite for a
    /// lossless reconstruction; 0 for degenerate (constant) originals.
    pub fn psnr(&self) -> f64 {
        if self.rmse == 0.0 {
            return f64::INFINITY;
        }
        if self.value_range <= 0.0 {
            return 0.0;
        }
        20.0 * (self.value_range / self.rmse).log10()
    }
}

/// Computes error statistics over valid points only.
pub fn error_stats(original: &[f32], recon: &[f32], mask: Option<&MaskMap>) -> ErrorStats {
    assert_eq!(original.len(), recon.len());
    let mut sq_sum = 0.0f64;
    let mut max_abs = 0.0f64;
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    let mut points = 0usize;
    for i in 0..original.len() {
        if mask.is_some_and(|m| !m.is_valid(i)) {
            continue;
        }
        let o = original[i] as f64;
        let r = recon[i] as f64;
        let d = (o - r).abs();
        sq_sum += d * d;
        if d > max_abs {
            max_abs = d;
        }
        mn = mn.min(o);
        mx = mx.max(o);
        points += 1;
    }
    ErrorStats {
        rmse: if points > 0 {
            (sq_sum / points as f64).sqrt()
        } else {
            0.0
        },
        max_abs,
        value_range: if points > 0 { mx - mn } else { 0.0 },
        points,
    }
}

/// Root-mean-square error over valid points.
pub fn rmse(original: &[f32], recon: &[f32], mask: Option<&MaskMap>) -> f64 {
    error_stats(original, recon, mask).rmse
}

/// PSNR per the paper's Eq. 3.
pub fn psnr(original: &[f32], recon: &[f32], mask: Option<&MaskMap>) -> f64 {
    error_stats(original, recon, mask).psnr()
}

/// Largest pointwise absolute error over valid points.
pub fn max_abs_error(original: &[f32], recon: &[f32], mask: Option<&MaskMap>) -> f64 {
    error_stats(original, recon, mask).max_abs
}

/// Asserts the error-bound contract: `max |x − x̂| ≤ eb` on valid points.
/// Returns the observed max error for reporting.
pub fn verify_bound(original: &[f32], recon: &[f32], mask: Option<&MaskMap>, eb: f64) -> f64 {
    let max = max_abs_error(original, recon, mask);
    assert!(
        max <= eb * (1.0 + 1e-12),
        "error bound violated: max {max} > eb {eb}"
    );
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    #[test]
    fn identical_data_is_lossless() {
        let d = vec![1.0f32, 2.0, 3.0];
        let s = error_stats(&d, &d, None);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.max_abs, 0.0);
        assert_eq!(s.psnr(), f64::INFINITY);
    }

    #[test]
    fn known_rmse_and_psnr() {
        let orig = vec![0.0f32, 1.0, 2.0, 3.0]; // range 3
        let recon = vec![0.1f32, 1.1, 1.9, 3.1];
        let s = error_stats(&orig, &recon, None);
        assert!((s.rmse - 0.1).abs() < 1e-6);
        // PSNR = 20 log10(3 / 0.1) ≈ 29.54
        assert!((s.psnr() - 20.0 * 30.0f64.log10()).abs() < 1e-3);
        assert!((s.max_abs - 0.1).abs() < 1e-6);
    }

    #[test]
    fn mask_excludes_fill_errors() {
        let orig = vec![1.0f32, 1.0e32, 2.0];
        let recon = vec![1.0f32, 0.0, 2.0];
        let mask = MaskMap::from_flags(Shape::new(&[3]), vec![true, false, true]);
        let s = error_stats(&orig, &recon, Some(&mask));
        assert_eq!(s.max_abs, 0.0);
        assert_eq!(s.points, 2);
    }

    #[test]
    fn verify_bound_passes_within() {
        // 0.05f32 rounds slightly above 0.05, so give the bound headroom.
        let orig = vec![0.0f32, 1.0];
        let recon = vec![0.05f32, 0.95];
        let max = verify_bound(&orig, &recon, None, 0.0501);
        assert!((max - 0.05).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "error bound violated")]
    fn verify_bound_panics_beyond() {
        verify_bound(&[0.0f32], &[1.0f32], None, 0.5);
    }

    #[test]
    fn constant_original_has_zero_psnr_when_lossy() {
        let orig = vec![5.0f32; 4];
        let recon = vec![5.1f32; 4];
        assert_eq!(psnr(&orig, &recon, None), 0.0);
    }
}
