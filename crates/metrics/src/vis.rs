//! Grayscale PGM dumps for the Fig. 14-style visual comparison.
//!
//! Binary PGM (P5) is the simplest portable image format every viewer reads;
//! the harness writes original/reconstructed slices side by side so a human
//! can eyeball compression artifacts the way the paper's Fig. 14 does.

use cliz_grid::{Grid, MaskMap};
use std::io::Write;
use std::path::Path;

/// Renders a 2-D grid into 8-bit grayscale, normalizing over valid points.
/// Masked points render black (0).
pub fn slice_to_pgm(slice: &Grid<f32>, mask: Option<&MaskMap>) -> Vec<u8> {
    assert_eq!(slice.shape().ndim(), 2, "PGM needs a 2-D slice");
    let dims = slice.shape().dims();
    let (h, w) = (dims[0], dims[1]);

    let mut mn = f32::INFINITY;
    let mut mx = f32::NEG_INFINITY;
    for (i, &v) in slice.as_slice().iter().enumerate() {
        if mask.is_some_and(|m| !m.is_valid(i)) || !v.is_finite() {
            continue;
        }
        mn = mn.min(v);
        mx = mx.max(v);
    }
    let range = if mx > mn { mx - mn } else { 1.0 };

    let mut out = Vec::with_capacity(h * w + 32);
    out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    for (i, &v) in slice.as_slice().iter().enumerate() {
        let px = if mask.is_some_and(|m| !m.is_valid(i)) || !v.is_finite() {
            0u8
        } else {
            (((v - mn) / range) * 254.0 + 1.0) as u8
        };
        out.push(px);
    }
    out
}

/// Writes a PGM rendering to `path`.
pub fn write_pgm(
    path: &Path,
    slice: &Grid<f32>,
    mask: Option<&MaskMap>,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let bytes = slice_to_pgm(slice, mask);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    #[test]
    fn header_and_size() {
        let g = Grid::from_fn(Shape::new(&[4, 6]), |c| (c[0] * 6 + c[1]) as f32);
        let pgm = slice_to_pgm(&g, None);
        assert!(pgm.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(pgm.len(), b"P5\n6 4\n255\n".len() + 24);
    }

    #[test]
    fn normalization_spans_gray_range() {
        let g = Grid::from_fn(Shape::new(&[2, 2]), |c| (c[0] * 2 + c[1]) as f32);
        let pgm = slice_to_pgm(&g, None);
        let pixels = &pgm[pgm.len() - 4..];
        assert_eq!(pixels[0], 1); // min maps to 1 (0 reserved for mask)
        assert_eq!(pixels[3], 255);
    }

    #[test]
    fn masked_pixels_are_black() {
        let g = Grid::from_fn(Shape::new(&[1, 3]), |c| c[1] as f32);
        let mask = MaskMap::from_flags(g.shape().clone(), vec![true, false, true]);
        let pgm = slice_to_pgm(&g, Some(&mask));
        let pixels = &pgm[pgm.len() - 3..];
        assert_eq!(pixels[1], 0);
        assert!(pixels[0] > 0 && pixels[2] > 0);
    }

    #[test]
    fn constant_slice_does_not_divide_by_zero() {
        let g = Grid::filled(Shape::new(&[2, 2]), 5.0f32);
        let pgm = slice_to_pgm(&g, None);
        assert!(pgm[pgm.len() - 4..].iter().all(|&p| p >= 1));
    }
}
