//! Reconstruction-quality and rate metrics for CliZ experiments.
//!
//! Implements the distortion metrics of Sec. VII-B — PSNR (Eq. 3) and
//! windowed SSIM (Eq. 4–5) — plus the rate bookkeeping (compression ratio,
//! bit-rate) used on every rate-distortion axis in the paper, and the PGM
//! dumps behind the Fig. 14 visual comparison. All metrics are mask-aware:
//! invalid points are excluded exactly as the climate community excludes
//! fill values.

pub mod analysis;
pub mod error;
pub mod rate;
pub mod ssim;
pub mod vis;

pub use analysis::{analyze_errors, ErrorAnalysis};
pub use error::{max_abs_error, psnr, rmse, verify_bound, ErrorStats};
pub use rate::{bit_rate, compression_ratio, RateStats};
pub use ssim::{ssim, SsimSpec};
pub use vis::{slice_to_pgm, write_pgm};
