//! Structural Similarity (paper Eq. 4–5).
//!
//! SSIM is computed per sliding window over the horizontal plane (last two
//! dimensions) of a grid, then averaged across windows and planes — the same
//! convention climate evaluations (dSSIM, Baker et al.) follow. Windows with
//! no valid point are skipped.

use cliz_grid::{Grid, MaskMap};

/// Window geometry and stabilization constants.
#[derive(Clone, Copy, Debug)]
pub struct SsimSpec {
    /// Window side (paper-style 8×8 default).
    pub window: usize,
    /// Window step; `window` (non-overlapping) by default — dense sliding
    /// (step 1) changes the constant factor, not the comparisons.
    pub step: usize,
    /// `c1 = (k1·L)²`, `c2 = (k2·L)²` with `L` = data range.
    pub k1: f64,
    pub k2: f64,
}

impl Default for SsimSpec {
    fn default() -> Self {
        Self {
            window: 8,
            step: 8,
            k1: 0.01,
            k2: 0.03,
        }
    }
}

/// Mean SSIM between `x` (original) and `y` (reconstruction).
///
/// For N-D grids every horizontal slice (all leading coordinates fixed) is
/// scanned with `spec.window`² windows; the result is the average of all
/// per-window SSIM values (Eq. 4).
pub fn ssim(x: &Grid<f32>, y: &Grid<f32>, mask: Option<&MaskMap>, spec: SsimSpec) -> f64 {
    assert_eq!(x.shape(), y.shape(), "shape mismatch");
    let ndim = x.shape().ndim();
    assert!(ndim >= 2, "SSIM needs at least 2 dimensions");
    let dims = x.shape().dims();
    let (h, w) = (dims[ndim - 2], dims[ndim - 1]);
    let plane = h * w;
    let n_planes = x.len() / plane;

    // Global range L for the stabilizers — over *valid* points only, or the
    // huge fill values would inflate c1/c2 until every window scores 1.
    let (mut mn, mut mx) = (f32::INFINITY, f32::NEG_INFINITY);
    for (i, &v) in x.as_slice().iter().enumerate() {
        if v.is_finite() && !mask.is_some_and(|m| !m.is_valid(i)) {
            mn = mn.min(v);
            mx = mx.max(v);
        }
    }
    let range = if mn <= mx { (mx - mn) as f64 } else { 0.0 };
    let l = if range > 0.0 { range } else { 1.0 };
    let c1 = (spec.k1 * l) * (spec.k1 * l);
    let c2 = (spec.k2 * l) * (spec.k2 * l);

    let xb = x.as_slice();
    let yb = y.as_slice();
    let mut total = 0.0f64;
    let mut windows = 0usize;
    for p in 0..n_planes {
        let base = p * plane;
        let mut r0 = 0;
        while r0 + spec.window <= h.max(spec.window) && r0 < h {
            let mut c0 = 0;
            while c0 + spec.window <= w.max(spec.window) && c0 < w {
                // Window statistics over valid points.
                let mut sx = 0.0f64;
                let mut sy = 0.0f64;
                let mut sxx = 0.0f64;
                let mut syy = 0.0f64;
                let mut sxy = 0.0f64;
                let mut n = 0usize;
                for r in r0..(r0 + spec.window).min(h) {
                    for c in c0..(c0 + spec.window).min(w) {
                        let i = base + r * w + c;
                        if mask.is_some_and(|m| !m.is_valid(i)) {
                            continue;
                        }
                        let a = xb[i] as f64;
                        let b = yb[i] as f64;
                        sx += a;
                        sy += b;
                        sxx += a * a;
                        syy += b * b;
                        sxy += a * b;
                        n += 1;
                    }
                }
                if n >= 2 {
                    let nf = n as f64;
                    let mx_ = sx / nf;
                    let my_ = sy / nf;
                    let vx = (sxx / nf - mx_ * mx_).max(0.0);
                    let vy = (syy / nf - my_ * my_).max(0.0);
                    let cov = sxy / nf - mx_ * my_;
                    let s = ((2.0 * mx_ * my_ + c1) * (2.0 * cov + c2))
                        / ((mx_ * mx_ + my_ * my_ + c1) * (vx + vy + c2));
                    total += s;
                    windows += 1;
                }
                c0 += spec.step;
            }
            r0 += spec.step;
        }
    }
    if windows == 0 {
        return 1.0; // nothing valid to compare: vacuously similar
    }
    total / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    fn field(h: usize, w: usize, f: impl Fn(usize, usize) -> f32) -> Grid<f32> {
        Grid::from_fn(Shape::new(&[h, w]), |c| f(c[0], c[1]))
    }

    #[test]
    fn identical_images_score_one() {
        let g = field(32, 32, |r, c| (r as f32 * 0.2).sin() + c as f32 * 0.1);
        let s = ssim(&g, &g, None, SsimSpec::default());
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_lowers_ssim() {
        let g = field(64, 64, |r, c| ((r * 64 + c) as f32 * 0.01).sin() * 10.0);
        let mut state = 3u64;
        let noisy = Grid::from_vec(
            g.shape().clone(),
            g.as_slice()
                .iter()
                .map(|&v| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    v + ((state >> 40) as f32 / 2.0f32.powi(24) - 0.5) * 8.0
                })
                .collect(),
        );
        let s = ssim(&g, &noisy, None, SsimSpec::default());
        assert!(s < 0.95, "noise barely moved SSIM: {s}");
        assert!(s > -1.0);
    }

    #[test]
    fn small_noise_beats_large_noise() {
        let g = field(64, 64, |r, c| ((r * 64 + c) as f32 * 0.01).sin() * 10.0);
        let perturb = |amp: f32| {
            let mut state = 11u64;
            Grid::from_vec(
                g.shape().clone(),
                g.as_slice()
                    .iter()
                    .map(|&v| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        v + ((state >> 40) as f32 / 2.0f32.powi(24) - 0.5) * amp
                    })
                    .collect(),
            )
        };
        let s_small = ssim(&g, &perturb(0.1), None, SsimSpec::default());
        let s_large = ssim(&g, &perturb(5.0), None, SsimSpec::default());
        assert!(s_small > s_large);
        assert!(s_small > 0.99);
    }

    #[test]
    fn masked_regions_ignored() {
        let g = field(16, 16, |r, c| (r + c) as f32);
        // Reconstruction destroys the masked half only.
        let mut bad = g.clone();
        let mut flags = vec![true; 256];
        for i in 0..128 {
            bad.as_mut_slice()[i] = 1.0e9;
            flags[i] = false;
        }
        let mask = MaskMap::from_flags(g.shape().clone(), flags);
        let s = ssim(&g, &bad, Some(&mask), SsimSpec::default());
        assert!((s - 1.0).abs() < 1e-9, "masked damage leaked: {s}");
    }

    #[test]
    fn works_on_3d_grids() {
        let g = Grid::from_fn(Shape::new(&[3, 16, 16]), |c| {
            (c[0] * 100 + c[1] + c[2]) as f32 * 0.1
        });
        let s = ssim(&g, &g, None, SsimSpec::default());
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_smaller_than_plane_edge_handled() {
        let g = field(5, 5, |r, c| (r * c) as f32);
        let s = ssim(&g, &g, None, SsimSpec::default());
        assert!((s - 1.0).abs() < 1e-12);
    }
}
