//! Z-checker-style compression-error analysis.
//!
//! PSNR alone can hide structured artifacts (Poppick et al.'s critique,
//! Sec. II). This module adds the distribution-level checks climate
//! evaluations rely on: Pearson correlation between original and
//! reconstruction, an error histogram (is the error uniform over the bound,
//! as a healthy quantizer produces, or lumpy?), and the lag-k error
//! autocorrelation that exposes spatially correlated artifacts.

use cliz_grid::{cast, MaskMap};

/// Distribution-level error report.
#[derive(Clone, Debug)]
pub struct ErrorAnalysis {
    /// Pearson correlation coefficient between original and reconstruction
    /// over valid points (1.0 = perfect linear agreement).
    pub pearson: f64,
    /// Error histogram over `bins` equal-width buckets spanning
    /// `[-max_abs, +max_abs]`.
    pub histogram: Vec<usize>,
    /// Histogram bucket width.
    pub bucket_width: f64,
    /// Largest |error| observed (histogram range).
    pub max_abs: f64,
    /// Lag-1..=K autocorrelation of the error sequence (raster order over
    /// valid points). Near-zero = white error; large = structured artifacts.
    pub autocorrelation: Vec<f64>,
    /// Mean error (bias) — should be ~0 for a symmetric quantizer.
    pub mean_error: f64,
    pub points: usize,
}

/// Computes the full analysis. `lags` bounds the autocorrelation depth.
pub fn analyze_errors(
    original: &[f32],
    recon: &[f32],
    mask: Option<&MaskMap>,
    bins: usize,
    lags: usize,
) -> ErrorAnalysis {
    assert_eq!(original.len(), recon.len());
    assert!(bins >= 1);

    // Collect the valid error sequence and running stats.
    let mut errors = Vec::with_capacity(original.len());
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut sxx = 0.0f64;
    let mut syy = 0.0f64;
    let mut sxy = 0.0f64;
    for i in 0..original.len() {
        if mask.is_some_and(|m| !m.is_valid(i)) {
            continue;
        }
        let (a, b) = (original[i] as f64, recon[i] as f64);
        errors.push(a - b);
        sx += a;
        sy += b;
        sxx += a * a;
        syy += b * b;
        sxy += a * b;
    }
    let n = errors.len();
    if n == 0 {
        return ErrorAnalysis {
            pearson: 1.0,
            histogram: vec![0; bins],
            bucket_width: 0.0,
            max_abs: 0.0,
            autocorrelation: vec![0.0; lags],
            mean_error: 0.0,
            points: 0,
        };
    }
    let nf = n as f64;
    let cov = sxy / nf - (sx / nf) * (sy / nf);
    let vx = (sxx / nf - (sx / nf).powi(2)).max(0.0);
    let vy = (syy / nf - (sy / nf).powi(2)).max(0.0);
    let pearson = if vx > 0.0 && vy > 0.0 {
        cov / (vx.sqrt() * vy.sqrt())
    } else {
        1.0 // constant fields: vacuously perfect
    };

    let max_abs = errors.iter().fold(0.0f64, |m, &e| m.max(e.abs()));
    let mean_error = errors.iter().sum::<f64>() / nf;

    // Histogram over [-max_abs, max_abs].
    let mut histogram = vec![0usize; bins];
    let bucket_width = if max_abs > 0.0 {
        2.0 * max_abs / bins as f64
    } else {
        0.0
    };
    if max_abs > 0.0 {
        for &e in &errors {
            let b = cast::float_to_index((e + max_abs) / bucket_width, bins);
            histogram[b] += 1;
        }
    } else {
        histogram[bins / 2] = n;
    }

    // Autocorrelation of the (mean-removed) error sequence.
    let var: f64 = errors.iter().map(|e| (e - mean_error).powi(2)).sum::<f64>() / nf;
    let mut autocorrelation = Vec::with_capacity(lags);
    for lag in 1..=lags {
        if lag >= n || var <= 0.0 {
            autocorrelation.push(0.0);
            continue;
        }
        let mut acc = 0.0f64;
        for i in lag..n {
            acc += (errors[i] - mean_error) * (errors[i - lag] - mean_error);
        }
        autocorrelation.push(acc / ((n - lag) as f64 * var));
    }

    ErrorAnalysis {
        pearson,
        histogram,
        bucket_width,
        max_abs,
        autocorrelation,
        mean_error,
        points: n,
    }
}

impl ErrorAnalysis {
    /// Fraction of errors in the central `frac` of the histogram range —
    /// a uniformity probe (uniform errors put ~frac of mass there).
    pub fn central_mass(&self, frac: f64) -> f64 {
        if self.points == 0 {
            return 1.0;
        }
        let bins = self.histogram.len();
        let keep = cast::float_to_index((bins as f64 * frac / 2.0).ceil(), bins + 1);
        let mid = bins / 2;
        let lo = mid.saturating_sub(keep);
        let hi = (mid + keep).min(bins);
        let central: usize = self.histogram[lo..hi].iter().sum();
        central as f64 / self.points as f64
    }

    /// Largest |autocorrelation| over the measured lags.
    pub fn max_autocorrelation(&self) -> f64 {
        self.autocorrelation
            .iter()
            .fold(0.0f64, |m, &a| m.max(a.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_reconstruction_is_clean() {
        let x: Vec<f32> = (0..500).map(|i| (i as f32 * 0.1).sin()).collect();
        let a = analyze_errors(&x, &x, None, 32, 8);
        assert_eq!(a.max_abs, 0.0);
        assert!((a.pearson - 1.0).abs() < 1e-12);
        assert_eq!(a.mean_error, 0.0);
        assert!(a.max_autocorrelation() < 1e-12);
    }

    #[test]
    fn uniform_noise_has_flat_histogram_and_low_autocorr() {
        let x: Vec<f32> = (0..20_000).map(|i| (i as f32 * 0.01).sin() * 10.0).collect();
        // Deterministic pseudo-uniform error in [-0.5, 0.5].
        let mut state = 17u64;
        let y: Vec<f32> = x
            .iter()
            .map(|&v| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                v + ((state >> 40) as f32 / 2.0f32.powi(24) - 0.5)
            })
            .collect();
        let a = analyze_errors(&x, &y, None, 20, 8);
        assert!(a.pearson > 0.99);
        assert!(a.max_autocorrelation() < 0.05, "{:?}", a.autocorrelation);
        // Flat histogram: central 50% of the range holds ~50% of mass.
        let cm = a.central_mass(0.5);
        assert!((cm - 0.5).abs() < 0.08, "central mass {cm}");
    }

    #[test]
    fn correlated_error_is_detected() {
        let x: Vec<f32> = vec![0.0; 5000];
        // Slowly oscillating error -> strong lag-1 autocorrelation.
        let y: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.05).sin() * 0.1).collect();
        let a = analyze_errors(&x, &y, None, 16, 4);
        assert!(
            a.autocorrelation[0] > 0.9,
            "lag-1 {} should be near 1",
            a.autocorrelation[0]
        );
    }

    #[test]
    fn biased_error_shows_in_mean() {
        let x = vec![1.0f32; 1000];
        let y = vec![0.9f32; 1000];
        let a = analyze_errors(&x, &y, None, 8, 2);
        assert!((a.mean_error - 0.1).abs() < 1e-6);
    }

    #[test]
    fn mask_excludes_points() {
        let x = vec![0.0f32, 100.0, 0.0, 0.0];
        let y = vec![0.0f32, 0.0, 0.0, 0.0];
        let mask = MaskMap::from_flags(
            cliz_grid::Shape::new(&[4]),
            vec![true, false, true, true],
        );
        let a = analyze_errors(&x, &y, Some(&mask), 8, 2);
        assert_eq!(a.points, 3);
        assert_eq!(a.max_abs, 0.0);
    }

    #[test]
    fn empty_valid_set_is_vacuous() {
        let x = vec![1.0f32; 4];
        let mask = MaskMap::from_flags(cliz_grid::Shape::new(&[4]), vec![false; 4]);
        let a = analyze_errors(&x, &x, Some(&mask), 8, 2);
        assert_eq!(a.points, 0);
        assert_eq!(a.central_mass(0.5), 1.0);
    }
}
