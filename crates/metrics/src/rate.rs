//! Rate bookkeeping: compression ratio and bit-rate.

/// Size accounting for one compression run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateStats {
    pub original_bytes: usize,
    pub compressed_bytes: usize,
    /// Number of data values (for bit-rate).
    pub values: usize,
}

impl RateStats {
    /// `R = S / S'` from Sec. III.
    pub fn compression_ratio(&self) -> f64 {
        self.original_bytes as f64 / self.compressed_bytes.max(1) as f64
    }

    /// Average compressed bits per value — the x-axis of every
    /// rate-distortion plot in the paper (32 / ratio for f32 data).
    pub fn bit_rate(&self) -> f64 {
        self.compressed_bytes as f64 * 8.0 / self.values.max(1) as f64
    }
}

/// `original / compressed`.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    RateStats {
        original_bytes,
        compressed_bytes,
        values: 1,
    }
    .compression_ratio()
}

/// Bits per value.
pub fn bit_rate(compressed_bytes: usize, values: usize) -> f64 {
    RateStats {
        original_bytes: 0,
        compressed_bytes,
        values,
    }
    .bit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bitrate_consistency() {
        // f32 data: bit_rate == 32 / ratio.
        let s = RateStats {
            original_bytes: 4000,
            compressed_bytes: 125,
            values: 1000,
        };
        assert_eq!(s.compression_ratio(), 32.0);
        assert_eq!(s.bit_rate(), 1.0);
        assert!((32.0 / s.compression_ratio() - s.bit_rate()).abs() < 1e-12);
    }

    #[test]
    fn zero_compressed_guarded() {
        assert!(compression_ratio(100, 0).is_finite());
    }

    #[test]
    fn helpers_match_struct() {
        assert_eq!(compression_ratio(800, 100), 8.0);
        assert_eq!(bit_rate(100, 200), 4.0);
    }
}
