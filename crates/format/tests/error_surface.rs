//! Every `FormatError` variant a header parser can construct is exercised
//! here from the public API — the R16 error-surface contract for the
//! shared cursor layer itself.

use cliz_format::{spec, FormatError, HeaderReader, HeaderWriter};

#[test]
fn truncated_surface() {
    let mut r = HeaderReader::new(&[1, 2]);
    assert_eq!(r.u32().unwrap_err(), FormatError::Truncated);
    let mut w = HeaderWriter::new();
    w.u64(9); // block claims 9 bytes, provides none
    let bytes = w.finish();
    assert_eq!(
        HeaderReader::new(&bytes).block().unwrap_err(),
        FormatError::Truncated
    );
}

#[test]
fn bad_magic_surface() {
    let mut w = HeaderWriter::new();
    w.magic(&spec::ZLT1);
    let bytes = w.finish();
    assert_eq!(
        HeaderReader::new(&bytes).expect_magic(&spec::CZS1).unwrap_err(),
        FormatError::BadMagic
    );
}

#[test]
fn unsupported_version_surface() {
    let mut w = HeaderWriter::new();
    w.u32(spec::CAF1.magic);
    w.u8(0xEE);
    let bytes = w.finish();
    assert_eq!(
        HeaderReader::new(&bytes).expect_magic(&spec::CAF1).unwrap_err(),
        FormatError::UnsupportedVersion(0xEE)
    );
}

#[test]
fn corrupt_surface() {
    // Non-UTF-8 string bytes.
    let mut w = HeaderWriter::new();
    w.u16(1);
    w.raw(&[0xFF]);
    let bytes = w.finish();
    assert!(matches!(
        HeaderReader::new(&bytes).str16(),
        Err(FormatError::Corrupt(_))
    ));
    // Varint wider than 64 bits.
    assert!(matches!(
        HeaderReader::new(&[0x80; 11]).varint(),
        Err(FormatError::Corrupt(_))
    ));
}

#[test]
fn errors_render_for_operators() {
    for e in [
        FormatError::Truncated,
        FormatError::BadMagic,
        FormatError::UnsupportedVersion(7),
        FormatError::Corrupt("demo"),
    ] {
        assert!(!e.to_string().is_empty());
    }
}
