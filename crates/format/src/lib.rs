//! `cliz-format`: the single source of truth for every on-disk container
//! the workspace writes, plus the shared header cursors that serialize and
//! parse them.
//!
//! Three pieces:
//!
//! * [`spec`] — the magic/version registry. Every container format is a
//!   [`FormatSpec`] entry; a compile-time assertion proves no two formats
//!   share a magic value. No other crate may define a magic literal (xtask
//!   rule R15 enforces this).
//! * [`FormatError`] — the decode failure taxonomy shared by every header
//!   parser. Consumer crates wrap it in their own error enums via `From`.
//! * [`HeaderWriter`] / [`HeaderReader`] — sequential little-endian
//!   cursors. [`HeaderWriter::magic`] emits `magic:u32, version:u8` and
//!   [`HeaderReader::expect_magic`] parses and range-checks the same pair,
//!   so a format cannot gain a header without also gaining version
//!   discipline: an unknown future version is a clean
//!   [`FormatError::UnsupportedVersion`], never a panic or a misparse.

/// One registered container format: its human name, magic number, and the
/// newest header version this build of the workspace understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatSpec {
    pub name: &'static str,
    pub magic: u32,
    pub version: u8,
}

/// The magic/version registry. All twelve workspace containers, plus the
/// CLZS trailer sentinel, live here and nowhere else.
pub mod spec {
    use super::FormatSpec;

    /// Plain CliZ compressed field (`cliz_core::compressor`).
    pub const CLIZ: FormatSpec = FormatSpec { name: "CLIZ", magic: 0x434C_495A, version: 1 };
    /// Chunked CliZ container (`cliz_core::chunked`).
    pub const CLZC: FormatSpec = FormatSpec { name: "CLZC", magic: 0x434C_5A43, version: 1 };
    /// Streaming record container (`cliz_core::stream`).
    pub const CLZS: FormatSpec = FormatSpec { name: "CLZS", magic: 0x434C_5A53, version: 1 };
    /// Random-access chunk store (`cliz_store::format`).
    pub const CZS1: FormatSpec = FormatSpec { name: "CZS1", magic: 0x3153_5A43, version: 1 };
    /// Climate array file with attributes and mask (`cliz_store::caf`).
    pub const CAF1: FormatSpec = FormatSpec { name: "CAF1", magic: 0x4341_4631, version: 1 };
    /// CLI dataset envelope (`cliz_cli::czfile`).
    pub const CZF1: FormatSpec = FormatSpec { name: "CZF1", magic: 0x435A_4631, version: 1 };
    /// zlite lossless byte container (`cliz_lossless::format`).
    pub const ZLT1: FormatSpec = FormatSpec { name: "ZLT1", magic: 0x5A4C_5431, version: 1 };
    /// zfp-style transform baseline (`cliz_baselines::zfp`).
    pub const ZFP1: FormatSpec = FormatSpec { name: "ZFP1", magic: 0x5A46_5031, version: 1 };
    /// SZ2-style Lorenzo baseline (`cliz_baselines::sz2`).
    pub const SZ21: FormatSpec = FormatSpec { name: "SZ21", magic: 0x535A_3231, version: 1 };
    /// SZ3-style interpolation baseline (`cliz_baselines::sz_interp`).
    pub const SZL1: FormatSpec = FormatSpec { name: "SZL1", magic: 0x535A_4C31, version: 1 };
    /// QoZ-style interpolation baseline (`cliz_baselines::qoz`).
    pub const QOZ1: FormatSpec = FormatSpec { name: "QOZ1", magic: 0x514F_5A31, version: 1 };
    /// SPERR-style wavelet baseline (`cliz_baselines::sperr`).
    pub const SPR1: FormatSpec = FormatSpec { name: "SPR1", magic: 0x5350_5231, version: 1 };

    /// End-of-file sentinel of the CLZS streaming container. Not a header
    /// magic (trailers are parsed tail-first and carry no version of their
    /// own — the CLZS header version governs the whole file), but it still
    /// must not collide with any header magic, so it is registered here.
    pub const CLZS_TRAILER_MAGIC: u32 = 0x535A_4C43;

    /// Every registered format, for iteration (docs, corpus generators,
    /// duplicate audits).
    pub const REGISTRY: [FormatSpec; 12] = [
        CLIZ, CLZC, CLZS, CZS1, CAF1, CZF1, ZLT1, ZFP1, SZ21, SZL1, QOZ1, SPR1,
    ];

    const fn all_unique(vals: &[u32]) -> bool {
        let mut i = 0;
        while i < vals.len() {
            let mut j = i + 1;
            while j < vals.len() {
                if vals[i] == vals[j] {
                    return false;
                }
                j += 1;
            }
            i += 1;
        }
        true
    }

    const ALL_MAGICS: [u32; 13] = [
        CLIZ.magic,
        CLZC.magic,
        CLZS.magic,
        CZS1.magic,
        CAF1.magic,
        CZF1.magic,
        ZLT1.magic,
        ZFP1.magic,
        SZ21.magic,
        SZL1.magic,
        QOZ1.magic,
        SPR1.magic,
        CLZS_TRAILER_MAGIC,
    ];

    // Compile-time proof that no two formats share a magic value: ambiguous
    // container detection would turn decode errors into misparses.
    const _: () = assert!(all_unique(&ALL_MAGICS), "duplicate magic in registry");
}

/// Failure taxonomy for header parsing. Deliberately small: consumer
/// crates keep their richer domain errors and absorb this via `From`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The buffer ended before the field did.
    Truncated,
    /// The leading magic does not identify this format.
    BadMagic,
    /// The magic matched but the header version is newer than this build
    /// understands (or zero, which is never issued).
    UnsupportedVersion(u8),
    /// A field was present but structurally invalid.
    Corrupt(&'static str),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Truncated => write!(f, "container truncated"),
            FormatError::BadMagic => write!(f, "bad container magic"),
            FormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            FormatError::Corrupt(what) => write!(f, "corrupt container ({what})"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Sequential little-endian writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct HeaderWriter {
    buf: Vec<u8>,
}

impl HeaderWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self { buf: Vec::with_capacity(n) }
    }

    /// Emits the registered `magic:u32, version:u8` prefix for `spec`.
    /// Always writes the current version: old versions are read, never
    /// written.
    pub fn magic(&mut self, spec: &FormatSpec) {
        self.u32(spec.magic);
        self.u8(spec.version);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u64`-length-prefixed byte block.
    pub fn block(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// `u16`-length-prefixed UTF-8 string; errors when the string cannot
    /// be represented rather than silently truncating it.
    pub fn str16(&mut self, s: &str) -> Result<(), FormatError> {
        let len =
            u16::try_from(s.len()).map_err(|_| FormatError::Corrupt("string longer than u16"))?;
        self.u16(len);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential little-endian reader with explicit truncation errors; every
/// accessor is fallible, nothing panics on corrupt input.
#[derive(Debug)]
pub struct HeaderReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> HeaderReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Parses the `magic:u32, version:u8` prefix: wrong magic is
    /// [`FormatError::BadMagic`]; a version of zero or newer than
    /// `spec.version` is [`FormatError::UnsupportedVersion`]. Returns the
    /// version actually read so parsers can branch on older layouts.
    pub fn expect_magic(&mut self, spec: &FormatSpec) -> Result<u8, FormatError> {
        if self.u32()? != spec.magic {
            return Err(FormatError::BadMagic);
        }
        let v = self.u8()?;
        if v == 0 || v > spec.version {
            return Err(FormatError::UnsupportedVersion(v));
        }
        Ok(v)
    }

    /// Takes the next `n` bytes, or `Truncated` when they are not there.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let end = self.pos.checked_add(n).ok_or(FormatError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(FormatError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], FormatError> {
        self.take(N)?.try_into().map_err(|_| FormatError::Truncated)
    }

    pub fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take_array::<1>()?[0])
    }

    pub fn u16(&mut self) -> Result<u16, FormatError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    pub fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    pub fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    pub fn f32(&mut self) -> Result<f32, FormatError> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    pub fn f64(&mut self) -> Result<f64, FormatError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// `u64`-length-prefixed byte block.
    pub fn block(&mut self) -> Result<&'a [u8], FormatError> {
        let n = self.len64()?;
        self.take(n)
    }

    /// `u16`-length-prefixed UTF-8 string.
    pub fn str16(&mut self) -> Result<&'a str, FormatError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| FormatError::Corrupt("string is not UTF-8"))
    }

    /// A `u64` length/count field that must also fit in `usize`.
    pub fn len64(&mut self) -> Result<usize, FormatError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| FormatError::Corrupt("length overflows usize"))
    }

    /// LEB128 varint (7 data bits per byte, ≤ 64 bits total).
    pub fn varint(&mut self) -> Result<u64, FormatError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(FormatError::Corrupt("varint overruns 64 bits"));
            }
        }
    }

    pub fn skip(&mut self, n: usize) -> Result<(), FormatError> {
        self.take(n).map(|_| ())
    }

    /// Everything after the cursor (typically the compressed payload).
    pub fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = HeaderWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(0xDEAD_BEEF);
        w.u64(1 << 40);
        w.f32(1.5);
        w.f64(-2.25);
        w.block(b"hello");
        w.str16("name").unwrap();
        let bytes = w.finish();
        let mut r = HeaderReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert_eq!(r.block().unwrap(), b"hello");
        assert_eq!(r.str16().unwrap(), "name");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn magic_prefix_roundtrips_and_rejects() {
        let mut w = HeaderWriter::new();
        w.magic(&spec::CLZC);
        let mut bytes = w.finish();
        assert_eq!(bytes.len(), 5);
        assert_eq!(
            HeaderReader::new(&bytes).expect_magic(&spec::CLZC).unwrap(),
            spec::CLZC.version
        );
        // Wrong format: magic mismatch, not a version complaint.
        assert_eq!(
            HeaderReader::new(&bytes).expect_magic(&spec::CLIZ),
            Err(FormatError::BadMagic)
        );
        // Future and zero versions are cleanly unsupported.
        bytes[4] = spec::CLZC.version + 1;
        assert_eq!(
            HeaderReader::new(&bytes).expect_magic(&spec::CLZC),
            Err(FormatError::UnsupportedVersion(spec::CLZC.version + 1))
        );
        bytes[4] = 0;
        assert_eq!(
            HeaderReader::new(&bytes).expect_magic(&spec::CLZC),
            Err(FormatError::UnsupportedVersion(0))
        );
        // Truncated before the version byte.
        assert_eq!(
            HeaderReader::new(&bytes[..4]).expect_magic(&spec::CLZC),
            Err(FormatError::Truncated)
        );
    }

    #[test]
    fn registry_is_well_formed() {
        // Names are distinct, versions start at 1 (0 is the reserved
        // "never issued" value), and every magic's bytes are printable
        // ASCII so containers are identifiable in a hex dump.
        for (i, f) in spec::REGISTRY.iter().enumerate() {
            assert!(f.version >= 1, "{}: version 0 is reserved", f.name);
            assert!(
                f.magic.to_le_bytes().iter().all(|b| b.is_ascii_graphic()),
                "{}: magic must be printable ASCII",
                f.name
            );
            for other in &spec::REGISTRY[..i] {
                assert_ne!(f.name, other.name, "duplicate registry name");
            }
        }
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = HeaderWriter::new();
        w.u32(1);
        let bytes = w.finish();
        let mut r = HeaderReader::new(&bytes);
        assert_eq!(r.u64().unwrap_err(), FormatError::Truncated);
    }

    #[test]
    fn block_length_checked() {
        let mut w = HeaderWriter::new();
        w.u64(1000); // claims 1000 bytes, provides none
        let bytes = w.finish();
        let mut r = HeaderReader::new(&bytes);
        assert_eq!(r.block().unwrap_err(), FormatError::Truncated);
    }

    #[test]
    fn str16_rejects_non_utf8_and_oversize() {
        let mut w = HeaderWriter::new();
        w.u16(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.finish();
        assert_eq!(
            HeaderReader::new(&bytes).str16().unwrap_err(),
            FormatError::Corrupt("string is not UTF-8")
        );
        let long = "x".repeat(usize::from(u16::MAX) + 1);
        assert!(HeaderWriter::new().str16(&long).is_err());
    }

    #[test]
    fn varint_roundtrip_and_overrun() {
        let mut r = HeaderReader::new(&[0x96, 0x01]);
        assert_eq!(r.varint().unwrap(), 150);
        let overrun = [0x80u8; 11];
        assert!(matches!(
            HeaderReader::new(&overrun).varint(),
            Err(FormatError::Corrupt(_))
        ));
    }
}
