//! SZ2-style Lorenzo-predictor compressor (Tao et al., IPDPS'17; Liang et
//! al., Big Data'18).
//!
//! The generation before SZ3's interpolation: every point is predicted from
//! its already-decoded raster-order neighbours with the N-dimensional
//! Lorenzo stencil (the inclusion–exclusion corner sum), quantized with the
//! same linear-scale quantizer, Huffman-coded, and squeezed by the lossless
//! backend. Included because the paper positions CliZ's lineage against it
//! and because it is a strong comparator on rough data where long-range
//! interpolation loses.

use crate::header::{read_header, write_header, Reader};
use crate::traits::{BaselineError, Compressor};
use cliz_entropy::huffman;
use cliz_format::{spec::SZ21, HeaderWriter};
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_quant::{ErrorBound, LinearQuantizer, Quantized, ESCAPE};

/// Up to 3 Lorenzo dimensions (higher-rank data treats leading axes as
/// independent slabs, as SZ2 does).
const MAX_LORENZO_DIMS: usize = 3;

/// Lorenzo stencil offsets and signs for `rank` dimensions: the predictor is
/// `Σ sign · x[pos − offset]` over every non-empty corner subset.
fn lorenzo_stencil(strides: &[usize]) -> Vec<(usize, f64)> {
    let rank = strides.len();
    debug_assert!(rank >= 1 && rank <= MAX_LORENZO_DIMS);
    let mut out = Vec::with_capacity((1 << rank) - 1);
    for bits in 1u32..(1 << rank) {
        let mut offset = 0usize;
        for (d, &s) in strides.iter().enumerate() {
            if bits >> d & 1 == 1 {
                offset += s;
            }
        }
        // Inclusion–exclusion: odd subsets add, even subsets subtract.
        let sign = if bits.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
        out.push((offset, sign));
    }
    out
}

/// Walks `buf` in raster order. For each point, computes the Lorenzo
/// prediction from already-visited (and possibly rewritten) neighbours and
/// calls `step(idx, pred, current)`; a `Some(v)` return value replaces the
/// point in `buf` (the decoder-visible reconstruction), `None` leaves it.
/// Boundary points use the partial stencil (out-of-range corners drop out,
/// matching SZ2's zero-padding semantics).
// xtask-allow-fn: R5 -- slab/odometer offsets stay below dims product == buf.len(); callers size buf from validated dims
fn walk_lorenzo(
    dims: &[usize],
    buf: &mut [f32],
    mut step: impl FnMut(usize, f64, f32) -> Option<f32>,
) {
    let ndim = dims.len();
    let lorenzo_rank = ndim.min(MAX_LORENZO_DIMS);
    let lead = ndim - lorenzo_rank;
    let slab_dims = &dims[lead..];
    let slab_len: usize = slab_dims.iter().product();
    let n_slabs: usize = dims[..lead].iter().product::<usize>().max(1);

    // Row-major strides within a slab.
    let mut strides = vec![1usize; lorenzo_rank];
    for i in (0..lorenzo_rank.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * slab_dims[i + 1];
    }
    let stencil = lorenzo_stencil(&strides);

    let mut coords = vec![0usize; lorenzo_rank];
    for slab in 0..n_slabs {
        let base = slab * slab_len;
        coords.iter_mut().for_each(|c| *c = 0);
        for local in 0..slab_len {
            // Partial stencil at the low boundaries: a corner is usable only
            // when every participating coordinate is > 0.
            let mut pred = 0.0f64;
            for &(offset, sign) in &stencil {
                // Check per-dimension underflow by decomposing the offset.
                let mut ok = true;
                let mut rem = offset;
                for (d, &s) in strides.iter().enumerate() {
                    let steps = rem / s;
                    rem %= s;
                    if steps > coords[d] {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    pred += sign * buf[base + local - offset] as f64;
                }
            }
            let idx = base + local;
            if let Some(v) = step(idx, pred, buf[idx]) {
                buf[idx] = v;
            }
            // Odometer.
            for d in (0..lorenzo_rank).rev() {
                coords[d] += 1;
                if coords[d] < slab_dims[d] {
                    break;
                }
                coords[d] = 0;
            }
        }
    }
}

/// SZ2-like Lorenzo compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sz2Lorenzo;

impl Compressor for Sz2Lorenzo {
    fn name(&self) -> &'static str {
        "SZ2"
    }

    fn compress(
        &self,
        data: &Grid<f32>,
        _mask: Option<&MaskMap>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, BaselineError> {
        let (mn, mx) = data.finite_min_max().unwrap_or((0.0, 0.0));
        let eb = bound.resolve(mn, mx);
        let q = LinearQuantizer::new(eb);
        let dims = data.shape().dims().to_vec();

        let mut buf = data.as_slice().to_vec();
        let mut symbols = vec![0u32; buf.len()];
        let mut escapes = 0usize;
        walk_lorenzo(&dims, &mut buf, |idx, pred, value| {
            match q.quantize(value, pred) {
                Quantized::Bin { symbol, recon } => {
                    symbols[idx] = symbol;
                    Some(recon)
                }
                Quantized::Escape => {
                    symbols[idx] = ESCAPE;
                    escapes += 1;
                    None // keep the exact original = the stored literal
                }
            }
        });

        let stream = huffman::encode_stream(&symbols);
        let mut literals = Vec::with_capacity(escapes * 4);
        for (&s, &v) in symbols.iter().zip(&buf) {
            if s == ESCAPE {
                literals.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut payload = Vec::with_capacity(stream.len() + literals.len() + 16);
        payload.extend_from_slice(&(stream.len() as u64).to_le_bytes());
        payload.extend_from_slice(&stream);
        payload.extend_from_slice(&literals);
        let packed = cliz_lossless::compress(&payload);

        let mut out = HeaderWriter::with_capacity(packed.len() + 64);
        write_header(&mut out, &SZ21, &dims);
        out.f64(eb);
        out.u64(escapes as u64);
        out.raw(&packed);
        Ok(out.finish())
    }

    fn decompress(
        &self,
        bytes: &[u8],
        _mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, BaselineError> {
        let mut r = Reader::new(bytes);
        let (dims, total) = read_header(&mut r, &SZ21)?;
        let eb = r.f64()?;
        if !(eb > 0.0) {
            return Err(BaselineError::Corrupt("bad eb"));
        }
        let escapes = r.len64()?;
        let payload = cliz_lossless::decompress(r.rest())?;

        let mut pr = Reader::new(&payload);
        let stream_len = pr.len64()?;
        let symbols = huffman::decode_stream(pr.take(stream_len)?)
            .ok_or(BaselineError::Corrupt("huffman"))?;
        if symbols.len() != total {
            return Err(BaselineError::Corrupt("symbol count"));
        }
        if symbols.iter().filter(|&&s| s == ESCAPE).count() != escapes {
            return Err(BaselineError::Corrupt("escape count"));
        }
        // escapes ≤ total here, so the allocation is bounded.
        let mut literals = Vec::with_capacity(escapes);
        for _ in 0..escapes {
            literals.push(pr.f32()?);
        }

        let q = LinearQuantizer::new(eb);
        let mut buf = vec![0.0f32; total];
        // Escape order == raster order for Lorenzo, so literals stream in
        // walk order directly.
        let mut lit_it = literals.into_iter();
        let mut err = false;
        walk_lorenzo(&dims, &mut buf, |idx, pred, _| {
            let s = symbols[idx];
            Some(if s == ESCAPE {
                lit_it.next().unwrap_or_else(|| {
                    err = true;
                    0.0
                })
            } else {
                q.recover(s, pred)
            })
        });
        if err {
            return Err(BaselineError::Corrupt("short literal stream"));
        }
        Ok(Grid::from_vec(Shape::new(&dims), buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.11 * (k + 1) as f64).sin() * 5.0;
            }
            v as f32
        })
    }

    #[test]
    fn stencil_1d_is_previous_point() {
        assert_eq!(lorenzo_stencil(&[1]), vec![(1, 1.0)]);
    }

    #[test]
    fn stencil_2d_inclusion_exclusion() {
        // pred = x[i-1,j] + x[i,j-1] - x[i-1,j-1]
        let mut s = lorenzo_stencil(&[10, 1]);
        s.sort_by_key(|&(off, _)| off);
        assert_eq!(s, vec![(1, 1.0), (10, 1.0), (11, -1.0)]);
    }

    #[test]
    fn stencil_3d_has_seven_corners() {
        let s = lorenzo_stencil(&[100, 10, 1]);
        assert_eq!(s.len(), 7);
        let sum: f64 = s.iter().map(|&(_, sign)| sign).sum();
        // Lorenzo weights sum to 1 (exact on constants).
        assert_eq!(sum, 1.0);
    }

    #[test]
    fn roundtrip_bound_holds() {
        for dims in [&[200usize][..], &[24, 32], &[8, 16, 20], &[3, 4, 10, 12]] {
            let g = smooth(dims);
            for eb in [1e-2, 1e-4] {
                let bytes = Sz2Lorenzo.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
                let out = Sz2Lorenzo.decompress(&bytes, None).unwrap();
                for (i, (a, b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
                    assert!(
                        ((*a as f64) - (*b as f64)).abs() <= eb * (1.0 + 1e-12),
                        "dims {dims:?} eb {eb} at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn lorenzo_is_exact_on_planes() {
        // An affine field is predicted exactly by the Lorenzo stencil, so
        // every interior bin should be zero.
        let g = Grid::from_fn(Shape::new(&[16, 16]), |c| {
            2.0 * c[0] as f32 - 3.0 * c[1] as f32 + 1.0
        });
        let bytes = Sz2Lorenzo.compress(&g, None, ErrorBound::Abs(1e-4)).unwrap();
        let ratio = (g.len() * 4) as f64 / bytes.len() as f64;
        assert!(ratio > 6.0, "plane should compress extremely: {ratio}");
    }

    #[test]
    fn compresses_smooth_data() {
        let g = smooth(&[16, 64, 64]);
        let bytes = Sz2Lorenzo.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        let ratio = (g.len() * 4) as f64 / bytes.len() as f64;
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Sz2Lorenzo.decompress(b"nope", None).is_err());
        let g = smooth(&[10, 10]);
        let bytes = Sz2Lorenzo.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        assert!(Sz2Lorenzo.decompress(&bytes[..12], None).is_err());
    }
}
