//! The compressor interface shared by all baselines (and adapted by CliZ in
//! the facade crate), so rate-distortion harnesses can sweep uniformly.

use cliz_grid::{Grid, MaskMap};
use cliz_quant::ErrorBound;

/// Decode/encode failure for baseline codecs.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    BadMagic,
    Truncated,
    UnsupportedVersion(u8),
    Corrupt(&'static str),
    Backend(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::BadMagic => write!(f, "baseline: bad magic"),
            BaselineError::Truncated => write!(f, "baseline: truncated stream"),
            BaselineError::UnsupportedVersion(v) => {
                write!(f, "baseline: unsupported container version {v}")
            }
            BaselineError::Corrupt(w) => write!(f, "baseline: corrupt stream ({w})"),
            BaselineError::Backend(w) => write!(f, "baseline backend: {w}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<cliz_format::FormatError> for BaselineError {
    fn from(e: cliz_format::FormatError) -> Self {
        match e {
            cliz_format::FormatError::Truncated => BaselineError::Truncated,
            cliz_format::FormatError::BadMagic => BaselineError::BadMagic,
            cliz_format::FormatError::UnsupportedVersion(v) => {
                BaselineError::UnsupportedVersion(v)
            }
            cliz_format::FormatError::Corrupt(what) => BaselineError::Corrupt(what),
        }
    }
}

impl From<cliz_lossless::Error> for BaselineError {
    fn from(e: cliz_lossless::Error) -> Self {
        BaselineError::Backend(e.to_string())
    }
}

/// A uniform error-bounded compressor interface.
///
/// `mask` is advisory: CliZ exploits it, the baselines ignore it (they
/// compress fill values as ordinary data, as their real counterparts do).
/// `Send + Sync` so harnesses can fan compressors across rayon workers.
pub trait Compressor: Send + Sync {
    /// Display name used in experiment tables ("SZ3", "ZFP", …).
    fn name(&self) -> &'static str;

    fn compress(
        &self,
        data: &Grid<f32>,
        mask: Option<&MaskMap>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, BaselineError>;

    fn decompress(
        &self,
        bytes: &[u8],
        mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, BaselineError>;
}
