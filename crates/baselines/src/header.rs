//! Bounds-checked little-endian parsing shared by the baseline decoders.
//!
//! Every baseline container starts with `magic:u32, rank:u8, dims:u64×rank`
//! followed by per-format fields. All reads go through [`Reader`], which
//! returns [`BaselineError::Truncated`] instead of panicking on short
//! input, and [`read_header`] caps the total element count so a corrupt
//! header can neither drive a huge allocation nor overflow the stride
//! arithmetic in `Shape::new`.

use crate::traits::BaselineError;
use cliz_grid::cast;

/// Decoders refuse grids larger than this many elements (2^36 ≈ 64 G
/// points, ~256 GiB of f32): anything bigger in a header is corruption.
pub(crate) const MAX_ELEMENTS: usize = 1 << 36;

/// Cursor over an untrusted byte buffer; every accessor is fallible.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Takes the next `n` bytes, or `Truncated` when they are not there.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], BaselineError> {
        let end = self.pos.checked_add(n).ok_or(BaselineError::Truncated)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(BaselineError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, BaselineError> {
        self.take(1).map(|s| s[0])
    }

    pub fn u32(&mut self) -> Result<u32, BaselineError> {
        self.take(4)
            .and_then(|s| cast::u32_le(s).ok_or(BaselineError::Truncated))
    }

    pub fn u64(&mut self) -> Result<u64, BaselineError> {
        self.take(8)
            .and_then(|s| cast::u64_le(s).ok_or(BaselineError::Truncated))
    }

    pub fn f32(&mut self) -> Result<f32, BaselineError> {
        self.take(4)
            .and_then(|s| cast::f32_le(s).ok_or(BaselineError::Truncated))
    }

    pub fn f64(&mut self) -> Result<f64, BaselineError> {
        self.take(8)
            .and_then(|s| cast::f64_le(s).ok_or(BaselineError::Truncated))
    }

    /// A `u64` length/count field that must also fit in `usize`.
    pub fn len64(&mut self) -> Result<usize, BaselineError> {
        let v = self.u64()?;
        cast::to_usize_checked(v).ok_or(BaselineError::Corrupt("length overflows usize"))
    }

    /// LEB128 varint (7 data bits per byte, ≤ 64 bits total).
    pub fn varint(&mut self) -> Result<u64, BaselineError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(BaselineError::Corrupt("varint overruns 64 bits"));
            }
        }
    }

    pub fn skip(&mut self, n: usize) -> Result<(), BaselineError> {
        self.take(n).map(|_| ())
    }

    /// Everything after the cursor (typically the compressed payload).
    pub fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }
}

/// Reads and validates the common `magic, rank, dims` prefix. Returns the
/// dimensions and their checked element count.
pub(crate) fn read_header(
    r: &mut Reader,
    magic: u32,
) -> Result<(Vec<usize>, usize), BaselineError> {
    if r.u32()? != magic {
        return Err(BaselineError::BadMagic);
    }
    let ndim = r.u8()? as usize;
    if ndim == 0 || ndim > 6 {
        return Err(BaselineError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dims.push(r.len64()?);
    }
    if dims.iter().any(|&d| d == 0) {
        return Err(BaselineError::Corrupt("zero dim"));
    }
    let total = dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .filter(|&t| t <= MAX_ELEMENTS)
        .ok_or(BaselineError::Corrupt("implausible size"))?;
    Ok((dims, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_is_fallible_not_panicky() {
        let mut r = Reader::new(&[1, 0, 0, 0]);
        assert_eq!(r.u32().unwrap(), 1);
        assert!(matches!(r.u8(), Err(BaselineError::Truncated)));
        assert!(matches!(r.u64(), Err(BaselineError::Truncated)));
        assert!(r.rest().is_empty());
    }

    #[test]
    fn header_rejects_implausible_dims() {
        let magic = 0xABCD_1234u32;
        let mut bytes = magic.to_le_bytes().to_vec();
        bytes.push(2);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            read_header(&mut r, magic),
            Err(BaselineError::Corrupt(_))
        ));
    }

    #[test]
    fn header_roundtrip_and_varint() {
        let magic = 0x0F0F_0F0Fu32;
        let mut bytes = magic.to_le_bytes().to_vec();
        bytes.push(3);
        for d in [4u64, 5, 6] {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        bytes.extend_from_slice(&[0x96, 0x01]); // varint 150
        let mut r = Reader::new(&bytes);
        let (dims, total) = read_header(&mut r, magic).unwrap();
        assert_eq!(dims, vec![4, 5, 6]);
        assert_eq!(total, 120);
        assert_eq!(r.varint().unwrap(), 150);
    }
}
