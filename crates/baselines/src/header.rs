//! Shared baseline container prefix, on top of the `cliz-format` cursors.
//!
//! Every baseline container starts with `magic:u32, version:u8, rank:u8,
//! dims:u64×rank` followed by per-format fields. [`write_header`] emits the
//! prefix from a registry [`FormatSpec`] and [`read_header`] validates it:
//! magic and version first (an unknown future version is a clean
//! [`BaselineError::UnsupportedVersion`], never a misparse), then the rank
//! and a capped total element count so a corrupt header can neither drive a
//! huge allocation nor overflow the stride arithmetic in `Shape::new`. All
//! reads go through [`Reader`] (the `cliz-format` cursor), whose errors
//! convert into [`BaselineError`] via `?`.

use crate::traits::BaselineError;
use cliz_format::{FormatSpec, HeaderWriter};

/// Decoders refuse grids larger than this many elements (2^36 ≈ 64 G
/// points, ~256 GiB of f32): anything bigger in a header is corruption.
pub(crate) const MAX_ELEMENTS: usize = 1 << 36;

/// Cursor over an untrusted byte buffer; every accessor is fallible.
pub(crate) type Reader<'a> = cliz_format::HeaderReader<'a>;

/// Writes the common `magic, version, rank, dims` prefix for `spec`.
pub(crate) fn write_header(w: &mut HeaderWriter, spec: &FormatSpec, dims: &[usize]) {
    w.magic(spec);
    w.u8(dims.len() as u8);
    for &d in dims {
        w.u64(d as u64);
    }
}

/// Reads and validates the common `magic, version, rank, dims` prefix.
/// Returns the dimensions and their checked element count.
pub(crate) fn read_header(
    r: &mut Reader,
    spec: &FormatSpec,
) -> Result<(Vec<usize>, usize), BaselineError> {
    r.expect_magic(spec)?;
    let ndim = r.u8()? as usize;
    if ndim == 0 || ndim > 6 {
        return Err(BaselineError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dims.push(r.len64()?);
    }
    if dims.iter().any(|&d| d == 0) {
        return Err(BaselineError::Corrupt("zero dim"));
    }
    let total = dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .filter(|&t| t <= MAX_ELEMENTS)
        .ok_or(BaselineError::Corrupt("implausible size"))?;
    Ok((dims, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_format::spec::ZFP1;

    #[test]
    fn reader_is_fallible_not_panicky() {
        let mut r = Reader::new(&[1, 0, 0, 0]);
        assert_eq!(r.u32().unwrap(), 1);
        assert!(r.u8().is_err());
        assert!(r.u64().is_err());
        assert!(r.rest().is_empty());
    }

    #[test]
    fn header_rejects_implausible_dims() {
        let mut w = HeaderWriter::new();
        w.magic(&ZFP1);
        w.u8(2);
        w.u64(u64::MAX);
        w.u64(2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            read_header(&mut r, &ZFP1),
            Err(BaselineError::Corrupt(_))
        ));
    }

    #[test]
    fn header_rejects_future_version() {
        let mut w = HeaderWriter::new();
        write_header(&mut w, &ZFP1, &[4, 5]);
        let mut bytes = w.finish();
        bytes[4] = 0xEE;
        let mut r = Reader::new(&bytes);
        assert_eq!(
            read_header(&mut r, &ZFP1).unwrap_err(),
            BaselineError::UnsupportedVersion(0xEE)
        );
    }

    #[test]
    fn header_roundtrip_and_varint() {
        let mut w = HeaderWriter::new();
        write_header(&mut w, &ZFP1, &[4, 5, 6]);
        w.raw(&[0x96, 0x01]); // varint 150
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let (dims, total) = read_header(&mut r, &ZFP1).unwrap();
        assert_eq!(dims, vec![4, 5, 6]);
        assert_eq!(total, 120);
        assert_eq!(r.varint().unwrap(), 150);
    }
}
