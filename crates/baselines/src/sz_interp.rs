//! SZ3-style interpolation compressor (the framework CliZ builds on, with
//! every climate-specific feature switched off).

use crate::header::{read_header, write_header, Reader};
use crate::traits::{BaselineError, Compressor};
use cliz_entropy::huffman;
use cliz_format::{spec::SZL1, FormatSpec, HeaderWriter};
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_predict::{
    predict_quantize_leveled, reconstruct_leveled, Fitting, InterpParams,
};
use cliz_quant::{ErrorBound, LinearQuantizer, ESCAPE};

/// Per-stride error-bound multiplier policy (1.0 = plain SZ3; QoZ tightens
/// coarse strides).
pub(crate) type EbPolicy = fn(stride: usize) -> f64;

fn flat_policy(_stride: usize) -> f64 {
    1.0
}

/// SZ3-like compressor: interpolation + quantization + Huffman + zlite.
#[derive(Clone, Copy, Debug, Default)]
pub struct SzInterp;

impl SzInterp {
    /// Picks linear vs cubic fitting by probing a centre block, mirroring
    /// SZ3's sampled predictor selection.
    pub(crate) fn pick_fitting(data: &Grid<f32>, eb: f64) -> Fitting {
        let shape = data.shape();
        // Up to ~32k points from the centre.
        let dims = shape.dims();
        let side: Vec<usize> = dims
            .iter()
            .map(|&d| d.min((32_768f64).powf(1.0 / dims.len() as f64) as usize + 1).max(1))
            .collect();
        let start: Vec<usize> = dims
            .iter()
            .zip(&side)
            .map(|(&d, &s)| (d - s) / 2)
            .collect();
        let block = data.block(&start, &side);
        let q = LinearQuantizer::new(eb);
        let cost = |fitting: Fitting| -> u64 {
            let params = InterpParams::new(fitting);
            let mut buf = block.as_slice().to_vec();
            let mut symbols = vec![0u32; buf.len()];
            predict_quantize_leveled(&mut buf, block.shape().dims(), &params, &|_| q, &mut symbols);
            symbols
                .iter()
                .map(|&s| {
                    if s == ESCAPE {
                        64
                    } else {
                        u64::from(cliz_quant::symbol_to_bin(s).unsigned_abs()).min(64)
                    }
                })
                .sum()
        };
        if cost(Fitting::Cubic) <= cost(Fitting::Linear) {
            Fitting::Cubic
        } else {
            Fitting::Linear
        }
    }
}

/// Shared encode path for SZ3 and QoZ (they differ only in the eb policy).
pub(crate) fn encode(
    data: &Grid<f32>,
    bound: ErrorBound,
    spec: &FormatSpec,
    policy: EbPolicy,
) -> Result<Vec<u8>, BaselineError> {
    let (mn, mx) = data.finite_min_max().unwrap_or((0.0, 0.0));
    let eb = bound.resolve(mn, mx);
    let fitting = SzInterp::pick_fitting(data, eb);

    let dims = data.shape().dims().to_vec();
    let params = InterpParams::new(fitting);
    let mut buf = data.as_slice().to_vec();
    let mut symbols = vec![0u32; buf.len()];
    let escapes = predict_quantize_leveled(
        &mut buf,
        &dims,
        &params,
        &|stride| LinearQuantizer::new(eb * policy(stride)),
        &mut symbols,
    );

    let stream = huffman::encode_stream(&symbols);
    let mut literals = Vec::with_capacity(escapes * 4);
    for (&s, &v) in symbols.iter().zip(&buf) {
        if s == ESCAPE {
            literals.extend_from_slice(&v.to_le_bytes());
        }
    }

    let mut payload = Vec::with_capacity(stream.len() + literals.len() + 16);
    payload.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    payload.extend_from_slice(&stream);
    payload.extend_from_slice(&literals);
    let packed = cliz_lossless::compress(&payload);

    let mut out = HeaderWriter::with_capacity(packed.len() + 64);
    write_header(&mut out, spec, &dims);
    out.f64(eb);
    out.u8(match fitting {
        Fitting::Linear => 0,
        Fitting::Cubic => 1,
    });
    out.u64(escapes as u64);
    out.raw(&packed);
    Ok(out.finish())
}

pub(crate) fn decode(
    bytes: &[u8],
    spec: &FormatSpec,
    policy: EbPolicy,
) -> Result<Grid<f32>, BaselineError> {
    let mut r = Reader::new(bytes);
    let (dims, total) = read_header(&mut r, spec)?;
    let eb = r.f64()?;
    if !(eb > 0.0) {
        return Err(BaselineError::Corrupt("bad eb"));
    }
    let fitting = match r.u8()? {
        0 => Fitting::Linear,
        1 => Fitting::Cubic,
        _ => return Err(BaselineError::Corrupt("bad fitting")),
    };
    let escapes = r.len64()?;

    let payload = cliz_lossless::decompress(r.rest())?;
    let mut pr = Reader::new(&payload);
    let stream_len = pr.len64()?;
    let symbols = huffman::decode_stream(pr.take(stream_len)?)
        .ok_or(BaselineError::Corrupt("huffman decode"))?;
    if symbols.len() != total {
        return Err(BaselineError::Corrupt("symbol count"));
    }
    let observed = symbols.iter().filter(|&&s| s == ESCAPE).count();
    if observed != escapes {
        return Err(BaselineError::Corrupt("escape count"));
    }
    // escapes ≤ total here, so the allocation is bounded.
    let mut literals = Vec::with_capacity(escapes);
    for _ in 0..escapes {
        literals.push(pr.f32()?);
    }

    let params = InterpParams::new(fitting);
    let mut buf = vec![0.0f32; total];
    reconstruct_leveled(
        &mut buf,
        &dims,
        &params,
        &|stride| LinearQuantizer::new(eb * policy(stride)),
        &symbols,
        &literals,
        0.0,
    )
    .map_err(|_| BaselineError::Corrupt("literal/escape mismatch"))?;
    Ok(Grid::from_vec(Shape::new(&dims), buf))
}

impl Compressor for SzInterp {
    fn name(&self) -> &'static str {
        "SZ3"
    }

    fn compress(
        &self,
        data: &Grid<f32>,
        _mask: Option<&MaskMap>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, BaselineError> {
        encode(data, bound, &SZL1, flat_policy)
    }

    fn decompress(
        &self,
        bytes: &[u8],
        _mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, BaselineError> {
        decode(bytes, &SZL1, flat_policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.17 * (k + 1) as f64).sin() * 5.0;
            }
            v as f32
        })
    }

    #[test]
    fn roundtrip_bound_holds() {
        let g = smooth(&[12, 30, 20]);
        let sz = SzInterp;
        for eb in [1e-2, 1e-4] {
            let bytes = sz.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
            let out = sz.decompress(&bytes, None).unwrap();
            for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
                assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        let g = smooth(&[16, 64, 64]);
        let bytes = SzInterp.compress(&g, None, ErrorBound::Rel(1e-3)).unwrap();
        let ratio = (g.len() * 4) as f64 / bytes.len() as f64;
        assert!(ratio > 8.0, "ratio {ratio}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(SzInterp.decompress(b"junk", None).is_err());
        let g = smooth(&[8, 8]);
        let bytes = SzInterp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        assert!(SzInterp.decompress(&bytes[..bytes.len() / 2], None).is_err());
    }

    #[test]
    fn mask_blindness_hurts_on_fill_values() {
        // Same field twice; one copy has fill values. SZ3 must still honour
        // the bound but pays in size — this is the Sec. V-A effect.
        let clean = smooth(&[32, 32]);
        let mut dirty = clean.clone();
        for (i, v) in dirty.as_mut_slice().iter_mut().enumerate() {
            if (i / 32 + i % 32) % 4 == 0 {
                *v = 9.96921e36;
            }
        }
        let b_clean = SzInterp.compress(&clean, None, ErrorBound::Abs(1e-3)).unwrap();
        let b_dirty = SzInterp.compress(&dirty, None, ErrorBound::Abs(1e-3)).unwrap();
        assert!(
            b_dirty.len() > b_clean.len() * 2,
            "fill values should hurt: {} vs {}",
            b_dirty.len(),
            b_clean.len()
        );
        // Bound still holds pointwise, including on the fills.
        let out = SzInterp.decompress(&b_dirty, None).unwrap();
        for (a, b) in dirty.as_slice().iter().zip(out.as_slice()) {
            assert!((*a as f64 - *b as f64).abs() <= 1e-3 * (1.0 + 1e-9) || a == b);
        }
    }
}
