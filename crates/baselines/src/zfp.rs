//! ZFP-style transform compressor (Lindstrom, TVCG'14), fixed-accuracy mode.
//!
//! Structure follows the published algorithm: data is cut into 4^d blocks
//! (d ≤ 3; higher-rank inputs iterate their leading axes), each block is
//! aligned to a common exponent (block floating point), quantized to
//! integers, decorrelated with ZFP's non-orthogonal lifting transform along
//! each axis, and the coefficients are stored with a per-block bit width.
//!
//! Coefficients are coded with ZFP's real embedded scheme: negabinary
//! conversion, sequency (total-degree) ordering, and per-bitplane group
//! testing from the MSB down to a per-block `kmin`. One deliberate deviation,
//! documented in DESIGN.md: the accuracy target is enforced by a per-block
//! verify-and-retry loop (decode the block, deepen `kmin` until
//! `max err ≤ eb`), which gives this implementation a *hard* error bound —
//! stock ZFP's accuracy mode is only heuristic. That strengthens, not
//! weakens, the baseline; the comparisons CliZ cares about (block exponents
//! wrecked by mask fill values, no periodicity exploitation) are unchanged.

use crate::header::{read_header, write_header, Reader};
use crate::traits::{BaselineError, Compressor};
use cliz_entropy::{BitReader, BitWriter};
use cliz_format::{spec::ZFP1, HeaderWriter};
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_quant::ErrorBound;

/// Fixed-point fraction bits for block-float quantization.
const Q_BITS: i32 = 26;
/// Block side length (ZFP's 4).
const SIDE: usize = 4;

/// ZFP's forward 4-point lifting transform. Wrapping arithmetic matches the
/// reference implementation's wrap-around semantics and keeps the decode
/// side panic-free on corrupt coefficient streams.
fn fwd_lift(p: &mut [i64], offset: usize, stride: usize) {
    let mut x = p[offset];
    let mut y = p[offset + stride];
    let mut z = p[offset + 2 * stride];
    let mut w = p[offset + 3 * stride];
    x = x.wrapping_add(w) >> 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y) >> 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z) >> 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y) >> 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[offset] = x;
    p[offset + stride] = y;
    p[offset + 2 * stride] = z;
    p[offset + 3 * stride] = w;
}

/// ZFP's inverse lifting transform. Like the original, this undoes
/// [`fwd_lift`] only up to the low bits the `>>= 1` shears discard — a
/// ±few-integer-unit slack that the per-block verification loop absorbs
/// (the transform feeds a lossy quantizer, so bit-exactness is not needed).
fn inv_lift(p: &mut [i64], offset: usize, stride: usize) {
    let mut x = p[offset];
    let mut y = p[offset + stride];
    let mut z = p[offset + 2 * stride];
    let mut w = p[offset + 3 * stride];
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w = (w << 1).wrapping_sub(y);
    z = z.wrapping_add(x);
    x = (x << 1).wrapping_sub(z);
    y = y.wrapping_add(z);
    z = (z << 1).wrapping_sub(y);
    w = w.wrapping_add(x);
    x = (x << 1).wrapping_sub(w);
    p[offset] = x;
    p[offset + stride] = y;
    p[offset + 2 * stride] = z;
    p[offset + 3 * stride] = w;
}

/// Applies the lifting along every axis of a 4^rank block.
fn transform_block(vals: &mut [i64], rank: usize, inverse: bool) {
    debug_assert_eq!(vals.len(), SIDE.pow(rank as u32));
    // Axis strides in the block's row-major layout.
    for axis in 0..rank {
        let stride = SIDE.pow((rank - 1 - axis) as u32);
        let lines = vals.len() / SIDE;
        for l in 0..lines {
            // Enumerate line bases: indices where coordinate `axis` == 0.
            let outer = l / stride;
            let inner = l % stride;
            let base = outer * stride * SIDE + inner;
            if inverse {
                inv_lift(vals, base, stride);
            } else {
                fwd_lift(vals, base, stride);
            }
        }
    }
}

/// Negabinary mask (ZFP's NBMASK): maps signed ints to unsigned so bitplane
/// truncation rounds consistently without a sign channel.
const NBMASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

#[inline]
fn int2uint(i: i64) -> u64 {
    (i as u64).wrapping_add(NBMASK) ^ NBMASK
}

#[inline]
fn uint2int(u: u64) -> i64 {
    (u ^ NBMASK).wrapping_sub(NBMASK) as i64
}

/// Sequency (total-degree) coefficient order for a 4^rank block: transform
/// coefficients sorted by the sum of their per-axis frequencies, so the
/// energetic low-frequency coefficients go first and group testing kills
/// high-frequency planes in one bit.
fn sequency_order(rank: usize) -> &'static [usize] {
    use std::sync::OnceLock;
    static ORDERS: OnceLock<[Vec<usize>; 4]> = OnceLock::new();
    let orders = ORDERS.get_or_init(|| {
        let make = |rank: usize| {
            let n = SIDE.pow(rank as u32);
            let mut idx: Vec<usize> = (0..n).collect();
            let degree = |i: usize| {
                let mut d = 0usize;
                let mut v = i;
                for _ in 0..rank {
                    d += v % SIDE;
                    v /= SIDE;
                }
                d
            };
            idx.sort_by_key(|&i| (degree(i), i));
            idx
        };
        [make(0), make(1), make(2), make(3)]
    });
    &orders[rank]
}

/// Per-block decode used by both the verification loop and the decompressor:
/// takes negabinary coefficients in *sequency order* (planes below `kmin`
/// zeroed/never stored), un-permutes, inverse-transforms, and dequantizes.
/// Returns values in natural block order.
fn decode_block_values(nb_seq: &[u64], rank: usize, emax: i32, kmin: u32) -> Vec<f32> {
    let order = sequency_order(rank);
    let keep = if kmin == 0 { !0u64 } else { !((1u64 << kmin) - 1) };
    let mut c = vec![0i64; nb_seq.len()];
    for (pos, &i) in order.iter().enumerate() {
        c[i] = uint2int(nb_seq[pos] & keep);
    }
    transform_block(&mut c, rank, true);
    let scale = 2.0f64.powi(emax + 1 - Q_BITS);
    c.iter().map(|&v| (v as f64 * scale) as f32).collect()
}

/// ZFP's embedded bitplane encoder: planes from MSB down to `kmin`, each as
/// `n` verbatim bits for already-significant coefficients plus a unary
/// group-tested remainder.
fn encode_planes(nb: &[u64], kmin: u32, w: &mut BitWriter) {
    let size = nb.len();
    let mut n = 0usize;
    for k in (kmin..64).rev() {
        // Gather plane k across coefficients (sequency order already applied).
        let mut x: u64 = 0;
        for (i, &u) in nb.iter().enumerate() {
            x += ((u >> k) & 1) << i;
        }
        // First n bits verbatim (these coefficients are already significant).
        if n > 0 {
            if n > 32 {
                w.write_bits((x & 0xFFFF_FFFF) as u32, 32);
                w.write_bits(((x >> 32) & ((1u64 << (n - 32)) - 1)) as u32, (n - 32) as u32);
            } else {
                w.write_bits((x & ((1u64 << n) - 1)) as u32, n as u32);
            }
            x = if n >= 64 { 0 } else { x >> n };
        }
        // Group-tested remainder: a "1" test bit promises at least one more
        // significant coefficient in this plane; each run then emits bits up
        // to and including that coefficient's "1".
        let mut m = n;
        while m < size {
            let any = x != 0;
            w.write_bit(any);
            if !any {
                break;
            }
            loop {
                let bit = x & 1 == 1;
                w.write_bit(bit);
                x >>= 1;
                m += 1;
                if bit {
                    break;
                }
            }
        }
        n = m;
    }
}

/// Mirror of [`encode_planes`].
fn decode_planes(size: usize, kmin: u32, r: &mut BitReader) -> Option<Vec<u64>> {
    let mut nb = vec![0u64; size];
    let mut n = 0usize;
    for k in (kmin..64).rev() {
        let mut x: u64 = 0;
        if n > 0 {
            if n > 32 {
                let lo = r.read_bits(32)? as u64;
                let hi = r.read_bits((n - 32) as u32)? as u64;
                x = lo | (hi << 32);
            } else {
                x = r.read_bits(n as u32)? as u64;
            }
        }
        let mut m = n;
        while m < size {
            if !r.read_bit()? {
                break;
            }
            loop {
                let bit = r.read_bit()?;
                if bit {
                    x |= 1u64 << m;
                    m += 1;
                    break;
                }
                m += 1;
                if m >= size {
                    // The group test promised a 1 that never arrived.
                    return None;
                }
            }
        }
        n = m;
        for (i, u) in nb.iter_mut().enumerate() {
            *u |= ((x >> i) & 1) << k;
        }
    }
    Some(nb)
}

/// Block encodings.
const MODE_ZERO: u32 = 0;
const MODE_CODED: u32 = 1;
const MODE_RAW: u32 = 2;

fn encode_block(vals: &[f32], rank: usize, eb: f64, w: &mut BitWriter) {
    let n = vals.len();
    debug_assert_eq!(n, SIDE.pow(rank as u32));

    let finite = vals.iter().all(|v| v.is_finite());
    let max_abs = vals.iter().fold(0.0f64, |m, &v| m.max((v as f64).abs()));
    if finite && max_abs == 0.0 {
        w.write_bits(MODE_ZERO, 2);
        return;
    }
    if !finite || max_abs >= f32::MAX as f64 / 16.0 {
        // Exponent games would overflow: ship the block verbatim.
        w.write_bits(MODE_RAW, 2);
        for &v in vals {
            w.write_u32(v.to_bits());
        }
        return;
    }

    let emax = max_abs.log2().floor() as i32;
    let scale = 2.0f64.powi(Q_BITS - 1 - emax);
    let ints: Vec<i64> = vals.iter().map(|&v| (v as f64 * scale).round() as i64).collect();
    let mut coeffs = ints.clone();
    transform_block(&mut coeffs, rank, false);

    // Negabinary, in sequency order (the plane coder assumes energetic
    // coefficients first).
    let order = sequency_order(rank);
    let nb: Vec<u64> = order.iter().map(|&i| int2uint(coeffs[i])).collect();

    // Lowest stored bitplane: estimate from the accuracy target, then verify
    // against the exact decoder reconstruction and deepen on failure.
    let step = 2.0f64.powi(emax + 1 - Q_BITS);
    let mut kmin = if eb > step {
        ((eb / step).log2().floor() as i32 - 3).max(0) as u32
    } else {
        0
    };
    loop {
        let recon = decode_block_values(&nb, rank, emax, kmin);
        let ok = vals
            .iter()
            .zip(&recon)
            .all(|(&a, &b)| ((a as f64) - (b as f64)).abs() <= eb);
        if ok {
            w.write_bits(MODE_CODED, 2);
            w.write_bits((emax + 1024) as u32, 12);
            w.write_bits(kmin, 6);
            encode_planes(&nb, kmin, w);
            return;
        }
        if kmin == 0 {
            // Even full fixed-point precision misses the target: go raw.
            w.write_bits(MODE_RAW, 2);
            for &v in vals {
                w.write_u32(v.to_bits());
            }
            return;
        }
        kmin = kmin.saturating_sub(2);
    }
}

fn decode_block(r: &mut BitReader, rank: usize) -> Result<Vec<f32>, BaselineError> {
    let n = SIDE.pow(rank as u32);
    let mode = r.read_bits(2).ok_or(BaselineError::Truncated)?;
    match mode {
        MODE_ZERO => Ok(vec![0.0; n]),
        MODE_RAW => {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(f32::from_bits(r.read_u32().ok_or(BaselineError::Truncated)?));
            }
            Ok(out)
        }
        MODE_CODED => {
            let emax = r.read_bits(12).ok_or(BaselineError::Truncated)? as i32 - 1024;
            let kmin = r.read_bits(6).ok_or(BaselineError::Truncated)?;
            let nb = decode_planes(n, kmin, r)
                .ok_or(BaselineError::Corrupt("bad bitplane stream"))?;
            Ok(decode_block_values(&nb, rank, emax, kmin))
        }
        _ => Err(BaselineError::Corrupt("bad block mode")),
    }
}

/// Iterates 4^r blocks over the trailing `rank` axes of `dims`, with edge
/// blocks padded by clamping coordinates (ZFP pads partial blocks too).
struct BlockIter {
    dims: Vec<usize>,
    rank: usize,
}

impl BlockIter {
    fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
            rank: dims.len().min(3),
        }
    }

    /// Number of leading slices × blocks per slice.
    fn block_origins(&self) -> Vec<Vec<usize>> {
        let ndim = self.dims.len();
        let lead = ndim - self.rank;
        // Odometer over leading axes (step 1) and block axes (step 4).
        let mut origins = Vec::new();
        let mut coords = vec![0usize; ndim];
        'outer: loop {
            origins.push(coords.clone());
            let mut a = ndim;
            loop {
                if a == 0 {
                    break 'outer;
                }
                a -= 1;
                let step = if a < lead { 1 } else { SIDE };
                coords[a] += step;
                if coords[a] < self.dims[a] {
                    break;
                }
                coords[a] = 0;
            }
        }
        origins
    }

    /// Gathers one (padded) block's values.
    // xtask-allow-fn: R5 -- block coords are clamped to dims and resolved via Shape::index_of over the grid's own shape
    fn gather(&self, data: &[f32], shape: &Shape, origin: &[usize]) -> Vec<f32> {
        let ndim = self.dims.len();
        let lead = ndim - self.rank;
        let n = SIDE.pow(self.rank as u32);
        let mut out = Vec::with_capacity(n);
        let mut c = origin.to_vec();
        for k in 0..n {
            for (j, cj) in c.iter_mut().enumerate().skip(lead) {
                let within = (k / SIDE.pow((ndim - 1 - j) as u32)) % SIDE;
                *cj = (origin[j] + within).min(self.dims[j] - 1);
            }
            out.push(data[shape.index_of(&c)]);
        }
        out
    }

    /// Scatters a decoded block back (padding lanes are dropped).
    fn scatter(&self, out: &mut [f32], shape: &Shape, origin: &[usize], vals: &[f32]) {
        let ndim = self.dims.len();
        let lead = ndim - self.rank;
        let n = SIDE.pow(self.rank as u32);
        let mut c = origin.to_vec();
        for k in 0..n {
            let mut in_bounds = true;
            for (j, cj) in c.iter_mut().enumerate().skip(lead) {
                let within = (k / SIDE.pow((ndim - 1 - j) as u32)) % SIDE;
                let pos = origin[j] + within;
                if pos >= self.dims[j] {
                    in_bounds = false;
                    break;
                }
                *cj = pos;
            }
            if in_bounds {
                out[shape.index_of(&c)] = vals[k];
            }
        }
    }
}

/// ZFP-like fixed-accuracy compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Zfp;

impl Compressor for Zfp {
    fn name(&self) -> &'static str {
        "ZFP"
    }

    fn compress(
        &self,
        data: &Grid<f32>,
        _mask: Option<&MaskMap>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, BaselineError> {
        let (mn, mx) = data.finite_min_max().unwrap_or((0.0, 0.0));
        let eb = bound.resolve(mn, mx);
        let dims = data.shape().dims().to_vec();
        let iter = BlockIter::new(&dims);

        let mut w = BitWriter::with_capacity(data.len());
        for origin in iter.block_origins() {
            let vals = iter.gather(data.as_slice(), data.shape(), &origin);
            encode_block(&vals, iter.rank, eb, &mut w);
        }
        let payload = cliz_lossless::compress(&w.finish());

        let mut out = HeaderWriter::with_capacity(payload.len() + 64);
        write_header(&mut out, &ZFP1, &dims);
        out.f64(eb);
        out.raw(&payload);
        Ok(out.finish())
    }

    fn decompress(
        &self,
        bytes: &[u8],
        _mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, BaselineError> {
        let mut rd = Reader::new(bytes);
        let (dims, _total) = read_header(&mut rd, &ZFP1)?;
        rd.skip(8)?; // eb (informational on decode)
        let payload = cliz_lossless::decompress(rd.rest())?;
        let mut r = BitReader::new(&payload);

        let shape = Shape::new(&dims);
        let total = shape.len();
        // The claimed dims must be plausible for the payload actually
        // present: every zfp block costs at least one payload bit and
        // covers at most 4^rank ≤ 4096 elements (rank ≤ 6 per the header
        // check), so a tiny crafted file cannot demand a huge allocation.
        if total > payload.len().saturating_mul(8).saturating_add(8).saturating_mul(4096) {
            return Err(BaselineError::Corrupt("grid larger than payload"));
        }
        let mut out = vec![0.0f32; total];
        let iter = BlockIter::new(&dims);
        for origin in iter.block_origins() {
            let vals = decode_block(&mut r, iter.rank)?;
            iter.scatter(&mut out, &shape, &origin, &vals);
        }
        Ok(Grid::from_vec(shape, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 100.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.19 * (k + 1) as f64).sin() * 8.0;
            }
            v as f32
        })
    }

    #[test]
    fn lift_roundtrip_near_exact() {
        // ZFP's lifting drops low bits in its `>>= 1` shears; the round-trip
        // must land within a few integer units (quantization dwarfs this).
        let patterns: Vec<[i64; 4]> = vec![
            [0, 0, 0, 0],
            [1, 2, 3, 4],
            [-1000, 999, -7, 123456],
            [i32::MAX as i64, i32::MIN as i64, 17, -17],
            [1 << 30, -(1 << 30), (1 << 29) + 7, 3],
        ];
        for p in patterns {
            let mut v = p.to_vec();
            fwd_lift(&mut v, 0, 1);
            inv_lift(&mut v, 0, 1);
            for (a, b) in v.iter().zip(p.iter()) {
                assert!((a - b).abs() <= 4, "pattern {p:?} -> {v:?}");
            }
        }
    }

    #[test]
    fn transform_block_roundtrip_near_exact_all_ranks() {
        for rank in 1..=3usize {
            let n = SIDE.pow(rank as u32);
            let orig: Vec<i64> = (0..n as i64).map(|i| (i * 37 - 100) * 1000).collect();
            let mut v = orig.clone();
            transform_block(&mut v, rank, false);
            assert_ne!(v, orig);
            transform_block(&mut v, rank, true);
            for (a, b) in v.iter().zip(orig.iter()) {
                assert!(
                    (a - b).abs() <= 16,
                    "rank {rank}: {a} vs {b} (diff {})",
                    a - b
                );
            }
        }
    }

    #[test]
    fn plane_coder_roundtrips() {
        use cliz_entropy::{BitReader, BitWriter};
        let cases: Vec<Vec<u64>> = vec![
            vec![0; 16],
            vec![1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, u64::MAX >> 1],
            (0..64).map(|i| (i as u64) << 20).collect(),
            (0..4).map(|i| int2uint(-(i as i64) * 1000)).collect(),
        ];
        for nb in cases {
            for kmin in [0u32, 5, 20] {
                let mut w = BitWriter::new();
                encode_planes(&nb, kmin, &mut w);
                let bytes = w.finish();
                let mut r = BitReader::new(&bytes);
                let back = decode_planes(nb.len(), kmin, &mut r).expect("decode");
                let keep = if kmin == 0 { !0u64 } else { !((1u64 << kmin) - 1) };
                for (a, b) in nb.iter().zip(&back) {
                    assert_eq!(a & keep, *b, "kmin {kmin}");
                }
            }
        }
    }

    #[test]
    fn negabinary_roundtrips() {
        for i in [-1_000_000i64, -1, 0, 1, 7, 123_456_789, i64::MIN / 4] {
            assert_eq!(uint2int(int2uint(i)), i);
        }
    }

    #[test]
    fn sequency_order_is_a_permutation() {
        for rank in 1..=3usize {
            let mut o = sequency_order(rank).to_vec();
            o.sort_unstable();
            assert_eq!(o, (0..SIDE.pow(rank as u32)).collect::<Vec<_>>());
            // DC coefficient (index 0, total degree 0) always comes first.
            assert_eq!(sequency_order(rank)[0], 0);
        }
    }

    #[test]
    fn roundtrip_bound_holds_all_ranks() {
        for dims in [&[65usize][..], &[17, 23], &[9, 14, 18], &[3, 5, 9, 10]] {
            let g = smooth(dims);
            for eb in [1e-1, 1e-3] {
                let bytes = Zfp.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
                let out = Zfp.decompress(&bytes, None).unwrap();
                for (i, (a, b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
                    assert!(
                        ((*a as f64) - (*b as f64)).abs() <= eb,
                        "dims {dims:?} eb {eb} at {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let g = smooth(&[32, 64, 64]);
        let bytes = Zfp.compress(&g, None, ErrorBound::Abs(1e-2)).unwrap();
        let ratio = (g.len() * 4) as f64 / bytes.len() as f64;
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn fill_values_survive_roundtrip() {
        // Non-finite-adjacent huge values force raw blocks but stay correct.
        let mut g = smooth(&[16, 16]);
        g.as_mut_slice()[0] = 9.96921e36;
        g.as_mut_slice()[100] = f32::NAN;
        let bytes = Zfp.compress(&g, None, ErrorBound::Abs(1e-2)).unwrap();
        let out = Zfp.decompress(&bytes, None).unwrap();
        assert_eq!(out.as_slice()[0], 9.96921e36);
        assert!(out.as_slice()[100].is_nan());
    }

    #[test]
    fn zero_block_is_cheap() {
        let g = Grid::filled(Shape::new(&[64, 64]), 0.0f32);
        let bytes = Zfp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        assert!(bytes.len() < 400, "{} bytes for zeros", bytes.len());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Zfp.decompress(b"zzzz", None).is_err());
        let g = smooth(&[8, 8]);
        let bytes = Zfp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        assert!(Zfp.decompress(&bytes[..bytes.len() - 3], None).is_err());
    }
}
