//! SPERR-style wavelet compressor (NCAR).
//!
//! Pipeline per the published design: multi-level CDF 9/7 lifting wavelet →
//! uniform coefficient quantization → entropy coding → **outlier
//! correction** (SPERR's signature step: after reconstructing, every point
//! whose error exceeds the bound is stored exactly, which converts the
//! wavelet coder's statistical accuracy into a hard pointwise guarantee).
//!
//! Deviation noted in DESIGN.md: coefficients are Huffman+zlite coded instead
//! of SPECK bitplane coding. The rate behaviour that matters for the paper's
//! comparisons — excellent on smooth unmasked fields, collapsing when fill
//! values inject energy at every scale — comes from the transform, not the
//! back-end coder.

use crate::header::{read_header, write_header, Reader};
use crate::traits::{BaselineError, Compressor};
use cliz_entropy::huffman;
use cliz_format::{spec::SPR1, HeaderWriter};
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_quant::ErrorBound;

// CDF 9/7 lifting coefficients (JPEG2000 irreversible transform).
const ALPHA: f64 = -1.586_134_342_059_924;
const BETA: f64 = -0.052_980_118_572_961;
const GAMMA: f64 = 0.882_911_075_530_934;
const DELTA: f64 = 0.443_506_852_043_971;
const KAPPA: f64 = 1.230_174_104_914_001;

/// Largest zigzag bin encoded inline; larger coefficients escape to raw f64.
const MAX_BIN: i64 = 1 << 20;

#[inline]
fn mirror(i: isize, n: usize) -> usize {
    let n = n as isize;
    let mut i = i;
    if i < 0 {
        i = -i;
    }
    if i >= n {
        i = 2 * n - 2 - i;
    }
    i as usize
}

/// One forward CDF 9/7 pass over a line (in place), then deinterleave into
/// [approx | detail].
fn fwd_line(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let lift = |x: &mut [f64], odd: bool, c: f64| {
        let start = if odd { 1 } else { 0 };
        for i in (start..n).step_by(2) {
            let l = x[mirror(i as isize - 1, n)];
            let r = x[mirror(i as isize + 1, n)];
            x[i] += c * (l + r);
        }
    };
    lift(x, true, ALPHA);
    lift(x, false, BETA);
    lift(x, true, GAMMA);
    lift(x, false, DELTA);
    for (i, v) in x.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v /= KAPPA;
        } else {
            *v *= KAPPA;
        }
    }
    // Deinterleave.
    let approx: Vec<f64> = x.iter().step_by(2).copied().collect();
    let detail: Vec<f64> = x.iter().skip(1).step_by(2).copied().collect();
    x[..approx.len()].copy_from_slice(&approx);
    x[approx.len()..].copy_from_slice(&detail);
}

/// Exact inverse of [`fwd_line`].
fn inv_line(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    // Interleave.
    let half = n.div_ceil(2);
    let approx = x[..half].to_vec();
    let detail = x[half..].to_vec();
    for (i, v) in approx.iter().enumerate() {
        x[2 * i] = *v;
    }
    for (i, v) in detail.iter().enumerate() {
        x[2 * i + 1] = *v;
    }
    for (i, v) in x.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v *= KAPPA;
        } else {
            *v /= KAPPA;
        }
    }
    let lift = |x: &mut [f64], odd: bool, c: f64| {
        let start = if odd { 1 } else { 0 };
        for i in (start..n).step_by(2) {
            let l = x[mirror(i as isize - 1, n)];
            let r = x[mirror(i as isize + 1, n)];
            x[i] -= c * (l + r);
        }
    };
    lift(x, false, DELTA);
    lift(x, true, GAMMA);
    lift(x, false, BETA);
    lift(x, true, ALPHA);
}

/// Applies the wavelet along every axis of the low-frequency sub-box at each
/// level. `inverse` reverses levels and axes exactly.
// xtask-allow-fn: R5 -- box extents shrink from dims, so every offset stays below dims product == buf.len(); callers size buf from validated dims
fn transform(buf: &mut [f64], dims: &[usize], levels: usize, inverse: bool) {
    let ndim = dims.len();
    let strides = {
        let mut s = vec![1usize; ndim];
        for i in (0..ndim - 1).rev() {
            s[i] = s[i + 1] * dims[i + 1];
        }
        s
    };
    // Box extents at each level.
    let ext_at = |level: usize| -> Vec<usize> {
        dims.iter()
            .map(|&d| {
                let mut e = d;
                for _ in 0..level {
                    e = e.div_ceil(2);
                }
                e
            })
            .collect()
    };
    let level_order: Vec<usize> = if inverse {
        (0..levels).rev().collect()
    } else {
        (0..levels).collect()
    };
    for level in level_order {
        let ext = ext_at(level);
        let axis_order: Vec<usize> = if inverse {
            (0..ndim).rev().collect()
        } else {
            (0..ndim).collect()
        };
        for axis in axis_order {
            let len = ext[axis];
            if len < 2 {
                continue;
            }
            // Odometer over the other axes within the box.
            let mut coords = vec![0usize; ndim];
            let mut line = vec![0.0f64; len];
            'outer: loop {
                let mut base = 0usize;
                for a in 0..ndim {
                    if a != axis {
                        base += coords[a] * strides[a];
                    }
                }
                for (k, v) in line.iter_mut().enumerate() {
                    *v = buf[base + k * strides[axis]];
                }
                if inverse {
                    inv_line(&mut line);
                } else {
                    fwd_line(&mut line);
                }
                for (k, &v) in line.iter().enumerate() {
                    buf[base + k * strides[axis]] = v;
                }
                let mut a = ndim;
                loop {
                    if a == 0 {
                        break 'outer;
                    }
                    a -= 1;
                    if a == axis {
                        continue;
                    }
                    coords[a] += 1;
                    if coords[a] < ext[a] {
                        break;
                    }
                    coords[a] = 0;
                }
            }
        }
    }
}

fn pick_levels(dims: &[usize]) -> usize {
    let min_dim = dims.iter().copied().min().unwrap_or(1);
    let mut levels = 0usize;
    let mut e = min_dim;
    while e >= 16 && levels < 4 {
        e = e.div_ceil(2);
        levels += 1;
    }
    levels.max(usize::from(min_dim >= 4))
}

/// LEB128 unsigned varint (outlier index gaps are tiny inside fill runs).
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn zigzag(bin: i64) -> u32 {
    (((bin << 1) ^ (bin >> 63)) + 1) as u32
}

#[inline]
fn unzigzag(sym: u32) -> i64 {
    let z = u64::from(sym - 1);
    (z >> 1) as i64 ^ -((z & 1) as i64)
}

/// Quantizes coefficients, reconstructing `coeffs` in place with the decoder
/// values. Returns (symbols, escaped raw coefficients).
fn quantize_coeffs(coeffs: &mut [f64], step: f64) -> (Vec<u32>, Vec<f64>) {
    let mut symbols = Vec::with_capacity(coeffs.len());
    let mut escapes = Vec::new();
    for c in coeffs.iter_mut() {
        let bin = (*c / step).round();
        if !bin.is_finite() || bin.abs() as i64 > MAX_BIN {
            symbols.push(0);
            escapes.push(*c);
            // c keeps its exact value (decoder gets the raw f64).
        } else {
            let b = bin as i64;
            symbols.push(zigzag(b));
            *c = b as f64 * step;
        }
    }
    (symbols, escapes)
}

/// SPERR-like wavelet compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sperr;

impl Compressor for Sperr {
    fn name(&self) -> &'static str {
        "SPERR"
    }

    fn compress(
        &self,
        data: &Grid<f32>,
        _mask: Option<&MaskMap>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, BaselineError> {
        let (mn, mx) = data.finite_min_max().unwrap_or((0.0, 0.0));
        let eb = bound.resolve(mn, mx);
        let dims = data.shape().dims().to_vec();
        let levels = pick_levels(&dims);
        // Step chosen so the typical per-point reconstruction error sits
        // well under eb; the outlier pass mops up the tail.
        let step = eb * 1.2;

        let mut coeffs: Vec<f64> = data.as_slice().iter().map(|&v| v as f64).collect();
        // Non-finite and fill-magnitude (~1e36) values cannot ride the
        // transform — their energy would smear rounding error of order
        // `1e36·ε` over every coefficient, turning the whole field into
        // outliers. Zero them pre-transform; the outlier channel restores
        // them exactly. (Real SPERR likewise rejects non-normal inputs.)
        for c in coeffs.iter_mut() {
            if !c.is_finite() || c.abs() >= 1e30 {
                *c = 0.0;
            }
        }
        transform(&mut coeffs, &dims, levels, false);
        let (symbols, escapes) = quantize_coeffs(&mut coeffs, step);

        // Decoder-identical reconstruction for outlier detection.
        let mut recon = coeffs;
        transform(&mut recon, &dims, levels, true);
        let mut outliers: Vec<(u64, f32)> = Vec::new();
        for (i, (&orig, &rec)) in data.as_slice().iter().zip(&recon).enumerate() {
            let rec32 = rec as f32;
            let bad = !orig.is_finite()
                || (orig.abs() as f64) >= 1e30
                || !rec32.is_finite()
                || ((orig as f64) - (rec32 as f64)).abs() > eb;
            if bad {
                outliers.push((i as u64, orig));
            }
        }

        let stream = huffman::encode_stream(&symbols);
        let mut payload = Vec::with_capacity(stream.len() + 32);
        payload.extend_from_slice(&(stream.len() as u64).to_le_bytes());
        payload.extend_from_slice(&stream);
        payload.extend_from_slice(&(escapes.len() as u64).to_le_bytes());
        for &e in &escapes {
            payload.extend_from_slice(&e.to_le_bytes());
        }
        // Outliers are index-sorted by construction; delta + varint keeps the
        // channel cheap even when fill regions make them plentiful.
        payload.extend_from_slice(&(outliers.len() as u64).to_le_bytes());
        let mut prev = 0u64;
        for &(idx, v) in &outliers {
            write_varint(&mut payload, idx - prev);
            payload.extend_from_slice(&v.to_le_bytes());
            prev = idx;
        }
        let packed = cliz_lossless::compress(&payload);

        let mut out = HeaderWriter::with_capacity(packed.len() + 64);
        write_header(&mut out, &SPR1, &dims);
        out.f64(eb);
        out.f64(step);
        out.u8(levels as u8);
        out.raw(&packed);
        Ok(out.finish())
    }

    fn decompress(
        &self,
        bytes: &[u8],
        _mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, BaselineError> {
        let mut r = Reader::new(bytes);
        let (dims, total) = read_header(&mut r, &SPR1)?;
        r.skip(8)?; // eb (informational)
        let step = r.f64()?;
        if !(step > 0.0) {
            return Err(BaselineError::Corrupt("bad step"));
        }
        let levels = r.u8()? as usize;

        let payload = cliz_lossless::decompress(r.rest())?;
        let mut pr = Reader::new(&payload);
        let stream_len = pr.len64()?;
        let symbols = huffman::decode_stream(pr.take(stream_len)?)
            .ok_or(BaselineError::Corrupt("huffman"))?;
        if symbols.len() != total {
            return Err(BaselineError::Corrupt("symbol count"));
        }
        let n_escapes = pr.len64()?;
        if n_escapes > total {
            return Err(BaselineError::Corrupt("escape count"));
        }
        let mut escapes = Vec::with_capacity(n_escapes);
        for _ in 0..n_escapes {
            escapes.push(pr.f64()?);
        }
        let n_out = pr.len64()?;
        if n_out > total {
            return Err(BaselineError::Corrupt("outlier count"));
        }
        let mut outliers = Vec::with_capacity(n_out);
        let mut prev = 0u64;
        for _ in 0..n_out {
            let gap = pr.varint()?;
            let idx = prev
                .checked_add(gap)
                .ok_or(BaselineError::Corrupt("outlier index"))?;
            prev = idx;
            let v = pr.f32()?;
            let idx = usize::try_from(idx)
                .ok()
                .filter(|&i| i < total)
                .ok_or(BaselineError::Corrupt("outlier index"))?;
            outliers.push((idx, v));
        }

        // Rebuild coefficients.
        let mut coeffs = vec![0.0f64; total];
        let mut esc_it = escapes.into_iter();
        for (c, &s) in coeffs.iter_mut().zip(&symbols) {
            *c = if s == 0 {
                esc_it.next().ok_or(BaselineError::Corrupt("short escapes"))?
            } else {
                unzigzag(s) as f64 * step
            };
        }
        transform(&mut coeffs, &dims, levels, true);
        let mut out: Vec<f32> = coeffs.iter().map(|&v| v as f32).collect();
        for (idx, v) in outliers {
            out[idx] = v; // idx < total checked at parse time
        }
        Ok(Grid::from_vec(Shape::new(&dims), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 50.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.09 * (k + 1) as f64).sin() * 6.0;
            }
            v as f32
        })
    }

    #[test]
    fn line_transform_inverts() {
        for n in [2usize, 3, 7, 8, 17, 64, 101] {
            let orig: Vec<f64> = (0..n).map(|i| ((i * i) % 23) as f64 * 0.7 - 3.0).collect();
            let mut x = orig.clone();
            fwd_line(&mut x);
            inv_line(&mut x);
            for (a, b) in orig.iter().zip(&x) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn nd_transform_inverts() {
        for dims in [&[33usize][..], &[16, 24], &[8, 12, 20]] {
            let n: usize = dims.iter().product();
            let orig: Vec<f64> = (0..n).map(|i| ((i * 31) % 101) as f64 * 0.3).collect();
            let mut buf = orig.clone();
            let levels = pick_levels(dims);
            transform(&mut buf, dims, levels, false);
            transform(&mut buf, dims, levels, true);
            for (a, b) in orig.iter().zip(&buf) {
                assert!((a - b).abs() < 1e-8, "dims {dims:?}");
            }
        }
    }

    #[test]
    fn wavelet_concentrates_energy() {
        // Smooth signal: detail coefficients should be tiny vs approx.
        let n = 256;
        let orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin() * 10.0).collect();
        let mut buf = orig.clone();
        transform(&mut buf, &[n], 3, false);
        let approx_energy: f64 = buf[..n / 8].iter().map(|v| v * v).sum();
        let detail_energy: f64 = buf[n / 8..].iter().map(|v| v * v).sum();
        assert!(
            approx_energy > 50.0 * detail_energy,
            "approx {approx_energy} vs detail {detail_energy}"
        );
    }

    #[test]
    fn roundtrip_bound_holds() {
        for dims in [&[100usize][..], &[24, 40], &[10, 20, 24]] {
            let g = smooth(dims);
            for eb in [1e-1, 1e-3] {
                let bytes = Sperr.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
                let out = Sperr.decompress(&bytes, None).unwrap();
                for (i, (a, b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
                    assert!(
                        ((*a as f64) - (*b as f64)).abs() <= eb,
                        "dims {dims:?} eb {eb} at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let g = smooth(&[32, 64, 64]);
        let bytes = Sperr.compress(&g, None, ErrorBound::Abs(1e-2)).unwrap();
        let ratio = (g.len() * 4) as f64 / bytes.len() as f64;
        assert!(ratio > 6.0, "ratio {ratio}");
    }

    #[test]
    fn fill_values_roundtrip_exactly_via_outliers() {
        let mut g = smooth(&[20, 20]);
        g.as_mut_slice()[5] = 9.96921e36;
        g.as_mut_slice()[250] = f32::NAN;
        let bytes = Sperr.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        let out = Sperr.decompress(&bytes, None).unwrap();
        assert_eq!(out.as_slice()[5], 9.96921e36);
        assert!(out.as_slice()[250].is_nan());
        for (i, (a, b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
            if a.is_finite() {
                assert!(((*a as f64) - (*b as f64)).abs() <= 1e-3, "at {i}");
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Sperr.decompress(b"????", None).is_err());
        let g = smooth(&[12, 12]);
        let bytes = Sperr.compress(&g, None, ErrorBound::Abs(1e-2)).unwrap();
        assert!(Sperr.decompress(&bytes[..20], None).is_err());
    }
}
