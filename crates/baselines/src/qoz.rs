//! QoZ 1.1-style compressor: the SZ3 framework with level-wise error-bound
//! tuning (Liu et al., SC'22).
//!
//! QoZ's observation: points predicted at coarse interpolation levels seed
//! every finer level, so storing them more precisely (a tighter bound)
//! improves *all* downstream predictions at sublinear bit cost. We apply the
//! published `eb_level = eb / α^level` rule with a cap of `eb / β`
//! (α = 1.5, β = 4 — QoZ's recommended defaults), where `level` counts up
//! from the finest stride. The user-facing bound is unaffected: every level
//! bound is ≤ `eb`.

use crate::sz_interp::{decode, encode};
use crate::traits::{BaselineError, Compressor};
use cliz_format::spec::QOZ1;
use cliz_grid::{Grid, MaskMap};
use cliz_quant::ErrorBound;

fn qoz_policy(stride: usize) -> f64 {
    if stride <= 1 {
        return 1.0;
    }
    // level = log2(stride); anchor (stride 0) gets the tightest bound.
    let level = if stride == 0 {
        16
    } else {
        usize::BITS - 1 - stride.leading_zeros()
    };
    let alpha: f64 = 1.5;
    let beta: f64 = 4.0;
    (1.0 / alpha.powi(level as i32)).max(1.0 / beta)
}

/// QoZ-like compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Qoz;

impl Compressor for Qoz {
    fn name(&self) -> &'static str {
        "QoZ1.1"
    }

    fn compress(
        &self,
        data: &Grid<f32>,
        _mask: Option<&MaskMap>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, BaselineError> {
        encode(data, bound, &QOZ1, qoz_policy)
    }

    fn decompress(
        &self,
        bytes: &[u8],
        _mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, BaselineError> {
        decode(bytes, &QOZ1, qoz_policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.17 * (k + 1) as f64).sin() * 5.0;
            }
            v as f32
        })
    }

    #[test]
    fn policy_tightens_coarse_levels() {
        assert_eq!(qoz_policy(1), 1.0);
        assert!(qoz_policy(2) < 1.0);
        assert!(qoz_policy(8) <= qoz_policy(2));
        assert!(qoz_policy(1 << 12) >= 0.25 - 1e-12); // β cap
        assert!(qoz_policy(0) >= 0.25 - 1e-12);
    }

    #[test]
    fn roundtrip_bound_holds() {
        let g = smooth(&[10, 40, 30]);
        for eb in [1e-2, 1e-4] {
            let bytes = Qoz.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
            let out = Qoz.decompress(&bytes, None).unwrap();
            for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
                assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn qoz_stream_not_decodable_as_sz3() {
        let g = smooth(&[16, 16]);
        let bytes = Qoz.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        assert!(crate::SzInterp.decompress(&bytes, None).is_err());
    }

    #[test]
    fn qoz_improves_accuracy_at_same_nominal_bound() {
        // QoZ's tighter coarse levels should reduce RMSE vs SZ3 at equal eb.
        let g = smooth(&[24, 48, 48]);
        let eb = 1e-2;
        let rmse = |bytes: &[u8], dec: &dyn Compressor| {
            let out = dec.decompress(bytes, None).unwrap();
            let se: f64 = g
                .as_slice()
                .iter()
                .zip(out.as_slice())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum();
            (se / g.len() as f64).sqrt()
        };
        let b_sz = crate::SzInterp.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
        let b_qoz = Qoz.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
        let r_sz = rmse(&b_sz, &crate::SzInterp);
        let r_qoz = rmse(&b_qoz, &Qoz);
        assert!(
            r_qoz <= r_sz * 1.05,
            "QoZ rmse {r_qoz} should not exceed SZ3 rmse {r_sz}"
        );
    }
}
