//! Baseline error-bounded lossy compressors for the CliZ evaluation.
//!
//! The paper compares CliZ against SZ3, ZFP, SPERR, and QoZ. None of those
//! is available offline, so this crate reimplements each family's defining
//! algorithm structure from the published descriptions:
//!
//! * [`SzInterp`] — SZ3 (Zhao et al., ICDE'21): multilevel spline
//!   interpolation + linear quantization + Huffman + lossless backend, with
//!   no climate-specific features (no mask awareness, no permutation/fusion,
//!   no classification, no periodic split);
//! * [`Qoz`] — QoZ 1.1 (Liu et al., SC'22): SZ3 plus level-wise error-bound
//!   tightening, which spends bits on coarse levels to improve downstream
//!   predictions;
//! * [`Zfp`] — ZFP (Lindstrom, TVCG'14): 4^d blocks, block-floating-point,
//!   orthogonal-ish lifting decorrelation, per-block precision chosen for a
//!   fixed accuracy target (with a hard per-block verification loop);
//! * [`Sperr`] — SPERR (NCAR): multi-level CDF 9/7 wavelet, quantized
//!   coefficient coding, and an outlier-correction pass that enforces the
//!   pointwise bound.
//!
//! All four honour the same contract as CliZ: `max |x − x̂| ≤ eb` everywhere
//! (baselines are mask-blind, so "everywhere" includes fill values — exactly
//! the handicap Sec. V-A describes).

pub(crate) mod header;
pub mod qoz;
pub mod sperr;
pub mod sz2;
pub mod sz_interp;
pub mod traits;
pub mod zfp;

pub use qoz::Qoz;
pub use sperr::Sperr;
pub use sz2::Sz2Lorenzo;
pub use sz_interp::SzInterp;
pub use traits::{BaselineError, Compressor};
pub use zfp::Zfp;
