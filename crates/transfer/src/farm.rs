//! Multi-core compression-farm model.
//!
//! In the paper's Fig. 13 setup every core compresses one file, then the
//! batch ships over Globus. With `n_cores` ≥ `n_files` the compression wall
//! time is the slowest single file; we measure real per-file times on the
//! host (in parallel via rayon) and combine them with the simulated core
//! count.

use rayon::prelude::*;

/// Result of running a compression workload across a simulated core count.
#[derive(Clone, Debug, PartialEq)]
pub struct FarmReport {
    /// Simulated cores.
    pub cores: usize,
    /// Files processed.
    pub files: usize,
    /// Measured per-file compression seconds (host wall time, one file).
    pub per_file_seconds: Vec<f64>,
    /// Simulated farm wall time: files are LPT-scheduled onto `cores`.
    pub wall_seconds: f64,
    /// Compressed output size per file.
    pub compressed_sizes: Vec<u64>,
}

/// Runs `compress_one(i)` for each of `n_files` files (in parallel on the
/// host to amortize measurement time), then schedules the measured durations
/// onto `cores` simulated cores.
///
/// `compress_one` returns the compressed size in bytes.
pub fn measure_farm(
    n_files: usize,
    cores: usize,
    compress_one: impl Fn(usize) -> u64 + Sync,
) -> FarmReport {
    // An empty workload never touches the pool or the closure; a zero-core
    // farm is modelled faithfully by schedule_lpt (infinite makespan when
    // there is work) rather than silently promoted to one core.
    if n_files == 0 {
        return FarmReport {
            cores,
            files: 0,
            per_file_seconds: Vec::new(),
            wall_seconds: 0.0,
            compressed_sizes: Vec::new(),
        };
    }
    let results: Vec<(f64, u64)> = (0..n_files)
        .into_par_iter()
        .map(|i| {
            let t0 = std::time::Instant::now();
            let size = compress_one(i);
            (t0.elapsed().as_secs_f64(), size)
        })
        .collect();
    let per_file_seconds: Vec<f64> = results.iter().map(|r| r.0).collect();
    let compressed_sizes: Vec<u64> = results.iter().map(|r| r.1).collect();
    let wall_seconds = schedule_lpt(&per_file_seconds, cores);
    FarmReport {
        cores,
        files: n_files,
        per_file_seconds,
        wall_seconds,
        compressed_sizes,
    }
}

/// Longest-processing-time-first makespan on `cores` identical machines.
///
/// Degenerate inputs are handled explicitly: an empty job list takes no time
/// on any farm (including a zero-core one), and a non-empty job list on zero
/// cores never finishes — that is reported as `f64::INFINITY` instead of
/// silently borrowing a core the caller said does not exist.
pub fn schedule_lpt(durations: &[f64], cores: usize) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    if cores == 0 {
        return f64::INFINITY;
    }
    assign_lpt(durations, cores)
        .into_iter()
        .map(|group| group.into_iter().map(|i| durations[i]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Longest-processing-time-first *assignment* on `cores` identical machines:
/// returns one job-index group per core (at most `cores` groups, fewer when
/// there are fewer jobs), such that greedily placing the longest remaining
/// job on the least-loaded core yields the [`schedule_lpt`] makespan.
///
/// This is the scheduling primitive the chunked-compression worker pool uses
/// to balance uneven tail slabs: estimated per-slab costs go in, per-worker
/// slab lists come out. Groups keep their jobs in LPT placement order;
/// `cores == 0` yields no groups.
pub fn assign_lpt(durations: &[f64], cores: usize) -> Vec<Vec<usize>> {
    if durations.is_empty() || cores == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..durations.len()).collect();
    // Longest first; ties broken by index so the assignment is deterministic.
    order.sort_by(|&a, &b| durations[b].total_cmp(&durations[a]).then(a.cmp(&b)));
    let n_groups = cores.min(durations.len());
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut load = vec![0.0f64; n_groups];
    for job in order {
        let i = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        groups[i].push(job);
        load[i] += durations[job];
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_single_core_sums() {
        let d = [1.0, 2.0, 3.0];
        assert!((schedule_lpt(&d, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_many_cores_is_max() {
        let d = [1.0, 2.0, 3.0];
        assert!((schedule_lpt(&d, 8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_balances() {
        // {3,3,2,2,2} on 2 cores: LPT assigns 3|3, 2|2, 2 -> makespan 7
        // (optimal is 6; LPT's 4/3-approximation is fine for the model).
        let d = [3.0, 3.0, 2.0, 2.0, 2.0];
        assert!((schedule_lpt(&d, 2) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_farm_is_free() {
        assert_eq!(schedule_lpt(&[], 4), 0.0);
        // ...even when there are no cores to be free on.
        assert_eq!(schedule_lpt(&[], 0), 0.0);
    }

    #[test]
    fn zero_cores_with_work_never_finishes() {
        assert_eq!(schedule_lpt(&[1.0, 2.0], 0), f64::INFINITY);
    }

    #[test]
    fn empty_workload_yields_empty_report_without_running_jobs() {
        let report = measure_farm(0, 4, |_| panic!("no job should run"));
        assert_eq!(report.files, 0);
        assert!(report.per_file_seconds.is_empty());
        assert!(report.compressed_sizes.is_empty());
        assert_eq!(report.wall_seconds, 0.0);
    }

    #[test]
    fn zero_core_farm_reports_infinite_wall_time() {
        let report = measure_farm(2, 0, |i| i as u64);
        assert_eq!(report.files, 2);
        assert_eq!(report.wall_seconds, f64::INFINITY);
    }

    #[test]
    fn measure_farm_collects_sizes() {
        let report = measure_farm(6, 3, |i| (i as u64 + 1) * 100);
        assert_eq!(report.files, 6);
        assert_eq!(report.compressed_sizes.len(), 6);
        assert_eq!(report.compressed_sizes.iter().sum::<u64>(), 2100);
        assert!(report.wall_seconds >= 0.0);
        assert_eq!(report.per_file_seconds.len(), 6);
    }

    #[test]
    fn assign_lpt_partitions_all_jobs_exactly_once() {
        let d: Vec<f64> = (0..17).map(|i| ((i * 7) % 5) as f64 + 0.5).collect();
        let groups = assign_lpt(&d, 4);
        assert_eq!(groups.len(), 4);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn assign_lpt_matches_schedule_lpt_makespan() {
        let d = [3.0, 3.0, 2.0, 2.0, 2.0];
        let groups = assign_lpt(&d, 2);
        let makespan = groups
            .iter()
            .map(|g| g.iter().map(|&i| d[i]).sum::<f64>())
            .fold(0.0, f64::max);
        assert!((makespan - schedule_lpt(&d, 2)).abs() < 1e-12);
    }

    #[test]
    fn assign_lpt_degenerate_inputs() {
        assert!(assign_lpt(&[], 4).is_empty());
        assert!(assign_lpt(&[1.0], 0).is_empty());
        // More cores than jobs: one group per job, no empty groups.
        let groups = assign_lpt(&[2.0, 1.0], 8);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn assign_lpt_is_deterministic_on_ties() {
        let d = [1.0; 6];
        assert_eq!(assign_lpt(&d, 3), assign_lpt(&d, 3));
    }

    #[test]
    fn more_cores_never_slower() {
        let d: Vec<f64> = (1..=20).map(|i| i as f64 * 0.1).collect();
        let t4 = schedule_lpt(&d, 4);
        let t16 = schedule_lpt(&d, 16);
        assert!(t16 <= t4 + 1e-12);
    }
}
