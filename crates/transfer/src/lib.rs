//! Globus-style WAN transfer simulation (the Fig. 13 experiment substrate).
//!
//! The paper measures compression + transfer of climate files between two
//! real endpoints (ANL Bebop → Purdue Anvil). We cannot reach Globus from an
//! offline harness, so this crate provides an analytic stand-in: a shared
//! WAN link with aggregate bandwidth, per-file startup latency, and a
//! bounded number of concurrent streams (GridFTP-style). The experiment's
//! conclusion — CliZ's higher compression ratio shrinks the transfer leg by
//! ~32–38% — depends only on compressed sizes, which the harness measures
//! for real; the link model just converts bytes to seconds consistently
//! across compressors.

pub mod farm;
pub mod link;

pub use farm::{assign_lpt, measure_farm, schedule_lpt, FarmReport};
pub use link::{TransferReport, WanLink};
