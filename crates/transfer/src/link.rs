//! The WAN link model.

/// A point-to-point WAN path between two data-transfer nodes.
#[derive(Clone, Copy, Debug)]
pub struct WanLink {
    /// Aggregate achievable bandwidth in bytes/second (all streams share it).
    pub bandwidth_bps: f64,
    /// Round-trip latency in seconds.
    pub rtt_s: f64,
    /// Concurrent streams the transfer tool opens (Globus default: 4–8 per
    /// endpoint pair, more for many-file batches).
    pub max_streams: usize,
    /// Per-file control-channel overhead in seconds (directory listing,
    /// checksum negotiation…).
    pub per_file_overhead_s: f64,
}

impl WanLink {
    /// A Bebop→Anvil-like path: ~1 GB/s aggregate, 30 ms RTT, 8 streams.
    /// Per-file overhead is small because GridFTP pipelines batched files.
    pub fn bebop_to_anvil() -> Self {
        Self {
            bandwidth_bps: 1.0e9,
            rtt_s: 0.030,
            max_streams: 8,
            per_file_overhead_s: 0.001,
        }
    }
}

/// Outcome of a simulated batch transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferReport {
    pub files: usize,
    pub total_bytes: u64,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
}

impl WanLink {
    /// Simulates transferring `file_sizes` (bytes each) as one batch.
    ///
    /// Files are greedily balanced across `max_streams` lanes (largest file
    /// to the least-loaded lane); each lane proceeds sequentially at the
    /// per-stream share of the aggregate bandwidth; the batch finishes when
    /// the slowest lane does.
    pub fn transfer(&self, file_sizes: &[u64]) -> TransferReport {
        let total_bytes: u64 = file_sizes.iter().sum();
        if file_sizes.is_empty() {
            return TransferReport {
                files: 0,
                total_bytes: 0,
                seconds: 0.0,
            };
        }
        let streams = self.max_streams.max(1).min(file_sizes.len());
        let per_stream_bw = self.bandwidth_bps / streams as f64;

        // Longest-processing-time-first bin packing over lanes.
        let mut sizes: Vec<u64> = file_sizes.to_vec();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let mut lane_bytes = vec![0u64; streams];
        let mut lane_files = vec![0usize; streams];
        for s in sizes {
            let i = (0..streams).min_by_key(|&i| lane_bytes[i]).unwrap_or(0);
            lane_bytes[i] += s;
            lane_files[i] += 1;
        }
        let seconds = (0..streams)
            .map(|i| {
                self.rtt_s
                    + lane_files[i] as f64 * self.per_file_overhead_s
                    + lane_bytes[i] as f64 / per_stream_bw
            })
            .fold(0.0f64, f64::max);
        TransferReport {
            files: file_sizes.len(),
            total_bytes,
            seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> WanLink {
        WanLink {
            bandwidth_bps: 1.0e9,
            rtt_s: 0.03,
            max_streams: 4,
            per_file_overhead_s: 0.01,
        }
    }

    #[test]
    fn empty_batch_is_free() {
        let r = link().transfer(&[]);
        assert_eq!(r.seconds, 0.0);
        assert_eq!(r.files, 0);
    }

    #[test]
    fn single_file_time() {
        // 1 GB over a 1 GB/s link with 1 active stream (the whole bandwidth
        // is split across max_streams only when multiple lanes are used —
        // with one file there is one lane but per-stream share still applies:
        // streams = min(max, files) = 1 -> full bandwidth).
        let r = link().transfer(&[1_000_000_000]);
        assert!((r.seconds - (0.03 + 0.01 + 1.0)).abs() < 1e-9, "{}", r.seconds);
    }

    #[test]
    fn smaller_payload_is_faster() {
        let sizes_big: Vec<u64> = vec![100_000_000; 64];
        let sizes_small: Vec<u64> = vec![25_000_000; 64];
        let l = link();
        assert!(l.transfer(&sizes_small).seconds < l.transfer(&sizes_big).seconds);
    }

    #[test]
    fn time_scales_with_compression_ratio() {
        // 4x smaller files => near-4x faster once bandwidth-bound.
        let l = link();
        let t1 = l.transfer(&vec![400_000_000u64; 32]).seconds;
        let t4 = l.transfer(&vec![100_000_000u64; 32]).seconds;
        let speedup = t1 / t4;
        assert!(speedup > 3.0 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn balanced_lanes_beat_serial() {
        // 4 equal files across 4 streams: ≈ one file's bandwidth-time at
        // quarter rate, i.e. equal to serial time at full rate — but with 8
        // files the pipeline parallelism shows.
        let l = link();
        let quad = l.transfer(&vec![250_000_000u64; 4]);
        // Each lane: 0.03 + 0.01 + 0.25e9/(0.25e9) = 1.04
        assert!((quad.seconds - 1.04).abs() < 1e-6, "{}", quad.seconds);
    }

    #[test]
    fn uneven_files_balanced_lpt() {
        let l = WanLink {
            max_streams: 2,
            per_file_overhead_s: 0.0,
            rtt_s: 0.0,
            bandwidth_bps: 1e6,
        };
        // LPT: lanes get {6,3} and {5,4} -> 9e5 bytes each at 5e5 B/s = 1.8 s.
        let r = l.transfer(&[600_000, 500_000, 400_000, 300_000]);
        assert!((r.seconds - 1.8).abs() < 1e-9, "{}", r.seconds);
    }
}
