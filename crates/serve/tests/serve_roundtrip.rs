//! End-to-end protocol tests: a real server on a loopback socket, real
//! clients, concurrent load, and graceful shutdown.

use cliz_core::config::PipelineConfig;
use cliz_grid::{Grid, Shape};
use cliz_quant::ErrorBound;
use cliz_serve::{Client, ServeError, Server, ServerConfig};
use cliz_store::{ChunkStoreReader, Dataset};
use std::sync::Arc;
use std::time::Duration;

fn packed_reader(dims: &[usize], chunk_len: usize) -> Arc<ChunkStoreReader> {
    let grid = Grid::from_fn(Shape::new(dims), |c| {
        let mut v = 0.0f64;
        for (k, &x) in c.iter().enumerate() {
            v += ((x as f64) * 0.29 * (k + 1) as f64).sin() * 2.0;
        }
        v as f32
    });
    let mut ds = Dataset::new("tas", grid, None);
    ds.attrs.push(("units".into(), "K".into()));
    ds.attrs.push(("note".into(), "tabs\tand\nnewlines".into()));
    let cfg = PipelineConfig::default_for(dims.len());
    let packed = cliz_store::pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, chunk_len, 1)
        .expect("pack succeeds");
    Arc::new(ChunkStoreReader::from_bytes(packed).expect("store opens"))
}

fn start(reader: &Arc<ChunkStoreReader>, threads: usize) -> Server {
    Server::start(
        Arc::clone(reader),
        "127.0.0.1:0",
        ServerConfig {
            threads,
            read_poll: Duration::from_millis(50),
        },
    )
    .expect("server binds")
}

#[test]
fn region_bytes_match_direct_reads() {
    let reader = packed_reader(&[20, 10], 5);
    let server = start(&reader, 2);
    let mut client = Client::connect(server.addr()).expect("connect");

    for spec in ["3:17,2:9", ":,:", "7,:", "0:5,0:10"] {
        let (shape, values) = client.region(spec).expect(spec);
        let direct = reader
            .read_region(&cliz_serve::parse_region(spec, reader.dims()).expect(spec))
            .expect(spec);
        assert_eq!(shape, direct.shape().dims().to_vec(), "shape for {spec}");
        assert_eq!(values, direct.as_slice(), "values for {spec}");
    }
    client.quit().expect("clean quit");
    server.stop();
}

#[test]
fn info_and_stats_roundtrip() {
    let reader = packed_reader(&[12, 6], 4);
    let server = start(&reader, 2);
    let mut client = Client::connect(server.addr()).expect("connect");

    let pairs = client.info().expect("info");
    let get = |key: &str| {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(get("variable"), "tas");
    assert_eq!(get("dims"), "12,6");
    assert_eq!(get("n_chunks"), "3");
    assert_eq!(get("attr:units"), "K");
    // Metadata with protocol-hostile bytes survives the percent encoding.
    assert_eq!(get("attr:note"), "tabs\tand\nnewlines");

    client.region("0:4,:").expect("one region");
    let json = client.stats_json().expect("stats");
    assert!(json.contains("\"schema\":\"cliz-serve-stats-v1\""));
    assert!(json.contains("\"regions\":1"), "{json}");
    assert!(json.contains("\"decodes\":1"), "{json}");
    client.quit().expect("clean quit");
    server.stop();
}

#[test]
fn protocol_errors_keep_the_connection_alive() {
    let reader = packed_reader(&[12, 6], 4);
    let server = start(&reader, 1);
    let mut client = Client::connect(server.addr()).expect("connect");

    // Unknown verb → ERR, then the same connection still serves.
    let err = client.region("not-a-region").expect_err("bad spec rejected");
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    // Out-of-extent region → the store's BadRegion, relayed as ERR.
    let err = client.region("0:99,:").expect_err("oversized rejected");
    assert!(matches!(err, ServeError::Remote(ref m) if m.contains("region")), "{err}");
    let (shape, _) = client.region("0:4,:").expect("connection survived");
    assert_eq!(shape, vec![4, 6]);
    client.quit().expect("clean quit");

    let snapshot = server.stats_json();
    server.stop();
    assert!(snapshot.contains("\"errors\":2"), "{snapshot}");
}

#[test]
fn concurrent_clients_share_one_decode_per_chunk() {
    let reader = packed_reader(&[40, 8], 5); // 8 chunks
    let server = start(&reader, 4);
    let addr = server.addr();

    // 8 clients × 4 requests over the same region set: whatever the
    // interleaving, the shared cache+stampede locks mean each of the 8
    // chunks decodes exactly once, and every client sees identical bytes.
    let expected = reader.read_all().expect("direct full read");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..4 {
                    let (shape, values) = client.region(":,:").expect("region");
                    assert_eq!(shape, vec![40, 8]);
                    assert_eq!(values, expected.as_slice());
                }
                client.quit().expect("clean quit");
            });
        }
    });

    assert_eq!(
        reader.decode_count(),
        8,
        "concurrent clients must not stampede-decode shared chunks"
    );
    server.stop();
}

#[test]
fn graceful_stop_joins_and_refuses_new_work() {
    let reader = packed_reader(&[12, 6], 4);
    let server = start(&reader, 2);
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    client.region("0:4,:").expect("served before stop");
    client.quit().expect("clean quit");
    server.stop();

    // After stop() returns every thread is joined and the listener is
    // gone: a fresh connect must fail outright or die on first use.
    let refused = match Client::connect_timeout(&addr, Duration::from_millis(200)) {
        Err(_) => true,
        Ok(mut c) => c.region("0:4,:").is_err(),
    };
    assert!(refused, "stopped server must not serve new clients");
}
