//! The line-oriented region protocol.
//!
//! Requests are single ASCII lines; responses are a status line optionally
//! followed by a length-prefixed binary or text body, so a client never
//! has to guess where a frame ends:
//!
//! ```text
//! client                          server
//! ------                          ------
//! REGION 120:240,:,:\n            OK 120x80x360 13824000\n  + that many
//!                                 bytes of little-endian f32
//! INFO\n                          OK <nlines>\n + nlines of "key\tvalue"
//!                                 (percent-encoded)
//! STATS\n                         OK <nbytes>\n + one JSON object
//! QUIT\n                          OK bye\n, then the server closes
//! anything else / malformed       ERR <reason>\n (connection stays open)
//! ```
//!
//! The region spec grammar is the CLI's `--region` grammar: one range per
//! dimension, comma-separated; `start:end` half-open, `:` full extent,
//! `start:`/`:end` open ends, bare `i` a single slice.

use crate::error::ServeError;
use std::ops::Range;

/// Longest request line the server will buffer before rejecting; region
/// specs are tens of bytes, so this is generous without letting a rogue
/// peer grow an unbounded line.
pub const MAX_REQUEST_LINE: usize = 4096;

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `REGION <spec>` — decode and stream a region.
    Region(String),
    /// `INFO` — dataset name, dims, attrs.
    Info,
    /// `STATS` — server and reader counters as JSON.
    Stats,
    /// `QUIT` — close the connection.
    Quit,
}

/// Parses a request line (without its trailing newline).
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let line = line.trim_end_matches('\r');
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match (verb, rest) {
        ("REGION", spec) if !spec.is_empty() => Ok(Request::Region(spec.to_string())),
        ("REGION", _) => Err(ServeError::BadRequest("REGION needs a spec".into())),
        ("INFO", "") => Ok(Request::Info),
        ("STATS", "") => Ok(Request::Stats),
        ("QUIT", "") => Ok(Request::Quit),
        _ => Err(ServeError::BadRequest(format!(
            "unknown request '{}'",
            truncate_for_log(line)
        ))),
    }
}

fn truncate_for_log(line: &str) -> &str {
    match line.char_indices().nth(64) {
        Some((i, _)) => &line[..i],
        None => line,
    }
}

/// Parses a region spec against the dataset's extents (the CLI `--region`
/// grammar). Structural errors — wrong arity, unparsable numbers — are
/// [`ServeError::BadRequest`]; out-of-extent ranges are left to the store,
/// which reports them as `BadRegion` with the reader's own wording.
pub fn parse_region(text: &str, dims: &[usize]) -> Result<Vec<Range<usize>>, ServeError> {
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() != dims.len() {
        return Err(ServeError::BadRequest(format!(
            "region has {} ranges but the dataset has {} dims",
            parts.len(),
            dims.len()
        )));
    }
    let mut ranges = Vec::with_capacity(dims.len());
    for (part, &extent) in parts.iter().zip(dims) {
        let part = part.trim();
        let bad = || ServeError::BadRequest(format!("bad range '{part}'"));
        let range = match part.split_once(':') {
            Some((lo, hi)) => {
                let start: usize = if lo.is_empty() {
                    0
                } else {
                    lo.parse().map_err(|_| bad())?
                };
                let end: usize = if hi.is_empty() {
                    extent
                } else {
                    hi.parse().map_err(|_| bad())?
                };
                start..end
            }
            None => {
                let i: usize = part.parse().map_err(|_| bad())?;
                i..i.saturating_add(1)
            }
        };
        ranges.push(range);
    }
    Ok(ranges)
}

/// Percent-encodes a metadata value for an `INFO` line: tabs, newlines,
/// `%`, and non-ASCII-printable bytes become `%XX`, so one line always
/// carries one key/value pair.
pub fn encode_value(value: &str) -> String {
    let mut enc = String::with_capacity(value.len());
    for b in value.bytes() {
        match b {
            b'%' | b'\t' | b'\r' | b'\n' => push_escaped(&mut enc, b),
            0x20..=0x7e => enc.push(b as char),
            _ => push_escaped(&mut enc, b),
        }
    }
    enc
}

fn push_escaped(enc: &mut String, b: u8) {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    enc.push('%');
    enc.push(HEX[(b >> 4) as usize] as char);
    enc.push(HEX[(b & 0xf) as usize] as char);
}

/// Reverses [`encode_value`]. Invalid escapes are a protocol error.
pub fn decode_value(encoded: &str) -> Result<String, ServeError> {
    let mut out = Vec::with_capacity(encoded.len());
    let mut it = encoded.bytes();
    while let Some(b) = it.next() {
        if b != b'%' {
            out.push(b);
            continue;
        }
        let hi = it.next().and_then(hex_nibble);
        let lo = it.next().and_then(hex_nibble);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push((h << 4) | l),
            _ => return Err(ServeError::BadResponse("invalid percent escape")),
        }
    }
    String::from_utf8(out).map_err(|_| ServeError::BadResponse("invalid UTF-8 after unescape"))
}

fn hex_nibble(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_grammar() {
        assert_eq!(
            parse_request("REGION 0:5,:").ok(),
            Some(Request::Region("0:5,:".into()))
        );
        assert_eq!(parse_request("INFO").ok(), Some(Request::Info));
        assert_eq!(parse_request("STATS\r").ok(), Some(Request::Stats));
        assert_eq!(parse_request("QUIT").ok(), Some(Request::Quit));
        assert!(matches!(
            parse_request("REGION"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request("INFO extra"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request("FETCH 1"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn region_specs_follow_the_cli_grammar() {
        let dims = [20, 8];
        assert_eq!(parse_region("3:7,:", &dims).unwrap(), vec![3..7, 0..8]);
        assert_eq!(parse_region("5,2:", &dims).unwrap(), vec![5..6, 2..8]);
        assert_eq!(parse_region(":5,:4", &dims).unwrap(), vec![0..5, 0..4]);
        assert!(matches!(
            parse_region(":", &dims),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse_region("a:b,:", &dims),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn value_encoding_roundtrips() {
        for v in ["plain", "tab\there", "100%", "newline\nend", "héllo"] {
            let enc = encode_value(v);
            assert!(!enc.contains('\t') && !enc.contains('\n'), "{enc}");
            assert_eq!(decode_value(&enc).unwrap(), v);
        }
        assert!(matches!(
            decode_value("%G1"),
            Err(ServeError::BadResponse(_))
        ));
        assert!(matches!(
            decode_value("%ff"),
            Err(ServeError::BadResponse(_))
        ));
    }
}
