//! The thread-pooled TCP region server.
//!
//! One acceptor thread pushes accepted connections onto a shared queue;
//! `threads` workers pop them and speak the line protocol until the peer
//! quits or disconnects. All workers share one [`ChunkStoreReader`], so
//! concurrent clients share the decoded-chunk LRU cache and the per-chunk
//! stampede locks — two clients racing for the same cold chunk cost one
//! decode, exactly like two threads inside one process.
//!
//! Shutdown is cooperative: [`Server::stop`] raises a flag, self-connects
//! to unblock the acceptor, and enqueues one stop sentinel per worker.
//! Workers notice the flag at the next socket-read poll tick (reads carry
//! a short timeout), finish the request in flight, and exit; `stop` joins
//! every thread before returning, so no request is abandoned mid-body.

use crate::error::ServeError;
use crate::proto::{self, Request};
use crate::stats::ServeStats;
use cliz_store::ChunkStoreReader;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time). Clamped to
    /// at least 1.
    pub threads: usize,
    /// Socket-read timeout used as the shutdown poll tick: an idle
    /// connection re-checks the shutdown flag this often.
    pub read_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            read_poll: Duration::from_millis(200),
        }
    }
}

enum Job {
    Conn(TcpStream, Instant),
    Stop,
}

#[derive(Default)]
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl Queue {
    fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        // A worker that panicked mid-connection poisons nothing the queue
        // cares about: jobs are complete values.
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, job: Job) {
        self.lock().push_back(job);
        self.ready.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.lock();
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self.ready.wait(jobs).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A running region server. Dropping it without [`Server::stop`] leaves
/// the threads running for the life of the process; call `stop` for a
/// graceful, joined shutdown.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<Queue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServeStats>,
    reader: Arc<ChunkStoreReader>,
    threads: usize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the acceptor plus the worker pool.
    pub fn start(
        reader: Arc<ChunkStoreReader>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let threads = config.threads.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue::default());
        let stats = Arc::new(ServeStats::default());

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        ServeStats::count(&stats.connections, 1);
                        queue.push(Job::Conn(stream, Instant::now()));
                    }
                    Err(_) => {
                        if shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        // Transient accept failure (e.g. EMFILE burst):
                        // back off briefly instead of spinning.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            })
        };

        let workers = (0..threads)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                let reader = Arc::clone(&reader);
                let config = config.clone();
                std::thread::spawn(move || loop {
                    match queue.pop() {
                        Job::Stop => break,
                        Job::Conn(stream, queued_at) => {
                            ServeStats::count(
                                &stats.queue_wait_ns,
                                queued_at.elapsed().as_nanos() as u64,
                            );
                            // Connection-level IO errors end that
                            // connection only; the worker lives on.
                            let _ = serve_connection(&reader, &stats, &shutdown, &config, stream);
                        }
                    }
                })
            })
            .collect();

        Ok(Self {
            addr: local,
            shutdown,
            queue,
            acceptor: Some(acceptor),
            workers,
            stats,
            reader,
            threads,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Snapshot of server + reader counters as one JSON line (the same
    /// payload the `STATS` request returns).
    pub fn stats_json(&self) -> String {
        self.stats.to_json(&self.reader.stats())
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// join every thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // The acceptor is parked in `accept`; a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for _ in 0..self.threads {
            self.queue.push(Job::Stop);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Serves one connection until QUIT, EOF, shutdown, or a socket error.
fn serve_connection(
    reader: &ChunkStoreReader,
    stats: &ServeStats,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    stream: TcpStream,
) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(config.read_poll))?;
    stream.set_nodelay(true)?;
    let mut lines = BufReader::new(stream.try_clone()?);
    let mut sink = BufWriter::new(stream);

    while let Some(line) = read_request_line(&mut lines, shutdown)? {
        ServeStats::count(&stats.requests, 1);
        let started = Instant::now();
        let outcome = match proto::parse_request(&line) {
            Ok(Request::Quit) => {
                sink.write_all(b"OK bye\n")?;
                sink.flush()?;
                ServeStats::count(&stats.serve_ns, started.elapsed().as_nanos() as u64);
                break;
            }
            Ok(Request::Region(spec)) => serve_region(reader, stats, &mut sink, &spec),
            Ok(Request::Info) => serve_info(reader, &mut sink),
            Ok(Request::Stats) => {
                let json = stats.to_json(&reader.stats());
                writeln!(sink, "OK {}", json.len())?;
                sink.write_all(json.as_bytes())?;
                Ok(())
            }
            Err(e) => Err(e),
        };
        match outcome {
            Ok(()) => {}
            // A request-level failure is an ERR frame; the connection
            // survives. IO failures while answering do not.
            Err(ServeError::Io(e)) => return Err(ServeError::Io(e)),
            Err(e) => {
                ServeStats::count(&stats.errors, 1);
                let msg = one_line(&e.to_string());
                writeln!(sink, "ERR {msg}")?;
            }
        }
        sink.flush()?;
        ServeStats::count(&stats.serve_ns, started.elapsed().as_nanos() as u64);
    }
    Ok(())
}

/// Decodes and streams one region: `OK <shape> <nbytes>` then the raw
/// little-endian f32 body, staged through a bounded scratch buffer so a
/// large region never doubles in memory.
fn serve_region(
    reader: &ChunkStoreReader,
    stats: &ServeStats,
    sink: &mut impl Write,
    spec: &str,
) -> Result<(), ServeError> {
    let ranges = proto::parse_region(spec, reader.dims())?;
    let region = reader.read_region(&ranges)?;
    let values = region.as_slice();
    let nbytes = values.len() * 4;
    let shape = region
        .shape()
        .dims()
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x");
    writeln!(sink, "OK {shape} {nbytes}")?;
    let mut staged = Vec::with_capacity(16 * 1024);
    for run in values.chunks(4 * 1024) {
        staged.clear();
        for v in run {
            staged.extend_from_slice(&v.to_le_bytes());
        }
        sink.write_all(&staged)?;
    }
    ServeStats::count(&stats.regions, 1);
    ServeStats::count(&stats.bytes_streamed, nbytes as u64);
    Ok(())
}

/// Streams dataset metadata as percent-encoded key/value lines.
fn serve_info(reader: &ChunkStoreReader, sink: &mut impl Write) -> Result<(), ServeError> {
    let dims = reader
        .dims()
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let dim_names = reader.dim_names().join(",");
    let mut pairs: Vec<(String, String)> = vec![
        ("variable".into(), reader.name().to_string()),
        ("dims".into(), dims),
        ("dim_names".into(), dim_names),
        ("chunk_len".into(), reader.chunk_len().to_string()),
        ("n_chunks".into(), reader.n_chunks().to_string()),
    ];
    for (k, v) in reader.attrs() {
        pairs.push((format!("attr:{k}"), v.clone()));
    }
    writeln!(sink, "OK {}", pairs.len())?;
    for (k, v) in pairs {
        write!(
            sink,
            "{}\t{}\n",
            proto::encode_value(&k),
            proto::encode_value(&v)
        )?;
    }
    Ok(())
}

fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

/// Reads one newline-terminated request line, polling the shutdown flag
/// across read timeouts. `Ok(None)` means the connection is over (EOF or
/// shutdown); a line longer than [`proto::MAX_REQUEST_LINE`] is fatal for
/// the connection (there is no way to resynchronize).
fn read_request_line(
    lines: &mut BufReader<TcpStream>,
    shutdown: &AtomicBool,
) -> Result<Option<String>, ServeError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (found_newline, used) = {
            let chunk = match lines.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    if shutdown.load(Ordering::Relaxed) {
                        return Ok(None);
                    }
                    continue;
                }
                Err(e) => return Err(ServeError::Io(e)),
            };
            if chunk.is_empty() {
                // EOF. A partial unterminated line is dropped: the peer
                // hung up before finishing its request.
                return Ok(None);
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(chunk.get(..i).unwrap_or_default());
                    (true, i + 1)
                }
                None => {
                    line.extend_from_slice(chunk);
                    (false, chunk.len())
                }
            }
        };
        lines.consume(used);
        if found_newline {
            return match String::from_utf8(line) {
                Ok(text) => Ok(Some(text)),
                Err(_) => Err(ServeError::BadRequest("request line is not UTF-8".into())),
            };
        }
        if line.len() > proto::MAX_REQUEST_LINE {
            return Err(ServeError::BadRequest("request line too long".into()));
        }
    }
}
