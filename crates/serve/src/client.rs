//! Blocking client for the region protocol.

use crate::error::ServeError;
use crate::proto;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on a single region body (1 GiB of f32s) — a corrupt or
/// hostile length prefix must not drive a client allocation.
const MAX_BODY_BYTES: usize = 1 << 30;

/// A connected protocol client. One request in flight at a time.
pub struct Client {
    lines: BufReader<TcpStream>,
    sink: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            lines: BufReader::new(stream.try_clone()?),
            sink: stream,
        })
    }

    /// Connects with a connect/read timeout (for probing possibly-dead
    /// servers without hanging).
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            lines: BufReader::new(stream.try_clone()?),
            sink: stream,
        })
    }

    /// Requests a region; returns the shape and the decoded f32 values.
    pub fn region(&mut self, spec: &str) -> Result<(Vec<usize>, Vec<f32>), ServeError> {
        writeln!(self.sink, "REGION {spec}")?;
        let status = self.read_status()?;
        let (shape_text, nbytes_text) = status
            .split_once(' ')
            .ok_or(ServeError::BadResponse("region status needs shape and size"))?;
        let shape: Vec<usize> = shape_text
            .split('x')
            .map(|d| d.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| ServeError::BadResponse("unparseable shape"))?;
        let nbytes: usize = nbytes_text
            .trim()
            .parse()
            .map_err(|_| ServeError::BadResponse("unparseable body size"))?;
        if nbytes % 4 != 0 || nbytes > MAX_BODY_BYTES {
            return Err(ServeError::BadResponse("implausible body size"));
        }
        if shape.iter().try_fold(1usize, |a, &d| a.checked_mul(d)) != Some(nbytes / 4) {
            return Err(ServeError::BadResponse("shape disagrees with body size"));
        }
        let body = self.read_body(nbytes)?;
        let values = body
            .chunks_exact(4)
            .map(|quad| {
                f32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]])
            })
            .collect();
        Ok((shape, values))
    }

    /// Requests dataset metadata as decoded key/value pairs.
    pub fn info(&mut self) -> Result<Vec<(String, String)>, ServeError> {
        writeln!(self.sink, "INFO")?;
        let status = self.read_status()?;
        let nlines: usize = status
            .trim()
            .parse()
            .map_err(|_| ServeError::BadResponse("unparseable line count"))?;
        if nlines > 4096 {
            return Err(ServeError::BadResponse("implausible line count"));
        }
        let mut pairs = Vec::with_capacity(nlines);
        for _ in 0..nlines {
            let line = self.read_line()?;
            let (k, v) = line
                .split_once('\t')
                .ok_or(ServeError::BadResponse("info line needs a tab"))?;
            pairs.push((proto::decode_value(k)?, proto::decode_value(v.trim_end())?));
        }
        Ok(pairs)
    }

    /// Requests the server's counter snapshot as raw JSON.
    pub fn stats_json(&mut self) -> Result<String, ServeError> {
        writeln!(self.sink, "STATS")?;
        let status = self.read_status()?;
        let nbytes: usize = status
            .trim()
            .parse()
            .map_err(|_| ServeError::BadResponse("unparseable body size"))?;
        if nbytes > 1 << 20 {
            return Err(ServeError::BadResponse("implausible body size"));
        }
        let body = self.read_body(nbytes)?;
        String::from_utf8(body).map_err(|_| ServeError::BadResponse("stats body is not UTF-8"))
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> Result<(), ServeError> {
        writeln!(self.sink, "QUIT")?;
        let _ = self.read_status()?;
        Ok(())
    }

    /// Reads a status line; `OK <rest>` yields the rest, `ERR <msg>`
    /// becomes [`ServeError::Remote`].
    fn read_status(&mut self) -> Result<String, ServeError> {
        let line = self.read_line()?;
        if let Some(rest) = line.strip_prefix("OK ") {
            return Ok(rest.trim_end().to_string());
        }
        if let Some(msg) = line.strip_prefix("ERR ") {
            return Err(ServeError::Remote(msg.trim_end().to_string()));
        }
        Err(ServeError::BadResponse("status line is neither OK nor ERR"))
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        let n = self.lines.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        if line.len() > proto::MAX_REQUEST_LINE {
            return Err(ServeError::BadResponse("response line too long"));
        }
        Ok(line)
    }

    fn read_body(&mut self, nbytes: usize) -> Result<Vec<u8>, ServeError> {
        let mut body = vec![0u8; nbytes];
        self.lines.read_exact(&mut body)?;
        Ok(body)
    }
}
