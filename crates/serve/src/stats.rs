//! Per-server tracing counters.
//!
//! All counters are relaxed atomics: they are monotonic telemetry, never
//! synchronization, so torn cross-counter snapshots are acceptable and no
//! request ever blocks on another's bookkeeping.

use cliz_store::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters the server accumulates across all connections and workers.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed (well-formed or not).
    pub requests: AtomicU64,
    /// Requests answered with an `ERR` frame.
    pub errors: AtomicU64,
    /// `REGION` requests served successfully.
    pub regions: AtomicU64,
    /// Body bytes streamed to clients.
    pub bytes_streamed: AtomicU64,
    /// Nanoseconds connections spent queued before a worker picked them up.
    pub queue_wait_ns: AtomicU64,
    /// Nanoseconds spent serving requests (parse through last body byte).
    pub serve_ns: AtomicU64,
}

impl ServeStats {
    pub fn count(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// One-line JSON snapshot of the server counters merged with the
    /// shared reader's counters (decode work, backend traffic, cache).
    /// Hand-rolled: the protocol promises a single line, and every value
    /// is an unsigned integer.
    pub fn to_json(&self, reader: &StoreStats) -> String {
        let fields: [(&str, u64); 13] = [
            ("connections", self.connections.load(Ordering::Relaxed)),
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("errors", self.errors.load(Ordering::Relaxed)),
            ("regions", self.regions.load(Ordering::Relaxed)),
            ("bytes_streamed", self.bytes_streamed.load(Ordering::Relaxed)),
            ("queue_wait_ns", self.queue_wait_ns.load(Ordering::Relaxed)),
            ("serve_ns", self.serve_ns.load(Ordering::Relaxed)),
            ("decodes", reader.decodes),
            ("decode_ns", reader.decode_ns),
            ("backend_gets", reader.backend_gets),
            ("backend_bytes", reader.backend_bytes),
            ("cache_hits", reader.cache.hits),
            ("cache_misses", reader.cache.misses),
        ];
        let mut json = String::from("{\"schema\":\"cliz-serve-stats-v1\"");
        for (key, value) in fields {
            json.push_str(",\"");
            json.push_str(key);
            json.push_str("\":");
            json.push_str(&value.to_string());
        }
        json.push('}');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_store::CacheStats;

    #[test]
    fn json_snapshot_is_one_line_with_every_counter() {
        let stats = ServeStats::default();
        ServeStats::count(&stats.requests, 3);
        ServeStats::count(&stats.regions, 2);
        let reader = StoreStats {
            decodes: 5,
            decode_ns: 1200,
            backend_gets: 4,
            backend_bytes: 8192,
            cache: CacheStats {
                hits: 7,
                misses: 5,
                ..CacheStats::default()
            },
        };
        let json = stats.to_json(&reader);
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"schema\":\"cliz-serve-stats-v1\""));
        for needle in [
            "\"requests\":3",
            "\"regions\":2",
            "\"decodes\":5",
            "\"backend_gets\":4",
            "\"backend_bytes\":8192",
            "\"cache_hits\":7",
            "\"queue_wait_ns\":0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.ends_with('}'));
    }
}
