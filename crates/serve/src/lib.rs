//! `cliz-serve` — a concurrent TCP region server over CZS chunk stores.
//!
//! The server wraps one shared [`cliz_store::ChunkStoreReader`] (any
//! storage backend: file, memory, HTTP range) and answers line-protocol
//! requests from many clients at once through a worker pool. Clients ask
//! for axis-aligned regions with the CLI's `--region` grammar and receive
//! raw little-endian f32 bodies; because every worker shares the reader,
//! concurrent clients share the decoded-chunk cache and the per-chunk
//! stampede locks, so a popular chunk is decoded once no matter how many
//! clients want it.
//!
//! Protocol, framing, and grammar live in [`proto`]; the wire format is
//! documented in `docs/SERVING.md`.
//!
//! ```
//! use cliz_serve::{Client, Server, ServerConfig};
//! use cliz_store::{pack_store, ChunkStoreReader, Dataset};
//! use std::sync::Arc;
//!
//! let grid = cliz_grid::Grid::from_fn(
//!     cliz_grid::Shape::new(&[16, 12]),
//!     |c| (c[0] + c[1]) as f32,
//! );
//! let bytes = pack_store(
//!     &Dataset::new("T", grid, None),
//!     cliz_quant::ErrorBound::Abs(1e-3),
//!     &cliz_core::config::PipelineConfig::default_for(2),
//!     4,
//!     1,
//! ).unwrap();
//! let reader = Arc::new(ChunkStoreReader::from_bytes(bytes).unwrap());
//!
//! let server = Server::start(reader, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let (shape, values) = client.region("5:7,:").unwrap();
//! assert_eq!(shape, vec![2, 12]);
//! assert_eq!(values.len(), 24);
//! client.quit().unwrap();
//! server.stop();
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod client;
pub mod error;
pub mod proto;
pub mod server;
pub mod stats;

pub use client::Client;
pub use error::ServeError;
pub use proto::{parse_region, parse_request, Request, MAX_REQUEST_LINE};
pub use server::{Server, ServerConfig};
pub use stats::ServeStats;
