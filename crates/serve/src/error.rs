//! Error taxonomy for the region server and its client.

use cliz_store::StoreError;

/// Failure while serving or issuing a region-protocol request.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The peer sent a request line the protocol does not define.
    BadRequest(String),
    /// The store rejected the query (bad region, corrupt chunk, backend
    /// failure) — the request was well-formed, the data was not served.
    Store(StoreError),
    /// A response frame that violates the protocol's own grammar
    /// (client-side: the server said something unparseable).
    BadResponse(&'static str),
    /// The server answered with an `ERR` frame; the message is the
    /// server's explanation.
    Remote(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve: io error: {e}"),
            ServeError::BadRequest(w) => write!(f, "serve: bad request ({w})"),
            ServeError::Store(e) => write!(f, "serve: {e}"),
            ServeError::BadResponse(w) => write!(f, "serve: bad response frame ({w})"),
            ServeError::Remote(w) => write!(f, "serve: server error: {w}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_failures_surface_as_io() {
        // Port 1 is never a cliz server; connect must refuse, not hang.
        let err = match crate::Client::connect("127.0.0.1:1") {
            Err(e) => e,
            Ok(_) => unreachable!("connect to a closed port succeeded"),
        };
        assert!(matches!(err, ServeError::Io(_)), "{err}");
    }

    #[test]
    fn store_rejections_surface_as_store() {
        // The `?` conversion the server relies on when `read_region` fails.
        let err = ServeError::from(StoreError::Corrupt("index entry missing"));
        assert!(matches!(err, ServeError::Store(StoreError::Corrupt(_))), "{err}");
        assert!(err.to_string().contains("index entry missing"));
    }
}
