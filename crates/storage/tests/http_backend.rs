//! End-to-end tests of `HttpRangeBackend` against the in-crate blob
//! server: honest range serving, retry/backoff over scripted 5xx runs,
//! retry-budget exhaustion, and non-retryable framing failures. Every
//! failure path must be a typed `StorageError` — never a panic.

use cliz_storage::{
    BlobHttpServer, HttpConfig, HttpRangeBackend, Misbehaviour, ReadableStorage, StorageError,
};
use std::time::Duration;

fn blob(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 31 % 251) as u8).collect()
}

fn fast_config(retries: u32) -> HttpConfig {
    HttpConfig {
        connect_timeout: Duration::from_secs(2),
        io_timeout: Duration::from_secs(2),
        retries,
        backoff_base: Duration::from_millis(1),
    }
}

#[test]
fn ranges_roundtrip_over_http() {
    let body = blob(4096);
    let server = BlobHttpServer::start(body.clone()).expect("server");
    let backend =
        HttpRangeBackend::with_config(&server.url(), fast_config(1)).expect("backend");

    assert_eq!(backend.size().expect("size"), 4096);
    assert_eq!(backend.get(0..16).expect("head"), body[0..16]);
    assert_eq!(backend.get(4000..4096).expect("tail"), body[4000..4096]);
    assert_eq!(backend.get(100..100).expect("empty"), Vec::<u8>::new());

    let mut out = [0u8; 32];
    backend.read_exact_at(1000, &mut out).expect("read_exact_at");
    assert_eq!(out[..], body[1000..1032]);

    // Past-the-end range: the server answers 416, a typed non-retryable error.
    let err = backend.get(4096..4100).unwrap_err();
    assert!(matches!(err, StorageError::HttpStatus { status: 416 }));
    server.stop();
}

#[test]
fn transient_5xx_is_retried_until_success() {
    let body = blob(512);
    let server = BlobHttpServer::start(body.clone()).expect("server");
    server.misbehave(Misbehaviour::ServerError, 2);
    let backend =
        HttpRangeBackend::with_config(&server.url(), fast_config(3)).expect("backend");

    // Two 500s then success — inside the budget of 3 retries.
    assert_eq!(backend.get(0..64).expect("retried get"), body[0..64]);
    assert_eq!(server.requests(), 3);
    server.stop();
}

#[test]
fn persistent_5xx_exhausts_the_retry_budget() {
    let server = BlobHttpServer::start(blob(256)).expect("server");
    server.misbehave(Misbehaviour::ServerError, u32::MAX);
    let backend =
        HttpRangeBackend::with_config(&server.url(), fast_config(2)).expect("backend");

    let err = backend.get(0..32).unwrap_err();
    match err {
        StorageError::Exhausted { attempts, last } => {
            assert_eq!(attempts, 3); // 1 try + 2 retries
            assert!(last.contains("500"), "last failure should carry the status: {last}");
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
    server.stop();
}

#[test]
fn range_ignoring_server_is_rejected_not_downloaded() {
    let server = BlobHttpServer::start(blob(1024)).expect("server");
    server.misbehave(Misbehaviour::IgnoreRange, u32::MAX);
    let backend =
        HttpRangeBackend::with_config(&server.url(), fast_config(2)).expect("backend");

    let err = backend.get(0..64).unwrap_err();
    assert!(
        matches!(err, StorageError::BadResponse(_)),
        "200-with-full-body must be a BadResponse, got {err:?}"
    );
    server.stop();
}

#[test]
fn mid_body_disconnects_retry_then_succeed() {
    let body = blob(2048);
    let server = BlobHttpServer::start(body.clone()).expect("server");
    server.misbehave(Misbehaviour::TruncateBody, 1);
    let backend =
        HttpRangeBackend::with_config(&server.url(), fast_config(2)).expect("backend");

    // First answer dies mid-body (transient), the retry completes.
    assert_eq!(backend.get(0..1024).expect("get"), body[0..1024]);
    assert_eq!(server.requests(), 2);
    server.stop();
}

#[test]
fn mid_body_disconnects_every_time_exhaust_budget() {
    let server = BlobHttpServer::start(blob(2048)).expect("server");
    server.misbehave(Misbehaviour::TruncateBody, u32::MAX);
    let backend =
        HttpRangeBackend::with_config(&server.url(), fast_config(1)).expect("backend");

    let err = backend.get(0..1024).unwrap_err();
    assert!(matches!(err, StorageError::Exhausted { attempts: 2, .. }), "got {err:?}");
    server.stop();
}

#[test]
fn unreachable_host_is_a_typed_error() {
    // A port nothing listens on: connect is refused (transient), so the
    // budget drains and the failure surfaces as Exhausted.
    let backend =
        HttpRangeBackend::with_config("http://127.0.0.1:9/x", fast_config(1)).expect("backend");
    let err = backend.get(0..8).unwrap_err();
    assert!(
        matches!(err, StorageError::Exhausted { .. } | StorageError::Io(_)),
        "got {err:?}"
    );
}
