//! A minimal single-blob HTTP/1.1 range server.
//!
//! Serves one immutable byte blob over `GET` + `Range:`, just enough to
//! exercise [`crate::HttpRangeBackend`] end to end — in unit tests, in the
//! robustness sweeps, and in CI smoke jobs that want a real network hop
//! without external infrastructure. Failure modes are scriptable:
//! a budget of 5xx answers, ignoring the range (200), or truncating the
//! body mid-response.
//!
//! Connections are handled sequentially on one thread; the coalescing
//! reader issues few, large gets, so this is not a throughput bottleneck
//! for what it is used for.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the server mistreats the next requests (see [`BlobHttpServer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misbehaviour {
    /// Answer 500 Internal Server Error.
    ServerError,
    /// Ignore the `Range:` header and answer 200 with the whole blob.
    IgnoreRange,
    /// Declare the full range but close the connection halfway through
    /// the body.
    TruncateBody,
}

struct Shared {
    blob: Vec<u8>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    /// Remaining requests to answer with `misbehaviour`.
    fail_budget: AtomicU32,
    misbehaviour: std::sync::Mutex<Misbehaviour>,
}

/// Handle to a running blob server; dropping it stops the server.
pub struct BlobHttpServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl BlobHttpServer {
    /// Serve `blob` on an ephemeral localhost port.
    pub fn start(blob: Vec<u8>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        // Accept with a poll interval so shutdown is prompt without
        // needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            blob,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            fail_budget: AtomicU32::new(0),
            misbehaviour: std::sync::Mutex::new(Misbehaviour::ServerError),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            while !worker.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                        let _ = serve_connection(&worker, stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(BlobHttpServer {
            addr,
            shared,
            handle: Some(handle),
        })
    }

    /// `http://127.0.0.1:PORT/blob` — feed this to [`crate::HttpRangeBackend`].
    pub fn url(&self) -> String {
        format!("http://{}/blob", self.addr)
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Answer the next `n` requests with `how` instead of honouring them.
    pub fn misbehave(&self, how: Misbehaviour, n: u32) {
        if let Ok(mut m) = self.shared.misbehaviour.lock() {
            *m = how;
        }
        self.shared.fail_budget.store(n, Ordering::Relaxed);
    }

    /// Stop the accept loop and join the server thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BlobHttpServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Parse one request off `stream` and write the (possibly scripted)
/// response. Errors only abort this connection, never the server.
fn serve_connection(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    if request_line.is_empty() {
        return Ok(());
    }
    shared.requests.fetch_add(1, Ordering::Relaxed);

    // Headers: only Range matters.
    let mut range: Option<(u64, u64)> = None;
    for _ in 0..128 {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(spec) = line
            .to_ascii_lowercase()
            .strip_prefix("range: bytes=")
            .map(str::to_string)
        {
            if let Some((a, b)) = spec.split_once('-') {
                if let (Ok(a), Ok(b)) = (a.trim().parse::<u64>(), b.trim().parse::<u64>()) {
                    range = Some((a, b));
                }
            }
        }
    }

    let mut stream = reader.into_inner();
    let total = shared.blob.len() as u64;

    // Scripted misbehaviour consumes its budget first.
    let misbehave = shared.fail_budget.load(Ordering::Relaxed) > 0 && {
        shared.fail_budget.fetch_sub(1, Ordering::Relaxed);
        true
    };
    if misbehave {
        let how = shared
            .misbehaviour
            .lock()
            .map(|m| *m)
            .unwrap_or(Misbehaviour::ServerError);
        match how {
            Misbehaviour::ServerError => {
                return stream.write_all(
                    b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                );
            }
            Misbehaviour::IgnoreRange => {
                let head = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {total}\r\nConnection: close\r\n\r\n"
                );
                stream.write_all(head.as_bytes())?;
                return stream.write_all(&shared.blob);
            }
            Misbehaviour::TruncateBody => {
                if let Some((a, b)) = range {
                    let end = b.min(total.saturating_sub(1));
                    let len = end + 1 - a.min(end);
                    let head = format!(
                        "HTTP/1.1 206 Partial Content\r\nContent-Length: {len}\r\nContent-Range: bytes {a}-{end}/{total}\r\nConnection: close\r\n\r\n"
                    );
                    stream.write_all(head.as_bytes())?;
                    let half = (len / 2) as usize;
                    let start = a as usize;
                    if let Some(view) = shared.blob.get(start..start + half) {
                        stream.write_all(view)?;
                    }
                    return Ok(()); // connection closes mid-body
                }
            }
        }
    }

    match range {
        Some((a, b)) if a < total && a <= b => {
            let end = b.min(total - 1);
            let len = end + 1 - a;
            let head = format!(
                "HTTP/1.1 206 Partial Content\r\nContent-Length: {len}\r\nContent-Range: bytes {a}-{end}/{total}\r\nConnection: close\r\n\r\n"
            );
            stream.write_all(head.as_bytes())?;
            if let Some(view) = shared.blob.get(a as usize..=end as usize) {
                stream.write_all(view)?;
            }
            Ok(())
        }
        Some(_) => stream.write_all(
            format!(
                "HTTP/1.1 416 Range Not Satisfiable\r\nContent-Length: 0\r\nContent-Range: bytes */{total}\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        ),
        None => {
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Length: {total}\r\nConnection: close\r\n\r\n"
            );
            stream.write_all(head.as_bytes())?;
            stream.write_all(&shared.blob)
        }
    }
}
