//! Typed failure surface for the storage backends.
//!
//! Every backend failure mode is a distinct variant so callers (the store
//! reader, the serve layer, tests) can branch on *why* a get failed —
//! in particular, whether retrying could help ([`StorageError::Transient`])
//! or the request itself is unsatisfiable ([`StorageError::OutOfRange`]).

use std::fmt;

/// Error returned by [`crate::ReadableStorage`] implementations.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying OS-level I/O failure (open, seek, read, connect, ...).
    Io(std::io::Error),
    /// The requested byte range extends past the end of the object, or is
    /// inverted (`start > end`).
    OutOfRange {
        /// Requested range start (bytes).
        start: u64,
        /// Requested range end (exclusive, bytes).
        end: u64,
        /// Total object size the backend reports.
        size: u64,
    },
    /// A backend returned fewer bytes than the range it acknowledged —
    /// a contract violation (truncated file, lying server, injected fault).
    ShortRead {
        /// Bytes the contract required.
        expected: usize,
        /// Bytes actually produced.
        got: usize,
    },
    /// A transient, retryable failure (timeout, connection reset, injected
    /// fault). Retrying wrappers convert a run of these into
    /// [`StorageError::Exhausted`].
    Transient(&'static str),
    /// The retry budget ran out; `last` describes the final attempt.
    Exhausted {
        /// Number of attempts made before giving up.
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
    /// An HTTP endpoint answered with a non-success, non-retryable status
    /// (e.g. 404, 403, or 200 where 206 with the exact range was required).
    HttpStatus {
        /// The status code received.
        status: u16,
    },
    /// The HTTP response framing was malformed (bad status line, missing
    /// or unparsable Content-Length / Content-Range, ...).
    BadResponse(&'static str),
    /// The URL or address handed to a backend could not be parsed.
    BadAddress(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::OutOfRange { start, end, size } => {
                write!(f, "range {start}..{end} out of bounds for object of {size} bytes")
            }
            StorageError::ShortRead { expected, got } => {
                write!(f, "backend returned {got} bytes where {expected} were required")
            }
            StorageError::Transient(why) => write!(f, "transient storage failure: {why}"),
            StorageError::Exhausted { attempts, last } => {
                write!(f, "retry budget exhausted after {attempts} attempts: {last}")
            }
            StorageError::HttpStatus { status } => {
                write!(f, "http endpoint answered status {status}")
            }
            StorageError::BadResponse(why) => write!(f, "malformed http response: {why}"),
            StorageError::BadAddress(why) => write!(f, "bad storage address: {why}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// Whether a retrying wrapper may usefully re-issue the request.
    ///
    /// Timeouts and connection drops qualify; contract violations and
    /// out-of-range requests do not (re-asking cannot change the answer).
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Transient(_) => true,
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }
}
