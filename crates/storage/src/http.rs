//! HTTP/1.1 byte-range backend — hand-rolled, blocking, zero dependencies.
//!
//! The client speaks the minimum of HTTP/1.1 needed to read a CZS store
//! remotely: one `GET` with `Range: bytes=a-b` and `Connection: close` per
//! backend get, expecting a `206 Partial Content` whose `Content-Length`
//! matches the range exactly. The object's size is discovered with a
//! one-byte range probe (`Range: bytes=0-0`) and parsed from
//! `Content-Range: bytes 0-0/SIZE`.
//!
//! ## Retry policy
//!
//! Transient failures (connect/read timeouts, resets, premature EOF) and
//! 5xx answers are retried with exponential backoff
//! (`backoff_base × 2^attempt`), up to [`HttpConfig::retries`] retries;
//! exhaustion surfaces as [`StorageError::Exhausted`] carrying the last
//! failure. Non-retryable answers (404, a `200` ignoring the range,
//! malformed framing, a `206` whose length disagrees with the range) fail
//! immediately — re-asking cannot change them.

use crate::{ReadableStorage, StorageError};
use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::sync::Mutex;
use std::time::Duration;

/// Longest accepted response header line; longer is malformed framing.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most response header lines accepted before declaring the framing bad.
const MAX_HEADER_LINES: usize = 128;

/// Tunables for [`HttpRangeBackend`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout on the socket per attempt.
    pub io_timeout: Duration,
    /// Retries after the first attempt (total attempts = retries + 1).
    pub retries: u32,
    /// First backoff sleep; doubles each retry.
    pub backoff_base: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            retries: 3,
            backoff_base: Duration::from_millis(25),
        }
    }
}

/// A [`ReadableStorage`] over an HTTP/1.1 endpoint honouring `Range:`.
pub struct HttpRangeBackend {
    /// `host[:port]` as written in the URL — sent as the `Host:` header.
    host_header: String,
    /// `host:port` used for the TCP connect.
    addr: String,
    path: String,
    config: HttpConfig,
    /// Object size, discovered lazily by the first `size()` probe.
    cached_size: Mutex<Option<u64>>,
}

impl HttpRangeBackend {
    /// Build a backend from an `http://host[:port]/path` URL.
    pub fn new(url: &str) -> Result<Self, StorageError> {
        Self::with_config(url, HttpConfig::default())
    }

    /// Build a backend with explicit timeouts/retry budget.
    pub fn with_config(url: &str, config: HttpConfig) -> Result<Self, StorageError> {
        let rest = url
            .strip_prefix("http://")
            .ok_or(StorageError::BadAddress("only http:// URLs are supported"))?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(StorageError::BadAddress("empty host"));
        }
        let addr = if authority.contains(':') {
            authority.to_string()
        } else {
            format!("{authority}:80")
        };
        Ok(HttpRangeBackend {
            host_header: authority.to_string(),
            addr,
            path: path.to_string(),
            config,
            cached_size: Mutex::new(None),
        })
    }

    /// One request/response exchange for `range`; no retries at this layer.
    fn fetch_once(&self, range: &Range<u64>) -> Result<(Vec<u8>, Option<u64>), StorageError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(StorageError::Io)?
            .next()
            .ok_or(StorageError::BadAddress("host did not resolve"))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;

        let request = format!(
            "GET {} HTTP/1.1\r\nHost: {}\r\nRange: bytes={}-{}\r\nConnection: close\r\nUser-Agent: cliz-storage\r\n\r\n",
            self.path,
            self.host_header,
            range.start,
            range.end - 1,
        );
        stream.write_all(request.as_bytes())?;

        let mut reader = BufReader::new(stream);
        let status_line = read_header_line(&mut reader)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(StorageError::BadResponse("bad status line"))?;

        let mut content_length: Option<usize> = None;
        let mut total_size: Option<u64> = None;
        for _ in 0..MAX_HEADER_LINES {
            let line = read_header_line(&mut reader)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    Some(value.parse().map_err(|_| StorageError::BadResponse("bad content-length"))?);
            } else if name.eq_ignore_ascii_case("content-range") {
                // "bytes a-b/SIZE" (or "bytes */SIZE" on 416).
                total_size = value
                    .rsplit_once('/')
                    .and_then(|(_, size)| size.trim().parse().ok());
            }
        }

        match status {
            206 => {}
            // A 200 means the server ignored the range; reading whole
            // objects defeats the point of a range backend, so treat the
            // endpoint as unusable rather than silently downloading all.
            200 => return Err(StorageError::BadResponse("server ignored the range request")),
            500..=599 => return Err(StorageError::HttpStatus { status }),
            _ => return Err(StorageError::HttpStatus { status }),
        }

        let want = (range.end - range.start) as usize;
        let declared = content_length.ok_or(StorageError::BadResponse("missing content-length"))?;
        if declared != want {
            return Err(StorageError::BadResponse("content-length disagrees with range"));
        }
        // Bounded by the caller's own range size — `declared == want`.
        let mut body = Vec::with_capacity(declared);
        reader
            .take(declared as u64)
            .read_to_end(&mut body)
            .map_err(StorageError::Io)?;
        if body.len() != declared {
            // The connection dropped mid-body: retryable.
            return Err(StorageError::Transient("connection closed mid-body"));
        }
        Ok((body, total_size))
    }

    /// Retry loop shared by `get` and the size probe.
    fn fetch_with_retry(&self, range: &Range<u64>) -> Result<(Vec<u8>, Option<u64>), StorageError> {
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let err = match self.fetch_once(range) {
                Ok(out) => return Ok(out),
                Err(e) => e,
            };
            let retryable =
                err.is_transient() || matches!(err, StorageError::HttpStatus { status: 500..=599 });
            if !retryable {
                return Err(err);
            }
            if attempt > self.config.retries {
                return Err(StorageError::Exhausted {
                    attempts: attempt,
                    last: err.to_string(),
                });
            }
            let backoff = self
                .config
                .backoff_base
                .saturating_mul(1u32 << (attempt - 1).min(16));
            std::thread::sleep(backoff);
        }
    }
}

impl ReadableStorage for HttpRangeBackend {
    fn size(&self) -> Result<u64, StorageError> {
        if let Ok(cached) = self.cached_size.lock() {
            if let Some(size) = *cached {
                return Ok(size);
            }
        }
        // One-byte probe: the 206's Content-Range carries the total size.
        let (_, total) = self.fetch_with_retry(&(0..1))?;
        let size = total.ok_or(StorageError::BadResponse("no content-range on probe"))?;
        if let Ok(mut cached) = self.cached_size.lock() {
            *cached = Some(size);
        }
        Ok(size)
    }

    fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError> {
        if range.start > range.end {
            return Err(StorageError::OutOfRange {
                start: range.start,
                end: range.end,
                size: self.size().unwrap_or(0),
            });
        }
        if range.start == range.end {
            return Ok(Vec::new());
        }
        let (body, _) = self.fetch_with_retry(&range)?;
        Ok(body)
    }
}

/// Read one CRLF-terminated header line with a hard length cap.
fn read_header_line(reader: &mut BufReader<TcpStream>) -> Result<String, StorageError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(StorageError::Transient("connection closed before headers"));
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_HEADER_LINE {
                    return Err(StorageError::BadResponse("header line too long"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StorageError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| StorageError::BadResponse("non-utf8 header"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_and_rejects() {
        let b = HttpRangeBackend::new("http://example.org/store.czs").unwrap();
        assert_eq!(b.host_header, "example.org");
        assert_eq!(b.addr, "example.org:80");
        assert_eq!(b.path, "/store.czs");
        let b = HttpRangeBackend::new("http://127.0.0.1:8080").unwrap();
        assert_eq!(b.addr, "127.0.0.1:8080");
        assert_eq!(b.path, "/");
        assert!(matches!(
            HttpRangeBackend::new("https://example.org/x"),
            Err(StorageError::BadAddress(_))
        ));
        assert!(matches!(
            HttpRangeBackend::new("http:///x"),
            Err(StorageError::BadAddress(_))
        ));
    }
}
