//! Range-coalescing planner: merge per-chunk byte ranges into few backend
//! gets.
//!
//! A multi-chunk `read_region` knows every chunk's byte range up front.
//! Issuing one `get` per chunk costs one round trip each — ruinous over a
//! network backend. CZS packs chunks contiguously, so the common case is
//! that k needed chunks form one contiguous byte run; when a cached chunk
//! punches a hole in the run, it is still cheaper to read through a small
//! hole than to split the request. The planner sorts the wanted ranges and
//! merges neighbours whose gap is at most `gap`, producing a list of
//! [`CoalescedGet`]s, each carrying the items it satisfies and where each
//! item's bytes sit inside the fetched buffer.

use std::ops::Range;

/// One caller-side item (e.g. a chunk index) and the absolute byte range
/// it needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeItem {
    /// Caller's identifier for the item (the chunk index, for the store).
    pub id: usize,
    /// Absolute byte range the item needs.
    pub range: Range<u64>,
}

/// One planned backend `get` covering one or more items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedGet {
    /// The merged absolute byte range to fetch in a single `get`.
    pub range: Range<u64>,
    /// The items this fetch satisfies, each with the sub-range of the
    /// fetched buffer holding its bytes (`item.range` rebased to the
    /// merged range's start). Sorted by range start.
    pub items: Vec<(usize, Range<usize>)>,
}

/// Plan backend gets for `items`, merging ranges whose gap is ≤ `gap`
/// bytes.
///
/// Items may arrive in any order and may overlap; the plan is sorted by
/// byte offset. `gap = 0` merges only touching/overlapping ranges;
/// a larger threshold trades wasted bytes (read through small holes) for
/// fewer round trips. Empty input yields an empty plan; zero-length item
/// ranges are preserved (they land inside or between gets as their offset
/// dictates).
pub fn coalesce(items: &[RangeItem], gap: u64) -> Vec<CoalescedGet> {
    let mut sorted: Vec<&RangeItem> = items.iter().collect();
    sorted.sort_by_key(|it| (it.range.start, it.range.end));

    let mut plan: Vec<CoalescedGet> = Vec::new();
    for it in sorted {
        let start = it.range.start;
        let end = it.range.end.max(start);
        match plan.last_mut() {
            // Merge when the hole between the current run and this item is
            // within the threshold (overlap means no hole at all). A merge
            // only ever extends the run's end, so the run's start — the
            // rebase origin — is fixed the moment the run is created.
            Some(cur) if start.saturating_sub(cur.range.end) <= gap => {
                cur.range.end = cur.range.end.max(end);
                let base = cur.range.start;
                cur.items
                    .push((it.id, (start - base) as usize..(end - base) as usize));
            }
            _ => {
                plan.push(CoalescedGet {
                    range: start..end,
                    items: vec![(it.id, 0..(end - start) as usize)],
                });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: usize, range: Range<u64>) -> RangeItem {
        RangeItem { id, range }
    }

    /// Adjacent (touching) ranges merge into one get with gap 0.
    #[test]
    fn adjacent_ranges_coalesce() {
        let plan = coalesce(&[item(0, 0..10), item(1, 10..20), item(2, 20..32)], 0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].range, 0..32);
        assert_eq!(
            plan[0].items,
            vec![(0, 0..10), (1, 10..20), (2, 20..32)]
        );
    }

    /// Overlapping ranges merge and each item still maps to its own bytes.
    #[test]
    fn overlapping_ranges_coalesce() {
        let plan = coalesce(&[item(0, 0..16), item(1, 8..24)], 0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].range, 0..24);
        assert_eq!(plan[0].items, vec![(0, 0..16), (1, 8..24)]);
    }

    /// Input order does not matter: the plan is sorted by byte offset.
    #[test]
    fn out_of_order_input_sorts_before_merging() {
        let plan = coalesce(&[item(2, 20..30), item(0, 0..10), item(1, 10..20)], 0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].range, 0..30);
        assert_eq!(
            plan[0].items,
            vec![(0, 0..10), (1, 10..20), (2, 20..30)]
        );
    }

    /// A hole of exactly `gap` bytes merges; one byte more splits.
    #[test]
    fn gap_threshold_boundary() {
        // gap 4, hole of 4 → merge (read through the hole).
        let plan = coalesce(&[item(0, 0..10), item(1, 14..20)], 4);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].range, 0..20);
        assert_eq!(plan[0].items, vec![(0, 0..10), (1, 14..20)]);
        // gap 4, hole of 5 → two gets.
        let plan = coalesce(&[item(0, 0..10), item(1, 15..20)], 4);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].range, 0..10);
        assert_eq!(plan[1].range, 15..20);
        assert_eq!(plan[1].items, vec![(1, 0..5)]);
    }

    /// A single chunk is a single get covering exactly its range.
    #[test]
    fn single_item_passthrough() {
        let plan = coalesce(&[item(7, 100..164)], 1 << 16);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].range, 100..164);
        assert_eq!(plan[0].items, vec![(7, 0..64)]);
    }

    /// An empty region plans no gets at all.
    #[test]
    fn empty_input_empty_plan() {
        assert!(coalesce(&[], 1 << 16).is_empty());
    }

    /// Disjoint far-apart ranges never merge regardless of order.
    #[test]
    fn far_ranges_stay_split() {
        let plan = coalesce(&[item(1, 1000..1100), item(0, 0..100)], 64);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].range, 0..100);
        assert_eq!(plan[1].range, 1000..1100);
    }

    /// Gap accounting chains: a..b, hole, b+g..c, hole, c+g..d all merge.
    #[test]
    fn chained_gaps_merge_transitively() {
        let plan = coalesce(
            &[item(0, 0..10), item(1, 12..20), item(2, 22..30)],
            2,
        );
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].range, 0..30);
    }
}
