//! Deterministic fault injection for robustness tests.
//!
//! `FlakyBackend` wraps any backend and replays a scripted sequence of
//! faults, one per `get`/`read_exact_at` call: transient errors, short
//! reads (contract violations), or hard EOF truncation. Tests use it to
//! prove that every failure mode surfaces as a typed [`StorageError`]
//! through the whole reader stack — never a panic, never silent garbage.

use crate::{ReadableStorage, StorageError};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One scripted outcome for a backend call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Pass the call through to the inner backend unchanged.
    Ok,
    /// Fail with [`StorageError::Transient`] (retryable).
    Transient,
    /// Return only the first `n` bytes of the requested range — a backend
    /// contract violation the caller must detect, not trust.
    ShortRead(usize),
    /// Behave as if the object ends at byte `at`: ranges beyond it come
    /// back truncated, like a file cut off mid-chunk.
    TruncateAt(u64),
}

/// Fault-injecting wrapper around any [`ReadableStorage`].
///
/// The script is consumed one entry per call (in order); once it runs dry
/// every call passes through. Counters are plain monotonic telemetry
/// (all-`Relaxed`).
pub struct FlakyBackend<S> {
    inner: S,
    script: Mutex<VecDeque<Fault>>,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl<S: ReadableStorage> FlakyBackend<S> {
    /// Wrap `inner`, replaying `script` one fault per call.
    pub fn new(inner: S, script: Vec<Fault>) -> Self {
        FlakyBackend {
            inner,
            script: Mutex::new(script.into()),
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Total backend calls observed (both passthrough and faulted).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls that had a non-`Ok` fault injected.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn next_fault(&self) -> Fault {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let fault = match self.script.lock() {
            Ok(mut s) => s.pop_front().unwrap_or(Fault::Ok),
            // The script is a plain queue; a poisoned lock just means a
            // test thread panicked — keep serving passthrough.
            Err(poisoned) => poisoned.into_inner().pop_front().unwrap_or(Fault::Ok),
        };
        if fault != Fault::Ok {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

impl<S: ReadableStorage> ReadableStorage for FlakyBackend<S> {
    fn size(&self) -> Result<u64, StorageError> {
        self.inner.size()
    }

    fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError> {
        match self.next_fault() {
            Fault::Ok => self.inner.get(range),
            Fault::Transient => Err(StorageError::Transient("injected fault")),
            Fault::ShortRead(n) => {
                let mut body = self.inner.get(range)?;
                body.truncate(n);
                Ok(body)
            }
            Fault::TruncateAt(at) => {
                if range.start >= at {
                    return Ok(Vec::new());
                }
                let clipped = range.start..range.end.min(at);
                self.inner.get(clipped)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBackend;

    #[test]
    fn script_replays_in_order_then_passes_through() {
        let b = FlakyBackend::new(
            MemBackend::new((0u8..16).collect()),
            vec![Fault::Transient, Fault::ShortRead(2)],
        );
        assert!(matches!(b.get(0..4), Err(StorageError::Transient(_))));
        assert_eq!(b.get(0..4).unwrap(), vec![0, 1]); // short: 2 of 4 bytes
        assert_eq!(b.get(0..4).unwrap(), vec![0, 1, 2, 3]); // script dry
        assert_eq!(b.calls(), 3);
        assert_eq!(b.injected(), 2);
    }

    #[test]
    fn truncate_fault_clips_like_a_cut_file() {
        let b = FlakyBackend::new(
            MemBackend::new((0u8..32).collect()),
            vec![Fault::TruncateAt(8), Fault::TruncateAt(8)],
        );
        assert_eq!(b.get(4..16).unwrap(), vec![4, 5, 6, 7]); // clipped at 8
        assert_eq!(b.get(8..16).unwrap(), Vec::<u8>::new()); // fully beyond
    }

    #[test]
    fn short_read_surfaces_via_default_read_exact_at() {
        let b = FlakyBackend::new(
            MemBackend::new(vec![0u8; 64]),
            vec![Fault::ShortRead(3)],
        );
        let mut out = [0u8; 8];
        let err = b.read_exact_at(0, &mut out).unwrap_err();
        assert!(matches!(err, StorageError::ShortRead { expected: 8, got: 3 }));
    }
}
