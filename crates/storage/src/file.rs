//! Local-file backend using positional reads.
//!
//! On Unix every read is a `pread` — no shared cursor, no mutex — so
//! concurrent region queries through one shared reader never serialize on
//! the file descriptor. Elsewhere a mutex guards a seek-then-read fallback.

use crate::{check_range, ReadableStorage, StorageError};
use std::fs::File;
use std::ops::Range;
use std::path::Path;

/// A [`ReadableStorage`] over a local file opened read-only.
///
/// The size is captured at open; the store format pins every byte range at
/// pack time, so the file is treated as immutable. A file truncated behind
/// the backend surfaces as [`StorageError::ShortRead`].
#[derive(Debug)]
pub struct FileBackend {
    size: u64,
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl FileBackend {
    /// Open `path` read-only and capture its current size.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let file = File::open(path)?;
        let size = file.metadata()?.len();
        #[cfg(not(unix))]
        let file = std::sync::Mutex::new(file);
        Ok(FileBackend { size, file })
    }

    #[cfg(unix)]
    fn read_full_at(&self, offset: u64, out: &mut [u8]) -> Result<usize, StorageError> {
        use std::os::unix::fs::FileExt;
        let mut filled = 0usize;
        while filled < out.len() {
            let rest = &mut out[filled..];
            match self.file.read_at(rest, offset + filled as u64) {
                Ok(0) => break, // EOF mid-range: caller reports ShortRead
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StorageError::Io(e)),
            }
        }
        Ok(filled)
    }

    #[cfg(not(unix))]
    fn read_full_at(&self, offset: u64, out: &mut [u8]) -> Result<usize, StorageError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = match self.file.lock() {
            Ok(g) => g,
            // A poisoned lock only means another reader panicked mid-read;
            // the file state itself (position is re-seeked) is fine.
            Err(poisoned) => poisoned.into_inner(),
        };
        file.seek(SeekFrom::Start(offset))?;
        let mut filled = 0usize;
        while filled < out.len() {
            let rest = &mut out[filled..];
            match file.read(rest) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StorageError::Io(e)),
            }
        }
        Ok(filled)
    }
}

impl ReadableStorage for FileBackend {
    fn size(&self) -> Result<u64, StorageError> {
        Ok(self.size)
    }

    fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError> {
        check_range(&range, self.size)?;
        let want = (range.end - range.start) as usize;
        let mut out = vec![0u8; want];
        let got = self.read_full_at(range.start, &mut out)?;
        if got != want {
            return Err(StorageError::ShortRead { expected: want, got });
        }
        Ok(out)
    }

    fn read_exact_at(&self, offset: u64, out: &mut [u8]) -> Result<(), StorageError> {
        let end = offset.saturating_add(out.len() as u64);
        check_range(&(offset..end), self.size)?;
        let got = self.read_full_at(offset, out)?;
        if got != out.len() {
            return Err(StorageError::ShortRead { expected: out.len(), got });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, body: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cliz_storage_file_test_{}_{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(body).unwrap();
        p
    }

    #[test]
    fn file_backend_reads_ranges() {
        let p = temp_file("ranges", &(0u8..64).collect::<Vec<_>>());
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.size().unwrap(), 64);
        assert_eq!(b.get(0..4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(b.get(60..64).unwrap(), vec![60, 61, 62, 63]);
        let mut out = [0u8; 3];
        b.read_exact_at(10, &mut out).unwrap();
        assert_eq!(out, [10, 11, 12]);
        assert!(matches!(b.get(60..65), Err(StorageError::OutOfRange { .. })));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn truncated_file_is_short_read_not_panic() {
        let p = temp_file("trunc", &[7u8; 128]);
        let b = FileBackend::open(&p).unwrap();
        // Shrink the file behind the backend's back: the cached size still
        // admits the range, but the read hits EOF mid-way.
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(32).unwrap();
        let err = b.get(0..128).unwrap_err();
        assert!(matches!(err, StorageError::ShortRead { expected: 128, got: 32 }));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = FileBackend::open(Path::new("/nonexistent/cliz_store.czs")).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
    }
}
