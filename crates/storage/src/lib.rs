//! Pluggable read-only storage backends for the CZS chunk store.
//!
//! The CliZ paper's compression pipeline produces a chunked container;
//! serving region queries out of it requires byte-range reads against
//! wherever those bytes live — a local file, a memory buffer, or an HTTP
//! endpoint that honours `Range:` requests. This crate defines the seam:
//!
//! * [`ReadableStorage`] — the backend trait: `size()`, ranged `get()`,
//!   and positional `read_exact_at()`. Implementations must be `Send +
//!   Sync`; one backend instance is shared by every concurrent reader.
//! * [`FileBackend`] — positional reads (`pread`) against a local file.
//! * [`MemBackend`] — an in-memory byte buffer (tests, benches, packing).
//! * [`HttpRangeBackend`] — a hand-rolled blocking HTTP/1.1 client issuing
//!   `Range: bytes=` requests, with bounded retry/backoff on transient
//!   failures and 5xx answers. No external dependencies.
//! * [`FlakyBackend`] / [`DelayBackend`] — deterministic fault-injection
//!   and simulated-latency wrappers for robustness tests and load benches.
//! * [`coalesce`] — the range-coalescing planner that merges adjacent or
//!   near-adjacent chunk ranges (gap threshold) into single backend gets,
//!   so a multi-chunk `read_region` costs one round trip, not one per
//!   chunk.
//!
//! ## Contract
//!
//! `get(a..b)` returns **exactly** `b - a` bytes or a typed
//! [`StorageError`] — never a silent short read. Objects are immutable for
//! the lifetime of a backend: `size()` is stable, and a file shrinking
//! underneath a [`FileBackend`] surfaces as [`StorageError::ShortRead`],
//! not garbage. See `docs/SERVING.md` for the full contract.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod delay;
mod error;
mod file;
mod flaky;
mod http;
mod mem;
mod plan;
mod testserver;

pub use delay::DelayBackend;
pub use error::StorageError;
pub use file::FileBackend;
pub use flaky::{Fault, FlakyBackend};
pub use http::{HttpConfig, HttpRangeBackend};
pub use mem::MemBackend;
pub use plan::{coalesce, CoalescedGet, RangeItem};
pub use testserver::{BlobHttpServer, Misbehaviour};

use std::ops::Range;

/// A read-only byte object addressable by absolute byte ranges.
///
/// Implementations are shared across threads (`Send + Sync`) — the chunk
/// store holds one `Arc<dyn ReadableStorage>` per open store and every
/// concurrent region query reads through it.
pub trait ReadableStorage: Send + Sync {
    /// Total size of the object in bytes. Stable for the lifetime of the
    /// backend (objects are immutable once opened).
    fn size(&self) -> Result<u64, StorageError>;

    /// Fetch `range.start..range.end` and return exactly
    /// `range.end - range.start` bytes.
    ///
    /// An inverted or out-of-bounds range is [`StorageError::OutOfRange`];
    /// a backend that produces fewer bytes than it acknowledged is a
    /// contract violation surfaced by callers as
    /// [`StorageError::ShortRead`]. The empty range yields an empty vec.
    fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError>;

    /// Fill `out` with the bytes at `offset..offset + out.len()`.
    ///
    /// The default routes through [`ReadableStorage::get`]; positional
    /// backends (files) override it to read straight into the caller's
    /// buffer.
    fn read_exact_at(&self, offset: u64, out: &mut [u8]) -> Result<(), StorageError> {
        // Saturate rather than wrap: an offset near u64::MAX pushes the
        // range end past any real object size, so the backend's own bounds
        // check reports the accurate OutOfRange.
        let end = offset.saturating_add(out.len() as u64);
        let got = self.get(offset..end)?;
        if got.len() != out.len() {
            return Err(StorageError::ShortRead {
                expected: out.len(),
                got: got.len(),
            });
        }
        out.copy_from_slice(&got);
        Ok(())
    }
}

/// Blanket impl so `Arc<B>` (and plain references) satisfy the trait
/// bound wherever a backend is consumed generically.
impl<S: ReadableStorage + ?Sized> ReadableStorage for std::sync::Arc<S> {
    fn size(&self) -> Result<u64, StorageError> {
        (**self).size()
    }
    fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError> {
        (**self).get(range)
    }
    fn read_exact_at(&self, offset: u64, out: &mut [u8]) -> Result<(), StorageError> {
        (**self).read_exact_at(offset, out)
    }
}

/// Validate `range` against an object of `size` bytes.
///
/// Shared by the concrete backends so they agree on what "out of range"
/// means: inverted ranges and ends past the object are rejected; the
/// empty range anywhere inside `0..=size` is fine.
pub(crate) fn check_range(range: &Range<u64>, size: u64) -> Result<(), StorageError> {
    if range.start > range.end || range.end > size {
        return Err(StorageError::OutOfRange {
            start: range.start,
            end: range.end,
            size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_range_accepts_and_rejects() {
        assert!(check_range(&(0..10), 10).is_ok());
        assert!(check_range(&(10..10), 10).is_ok());
        assert!(check_range(&(3..3), 10).is_ok());
        assert!(matches!(
            check_range(&(5..11), 10),
            Err(StorageError::OutOfRange { start: 5, end: 11, size: 10 })
        ));
        assert!(matches!(
            check_range(&(7..3), 10),
            Err(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn default_read_exact_at_detects_short_backends() {
        /// A backend that violates the contract by returning half the range.
        struct Half;
        impl ReadableStorage for Half {
            fn size(&self) -> Result<u64, StorageError> {
                Ok(100)
            }
            fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError> {
                let want = (range.end - range.start) as usize;
                Ok(vec![0u8; want / 2])
            }
        }
        let mut out = [0u8; 8];
        let err = Half.read_exact_at(0, &mut out).unwrap_err();
        assert!(matches!(err, StorageError::ShortRead { expected: 8, got: 4 }));
    }

    #[test]
    fn read_exact_at_near_u64_max_is_out_of_range_not_overflow() {
        let mem = MemBackend::new(vec![1, 2, 3]);
        let mut out = [0u8; 4];
        let err = mem.read_exact_at(u64::MAX - 1, &mut out).unwrap_err();
        assert!(matches!(err, StorageError::OutOfRange { .. }));
    }

    #[test]
    fn arc_dyn_backend_reads_through() {
        let backend: std::sync::Arc<dyn ReadableStorage> =
            std::sync::Arc::new(MemBackend::new(vec![9, 8, 7, 6]));
        assert_eq!(backend.size().unwrap(), 4);
        assert_eq!(backend.get(1..3).unwrap(), vec![8, 7]);
        let mut out = [0u8; 2];
        backend.read_exact_at(2, &mut out).unwrap();
        assert_eq!(out, [7, 6]);
    }
}
