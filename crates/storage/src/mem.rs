//! In-memory backend: the packed store bytes themselves.

use crate::{check_range, ReadableStorage, StorageError};
use std::ops::Range;
use std::sync::Arc;

/// A [`ReadableStorage`] over an immutable in-memory byte buffer.
///
/// This is what `ChunkStoreReader::from_bytes` wraps, and what tests and
/// benches use to take the filesystem out of the picture. The buffer is
/// behind an `Arc` so cloning the backend shares rather than copies.
#[derive(Clone)]
pub struct MemBackend {
    body: Arc<Vec<u8>>,
}

impl MemBackend {
    /// Wrap a byte buffer.
    pub fn new(body: Vec<u8>) -> Self {
        MemBackend { body: Arc::new(body) }
    }

    /// Wrap an already-shared buffer without copying.
    pub fn from_arc(body: Arc<Vec<u8>>) -> Self {
        MemBackend { body }
    }
}

impl ReadableStorage for MemBackend {
    fn size(&self) -> Result<u64, StorageError> {
        Ok(self.body.len() as u64)
    }

    fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError> {
        check_range(&range, self.body.len() as u64)?;
        // check_range bounds both ends by the buffer length, so the usize
        // casts and the slice below cannot go out of bounds.
        let view = self
            .body
            .get(range.start as usize..range.end as usize)
            .ok_or(StorageError::ShortRead { expected: (range.end - range.start) as usize, got: 0 })?;
        Ok(view.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrips_ranges() {
        let m = MemBackend::new((0u8..32).collect());
        assert_eq!(m.size().unwrap(), 32);
        assert_eq!(m.get(0..4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(m.get(30..32).unwrap(), vec![30, 31]);
        assert_eq!(m.get(16..16).unwrap(), Vec::<u8>::new());
        assert!(matches!(m.get(30..33), Err(StorageError::OutOfRange { .. })));
    }

    #[test]
    fn clones_share_the_buffer() {
        let m = MemBackend::new(vec![0u8; 1 << 20]);
        let c = m.clone();
        assert!(Arc::ptr_eq(&m.body, &c.body));
    }
}
