//! Simulated-latency wrapper for load benches.
//!
//! `DelayBackend` charges a fixed per-call cost plus a per-byte cost on
//! every `get`, modelling a remote object store without needing a network
//! in the bench loop. Determinism matters more than realism: the same
//! request sequence always pays the same simulated cost.

use crate::{ReadableStorage, StorageError};
use std::ops::Range;
use std::time::Duration;

/// A [`ReadableStorage`] wrapper that sleeps `per_call + per_kib × size`
/// before each `get`.
pub struct DelayBackend<S> {
    inner: S,
    per_call: Duration,
    per_kib: Duration,
}

impl<S: ReadableStorage> DelayBackend<S> {
    /// Wrap `inner`, charging `per_call` per request plus `per_kib` per
    /// 1024 bytes transferred.
    pub fn new(inner: S, per_call: Duration, per_kib: Duration) -> Self {
        DelayBackend { inner, per_call, per_kib }
    }

    fn charge(&self, len: u64) {
        let kib = len.div_ceil(1024) as u32;
        let cost = self.per_call + self.per_kib.saturating_mul(kib);
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }
}

impl<S: ReadableStorage> ReadableStorage for DelayBackend<S> {
    fn size(&self) -> Result<u64, StorageError> {
        self.inner.size()
    }

    fn get(&self, range: Range<u64>) -> Result<Vec<u8>, StorageError> {
        self.charge(range.end.saturating_sub(range.start));
        self.inner.get(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBackend;

    #[test]
    fn zero_cost_delay_is_passthrough() {
        let b = DelayBackend::new(
            MemBackend::new((0u8..8).collect()),
            Duration::ZERO,
            Duration::ZERO,
        );
        assert_eq!(b.get(2..5).unwrap(), vec![2, 3, 4]);
        assert_eq!(b.size().unwrap(), 8);
    }

    #[test]
    fn per_call_cost_is_observable() {
        let b = DelayBackend::new(
            MemBackend::new(vec![0u8; 4]),
            Duration::from_millis(5),
            Duration::ZERO,
        );
        let t0 = std::time::Instant::now();
        b.get(0..4).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
