//! Compression-pipeline configuration — the artifact the offline auto-tuner
//! produces and the online compressor consumes (Fig. 1's "optimized
//! configuration settings").

use cliz_grid::{FusionSpec, Shape};
use cliz_predict::Fitting;

/// Periodic-extraction setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Periodicity {
    /// No periodic split.
    None,
    /// Split along `time_axis` with the given period length.
    Extract { time_axis: usize, period: usize },
}

impl Periodicity {
    pub fn label(&self) -> String {
        match self {
            Periodicity::None => "No".to_string(),
            Periodicity::Extract { period, .. } => period.to_string(),
        }
    }
}

/// One fully-specified compression pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Axis permutation applied before prediction (paper's "sequence of
    /// dimensions"; `perm[i]` = source axis landing at position `i`).
    pub permutation: Vec<usize>,
    /// Dimension fusion applied on the permuted shape.
    pub fusion: FusionSpec,
    /// Fitting family for the interpolation predictor.
    pub fitting: Fitting,
    /// Quantization-bin classification + multi-Huffman (Sec. VI-E).
    pub classification: bool,
    /// Classification threshold λ (Theorem 2's optimum by default).
    pub lambda: f64,
    /// Periodic component extraction (Sec. VI-D).
    pub periodicity: Periodicity,
    /// Template error bound as a multiple of the user bound (encode-side
    /// only: the residual is taken against the *reconstructed* template, so
    /// any factor keeps the user contract — this knob trades template bits
    /// against residual smoothness; 1.0 is the default operating point and
    /// `ablation_template_eb` sweeps it).
    pub template_eb_factor: f64,
    /// Use the dataset's mask map for prediction and encoding (Sec. VI-B).
    /// Per the paper this is the user's call, not the tuner's.
    pub use_mask: bool,
}

impl PipelineConfig {
    /// A sensible identity pipeline for `ndim`-dimensional data: no
    /// permutation/fusion, cubic fitting, no classification, no periodicity,
    /// mask honoured when provided.
    pub fn default_for(ndim: usize) -> Self {
        Self {
            permutation: (0..ndim).collect(),
            fusion: FusionSpec::none(),
            fitting: Fitting::Cubic,
            classification: false,
            lambda: cliz_quant::classify::optimal_lambda(),
            periodicity: Periodicity::None,
            template_eb_factor: 1.0,
            use_mask: true,
        }
    }

    /// Validates against a concrete shape.
    pub fn validate(&self, shape: &Shape) -> Result<(), crate::error::ClizError> {
        use crate::error::ClizError;
        let ndim = shape.ndim();
        if self.permutation.len() != ndim {
            return Err(ClizError::BadConfig("permutation arity mismatch"));
        }
        let mut seen = vec![false; ndim];
        for &p in &self.permutation {
            if p >= ndim || seen[p] {
                return Err(ClizError::BadConfig("invalid permutation"));
            }
            seen[p] = true;
        }
        if !self.fusion.is_none() && self.fusion.start + self.fusion.len > ndim {
            return Err(ClizError::BadConfig("fusion out of range"));
        }
        if let Periodicity::Extract { time_axis, period } = self.periodicity {
            if time_axis >= ndim {
                return Err(ClizError::BadConfig("time axis out of range"));
            }
            if period < 2 || period >= shape.dim(time_axis) {
                return Err(ClizError::BadConfig("period out of range"));
            }
        }
        if !(0.0..1.0).contains(&self.lambda) {
            return Err(ClizError::BadConfig("lambda out of range"));
        }
        if !(self.template_eb_factor > 0.0 && self.template_eb_factor.is_finite()) {
            return Err(ClizError::BadConfig("template eb factor must be positive"));
        }
        Ok(())
    }

    /// Paper-style permutation label, e.g. `"201"`.
    pub fn permutation_label(&self) -> String {
        self.permutation.iter().map(|p| p.to_string()).collect()
    }

    /// Serializes to the shareable `key = value` text form used by the CLI's
    /// per-climate-model configuration files (Fig. 1's offline artifact).
    pub fn to_config_string(&self) -> String {
        let mut s = String::new();
        s.push_str("# CliZ pipeline configuration (offline auto-tuning artifact)\n");
        s.push_str(&format!("permutation = {}\n", self.permutation_label()));
        s.push_str(&format!("fusion = {}\n", self.fusion.label()));
        s.push_str(&format!("fitting = {}\n", self.fitting.label()));
        s.push_str(&format!("classification = {}\n", self.classification));
        s.push_str(&format!("lambda = {}\n", self.lambda));
        match self.periodicity {
            Periodicity::None => s.push_str("periodicity = none\n"),
            Periodicity::Extract { time_axis, period } => {
                s.push_str(&format!("time_axis = {time_axis}\n"));
                s.push_str(&format!("period = {period}\n"));
            }
        }
        s.push_str(&format!("template_eb_factor = {}\n", self.template_eb_factor));
        s.push_str(&format!("use_mask = {}\n", self.use_mask));
        s
    }

    /// Parses [`PipelineConfig::to_config_string`] output. Unknown keys are
    /// rejected so typos surface immediately.
    pub fn from_config_string(text: &str) -> Result<Self, crate::error::ClizError> {
        use crate::error::ClizError;
        let bad = |_: &'static str| ClizError::BadConfig("unparsable configuration file");
        let mut permutation: Option<Vec<usize>> = None;
        let mut fusion = cliz_grid::FusionSpec::none();
        let mut fitting = Fitting::Cubic;
        let mut classification = false;
        let mut lambda = cliz_quant::classify::optimal_lambda();
        let mut time_axis: Option<usize> = None;
        let mut period: Option<usize> = None;
        let mut template_eb_factor = 1.0f64;
        let mut use_mask = true;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(ClizError::BadConfig("expected key = value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "permutation" => {
                    let digits: Result<Vec<usize>, _> = value
                        .chars()
                        .map(|c| c.to_digit(10).map(|d| d as usize).ok_or(()))
                        .collect();
                    permutation = Some(digits.map_err(|_| bad("permutation"))?);
                }
                "fusion" => {
                    if value == "No" || value == "none" {
                        fusion = cliz_grid::FusionSpec::none();
                    } else {
                        let axes: Result<Vec<usize>, _> = value
                            .split('&')
                            .map(|a| a.trim().parse::<usize>())
                            .collect();
                        let axes = axes.map_err(|_| bad("fusion"))?;
                        if axes.len() < 2
                            || !axes.windows(2).all(|w| w[1] == w[0] + 1)
                        {
                            return Err(ClizError::BadConfig("fusion axes must be adjacent"));
                        }
                        fusion = cliz_grid::FusionSpec {
                            start: axes[0],
                            len: axes.len(),
                        };
                    }
                }
                "fitting" => {
                    fitting = match value {
                        "Linear" | "linear" => Fitting::Linear,
                        "Cubic" | "cubic" => Fitting::Cubic,
                        _ => return Err(ClizError::BadConfig("unknown fitting")),
                    }
                }
                "classification" => {
                    classification = value.parse().map_err(|_| bad("classification"))?
                }
                "lambda" => lambda = value.parse().map_err(|_| bad("lambda"))?,
                "periodicity" if value == "none" => {}
                "time_axis" => time_axis = Some(value.parse().map_err(|_| bad("time_axis"))?),
                "period" => period = Some(value.parse().map_err(|_| bad("period"))?),
                "template_eb_factor" => {
                    template_eb_factor = value.parse().map_err(|_| bad("template_eb_factor"))?
                }
                "use_mask" => use_mask = value.parse().map_err(|_| bad("use_mask"))?,
                _ => return Err(ClizError::BadConfig("unknown configuration key")),
            }
        }
        let permutation = permutation.ok_or(ClizError::BadConfig("missing permutation"))?;
        let periodicity = match (time_axis, period) {
            (Some(a), Some(p)) => Periodicity::Extract {
                time_axis: a,
                period: p,
            },
            (None, None) => Periodicity::None,
            _ => return Err(ClizError::BadConfig("time_axis and period go together")),
        };
        Ok(Self {
            permutation,
            fusion,
            fitting,
            classification,
            lambda,
            periodicity,
            template_eb_factor,
            use_mask,
        })
    }

    /// One-line summary matching the paper's Table IV/V/VI rows.
    pub fn describe(&self) -> String {
        format!(
            "period={} class={} perm={} fusion={} fit={} mask={}",
            self.periodicity.label(),
            if self.classification { "Yes" } else { "No" },
            self.permutation_label(),
            self.fusion.label(),
            self.fitting.label(),
            if self.use_mask { "Yes" } else { "No" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        let shape = Shape::new(&[4, 5, 6]);
        PipelineConfig::default_for(3).validate(&shape).unwrap();
    }

    #[test]
    fn bad_permutation_rejected() {
        let shape = Shape::new(&[4, 5]);
        let mut c = PipelineConfig::default_for(2);
        c.permutation = vec![0, 0];
        assert!(c.validate(&shape).is_err());
        c.permutation = vec![0];
        assert!(c.validate(&shape).is_err());
    }

    #[test]
    fn bad_fusion_rejected() {
        let shape = Shape::new(&[4, 5]);
        let mut c = PipelineConfig::default_for(2);
        c.fusion = FusionSpec { start: 1, len: 2 };
        assert!(c.validate(&shape).is_err());
    }

    #[test]
    fn bad_period_rejected() {
        let shape = Shape::new(&[10, 5]);
        let mut c = PipelineConfig::default_for(2);
        c.periodicity = Periodicity::Extract {
            time_axis: 0,
            period: 10,
        };
        assert!(c.validate(&shape).is_err(), "period == axis length");
        c.periodicity = Periodicity::Extract {
            time_axis: 2,
            period: 3,
        };
        assert!(c.validate(&shape).is_err(), "axis out of range");
        c.periodicity = Periodicity::Extract {
            time_axis: 0,
            period: 5,
        };
        assert!(c.validate(&shape).is_ok());
    }

    #[test]
    fn config_string_roundtrip() {
        let mut c = PipelineConfig::default_for(3);
        c.permutation = vec![2, 0, 1];
        c.fusion = FusionSpec { start: 0, len: 2 };
        c.fitting = cliz_predict::Fitting::Linear;
        c.classification = true;
        c.lambda = 0.35;
        c.periodicity = Periodicity::Extract {
            time_axis: 2,
            period: 12,
        };
        c.use_mask = false;
        let text = c.to_config_string();
        let back = PipelineConfig::from_config_string(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn config_string_roundtrip_defaults() {
        let c = PipelineConfig::default_for(4);
        let back = PipelineConfig::from_config_string(&c.to_config_string()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn config_string_rejects_garbage() {
        assert!(PipelineConfig::from_config_string("nonsense").is_err());
        assert!(PipelineConfig::from_config_string("permutation = 01\nwat = 1").is_err());
        assert!(PipelineConfig::from_config_string("fusion = 0&2\npermutation = 012").is_err());
        assert!(
            PipelineConfig::from_config_string("permutation = 012\ntime_axis = 1").is_err(),
            "time_axis without period"
        );
    }

    #[test]
    fn describe_matches_paper_style() {
        let mut c = PipelineConfig::default_for(3);
        c.permutation = vec![2, 0, 1];
        c.fusion = FusionSpec { start: 1, len: 2 };
        c.classification = true;
        c.periodicity = Periodicity::Extract {
            time_axis: 2,
            period: 12,
        };
        let d = c.describe();
        assert!(d.contains("period=12"));
        assert!(d.contains("perm=201"));
        assert!(d.contains("fusion=1&2"));
        assert!(d.contains("class=Yes"));
    }
}
