//! Reusable scratch buffers for the hot compression/decompression path.
//!
//! One `compress_plain` call needs a working copy of the field, a symbol
//! grid of the same extent, and (for masked data) a gathered valid-symbol
//! vector — three large allocations that the slab loop of
//! [`crate::chunked`] used to pay *per slab*. A [`ScratchArena`] keeps the
//! backing `Vec`s alive between calls: callers take a cleared buffer, use
//! it, and hand it back, so steady-state compression of a chunked container
//! touches the allocator only while the arena warms up.
//!
//! The arena is deliberately dumb: plain `Vec` recycling, no size classes,
//! no interior mutability. Each worker thread of the chunked pool owns its
//! own arena (`ScratchArena` is `Send` but not shared), which keeps the hot
//! path free of locks and the output bytes trivially deterministic.

/// A pool of reusable `f32`/`u32` buffers. See the module docs.
///
/// Buffers returned by `take_*` are empty (`len == 0`) but retain the
/// capacity of whatever call recycled them; `recycle_*` returns a buffer to
/// the pool. Dropping the arena drops every pooled buffer.
#[derive(Debug, Default)]
pub struct ScratchArena {
    f32_pool: Vec<Vec<f32>>,
    u32_pool: Vec<Vec<u32>>,
}

impl ScratchArena {
    /// An empty arena. The first `take_*` calls allocate fresh buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty `f32` buffer from the pool (or a fresh one).
    pub fn take_f32(&mut self) -> Vec<f32> {
        let mut v = self.f32_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Takes an empty `u32` buffer from the pool (or a fresh one).
    pub fn take_u32(&mut self) -> Vec<u32> {
        let mut v = self.u32_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn recycle_f32(&mut self, v: Vec<f32>) {
        self.f32_pool.push(v);
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn recycle_u32(&mut self, v: Vec<u32>) {
        self.u32_pool.push(v);
    }

    /// Number of buffers currently pooled, `(f32, u32)` — test/diagnostic
    /// introspection only.
    pub fn pooled(&self) -> (usize, usize) {
        (self.f32_pool.len(), self.u32_pool.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_with_capacity() {
        let mut arena = ScratchArena::new();
        let mut b = arena.take_f32();
        b.resize(1024, 1.5);
        let cap = b.capacity();
        arena.recycle_f32(b);
        assert_eq!(arena.pooled(), (1, 0));
        let b2 = arena.take_f32();
        assert!(b2.is_empty(), "recycled buffer must come back cleared");
        assert!(b2.capacity() >= cap, "capacity must survive recycling");
        assert_eq!(arena.pooled(), (0, 0));
    }

    #[test]
    fn pools_are_typed_independently() {
        let mut arena = ScratchArena::new();
        arena.recycle_u32(vec![1, 2, 3]);
        assert_eq!(arena.pooled(), (0, 1));
        assert!(arena.take_f32().is_empty());
        assert_eq!(arena.pooled(), (0, 1), "f32 take must not drain u32 pool");
        assert!(arena.take_u32().is_empty());
        assert_eq!(arena.pooled(), (0, 0));
    }
}
