//! Offline auto-tuning (Sec. VI-A, Fig. 2).
//!
//! The tuner samples 2^n blocks (⅓/⅔ anchors) of the training field, then
//! compresses the sample under **every** candidate pipeline — all
//! permutations × fusions × fitting families × classification on/off ×
//! periodic extraction on/off (when a period is detected) — and ranks them by
//! estimated compression ratio. For a 3-D periodic dataset that is the
//! paper's 192 pipelines; without periodicity, 96.
//!
//! The chosen [`PipelineConfig`] is the per-climate-model artifact users
//! reuse for every field/snapshot of the same model.

use crate::config::{Periodicity, PipelineConfig};
use crate::error::ClizError;
use cliz_fft::{estimate_period, PeriodSpec};
use cliz_grid::{sample_blocks, FusionSpec, Grid, MaskMap, SampleSpec, Shape};
use cliz_predict::Fitting;
use cliz_quant::ErrorBound;

/// Auto-tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct TuneSpec {
    /// Sample volume / full volume, in (0, 1]. The paper uses 1% by default
    /// and shows 0.1% loses only ~3% compression ratio (Table IV).
    pub sampling_rate: f64,
    /// Which axis carries time, if any (dataset metadata). Periodic
    /// candidates are only generated when this is set *and* the FFT detector
    /// finds a significant period.
    pub time_axis: Option<usize>,
    /// Error bound the pipelines are evaluated under.
    pub bound: ErrorBound,
}

impl TuneSpec {
    pub fn new(bound: ErrorBound) -> Self {
        Self {
            sampling_rate: 0.01,
            time_axis: None,
            bound,
        }
    }
}

/// One evaluated candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub config: PipelineConfig,
    /// Compression ratio measured on the sample.
    pub est_ratio: f64,
    /// Sample compression wall time in seconds.
    pub seconds: f64,
}

/// Auto-tuning outcome.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The winning pipeline.
    pub best: PipelineConfig,
    /// Every candidate, sorted by descending estimated ratio.
    pub ranking: Vec<Candidate>,
    /// FFT-detected period along `time_axis`, if any.
    pub period_detected: Option<usize>,
    /// Points in the sampled grid.
    pub sample_points: usize,
    /// Total tuning wall time in seconds.
    pub seconds: f64,
}

/// Enumerates every candidate pipeline for a shape (paper Sec. VII-C2).
pub fn enumerate_pipelines(
    ndim: usize,
    period: Option<(usize, usize)>,
    use_mask: bool,
) -> Vec<PipelineConfig> {
    let mut periodicities = vec![Periodicity::None];
    if let Some((axis, p)) = period {
        periodicities.push(Periodicity::Extract {
            time_axis: axis,
            period: p,
        });
    }
    let mut out = Vec::new();
    for &periodicity in &periodicities {
        for &classification in &[false, true] {
            for perm in Shape::all_permutations(ndim) {
                for fusion in FusionSpec::candidates(ndim) {
                    for &fitting in &[Fitting::Linear, Fitting::Cubic] {
                        out.push(PipelineConfig {
                            permutation: perm.clone(),
                            fusion,
                            fitting,
                            classification,
                            lambda: cliz_quant::classify::optimal_lambda(),
                            periodicity,
                            template_eb_factor: 1.0,
                            use_mask,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Heuristic "fast tune": instead of the exhaustive pipeline sweep, pick the
/// permutation directly from measured per-axis smoothness (roughest axis
/// first, so fine-grained prediction lands on the smoothest axes — the
/// Sec. V-B insight applied greedily), then test only the small candidate
/// set {fitting × classification × periodicity} on the sample.
///
/// Use when the paper's "strict requirement on the total running time"
/// applies: 8 sample compressions instead of up to 192.
pub fn autotune_fast(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    spec: TuneSpec,
) -> Result<TuneResult, ClizError> {
    let t0 = std::time::Instant::now();
    let all_valid = MaskMap::all_valid(data.shape().clone());
    let mask_ref = mask.unwrap_or(&all_valid);
    let use_mask = mask.is_some_and(|m| !m.is_all_valid());

    let period_detected = spec.time_axis.and_then(|axis| {
        estimate_period(data, mask_ref, axis, PeriodSpec::default()).period
    });

    // Roughest axis first: the interpolation sweep makes ~2^i / (2^n − 1) of
    // its predictions along the i-th processed dimension, so later = more,
    // and later should be smoother.
    let stats = cliz_grid::dimension_smoothness(data, mask_ref);
    let mut permutation = cliz_grid::smoothness_order(&stats);
    permutation.reverse();

    let sample_spec = match (spec.time_axis, period_detected) {
        (Some(axis), Some(p)) => {
            SampleSpec::with_axis_floor(spec.sampling_rate, axis, p.saturating_mul(3))
        }
        _ => SampleSpec::new(spec.sampling_rate),
    };
    let sampled = sample_blocks(data, mask_ref, sample_spec);
    let sample_points = sampled.data.len();

    let mut candidates = Vec::new();
    let mut periodicities = vec![Periodicity::None];
    if let (Some(axis), Some(p)) = (spec.time_axis, period_detected) {
        if p <= sampled.data.shape().dim(axis) / 2 {
            periodicities.push(Periodicity::Extract {
                time_axis: axis,
                period: p,
            });
        }
    }
    for &periodicity in &periodicities {
        for &classification in &[false, true] {
            for &fitting in &[Fitting::Linear, Fitting::Cubic] {
                candidates.push(PipelineConfig {
                    permutation: permutation.clone(),
                    fusion: FusionSpec::none(),
                    fitting,
                    classification,
                    lambda: cliz_quant::classify::optimal_lambda(),
                    periodicity,
                    template_eb_factor: 1.0,
                    use_mask,
                });
            }
        }
    }

    let original_bytes = sample_points * std::mem::size_of::<f32>();
    let mut ranking = Vec::with_capacity(candidates.len());
    for config in candidates {
        let c0 = std::time::Instant::now();
        let bytes = crate::compress(&sampled.data, Some(&sampled.mask), spec.bound, &config)?;
        ranking.push(Candidate {
            config,
            est_ratio: original_bytes as f64 / bytes.len() as f64,
            seconds: c0.elapsed().as_secs_f64(),
        });
    }
    ranking.sort_by(|a, b| b.est_ratio.total_cmp(&a.est_ratio));

    let mut best = ranking
        .first()
        .ok_or(ClizError::BadConfig("autotune: no candidate pipelines"))?
        .config
        .clone();
    if let (Periodicity::Extract { .. }, Some(axis), Some(p)) =
        (best.periodicity, spec.time_axis, period_detected)
    {
        best.periodicity = Periodicity::Extract {
            time_axis: axis,
            period: p,
        };
    }

    Ok(TuneResult {
        best,
        ranking,
        period_detected,
        sample_points,
        seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Runs the offline auto-tuning stage.
pub fn autotune(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    spec: TuneSpec,
) -> Result<TuneResult, ClizError> {
    let t0 = std::time::Instant::now();
    let all_valid = MaskMap::all_valid(data.shape().clone());
    let mask_ref = mask.unwrap_or(&all_valid);

    // Period detection runs on the full data (cheap: a few FFT rows); the
    // paper reports exactly this as the "constant increase in sampling time".
    let period_detected = spec.time_axis.and_then(|axis| {
        estimate_period(data, mask_ref, axis, PeriodSpec::default()).period
    });

    // Block sampling. When a period was detected, floor the time axis at
    // three periods so periodic candidates stay evaluable at low rates
    // (the paper's Table IV keeps periodicity=12 down to 0.001% sampling).
    let sample_spec = match (spec.time_axis, period_detected) {
        (Some(axis), Some(p)) => {
            SampleSpec::with_axis_floor(spec.sampling_rate, axis, p.saturating_mul(3))
        }
        _ => SampleSpec::new(spec.sampling_rate),
    };
    let sampled = sample_blocks(data, mask_ref, sample_spec);
    let s_data = sampled.data;
    let s_mask = sampled.mask;
    let sample_points = s_data.len();
    let use_mask = mask.is_some_and(|m| !m.is_all_valid());

    // Candidate set. Periodic candidates need the period to fit inside the
    // sample's (possibly truncated) time axis.
    let period_for_sample = match (spec.time_axis, period_detected) {
        (Some(axis), Some(p)) if p <= s_data.shape().dim(axis) / 2 => Some((axis, p)),
        _ => None,
    };
    let candidates = enumerate_pipelines(data.shape().ndim(), period_for_sample, use_mask);

    // Candidates are independent compressions of the same sample — fan them
    // across the rayon pool (the offline stage is embarrassingly parallel).
    // Results are collected in order, so the ranking stays deterministic.
    use rayon::prelude::*;
    let original_bytes = sample_points * std::mem::size_of::<f32>();
    let mut ranking: Vec<Candidate> = candidates
        .into_par_iter()
        .map(|config| {
            let c0 = std::time::Instant::now();
            let bytes = crate::compress(&s_data, Some(&s_mask), spec.bound, &config)?;
            Ok(Candidate {
                config,
                est_ratio: original_bytes as f64 / bytes.len() as f64,
                seconds: c0.elapsed().as_secs_f64(),
            })
        })
        .collect::<Result<_, ClizError>>()?;
    ranking.sort_by(|a, b| b.est_ratio.total_cmp(&a.est_ratio));

    // Promote the winner's periodicity to the *full-data* period (the sample
    // gate above only affected evaluation feasibility).
    let mut best = ranking
        .first()
        .ok_or(ClizError::BadConfig("autotune: no candidate pipelines"))?
        .config
        .clone();
    if let (Periodicity::Extract { .. }, Some(axis), Some(p)) =
        (best.periodicity, spec.time_axis, period_detected)
    {
        best.periodicity = Periodicity::Extract {
            time_axis: axis,
            period: p,
        };
    }

    Ok(TuneResult {
        best,
        ranking,
        period_detected,
        sample_points,
        seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_counts_match_paper() {
        // 3-D with periodicity: 2 × 2 × 6 × 4 × 2 = 192 (paper Sec. VII-C2).
        assert_eq!(enumerate_pipelines(3, Some((2, 12)), true).len(), 192);
        // Without periodicity: 96.
        assert_eq!(enumerate_pipelines(3, None, false).len(), 96);
        // 2-D: 1 × 2 × 2 × 2 × 2 = 16 / 32.
        assert_eq!(enumerate_pipelines(2, None, false).len(), 16);
        assert_eq!(enumerate_pipelines(2, Some((1, 4)), false).len(), 32);
    }

    /// Strongly anisotropic data: the tuner must prefer an orientation that
    /// runs fine-grained prediction along the smooth axis.
    #[test]
    fn tuner_picks_a_working_pipeline_on_anisotropic_data() {
        let g = Grid::from_fn(Shape::new(&[20, 40, 48]), |c| {
            // axis 0 rough (big jumps), axes 1/2 smooth.
            (c[0] as f32 * 13.7).sin() * 50.0
                + (c[1] as f32 * 0.05).sin()
                + (c[2] as f32 * 0.04).cos()
        });
        let spec = TuneSpec {
            sampling_rate: 0.2,
            time_axis: None,
            bound: ErrorBound::Abs(1e-3),
        };
        let result = autotune(&g, None, spec).unwrap();
        assert_eq!(result.ranking.len(), 96);
        assert!(result.ranking[0].est_ratio >= result.ranking.last().unwrap().est_ratio);
        // The chosen pipeline must actually compress the full data correctly.
        let bytes = crate::compress(&g, None, ErrorBound::Abs(1e-3), &result.best).unwrap();
        let out = crate::decompress(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn periodic_data_generates_periodic_candidates() {
        let g = Grid::from_fn(Shape::new(&[12, 144]), |c| {
            let phase = 2.0 * std::f64::consts::PI * (c[1] % 12) as f64 / 12.0;
            (c[0] as f64 + 10.0 * phase.sin()) as f32
        });
        let spec = TuneSpec {
            sampling_rate: 1.0,
            time_axis: Some(1),
            bound: ErrorBound::Abs(1e-3),
        };
        let result = autotune(&g, None, spec).unwrap();
        assert_eq!(result.period_detected, Some(12));
        assert_eq!(result.ranking.len(), 32); // periodic candidates present
        // On strongly periodic data the winner should use extraction.
        assert!(
            matches!(result.best.periodicity, Periodicity::Extract { period: 12, .. }),
            "winner: {}",
            result.best.describe()
        );
    }

    #[test]
    fn aperiodic_data_skips_periodic_candidates() {
        let mut state = 5u64;
        let g = Grid::from_fn(Shape::new(&[8, 64]), |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f32 / 1e6
        });
        let spec = TuneSpec {
            sampling_rate: 1.0,
            time_axis: Some(1),
            bound: ErrorBound::Abs(1e-4),
        };
        let result = autotune(&g, None, spec).unwrap();
        assert_eq!(result.period_detected, None);
        assert_eq!(result.ranking.len(), 16);
    }

    #[test]
    fn fast_tune_orients_anisotropic_data() {
        // Rough axis 0 must be processed first (fewest predictions).
        let g = Grid::from_fn(Shape::new(&[16, 32, 40]), |c| {
            (c[0] as f32 * 9.7).sin() * 40.0 + c[1] as f32 * 0.01 + c[2] as f32 * 0.02
        });
        let spec = TuneSpec {
            sampling_rate: 0.2,
            time_axis: None,
            bound: ErrorBound::Abs(1e-3),
        };
        let fast = autotune_fast(&g, None, spec).unwrap();
        assert_eq!(fast.best.permutation[0], 0, "rough axis must lead");
        assert!(fast.ranking.len() <= 8);
        // And the result must round-trip within bound on the full data.
        let bytes = crate::compress(&g, None, ErrorBound::Abs(1e-3), &fast.best).unwrap();
        let out = crate::decompress(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn fast_tune_much_cheaper_than_full() {
        let g = Grid::from_fn(Shape::new(&[24, 24, 96]), |c| {
            let phase = 2.0 * std::f64::consts::PI * (c[2] % 12) as f64 / 12.0;
            (c[0] as f64 + phase.sin() * 4.0 + c[1] as f64 * 0.2) as f32
        });
        let spec = TuneSpec {
            sampling_rate: 0.05,
            time_axis: Some(2),
            bound: ErrorBound::Abs(1e-3),
        };
        let fast = autotune_fast(&g, None, spec).unwrap();
        let full = autotune(&g, None, spec).unwrap();
        assert!(fast.ranking.len() * 10 <= full.ranking.len());
        // Fast should land within 25% of the exhaustive winner's estimate.
        assert!(
            fast.ranking[0].est_ratio > 0.75 * full.ranking[0].est_ratio,
            "fast {} vs full {}",
            fast.ranking[0].est_ratio,
            full.ranking[0].est_ratio
        );
    }

    #[test]
    fn lower_rate_samples_fewer_points() {
        let g = Grid::from_fn(Shape::new(&[40, 40]), |c| (c[0] + c[1]) as f32);
        let hi = autotune(
            &g,
            None,
            TuneSpec {
                sampling_rate: 1.0,
                time_axis: None,
                bound: ErrorBound::Abs(1e-2),
            },
        )
        .unwrap();
        let lo = autotune(
            &g,
            None,
            TuneSpec {
                sampling_rate: 0.05,
                time_axis: None,
                bound: ErrorBound::Abs(1e-2),
            },
        )
        .unwrap();
        assert!(lo.sample_points < hi.sample_points);
    }
}
