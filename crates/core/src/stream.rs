//! Streaming chunked compression: constant-memory writing to any `io::Write`
//! sink, with a trailer-based index for later random access.
//!
//! [`crate::chunked`] needs the whole grid in memory and patches an offset
//! table at the front. Simulation pipelines instead *stream*: each timestep
//! slab is produced, compressed, and appended, and the file is finalized
//! once. This module provides that writer plus a reader that parses the
//! trailing index.
//!
//! Format (`CLZS`):
//! `magic u32 | ver u8 | ndim u8 | dims[1..] (slab shape) ndim−1 × u64 |
//! eb f64 | chunks… (each: len u64 + CLIZ container) |
//! trailer: offsets n×u64 | slab_lens n×u64 | n u32 | trailer_magic u32`.
//!
//! The trailer is deliberately parsed tail-first (the writer cannot seek),
//! so the symmetric write/read pair xtask rule R14 replays is the *header*:
//! [`ChunkedWriter::new`] against [`parse_header`].

use crate::bytesio::{ByteReader, ByteWriter};
use crate::compressor::{compress, decompress};
use crate::config::{Periodicity, PipelineConfig};
use crate::error::ClizError;
use cliz_format::spec::{CLZS, CLZS_TRAILER_MAGIC};
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_quant::ErrorBound;
use std::io::Write;

/// Incremental writer: feed slabs (leading-axis chunks) one at a time.
pub struct ChunkedWriter<W: Write> {
    sink: W,
    /// Shape of one slab *record* (the non-leading dims); every slab must
    /// match in these and may vary in its leading extent.
    record_dims: Vec<usize>,
    eb_abs: f64,
    config: PipelineConfig,
    offsets: Vec<u64>,
    slab_lens: Vec<u64>,
    written: u64,
    finished: bool,
}

impl<W: Write> ChunkedWriter<W> {
    /// Starts a stream. `record_dims` is the shape of one leading-axis
    /// record (e.g. `[lat, lon]` for `[time, lat, lon]` data); `eb_abs` is
    /// the absolute bound every slab honours.
    pub fn new(
        mut sink: W,
        record_dims: &[usize],
        eb_abs: f64,
        config: PipelineConfig,
    ) -> Result<Self, ClizError> {
        if record_dims.is_empty() || record_dims.iter().any(|&d| d == 0) {
            return Err(ClizError::BadConfig("bad record shape"));
        }
        if !(eb_abs > 0.0) {
            return Err(ClizError::BadConfig("bad error bound"));
        }
        let mut header = ByteWriter::new();
        header.magic(&CLZS);
        header.u8((record_dims.len() + 1) as u8);
        for &d in record_dims {
            header.u64(d as u64);
        }
        header.f64(eb_abs);
        let header = header.finish();
        sink.write_all(&header)
            .map_err(|e| ClizError::Backend(e.to_string()))?;
        Ok(Self {
            sink,
            record_dims: record_dims.to_vec(),
            eb_abs,
            config,
            offsets: Vec::new(),
            slab_lens: Vec::new(),
            written: header.len() as u64,
            finished: false,
        })
    }

    /// Compresses and appends one slab of shape `[k, record_dims...]`.
    pub fn write_slab(
        &mut self,
        slab: &Grid<f32>,
        mask: Option<&MaskMap>,
    ) -> Result<(), ClizError> {
        if self.finished {
            return Err(ClizError::BadConfig("writer already finished"));
        }
        let dims = slab.shape().dims();
        if dims.len() != self.record_dims.len() + 1
            || dims[1..] != self.record_dims[..]
        {
            return Err(ClizError::BadConfig("slab shape mismatch"));
        }
        // Per-slab config validation, degrading periodicity like chunked().
        let mut config = self.config.clone();
        if config.validate(slab.shape()).is_err() {
            config.periodicity = Periodicity::None;
            config.validate(slab.shape())?;
        }
        let blob = compress(slab, mask, ErrorBound::Abs(self.eb_abs), &config)?;
        self.offsets.push(self.written);
        self.slab_lens.push(dims[0] as u64);
        let mut framed = ByteWriter::new();
        framed.u64(blob.len() as u64);
        framed.raw(&blob);
        let framed = framed.finish();
        self.sink
            .write_all(&framed)
            .map_err(|e| ClizError::Backend(e.to_string()))?;
        self.written = self
            .written
            .checked_add(framed.len() as u64)
            .ok_or(ClizError::Corrupt("stream length overflows u64"))?;
        Ok(())
    }

    /// Writes the trailer index and returns the sink.
    pub fn finish(mut self) -> Result<W, ClizError> {
        self.finished = true;
        let mut trailer = ByteWriter::new();
        for &o in &self.offsets {
            trailer.u64(o);
        }
        for &l in &self.slab_lens {
            trailer.u64(l);
        }
        trailer.u32(self.offsets.len() as u32);
        trailer.u32(CLZS_TRAILER_MAGIC);
        self.sink
            .write_all(&trailer.finish())
            .map_err(|e| ClizError::Backend(e.to_string()))?;
        self.sink
            .flush()
            .map_err(|e| ClizError::Backend(e.to_string()))?;
        Ok(self.sink)
    }

    /// Slabs written so far.
    pub fn slabs(&self) -> usize {
        self.offsets.len()
    }
}

/// Reader over a complete stream (any byte slice, e.g. an mmap).
pub struct ChunkedReader<'a> {
    bytes: &'a [u8],
    record_dims: Vec<usize>,
    eb_abs: f64,
    offsets: Vec<u64>,
    slab_lens: Vec<u64>,
}

/// Parses the fixed CLZS header (the write-order mirror of
/// [`ChunkedWriter::new`]); the trailer is handled separately by
/// [`ChunkedReader::open`] because it is located from the file's tail.
fn parse_header(bytes: &[u8]) -> Result<(Vec<usize>, f64), ClizError> {
    let mut r = ByteReader::new(bytes);
    r.expect_magic(&CLZS)?;
    let ndim = r.u8()? as usize;
    if ndim < 2 || ndim > cliz_grid::shape::MAX_DIMS {
        return Err(ClizError::Corrupt("bad rank"));
    }
    let mut record_dims = Vec::with_capacity(ndim - 1);
    for _ in 0..ndim - 1 {
        record_dims.push(r.u64()? as usize);
    }
    if record_dims.iter().any(|&d| d == 0) {
        return Err(ClizError::Corrupt("zero-sized record dimension"));
    }
    let eb_abs = r.f64()?;
    Ok((record_dims, eb_abs))
}

impl<'a> ChunkedReader<'a> {
    pub fn open(bytes: &'a [u8]) -> Result<Self, ClizError> {
        let (record_dims, eb_abs) = parse_header(bytes)?;

        // Trailer.
        if bytes.len() < 8 {
            return Err(ClizError::Truncated);
        }
        let tail = bytes.get(bytes.len() - 8..).ok_or(ClizError::Truncated)?;
        let mut tr = ByteReader::new(tail);
        let n = tr.u32()? as usize;
        let tm = tr.u32()?;
        if tm != CLZS_TRAILER_MAGIC {
            return Err(ClizError::Corrupt("missing trailer (incomplete stream?)"));
        }
        // The slab count is untrusted: bound it by what the file can
        // physically hold (16 bytes per slab entry) before any arithmetic
        // or allocation is sized from it.
        if n > bytes.len() / 16 {
            return Err(ClizError::Truncated);
        }
        let trailer_len = n * 16 + 8;
        if bytes.len() < trailer_len {
            return Err(ClizError::Truncated);
        }
        let mut tr = ByteReader::new(
            bytes
                .get(bytes.len() - trailer_len..)
                .ok_or(ClizError::Truncated)?,
        );
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            offsets.push(tr.u64()?);
        }
        let mut slab_lens = Vec::with_capacity(n);
        for _ in 0..n {
            slab_lens.push(tr.u64()?);
        }
        Ok(Self {
            bytes,
            record_dims,
            eb_abs,
            offsets,
            slab_lens,
        })
    }

    pub fn slabs(&self) -> usize {
        self.offsets.len()
    }

    /// Leading-axis extent of each slab.
    pub fn slab_lens(&self) -> &[u64] {
        &self.slab_lens
    }

    /// Total leading-axis extent across all slabs. Saturates rather than
    /// overflowing: the lens come from the untrusted trailer index.
    pub fn total_records(&self) -> usize {
        self.slab_lens
            .iter()
            .fold(0u64, |a, &l| a.saturating_add(l))
            .min(usize::MAX as u64) as usize
    }

    pub fn record_dims(&self) -> &[usize] {
        &self.record_dims
    }

    pub fn eb_abs(&self) -> f64 {
        self.eb_abs
    }

    /// Decompresses slab `i`. `mask` is the slab's own mask (callers derive
    /// it the same way they derived the write-side mask).
    pub fn read_slab(
        &self,
        i: usize,
        mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, ClizError> {
        if i >= self.offsets.len() {
            return Err(ClizError::BadConfig("slab index out of range"));
        }
        let start = self.offsets[i] as usize;
        let frame_end = start.checked_add(8).ok_or(ClizError::Truncated)?;
        let frame = self
            .bytes
            .get(start..frame_end)
            .ok_or(ClizError::Truncated)?;
        let len =
            u64::from_le_bytes(frame.try_into().map_err(|_| ClizError::Truncated)?) as usize;
        let body_end = frame_end.checked_add(len).ok_or(ClizError::Truncated)?;
        let body = self
            .bytes
            .get(frame_end..body_end)
            .ok_or(ClizError::Truncated)?;
        let out = decompress(body, mask)?;
        // The slab payload self-describes its shape; cross-check it against
        // the trailer index so a lying payload cannot reach `read_all`'s
        // concatenation (or callers sizing buffers from `slab_lens`).
        let dims = out.shape().dims();
        if dims.len() != self.record_dims.len() + 1
            || dims[1..] != self.record_dims[..]
            || dims[0] != self.slab_lens[i] as usize
        {
            return Err(ClizError::Corrupt("slab shape disagrees with index"));
        }
        Ok(out)
    }

    /// Decompresses and concatenates every slab.
    pub fn read_all(&self, mask_for: impl Fn(usize) -> Option<MaskMap>) -> Result<Grid<f32>, ClizError> {
        let record = self
            .record_dims
            .iter()
            .try_fold(1usize, |a, &d| a.checked_mul(d))
            .ok_or(ClizError::Corrupt("record size overflows"))?;
        let total = self.total_records();
        // A grid cannot have a zero-sized leading axis: an empty or
        // zero-length index (honest empty stream or corrupt trailer) must
        // surface as an error, not a Shape panic below.
        if total == 0 {
            return Err(ClizError::Corrupt("stream holds no records"));
        }
        // `total` is trailer-derived and untrusted: cap the pre-allocation so
        // a corrupt index cannot force an OOM abort. Per-slab shape
        // validation in `read_slab` rejects a lying index before much data
        // accumulates; honest streams beyond the cap just reallocate.
        let mut out = Vec::with_capacity(total.saturating_mul(record).min(1 << 24));
        for i in 0..self.slabs() {
            let m = mask_for(i);
            let slab = self.read_slab(i, m.as_ref())?;
            out.extend_from_slice(slab.as_slice());
        }
        let mut dims = vec![total];
        dims.extend_from_slice(&self.record_dims);
        Ok(Grid::from_vec(Shape::new(&dims), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab(t0: usize, k: usize, h: usize, w: usize) -> Grid<f32> {
        Grid::from_fn(Shape::new(&[k, h, w]), |c| {
            (((t0 + c[0]) as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() + c[2] as f64 * 0.01)
                as f32
        })
    }

    #[test]
    fn stream_roundtrip_uniform_slabs() {
        let eb = 1e-3;
        let cfg = PipelineConfig::default_for(3);
        let mut w = ChunkedWriter::new(Vec::new(), &[12, 10], eb, cfg).unwrap();
        let mut expected = Vec::new();
        for t in 0..5 {
            let s = slab(t * 4, 4, 12, 10);
            expected.extend_from_slice(s.as_slice());
            w.write_slab(&s, None).unwrap();
        }
        assert_eq!(w.slabs(), 5);
        let bytes = w.finish().unwrap();

        let r = ChunkedReader::open(&bytes).unwrap();
        assert_eq!(r.slabs(), 5);
        assert_eq!(r.total_records(), 20);
        assert_eq!(r.record_dims(), &[12, 10]);
        let all = r.read_all(|_| None).unwrap();
        assert_eq!(all.shape().dims(), &[20, 12, 10]);
        for (a, b) in expected.iter().zip(all.as_slice()) {
            assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn variable_slab_lengths() {
        let cfg = PipelineConfig::default_for(2);
        let mut w = ChunkedWriter::new(Vec::new(), &[8], 1e-3, cfg).unwrap();
        for (t0, k) in [(0usize, 3usize), (3, 7), (10, 1)] {
            let s = Grid::from_fn(Shape::new(&[k, 8]), |c| ((t0 + c[0] + c[1]) as f32).sin());
            w.write_slab(&s, None).unwrap();
        }
        let bytes = w.finish().unwrap();
        let r = ChunkedReader::open(&bytes).unwrap();
        assert_eq!(r.slab_lens(), &[3, 7, 1]);
        assert_eq!(r.total_records(), 11);
        let s1 = r.read_slab(1, None).unwrap();
        assert_eq!(s1.shape().dims(), &[7, 8]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let cfg = PipelineConfig::default_for(3);
        let mut w = ChunkedWriter::new(Vec::new(), &[6, 6], 1e-3, cfg).unwrap();
        let bad = Grid::filled(Shape::new(&[2, 6, 7]), 0.0f32);
        assert!(w.write_slab(&bad, None).is_err());
        let flat = Grid::filled(Shape::new(&[6, 6]), 0.0f32);
        assert!(w.write_slab(&flat, None).is_err());
    }

    #[test]
    fn incomplete_stream_detected() {
        let cfg = PipelineConfig::default_for(2);
        let mut w = ChunkedWriter::new(Vec::new(), &[8], 1e-3, cfg).unwrap();
        w.write_slab(&Grid::filled(Shape::new(&[2, 8]), 1.0f32), None)
            .unwrap();
        let bytes = w.finish().unwrap();
        // Drop the trailer: reader must refuse.
        assert!(matches!(
            ChunkedReader::open(&bytes[..bytes.len() - 9]),
            Err(ClizError::Corrupt(_)) | Err(ClizError::Truncated)
        ));
        assert!(ChunkedReader::open(b"short").is_err());
    }

    #[test]
    fn masked_slabs_roundtrip() {
        let cfg = PipelineConfig::default_for(2);
        let mut w = ChunkedWriter::new(Vec::new(), &[16], 1e-3, cfg).unwrap();
        let make = |k: usize| {
            let mut g = Grid::from_fn(Shape::new(&[k, 16]), |c| (c[0] * 16 + c[1]) as f32 * 0.1);
            let mut valid = vec![true; g.len()];
            for i in 0..g.len() {
                if i % 4 == 0 {
                    g.as_mut_slice()[i] = 1e33;
                    valid[i] = false;
                }
            }
            let m = MaskMap::from_flags(g.shape().clone(), valid);
            (g, m)
        };
        let (g0, m0) = make(3);
        let (g1, m1) = make(3);
        w.write_slab(&g0, Some(&m0)).unwrap();
        w.write_slab(&g1, Some(&m1)).unwrap();
        let bytes = w.finish().unwrap();
        let r = ChunkedReader::open(&bytes).unwrap();
        let back0 = r.read_slab(0, Some(&m0)).unwrap();
        for (i, (a, b)) in g0.as_slice().iter().zip(back0.as_slice()).enumerate() {
            if m0.is_valid(i) {
                assert!((a - b).abs() <= 1e-3 + 1e-9);
            }
        }
        let back1 = r.read_slab(1, Some(&m1)).unwrap();
        assert_eq!(back1.shape().dims(), g1.shape().dims());
    }
}
