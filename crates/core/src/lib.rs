//! CliZ — an error-bounded lossy compressor optimized for climate datasets.
//!
//! This crate is the paper's primary contribution: an SZ3-framework
//! compressor (interpolation prediction → linear-scale quantization →
//! Huffman → lossless backend) extended with four climate-specific
//! optimizations, each individually toggleable for the ablation studies:
//!
//! 1. **mask-map-aware prediction** ([`cliz_predict`], Theorem 1) — invalid
//!    points are neither encoded nor used as references;
//! 2. **dimension permutation & fusion** ([`config::PipelineConfig`]) —
//!    more predictions along smoother dimensions;
//! 3. **periodic component extraction** ([`periodic`]) — FFT-detected period,
//!    template/residual split (MDZ-style bound accounting: the residual is
//!    taken against the *reconstructed* template, so the user bound holds);
//! 4. **quantization-bin classification** ([`cliz_quant::classify()`](cliz_quant::classify()) +
//!    multi-Huffman) — per-horizontal-position shifting and dispersion
//!    grouping with two Huffman trees.
//!
//! The [`autotune`](autotune/index.html) module implements the paper's offline stage: 2^n-block
//! sampling (Sec. VI-A) and exhaustive pipeline search, producing a
//! [`config::PipelineConfig`] reusable across fields/snapshots of the same
//! climate model.
//!
//! # Quick start
//!
//! ```
//! use cliz_core::{compress, decompress, config::PipelineConfig};
//! use cliz_grid::{Grid, Shape};
//! use cliz_quant::ErrorBound;
//!
//! let data = Grid::from_fn(Shape::new(&[16, 32]), |c| (c[0] + c[1]) as f32);
//! let bytes = compress(&data, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2)).unwrap();
//! let recon = decompress(&bytes, None).unwrap();
//! for (a, b) in data.as_slice().iter().zip(recon.as_slice()) {
//!     assert!((a - b).abs() <= 1e-3);
//! }
//! ```

// Decode paths must never panic on untrusted input (see docs/STATIC_ANALYSIS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod autotune;
pub mod bytesio;
pub mod chunked;
pub mod compressor;
pub mod config;
pub mod error;
pub mod periodic;
pub mod pipeline;
pub mod scratch;
pub mod stream;

pub use autotune::{autotune, autotune_fast, TuneResult, TuneSpec};
pub use cliz_grid::cast;
pub use chunked::{
    compress_chunked, compress_chunked_with_threads, decompress_chunk, decompress_chunk_arena,
    decompress_chunk_blob_arena, decompress_chunked, decompress_chunked_with_threads, read_header,
    read_header_prefix, ChunkIndex, ChunkedHeader,
};
pub use scratch::ScratchArena;
pub use stream::{ChunkedReader, ChunkedWriter};
pub use compressor::{
    compress, compress_with_stats, compress_with_stats_arena, decompress, decompress_arena,
    valid_min_max, CompressStats,
};
pub use config::{PipelineConfig, Periodicity};
pub use error::ClizError;
