//! Little-endian byte (de)serialization for the container — re-exported
//! from `cliz-format`, where the cursors live alongside the magic/version
//! registry so every workspace container parses headers the same way.
//! `?` on a cursor read converts [`cliz_format::FormatError`] into
//! [`ClizError`](crate::error::ClizError) via the `From` impl in
//! [`crate::error`].

pub use cliz_format::{HeaderReader as ByteReader, HeaderWriter as ByteWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ClizError;
    use cliz_format::FormatError;

    fn read_u64(bytes: &[u8]) -> Result<u64, ClizError> {
        let mut r = ByteReader::new(bytes);
        Ok(r.u64()?)
    }

    #[test]
    fn truncation_converts_to_cliz_error() {
        let mut w = ByteWriter::new();
        w.u32(1);
        assert_eq!(read_u64(&w.finish()), Err(ClizError::Truncated));
    }

    #[test]
    fn every_format_error_maps_to_its_cliz_twin() {
        for (fe, ce) in [
            (FormatError::Truncated, ClizError::Truncated),
            (FormatError::BadMagic, ClizError::BadMagic),
            (
                FormatError::UnsupportedVersion(9),
                ClizError::UnsupportedVersion(9),
            ),
            (FormatError::Corrupt("x"), ClizError::Corrupt("x")),
        ] {
            assert_eq!(ClizError::from(fe), ce);
        }
    }
}
