//! Minimal little-endian byte (de)serialization helpers for the container.

use crate::error::ClizError;

/// Sequential writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte block.
    pub fn block(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader with explicit truncation errors.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ClizError> {
        let end = self.pos.checked_add(n).ok_or(ClizError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(ClizError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], ClizError> {
        self.take(N)?
            .try_into()
            .map_err(|_| ClizError::Truncated)
    }

    pub fn u8(&mut self) -> Result<u8, ClizError> {
        Ok(self.take_array::<1>()?[0])
    }

    pub fn u32(&mut self) -> Result<u32, ClizError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    pub fn u64(&mut self) -> Result<u64, ClizError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    pub fn f32(&mut self) -> Result<f32, ClizError> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    pub fn f64(&mut self) -> Result<f64, ClizError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Length-prefixed byte block.
    pub fn block(&mut self) -> Result<&'a [u8], ClizError> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(1 << 40);
        w.f32(1.5);
        w.f64(-2.25);
        w.block(b"hello");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert_eq!(r.block().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = ByteWriter::new();
        w.u32(1);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u64().unwrap_err(), ClizError::Truncated);
    }

    #[test]
    fn block_length_checked() {
        let mut w = ByteWriter::new();
        w.u64(1000); // claims 1000 bytes, provides none
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.block().unwrap_err(), ClizError::Truncated);
    }
}
