//! Error taxonomy for the CliZ container.

/// Everything that can go wrong compressing or decompressing.
#[derive(Debug, Clone, PartialEq)]
pub enum ClizError {
    /// Stream does not begin with the CLIZ magic.
    BadMagic,
    /// Stream ended mid-structure.
    Truncated,
    /// Structurally invalid stream.
    Corrupt(&'static str),
    /// Version newer than this library understands.
    UnsupportedVersion(u8),
    /// The stream was compressed with a mask but none was supplied (or the
    /// supplied mask has the wrong shape).
    MaskRequired,
    /// Invalid configuration (bad permutation/fusion for the data's rank…).
    BadConfig(&'static str),
    /// Lossless backend failure.
    Backend(String),
}

impl std::fmt::Display for ClizError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClizError::BadMagic => write!(f, "cliz: bad magic"),
            ClizError::Truncated => write!(f, "cliz: truncated stream"),
            ClizError::Corrupt(what) => write!(f, "cliz: corrupt stream ({what})"),
            ClizError::UnsupportedVersion(v) => write!(f, "cliz: unsupported version {v}"),
            ClizError::MaskRequired => {
                write!(f, "cliz: stream uses a mask map; pass the dataset's mask")
            }
            ClizError::BadConfig(what) => write!(f, "cliz: bad configuration ({what})"),
            ClizError::Backend(what) => write!(f, "cliz: lossless backend error: {what}"),
        }
    }
}

impl std::error::Error for ClizError {}

impl From<cliz_lossless::Error> for ClizError {
    fn from(e: cliz_lossless::Error) -> Self {
        ClizError::Backend(e.to_string())
    }
}

impl From<cliz_format::FormatError> for ClizError {
    fn from(e: cliz_format::FormatError) -> Self {
        match e {
            cliz_format::FormatError::Truncated => ClizError::Truncated,
            cliz_format::FormatError::BadMagic => ClizError::BadMagic,
            cliz_format::FormatError::UnsupportedVersion(v) => ClizError::UnsupportedVersion(v),
            cliz_format::FormatError::Corrupt(what) => ClizError::Corrupt(what),
        }
    }
}
