//! Periodic component extraction (Sec. VI-D).
//!
//! Given a detected period `p` along the time axis, the data is split into a
//! *template* — the per-phase mean, with the time extent shrunk to `p` — and
//! a *residual*. Crucially the residual is taken against the **reconstructed**
//! template (the one the decoder will see), so the user-facing error bound
//! is carried entirely by the residual stage regardless of how lossily the
//! template was stored.

use cliz_grid::{Grid, MaskMap, Shape};

/// Template shape: `dims` with the time axis shrunk to `period`.
pub fn template_shape(shape: &Shape, time_axis: usize, period: usize) -> Shape {
    let mut dims = shape.dims().to_vec();
    dims[time_axis] = period;
    Shape::new(&dims)
}

/// Builds the per-phase mean template. Masked points contribute nothing; a
/// phase-position with no valid contributions gets 0 (and is invalid in the
/// template mask).
pub fn build_template(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    time_axis: usize,
    period: usize,
) -> Grid<f32> {
    let shape = data.shape();
    let t_shape = template_shape(shape, time_axis, period);
    let mut sums = vec![0.0f64; t_shape.len()];
    let mut counts = vec![0u32; t_shape.len()];
    let ndim = shape.ndim();
    let mut coords = vec![0usize; ndim];
    for (i, &v) in data.as_slice().iter().enumerate() {
        if mask.is_some_and(|m| !m.is_valid(i)) {
            continue;
        }
        shape.coords_of(i, &mut coords);
        coords[time_axis] %= period;
        let t_idx = t_shape.index_of(&coords);
        sums[t_idx] += v as f64;
        counts[t_idx] += 1;
    }
    let values: Vec<f32> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { (s / f64::from(c)) as f32 } else { 0.0 })
        .collect();
    Grid::from_vec(t_shape, values)
}

/// Derives the template's validity mask from the data mask: a template
/// position is valid when at least one of its phase occurrences is. Both
/// encoder and decoder call this, so it is never serialized.
pub fn template_mask(
    mask: &MaskMap,
    time_axis: usize,
    period: usize,
) -> MaskMap {
    let shape = mask.shape();
    let t_shape = template_shape(shape, time_axis, period);
    let mut valid = vec![false; t_shape.len()];
    let ndim = shape.ndim();
    let mut coords = vec![0usize; ndim];
    for i in 0..shape.len() {
        if !mask.is_valid(i) {
            continue;
        }
        shape.coords_of(i, &mut coords);
        coords[time_axis] %= period;
        valid[t_shape.index_of(&coords)] = true;
    }
    MaskMap::from_flags(t_shape, valid)
}

/// `residual = data − template[phase]`, with masked points zeroed.
pub fn subtract_template(
    data: &Grid<f32>,
    template: &Grid<f32>,
    mask: Option<&MaskMap>,
    time_axis: usize,
) -> Grid<f32> {
    apply_template(data, template, mask, time_axis, f32::NAN, |d, t| d - t)
}

/// `data = residual + template[phase]` (decoder side). Masked points get
/// `fill_value`.
pub fn add_template(
    residual: &Grid<f32>,
    template: &Grid<f32>,
    mask: Option<&MaskMap>,
    time_axis: usize,
    fill_value: f32,
) -> Grid<f32> {
    apply_template(residual, template, mask, time_axis, fill_value, |r, t| r + t)
}

fn apply_template(
    input: &Grid<f32>,
    template: &Grid<f32>,
    mask: Option<&MaskMap>,
    time_axis: usize,
    fill_value: f32,
    op: impl Fn(f32, f32) -> f32,
) -> Grid<f32> {
    let shape = input.shape();
    let t_shape = template.shape();
    let period = t_shape.dim(time_axis);
    let ndim = shape.ndim();
    let mut coords = vec![0usize; ndim];
    let mut out = Vec::with_capacity(input.len());
    let t_buf = template.as_slice();
    for (i, &v) in input.as_slice().iter().enumerate() {
        if mask.is_some_and(|m| !m.is_valid(i)) {
            out.push(if fill_value.is_nan() { 0.0 } else { fill_value });
            continue;
        }
        shape.coords_of(i, &mut coords);
        coords[time_axis] %= period;
        out.push(op(v, t_buf[t_shape.index_of(&coords)]));
    }
    Grid::from_vec(shape.clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// value = phase pattern + station offset: residual should be tiny.
    fn periodic_data(stations: usize, time: usize, period: usize) -> Grid<f32> {
        Grid::from_fn(Shape::new(&[stations, time]), |c| {
            let phase = (c[1] % period) as f32;
            10.0 * c[0] as f32 + phase * phase
        })
    }

    #[test]
    fn template_is_phase_mean() {
        let g = periodic_data(3, 24, 12);
        let t = build_template(&g, None, 1, 12);
        assert_eq!(t.shape().dims(), &[3, 12]);
        // Perfectly periodic data: template equals any one period.
        for s in 0..3 {
            for r in 0..12 {
                assert_eq!(t.get(&[s, r]), g.get(&[s, r]));
            }
        }
    }

    #[test]
    fn residual_of_perfectly_periodic_data_is_zero() {
        let g = periodic_data(4, 36, 12);
        let t = build_template(&g, None, 1, 12);
        let r = subtract_template(&g, &t, None, 1);
        assert!(r.as_slice().iter().all(|&v| v.abs() < 1e-4));
    }

    #[test]
    fn add_inverts_subtract() {
        let g = Grid::from_fn(Shape::new(&[5, 30]), |c| {
            ((c[0] * 30 + c[1]) as f32 * 0.37).sin() * 9.0
        });
        let t = build_template(&g, None, 1, 6);
        let r = subtract_template(&g, &t, None, 1);
        let back = add_template(&r, &t, None, 1, 0.0);
        for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn uneven_final_period_handled() {
        // 26 timesteps, period 12: phases 0..=1 have 3 samples, rest 2.
        let g = periodic_data(2, 26, 12);
        let t = build_template(&g, None, 1, 12);
        let r = subtract_template(&g, &t, None, 1);
        let back = add_template(&r, &t, None, 1, 0.0);
        for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn masked_points_dont_pollute_template() {
        let g = periodic_data(2, 24, 12);
        // Corrupt station 0's first period and mask it out.
        let mut data = g.clone();
        let mut valid = vec![true; g.len()];
        for tt in 0..12 {
            data.set(&[0, tt], 1.0e30);
            valid[tt] = false;
        }
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let t = build_template(&data, Some(&mask), 1, 12);
        // Template for station 0 should come from the clean second period.
        for r in 0..12 {
            assert!(
                (t.get(&[0, r]) - g.get(&[0, r + 12])).abs() < 1e-4,
                "phase {r}"
            );
        }
    }

    #[test]
    fn template_mask_or_over_phases() {
        let shape = Shape::new(&[1, 6]);
        // Valid only at t = 4 -> phase 1 (period 3).
        let mask = MaskMap::from_flags(
            shape,
            vec![false, false, false, false, true, false],
        );
        let tm = template_mask(&mask, 1, 3);
        assert_eq!(tm.shape().dims(), &[1, 3]);
        assert_eq!(tm.as_slice(), &[false, true, false]);
    }

    #[test]
    fn masked_residual_positions_are_zero() {
        let g = periodic_data(2, 12, 6);
        let mut valid = vec![true; g.len()];
        valid[5] = false;
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let t = build_template(&g, Some(&mask), 1, 6);
        let r = subtract_template(&g, &t, Some(&mask), 1);
        assert_eq!(r.as_slice()[5], 0.0);
    }
}
