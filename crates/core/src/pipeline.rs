//! The plain (non-periodic) compression pipeline: permute → fuse → predict →
//! quantize → classify → (multi-)Huffman → lossless backend.
//!
//! Periodic extraction wraps this pipeline twice (template + residual); see
//! [`crate::compressor`].

use crate::bytesio::{ByteReader, ByteWriter};
use crate::config::PipelineConfig;
use crate::error::ClizError;
use crate::scratch::ScratchArena;
use cliz_entropy::{huffman, multi_decode, multi_encode};
use cliz_grid::{fuse_shape, Grid, MaskMap};
use cliz_predict::{predict_quantize, reconstruct, Fitting, InterpParams};
use cliz_quant::{
    classify::{apply_shifts, classify, unapply_shifts, Classification, ClassifySpec},
    LinearQuantizer, ESCAPE,
};

/// Per-run accounting surfaced by [`crate::compress_with_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlainStats {
    /// Unpredictable points stored literally.
    pub escapes: usize,
    /// Whether classification actually engaged (it auto-disables on layouts
    /// with no slice aggregation or when the map comes out trivial).
    pub classification_used: bool,
    /// Size of the lossless-compressed payload in bytes.
    pub payload_bytes: usize,
}

fn fitting_to_u8(f: Fitting) -> u8 {
    match f {
        Fitting::Linear => 0,
        Fitting::Cubic => 1,
    }
}

fn fitting_from_u8(v: u8) -> Result<Fitting, ClizError> {
    match v {
        0 => Ok(Fitting::Linear),
        1 => Ok(Fitting::Cubic),
        _ => Err(ClizError::Corrupt("unknown fitting id")),
    }
}

/// Classification needs a horizontal plane plus at least two slices to
/// aggregate over; returns the plane size when the layout qualifies.
fn classification_plane(dims: &[usize]) -> Option<usize> {
    if dims.len() < 2 {
        return None;
    }
    let h_len = dims[dims.len() - 2] * dims[dims.len() - 1];
    let slices: usize = dims[..dims.len() - 2].iter().product();
    (slices >= 2).then_some(h_len)
}

/// Compresses one grid with the plain pipeline, appending to `out`.
pub fn compress_plain(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    eb_abs: f64,
    config: &PipelineConfig,
    out: &mut ByteWriter,
) -> Result<PlainStats, ClizError> {
    let mut arena = ScratchArena::new();
    compress_plain_with(data, mask, eb_abs, config, out, &mut arena)
}

/// [`compress_plain`] with caller-supplied scratch buffers.
///
/// The zero-copy hot path: an identity permutation borrows the input grid
/// (and mask) instead of cloning it, the working/symbol buffers come from
/// `arena` and go back to it before returning, and unmasked data feeds the
/// entropy coder straight from the symbol grid with no gather pass. Output
/// bytes are identical to [`compress_plain`] — the arena only changes where
/// the intermediate buffers live, never what is written.
pub fn compress_plain_with(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    eb_abs: f64,
    config: &PipelineConfig,
    out: &mut ByteWriter,
    arena: &mut ScratchArena,
) -> Result<PlainStats, ClizError> {
    // 1. Physical permutation (data and mask travel together). The identity
    //    permutation is the common tuned outcome and must not copy: borrow
    //    the caller's grid, materialize only a genuinely permuted layout.
    let identity = config.permutation.iter().enumerate().all(|(i, &p)| i == p);
    let permuted_storage: Option<Grid<f32>> =
        (!identity).then(|| data.permuted(&config.permutation));
    let working: &Grid<f32> = permuted_storage.as_ref().unwrap_or(data);
    let mask_active = match mask {
        Some(m) => config.use_mask && !m.is_all_valid(),
        None => false,
    };
    let wmask_storage: Option<MaskMap> = match mask {
        Some(m) if mask_active && !identity => Some(m.permuted(&config.permutation)),
        _ => None,
    };
    let wmask: Option<&MaskMap> = if mask_active {
        wmask_storage.as_ref().or(mask)
    } else {
        None
    };
    let mask_slice = wmask.map(|m| m.as_slice());

    // 2. Fusion: pure reshape of the working layout.
    let fused = fuse_shape(working.shape(), config.fusion);
    let dims = fused.dims().to_vec();

    // 3. Predict + quantize into a raster-order symbol grid. The prediction
    //    buffer must be a mutable copy (the predictor overwrites it with the
    //    reconstruction), but its backing store is recycled across calls.
    let quantizer = LinearQuantizer::new(eb_abs);
    let params = match mask_slice {
        Some(m) => InterpParams::with_mask(config.fitting, m),
        None => InterpParams::new(config.fitting),
    };
    let mut buf = arena.take_f32();
    buf.extend_from_slice(working.as_slice());
    let mut symbols = arena.take_u32();
    symbols.resize(buf.len(), 0);
    let escapes = predict_quantize(&mut buf, &dims, &params, &quantizer, &mut symbols);

    // 4. Optional classification (may auto-disable).
    let mut class: Option<Classification> = None;
    if config.classification {
        if let Some(h_len) = classification_plane(&dims) {
            let spec = ClassifySpec {
                lambda: config.lambda,
                ..ClassifySpec::default()
            };
            let c = classify(&symbols, h_len, mask_slice, spec);
            if !c.is_trivial() {
                apply_shifts(&mut symbols, &c, mask_slice);
                class = Some(c);
            }
        }
    }

    // 5. Entropy-code the valid symbols. Without a mask every symbol is
    //    valid, so the coder reads the symbol grid in place — the gather
    //    pass (and its full-size allocation) only runs for masked data.
    let mut gathered = arena.take_u32();
    let valid_symbols: &[u32] = match mask_slice {
        Some(m) => {
            gathered.extend(
                symbols
                    .iter()
                    .zip(m)
                    .filter(|&(_, &v)| v)
                    .map(|(&s, _)| s),
            );
            &gathered
        }
        None => &symbols,
    };
    let stream = match &class {
        Some(c) => {
            let groups = c.group_sequence(symbols.len(), mask_slice);
            multi_encode(valid_symbols, &groups, 2)
        }
        None => huffman::encode_stream(valid_symbols),
    };

    // 6. Literals for escapes, in raster order over valid positions.
    let mut literals = Vec::with_capacity(escapes * 4);
    for (i, (&s, &v)) in symbols.iter().zip(&buf).enumerate() {
        if s == ESCAPE && mask_slice.is_none_or(|m| m[i]) {
            literals.extend_from_slice(&v.to_le_bytes());
        }
    }
    debug_assert_eq!(literals.len(), escapes * 4);

    // 7. Assemble payload and squeeze with the lossless backend.
    let mut payload = ByteWriter::new();
    match &class {
        Some(c) => payload.block(&c.marker_bytes()),
        None => payload.block(&[]),
    }
    payload.block(&stream);
    payload.raw(&literals);
    let packed = cliz_lossless::compress(&payload.finish());

    // 8. Section header + payload.
    for &p in &config.permutation {
        out.u8(p as u8);
    }
    out.u8(config.fusion.start as u8);
    out.u8(config.fusion.len as u8);
    out.u8(fitting_to_u8(config.fitting));
    out.u8(class.is_some() as u8);
    out.u64(escapes as u64);
    out.block(&packed);

    arena.recycle_f32(buf);
    arena.recycle_u32(symbols);
    arena.recycle_u32(gathered);

    Ok(PlainStats {
        escapes,
        classification_used: class.is_some(),
        payload_bytes: packed.len(),
    })
}

/// Frozen pre-optimization reference implementation of [`compress_plain`]:
/// clones the grid even for identity permutations, allocates every scratch
/// buffer fresh, and always gathers valid symbols. Kept verbatim as (a) the
/// differential oracle the parallel/arena tests compare bytes against and
/// (b) the serial baseline `BENCH_pipeline.json` measures speedups over. Do
/// not "optimize" this function — its allocation profile *is* its purpose.
#[doc(hidden)]
pub fn compress_plain_alloc_baseline(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    eb_abs: f64,
    config: &PipelineConfig,
    out: &mut ByteWriter,
) -> Result<PlainStats, ClizError> {
    let identity = config.permutation.iter().enumerate().all(|(i, &p)| i == p);
    let working = if identity {
        data.clone()
    } else {
        data.permuted(&config.permutation)
    };
    let wmask: Option<MaskMap> = match mask {
        Some(m) if config.use_mask && !m.is_all_valid() => Some(if identity {
            m.clone()
        } else {
            m.permuted(&config.permutation)
        }),
        _ => None,
    };
    let mask_slice = wmask.as_ref().map(|m| m.as_slice());

    let fused = fuse_shape(working.shape(), config.fusion);
    let dims = fused.dims().to_vec();

    let quantizer = LinearQuantizer::new(eb_abs);
    let params = match mask_slice {
        Some(m) => InterpParams::with_mask(config.fitting, m),
        None => InterpParams::new(config.fitting),
    };
    let mut buf = working.as_slice().to_vec();
    let mut symbols = vec![0u32; buf.len()];
    let escapes = predict_quantize(&mut buf, &dims, &params, &quantizer, &mut symbols);

    let mut class: Option<Classification> = None;
    if config.classification {
        if let Some(h_len) = classification_plane(&dims) {
            let spec = ClassifySpec {
                lambda: config.lambda,
                ..ClassifySpec::default()
            };
            let c = classify(&symbols, h_len, mask_slice, spec);
            if !c.is_trivial() {
                apply_shifts(&mut symbols, &c, mask_slice);
                class = Some(c);
            }
        }
    }

    let valid_symbols: Vec<u32> = match mask_slice {
        Some(m) => symbols
            .iter()
            .zip(m)
            .filter(|&(_, &v)| v)
            .map(|(&s, _)| s)
            .collect(),
        None => symbols.clone(),
    };
    let stream = match &class {
        Some(c) => {
            let groups = c.group_sequence(symbols.len(), mask_slice);
            multi_encode(&valid_symbols, &groups, 2)
        }
        None => huffman::encode_stream(&valid_symbols),
    };

    let mut literals = Vec::with_capacity(escapes * 4);
    for (i, (&s, &v)) in symbols.iter().zip(&buf).enumerate() {
        if s == ESCAPE && mask_slice.is_none_or(|m| m[i]) {
            literals.extend_from_slice(&v.to_le_bytes());
        }
    }
    debug_assert_eq!(literals.len(), escapes * 4);

    let mut payload = ByteWriter::new();
    match &class {
        Some(c) => payload.block(&c.marker_bytes()),
        None => payload.block(&[]),
    }
    payload.block(&stream);
    payload.raw(&literals);
    let packed = cliz_lossless::compress(&payload.finish());

    for &p in &config.permutation {
        out.u8(p as u8);
    }
    out.u8(config.fusion.start as u8);
    out.u8(config.fusion.len as u8);
    out.u8(fitting_to_u8(config.fitting));
    out.u8(class.is_some() as u8);
    out.u64(escapes as u64);
    out.block(&packed);

    Ok(PlainStats {
        escapes,
        classification_used: class.is_some(),
        payload_bytes: packed.len(),
    })
}

/// Decompresses one plain-pipeline section. `dims` and `eb_abs` come from the
/// container header; `mask` is the dataset mask in the *original* layout.
pub fn decompress_plain(
    r: &mut ByteReader,
    dims: &[usize],
    eb_abs: f64,
    mask: Option<&MaskMap>,
    fill_value: f32,
) -> Result<Grid<f32>, ClizError> {
    let mut arena = ScratchArena::new();
    decompress_plain_with(r, dims, eb_abs, mask, fill_value, &mut arena)
}

/// [`decompress_plain`] with caller-supplied scratch buffers: the scatter
/// symbol grid and literal vector are recycled through `arena` (the output
/// grid itself is necessarily a fresh allocation — it leaves the function).
pub fn decompress_plain_with(
    r: &mut ByteReader,
    dims: &[usize],
    eb_abs: f64,
    mask: Option<&MaskMap>,
    fill_value: f32,
    arena: &mut ScratchArena,
) -> Result<Grid<f32>, ClizError> {
    let ndim = dims.len();
    let mut perm = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        perm.push(r.u8()? as usize);
    }
    let fusion = cliz_grid::FusionSpec {
        start: r.u8()? as usize,
        len: r.u8()? as usize,
    };
    // The spec bytes are untrusted and `fuse_shape` asserts range validity,
    // so reject an out-of-range fusion with a typed error first.
    if !fusion.is_none() && fusion.start + fusion.len > ndim {
        return Err(ClizError::Corrupt("fusion spec out of range"));
    }
    let fitting = fitting_from_u8(r.u8()?)?;
    let classification = r.u8()? != 0;
    let escapes = r.u64()? as usize;
    let packed = r.block()?;
    let payload = cliz_lossless::decompress(packed)?;
    let mut pr = ByteReader::new(&payload);
    let marker_bytes = pr.block()?.to_vec();
    let stream = pr.block()?.to_vec();

    // Reconstruct the working-layout mask.
    let mut seen = vec![false; ndim];
    for &p in &perm {
        if p >= ndim || seen[p] {
            return Err(ClizError::Corrupt("invalid permutation in stream"));
        }
        seen[p] = true;
    }
    let identity = perm.iter().enumerate().all(|(i, &p)| i == p);
    let permuted_shape = cliz_grid::Shape::new(dims).permuted(&perm);
    let wmask: Option<MaskMap> = match mask {
        Some(m) if !m.is_all_valid() => Some(if identity {
            m.clone()
        } else {
            m.permuted(&perm)
        }),
        _ => None,
    };
    let mask_slice = wmask.as_ref().map(|m| m.as_slice());

    let fused = fuse_shape(&permuted_shape, fusion);
    let fdims = fused.dims().to_vec();
    let total = fused.len();
    // The fused dims come from container bytes. Before the full-grid
    // buffers below are sized from them, the claimed element count must be
    // corroborated: by the caller's mask when one is present, or by the
    // decoded symbol stream otherwise (every valid symbol costs at least
    // one bit) — a flipped dimension byte must surface as Corrupt, not as
    // a giant allocation.
    match mask_slice {
        Some(m) => {
            if total != m.len() {
                return Err(ClizError::Corrupt("element count does not match mask"));
            }
        }
        None => {
            if total > stream.len().saturating_mul(8).saturating_add(8) {
                return Err(ClizError::Corrupt("element count exceeds stream size"));
            }
        }
    }
    let n_valid = mask_slice.map_or(total, |m| m.iter().filter(|&&v| v).count());
    if escapes > n_valid {
        return Err(ClizError::Corrupt("escape count exceeds data size"));
    }

    // Decode the symbol stream.
    let class = if classification {
        let c = Classification::from_marker_bytes(&marker_bytes)
            .ok_or(ClizError::Corrupt("bad classification markers"))?;
        Some(c)
    } else {
        None
    };
    let valid_symbols: Vec<u32> = match &class {
        Some(c) => {
            let groups = c.group_sequence(total, mask_slice);
            multi_decode(&stream, &groups).ok_or(ClizError::Corrupt("multi-huffman decode"))?
        }
        None => {
            let syms =
                huffman::decode_stream(&stream).ok_or(ClizError::Corrupt("huffman decode"))?;
            if syms.len() != n_valid {
                return Err(ClizError::Corrupt("symbol count mismatch"));
            }
            syms
        }
    };

    // Scatter to the full grid (placeholder bins at masked positions).
    let zero_sym = cliz_quant::bin_to_symbol(0);
    let mut symbols = arena.take_u32();
    symbols.resize(total, zero_sym);
    {
        let mut it = valid_symbols.into_iter();
        for (i, s) in symbols.iter_mut().enumerate() {
            if mask_slice.is_none_or(|m| m[i]) {
                *s = it.next().ok_or(ClizError::Corrupt("short symbol stream"))?;
            }
        }
    }
    if let Some(c) = &class {
        unapply_shifts(&mut symbols, c, mask_slice);
    }
    // Validate symbols against the quantizer alphabet before reconstruction:
    // a corrupt entropy table can decode to arbitrary u32 values, and
    // `recover` treats in-radius bins as an invariant, not a runtime check.
    let quantizer = LinearQuantizer::new(eb_abs);
    let max_symbol = quantizer.max_symbol();
    if symbols.iter().any(|&s| s > max_symbol) {
        return Err(ClizError::Corrupt("symbol exceeds quantizer radius"));
    }

    // Literals. (Error paths below drop the scratch buffers instead of
    // recycling them — a cold path missing the pool is fine, a hot path
    // littered with recycle calls is not.)
    if pr.remaining() < escapes.saturating_mul(4) {
        return Err(ClizError::Truncated);
    }
    let mut literals = arena.take_f32();
    for _ in 0..escapes {
        literals.push(pr.f32()?);
    }

    // Replay the interpolation.
    let params = match mask_slice {
        Some(m) => InterpParams::with_mask(fitting, m),
        None => InterpParams::new(fitting),
    };
    let mut buf = vec![0.0f32; total];
    let observed_escapes = symbols
        .iter()
        .enumerate()
        .filter(|&(i, &s)| s == ESCAPE && mask_slice.is_none_or(|m| m[i]))
        .count();
    if observed_escapes != escapes {
        return Err(ClizError::Corrupt("escape count mismatch"));
    }
    reconstruct(
        &mut buf, &fdims, &params, &quantizer, &symbols, &literals, fill_value,
    )
    .map_err(|_| ClizError::Corrupt("literal/escape mismatch"))?;
    arena.recycle_u32(symbols);
    arena.recycle_f32(literals);

    // Un-fuse (reshape) and un-permute back to the original layout.
    let working = Grid::from_vec(permuted_shape, buf);
    let original = if identity {
        working
    } else {
        working.unpermuted(&perm)
    };
    Ok(original)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::{FusionSpec, Shape};

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.11 * (k + 1) as f64).sin() * 3.0;
            }
            v as f32
        })
    }

    fn roundtrip(
        data: &Grid<f32>,
        mask: Option<&MaskMap>,
        eb: f64,
        config: &PipelineConfig,
    ) -> (Grid<f32>, PlainStats) {
        let mut w = ByteWriter::new();
        let stats = compress_plain(data, mask, eb, config, &mut w).unwrap();
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let out = decompress_plain(&mut r, data.shape().dims(), eb, mask, -7.0).unwrap();
        assert_eq!(r.remaining(), 0);
        for (i, (&a, &b)) in data.as_slice().iter().zip(out.as_slice()).enumerate() {
            if mask.is_none_or(|m| m.is_valid(i)) {
                assert!(
                    (a as f64 - b as f64).abs() <= eb,
                    "bound violated at {i}: {a} vs {b}"
                );
            } else {
                assert_eq!(b, -7.0);
            }
        }
        (out, stats)
    }

    #[test]
    fn identity_pipeline_roundtrip() {
        let g = smooth(&[10, 20, 30]);
        roundtrip(&g, None, 1e-3, &PipelineConfig::default_for(3));
    }

    #[test]
    fn all_permutations_roundtrip() {
        let g = smooth(&[6, 8, 10]);
        for perm in Shape::all_permutations(3) {
            let mut c = PipelineConfig::default_for(3);
            c.permutation = perm;
            roundtrip(&g, None, 1e-3, &c);
        }
    }

    #[test]
    fn all_fusions_roundtrip() {
        let g = smooth(&[6, 8, 10]);
        for fusion in FusionSpec::candidates(3) {
            let mut c = PipelineConfig::default_for(3);
            c.fusion = fusion;
            roundtrip(&g, None, 1e-3, &c);
        }
    }

    #[test]
    fn classification_roundtrip() {
        // 8 slices over a 12x12 plane with position-dependent bias so the
        // classifier finds real structure.
        let g = Grid::from_fn(Shape::new(&[8, 12, 12]), |c| {
            let bias = ((c[1] * 12 + c[2]) % 3) as f32 * 0.002;
            (c[0] as f32 * 0.1) + bias
        });
        let mut c = PipelineConfig::default_for(3);
        c.classification = true;
        let (_, stats) = roundtrip(&g, None, 1e-4, &c);
        // Trivial maps may disable it; either way the roundtrip held. Check
        // the flag is plumbed.
        let _ = stats.classification_used;
    }

    #[test]
    fn masked_pipeline_roundtrip() {
        let mut g = smooth(&[12, 16]);
        let mut valid = vec![true; g.len()];
        for i in 0..g.len() {
            if i % 7 == 0 {
                g.as_mut_slice()[i] = 1.0e31;
                valid[i] = false;
            }
        }
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let c = PipelineConfig::default_for(2);
        let (_, stats) = roundtrip(&g, Some(&mask), 1e-3, &c);
        assert!(stats.escapes <= 2, "mask leaked: {} escapes", stats.escapes);
    }

    #[test]
    fn linear_fitting_roundtrip() {
        let g = smooth(&[40, 40]);
        let mut c = PipelineConfig::default_for(2);
        c.fitting = Fitting::Linear;
        roundtrip(&g, None, 1e-3, &c);
    }

    #[test]
    fn one_dimensional_roundtrip() {
        let g = smooth(&[500]);
        roundtrip(&g, None, 1e-4, &PipelineConfig::default_for(1));
    }

    #[test]
    fn corrupt_stream_is_an_error_not_a_panic() {
        let g = smooth(&[8, 8]);
        let mut w = ByteWriter::new();
        compress_plain(&g, None, 1e-3, &PipelineConfig::default_for(2), &mut w).unwrap();
        let mut bytes = w.finish();
        let n = bytes.len();
        bytes.truncate(n / 2);
        let mut r = ByteReader::new(&bytes);
        assert!(decompress_plain(&mut r, &[8, 8], 1e-3, None, 0.0).is_err());
    }
}
