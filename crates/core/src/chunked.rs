//! Chunked compression: slab-split containers with random chunk access.
//!
//! HDF5/NetCDF deployments (the paper's integration target) compress
//! chunk-by-chunk so readers can decode a time slice without touching the
//! rest of the file. This module splits a grid into slabs along axis 0,
//! compresses each slab as an independent CLIZ container under one shared
//! pipeline configuration and one globally-resolved error bound, and lays
//! them out behind an offset table for O(1) chunk lookup.
//!
//! Format: `magic "CLZC" | ver u8 | ndim u8 | dims ndim×u64 | chunk_len u64 |
//! n_chunks u32 | offsets (n_chunks+1)×u64 | chunk containers…`.
//!
//! Slabs are independent, so both directions run on a scoped worker pool:
//! slabs are LPT-assigned to workers by estimated cost
//! ([`cliz_transfer::assign_lpt`] — the tail slab is thinner than the rest),
//! each worker owns a [`ScratchArena`], and the results are stitched behind
//! the offset table in index order. The container bytes and the decoded grid
//! are byte-identical across any worker count, including 1.

use crate::bytesio::{ByteReader, ByteWriter};
use crate::compressor::{
    compress_alloc_baseline, compress_with_stats_arena, decompress, decompress_arena,
    valid_min_max,
};
use crate::config::PipelineConfig;
use crate::error::ClizError;
use crate::scratch::ScratchArena;
use cliz_format::spec::CLZC;
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_quant::ErrorBound;
use cliz_transfer::assign_lpt;

/// Number of slabs a grid of `dim0` splits into with `chunk_len` thickness.
fn chunk_count(dim0: usize, chunk_len: usize) -> usize {
    dim0.div_ceil(chunk_len)
}

/// `threads == 0` means "use the host's parallelism"; the pool never spawns
/// more workers than there are jobs.
fn resolve_threads(threads: usize, jobs: usize) -> usize {
    let t = match threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        t => t,
    };
    t.min(jobs).max(1)
}

/// Extracts slab `i` of `data` (and mask) along axis 0.
fn slab<T: Copy>(grid: &Grid<T>, chunk_len: usize, i: usize) -> Grid<T> {
    let dims = grid.shape().dims();
    let start = i * chunk_len;
    let len = chunk_len.min(dims[0] - start);
    let mut s = vec![0usize; dims.len()];
    s[0] = start;
    let mut size = dims.to_vec();
    size[0] = len;
    grid.block(&s, &size)
}

/// Compresses `data` as independent slabs along axis 0.
///
/// The error bound is resolved once against the whole (valid) value range,
/// so every chunk honours the same absolute bound the caller asked for.
///
/// ```
/// use cliz_core::{compress_chunked, decompress_chunk, config::PipelineConfig};
/// use cliz_grid::{Grid, Shape};
/// use cliz_quant::ErrorBound;
///
/// let data = Grid::from_fn(Shape::new(&[12, 16]), |c| (c[0] + c[1]) as f32);
/// let bytes = compress_chunked(
///     &data, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2), 4,
/// ).unwrap();
/// // Random access: decode only the second slab (rows 4..8).
/// let slab = decompress_chunk(&bytes, 1, None).unwrap();
/// assert_eq!(slab.shape().dims(), &[4, 16]);
/// assert!((slab.get(&[0, 0]) - 4.0).abs() <= 1e-3);
/// ```
pub fn compress_chunked(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
) -> Result<Vec<u8>, ClizError> {
    compress_chunked_with_threads(data, mask, bound, config, chunk_len, 0)
}

/// [`compress_chunked`] with an explicit worker count. `threads == 0` uses
/// the host's parallelism; `threads == 1` runs serially on the calling
/// thread. The output is byte-identical for every worker count: each slab is
/// an independent container compressed under the same resolved bound, and
/// the offset table is always written in slab order.
pub fn compress_chunked_with_threads(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
    threads: usize,
) -> Result<Vec<u8>, ClizError> {
    if chunk_len == 0 {
        return Err(ClizError::BadConfig("chunk length must be positive"));
    }
    config.validate(data.shape())?;
    if let Some(m) = mask {
        if m.shape() != data.shape() {
            return Err(ClizError::BadConfig("mask shape mismatch"));
        }
    }
    let (mn, mx) = valid_min_max(data, mask);
    let eb = ErrorBound::Abs(bound.resolve(mn, mx));

    let dims = data.shape().dims().to_vec();
    let n_chunks = chunk_count(dims[0], chunk_len);
    let mask_grid = mask.map(|m| Grid::from_vec(m.shape().clone(), m.as_slice().to_vec()));

    let workers = resolve_threads(threads, n_chunks);
    let blobs: Vec<Vec<u8>> = if workers <= 1 {
        // Serial path: one arena amortizes the scratch buffers across slabs.
        let mut arena = ScratchArena::new();
        let mut blobs = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            blobs.push(compress_one_chunk(
                data,
                mask_grid.as_ref(),
                eb,
                config,
                chunk_len,
                i,
                &mut arena,
            )?);
        }
        blobs
    } else {
        // Slab cost is proportional to element count; only the tail slab
        // differs, and LPT places it so no worker idles behind it.
        let costs: Vec<f64> = (0..n_chunks)
            .map(|i| chunk_len.min(dims[0] - i * chunk_len) as f64)
            .collect();
        let groups = assign_lpt(&costs, workers);
        let mut results: Vec<(usize, Result<Vec<u8>, ClizError>)> =
            std::thread::scope(|s| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|group| {
                        let mask_grid = mask_grid.as_ref();
                        s.spawn(move || {
                            let mut arena = ScratchArena::new();
                            group
                                .iter()
                                .map(|&i| {
                                    let blob = compress_one_chunk(
                                        data, mask_grid, eb, config, chunk_len, i,
                                        &mut arena,
                                    );
                                    (i, blob)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_default())
                    .collect()
            });
        // A panicked worker yields no results; that shows up here as a
        // short list rather than silently missing chunks.
        if results.len() != n_chunks {
            return Err(ClizError::Backend("compression worker failed".into()));
        }
        results.sort_by_key(|r| r.0);
        results
            .into_iter()
            .map(|(_, blob)| blob)
            .collect::<Result<_, ClizError>>()?
    };

    Ok(assemble_container(&dims, chunk_len, &blobs))
}

/// Compresses slab `i` as one independent container. Shared by the serial
/// loop, the worker pool, and nothing else — the slab extraction and the
/// graceful periodicity degrade must stay identical across worker counts.
fn compress_one_chunk(
    data: &Grid<f32>,
    mask_grid: Option<&Grid<bool>>,
    eb: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
    i: usize,
    arena: &mut ScratchArena,
) -> Result<Vec<u8>, ClizError> {
    let chunk = slab(data, chunk_len, i);
    let chunk_mask = mask_grid.map(|mg| {
        let mg = slab(mg, chunk_len, i);
        MaskMap::from_flags(mg.shape().clone(), mg.as_slice().to_vec())
    });
    // The per-chunk config must validate against the chunk shape
    // (periodicity along axis 0 may not fit a slab).
    let mut chunk_config = config.clone();
    if chunk_config.validate(chunk.shape()).is_err() {
        // Degrade gracefully: drop the offending periodicity.
        chunk_config.periodicity = crate::config::Periodicity::None;
        chunk_config.validate(chunk.shape())?;
    }
    compress_with_stats_arena(&chunk, chunk_mask.as_ref(), eb, &chunk_config, arena)
        .map(|(bytes, _)| bytes)
}

/// Writes the CLZC header, offset table and chunk blobs.
fn assemble_container(dims: &[usize], chunk_len: usize, blobs: &[Vec<u8>]) -> Vec<u8> {
    let n_chunks = blobs.len();
    let mut w = ByteWriter::new();
    w.magic(&CLZC);
    w.u8(dims.len() as u8);
    for &d in dims {
        w.u64(d as u64);
    }
    w.u64(chunk_len as u64);
    w.u32(n_chunks as u32);
    let header_len = w.len() + (n_chunks + 1) * 8;
    let mut offset = header_len as u64;
    w.u64(offset);
    for b in blobs {
        offset += b.len() as u64;
        w.u64(offset);
    }
    for b in blobs {
        w.raw(b);
    }
    w.finish()
}

/// Frozen pre-optimization chunked compressor: a plain serial loop that
/// allocates everything fresh per slab via [`compress_alloc_baseline`]
/// (plain-mode configs only). Byte-identical container to
/// [`compress_chunked`]; kept as the serial timing baseline for
/// `BENCH_pipeline.json` and as a differential oracle. Do not "optimize"
/// this function — its allocation profile *is* its purpose.
#[doc(hidden)]
pub fn compress_chunked_alloc_baseline(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
) -> Result<Vec<u8>, ClizError> {
    if chunk_len == 0 {
        return Err(ClizError::BadConfig("chunk length must be positive"));
    }
    config.validate(data.shape())?;
    if let Some(m) = mask {
        if m.shape() != data.shape() {
            return Err(ClizError::BadConfig("mask shape mismatch"));
        }
    }
    let (mn, mx) = valid_min_max(data, mask);
    let eb = ErrorBound::Abs(bound.resolve(mn, mx));
    let dims = data.shape().dims().to_vec();
    let n_chunks = chunk_count(dims[0], chunk_len);
    let mask_grid = mask.map(|m| Grid::from_vec(m.shape().clone(), m.as_slice().to_vec()));
    let mut blobs = Vec::with_capacity(n_chunks);
    for i in 0..n_chunks {
        let chunk = slab(data, chunk_len, i);
        let chunk_mask = mask_grid.as_ref().map(|mg| {
            let mg = slab(mg, chunk_len, i);
            MaskMap::from_flags(mg.shape().clone(), mg.as_slice().to_vec())
        });
        blobs.push(compress_alloc_baseline(&chunk, chunk_mask.as_ref(), eb, config)?);
    }
    Ok(assemble_container(&dims, chunk_len, &blobs))
}

/// Slab geometry of a chunked container: which rows each chunk covers and
/// which chunks a row range intersects. Pure arithmetic over dimensions that
/// were validated at construction — the random-access store layer
/// (`cliz-store`) builds its region queries on top of this so the
/// intersection math lives next to the slab-split definition it mirrors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkIndex {
    dim0: usize,
    chunk_len: usize,
    slab_stride: usize,
    n_chunks: usize,
}

impl ChunkIndex {
    /// Builds the index for a grid of `dims` split into `chunk_len`-row
    /// slabs along axis 0. Rejects empty/zero geometry and products that
    /// overflow, so every method below is plain unchecked arithmetic over
    /// values this constructor bounded.
    pub fn new(dims: &[usize], chunk_len: usize) -> Result<Self, ClizError> {
        if dims.is_empty() {
            return Err(ClizError::BadConfig("chunk index needs at least one dim"));
        }
        if chunk_len == 0 {
            return Err(ClizError::BadConfig("chunk length must be positive"));
        }
        if dims.iter().any(|&d| d == 0) {
            return Err(ClizError::BadConfig("zero dimension"));
        }
        let slab_stride = dims[1..]
            .iter()
            .try_fold(1usize, |a, &d| a.checked_mul(d))
            .ok_or(ClizError::Corrupt("dimension product overflows"))?;
        if dims[0]
            .checked_mul(slab_stride)
            .map_or(true, |t| t > isize::MAX as usize / 4)
        {
            return Err(ClizError::Corrupt("dimension product overflows"));
        }
        Ok(Self {
            dim0: dims[0],
            chunk_len,
            slab_stride,
            n_chunks: chunk_count(dims[0], chunk_len),
        })
    }

    /// Number of slabs along axis 0.
    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    /// Slab thickness along axis 0 (the tail slab may be thinner).
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Elements per full row of axis 0 (product of the trailing dims).
    pub fn slab_stride(&self) -> usize {
        self.slab_stride
    }

    /// The axis-0 row range chunk `i` covers, or `None` past the end.
    pub fn rows(&self, i: usize) -> Option<std::ops::Range<usize>> {
        if i >= self.n_chunks {
            return None;
        }
        let start = i * self.chunk_len;
        Some(start..(start + self.chunk_len).min(self.dim0))
    }

    /// Element count of chunk `i`, or `None` past the end.
    pub fn elems(&self, i: usize) -> Option<usize> {
        self.rows(i).map(|r| r.len() * self.slab_stride)
    }

    /// The (half-open) range of chunk indices whose rows intersect
    /// `rows`; empty ranges (or ranges past the end) intersect nothing.
    pub fn intersecting(&self, rows: &std::ops::Range<usize>) -> std::ops::Range<usize> {
        if rows.start >= rows.end || rows.start >= self.dim0 {
            return 0..0;
        }
        let first = rows.start / self.chunk_len;
        let last = (rows.end.min(self.dim0) - 1) / self.chunk_len;
        first..(last + 1).min(self.n_chunks)
    }
}

/// Parsed chunked-container header.
#[derive(Clone, Debug)]
pub struct ChunkedHeader {
    pub dims: Vec<usize>,
    pub chunk_len: usize,
    pub n_chunks: usize,
    /// Byte offsets of each chunk (plus the end sentinel).
    pub offsets: Vec<usize>,
}

impl ChunkedHeader {
    /// The slab geometry this header describes.
    pub fn index(&self) -> Result<ChunkIndex, ClizError> {
        ChunkIndex::new(&self.dims, self.chunk_len)
    }
}

/// Reads just the header (cheap; no decompression).
pub fn read_header(bytes: &[u8]) -> Result<ChunkedHeader, ClizError> {
    read_header_prefix(bytes, bytes.len())
}

/// Reads the header from a *prefix* of a container whose full length is
/// `container_len`.
///
/// Remote (range-request) openers fetch only the first bytes of a
/// container and cannot hand the whole buffer to [`read_header`], whose
/// offset-table bound would reject offsets past the prefix. This variant
/// validates the table against the declared container length instead; a
/// prefix too short to hold the header itself surfaces as
/// [`ClizError::Truncated`], which openers treat as "fetch more".
pub fn read_header_prefix(bytes: &[u8], container_len: usize) -> Result<ChunkedHeader, ClizError> {
    let mut r = ByteReader::new(bytes);
    r.expect_magic(&CLZC)?;
    let ndim = r.u8()? as usize;
    if ndim == 0 || ndim > cliz_grid::shape::MAX_DIMS {
        return Err(ClizError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let d = r.u64()? as usize;
        if d == 0 {
            return Err(ClizError::Corrupt("zero dimension"));
        }
        dims.push(d);
    }
    // The dims are untrusted; reject products that overflow (or that no
    // allocator could satisfy) before any caller multiplies them unchecked.
    if dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .map_or(true, |t| t > isize::MAX as usize / 4)
    {
        return Err(ClizError::Corrupt("dimension product overflows"));
    }
    let chunk_len = r.u64()? as usize;
    if chunk_len == 0 {
        return Err(ClizError::Corrupt("zero chunk length"));
    }
    let n_chunks = r.u32()? as usize;
    if n_chunks != chunk_count(dims[0], chunk_len) {
        return Err(ClizError::Corrupt("chunk count mismatch"));
    }
    let mut offsets = Vec::with_capacity(n_chunks + 1);
    for _ in 0..=n_chunks {
        offsets.push(r.u64()? as usize);
    }
    if offsets.windows(2).any(|w| w[1] < w[0])
        || offsets.last().copied().unwrap_or(usize::MAX) > container_len
    {
        return Err(ClizError::Corrupt("bad offset table"));
    }
    Ok(ChunkedHeader {
        dims,
        chunk_len,
        n_chunks,
        offsets,
    })
}

/// Decompresses a single chunk (random access). `mask` is the full-grid mask
/// in the original layout, from which the chunk's slice is derived.
pub fn decompress_chunk(
    bytes: &[u8],
    chunk_index: usize,
    mask: Option<&MaskMap>,
) -> Result<Grid<f32>, ClizError> {
    let header = read_header(bytes)?;
    if chunk_index >= header.n_chunks {
        return Err(ClizError::BadConfig("chunk index out of range"));
    }
    let blob = bytes
        .get(header.offsets[chunk_index]..header.offsets[chunk_index + 1])
        .ok_or(ClizError::Truncated)?;
    let chunk_mask = match mask {
        Some(m) => {
            if m.shape().dims() != header.dims.as_slice() {
                return Err(ClizError::MaskRequired);
            }
            let mg = Grid::from_vec(m.shape().clone(), m.as_slice().to_vec());
            let s = slab(&mg, header.chunk_len, chunk_index);
            Some(MaskMap::from_flags(s.shape().clone(), s.into_vec()))
        }
        None => None,
    };
    decompress(blob, chunk_mask.as_ref())
}

/// Decompresses the whole container back into one grid.
pub fn decompress_chunked(
    bytes: &[u8],
    mask: Option<&MaskMap>,
) -> Result<Grid<f32>, ClizError> {
    decompress_chunked_with_threads(bytes, mask, 0)
}

/// [`decompress_chunked`] with an explicit worker count (`0` = host
/// parallelism, `1` = serial). Chunk 0 is always decoded on the calling
/// thread first: the header dims are untrusted until a decoded chunk
/// corroborates them, so the full-grid allocation — and any worker spawn —
/// waits for that check. The remaining chunks are LPT-assigned to workers
/// by compressed blob size and each worker writes its disjoint slabs of the
/// output in place; the decoded grid is identical for every worker count.
pub fn decompress_chunked_with_threads(
    bytes: &[u8],
    mask: Option<&MaskMap>,
    threads: usize,
) -> Result<Grid<f32>, ClizError> {
    let header = read_header(bytes)?;
    // `read_header` enforces these invariants at the parse boundary, but
    // the chunk-placement arithmetic below must not depend on a parser far
    // away staying in sync — revalidate the fields it multiplies with.
    if header.dims.len() < 2
        || header.chunk_len == 0
        || header.dims.iter().any(|&d| d == 0)
        || header
            .dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .is_none()
    {
        return Err(ClizError::Corrupt("bad chunk header"));
    }
    let mask_grid = match mask {
        Some(m) => {
            if m.shape().dims() != header.dims.as_slice() {
                return Err(ClizError::MaskRequired);
            }
            Some(Grid::from_vec(m.shape().clone(), m.as_slice().to_vec()))
        }
        None => None,
    };
    let shape = Shape::new(&header.dims);
    let slab_stride: usize = header.dims[1..].iter().product();

    // A flipped dimension byte must surface as Corrupt, not as a giant
    // allocation: decode chunk 0 serially and verify its shape against the
    // claimed geometry before committing to the full-grid buffer.
    let mut arena = ScratchArena::new();
    let first = decompress_chunk_arena(bytes, &header, mask_grid.as_ref(), 0, &mut arena)?;
    let mut out = vec![0.0f32; shape.len()];
    let split = first.len().min(out.len());
    let (first_dst, mut rest) = out.split_at_mut(split);
    if first_dst.len() != first.len() {
        return Err(ClizError::Corrupt("chunk does not fit the grid"));
    }
    first_dst.copy_from_slice(first.as_slice());

    // Carve the remaining output into per-chunk disjoint slices. The chunks
    // tile axis 0 contiguously, so successive splits cover the whole grid;
    // a slab that would overrun the buffer surfaces as Corrupt here.
    let mut jobs: Vec<Option<(usize, &mut [f32])>> = Vec::with_capacity(header.n_chunks);
    for i in 1..header.n_chunks {
        let start_row = i * header.chunk_len;
        let rows = header.chunk_len.min(header.dims[0].saturating_sub(start_row));
        let len = rows * slab_stride;
        if len == 0 || rest.len() < len {
            return Err(ClizError::Corrupt("chunk does not fit the grid"));
        }
        let (dst, tail) = rest.split_at_mut(len);
        rest = tail;
        jobs.push(Some((i, dst)));
    }
    if !rest.is_empty() {
        return Err(ClizError::Corrupt("chunk does not fit the grid"));
    }

    let workers = resolve_threads(threads, jobs.len());
    if workers <= 1 {
        for job in jobs.into_iter().flatten() {
            let (i, dst) = job;
            place_chunk(bytes, &header, mask_grid.as_ref(), i, dst, &mut arena)?;
        }
    } else {
        // Compressed blob size is the best available proxy for decode cost.
        let costs: Vec<f64> = jobs
            .iter()
            .flatten()
            .map(|(i, _)| {
                let start = header.offsets.get(*i).copied().unwrap_or(0);
                let end = header.offsets.get(i + 1).copied().unwrap_or(start);
                end.saturating_sub(start) as f64
            })
            .collect();
        let groups = assign_lpt(&costs, workers);
        let outcomes: Vec<Result<(), ClizError>> = std::thread::scope(|s| {
            let header = &header;
            let mask_grid = mask_grid.as_ref();
            let handles: Vec<_> = groups
                .iter()
                .map(|group| {
                    // Move each group's slices out of the shared job list;
                    // assign_lpt partitions indices exactly once, so every
                    // job is taken by exactly one worker.
                    let work: Vec<(usize, &mut [f32])> = group
                        .iter()
                        .filter_map(|&j| jobs.get_mut(j).and_then(Option::take))
                        .collect();
                    s.spawn(move || -> Result<(), ClizError> {
                        let mut arena = ScratchArena::new();
                        for (i, dst) in work {
                            place_chunk(bytes, header, mask_grid, i, dst, &mut arena)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(Err(ClizError::Backend(
                        "decompression worker failed".into(),
                    )))
                })
                .collect()
        });
        for outcome in outcomes {
            outcome?;
        }
    }
    Ok(Grid::from_vec(shape, out))
}

/// Decodes chunk `i` against an already-validated header, deriving the
/// chunk's mask slice from the full-grid mask and reusing `arena`'s scratch
/// buffers. This is the random-access decode surface the `cliz-store`
/// region reader drives: callers parse the header once with
/// [`read_header`] and then decode only the chunks a query touches. The
/// decoded slab's shape is verified against the slab geometry before it is
/// returned, so a lying chunk container surfaces as `Corrupt`.
pub fn decompress_chunk_arena(
    bytes: &[u8],
    header: &ChunkedHeader,
    mask_grid: Option<&Grid<bool>>,
    i: usize,
    arena: &mut ScratchArena,
) -> Result<Grid<f32>, ClizError> {
    let start = header.offsets.get(i).copied().ok_or(ClizError::Truncated)?;
    let end = header
        .offsets
        .get(i + 1)
        .copied()
        .ok_or(ClizError::Truncated)?;
    let blob = bytes.get(start..end).ok_or(ClizError::Truncated)?;
    decompress_chunk_blob_arena(blob, header, mask_grid, i, arena)
}

/// Decodes chunk `i` from its own compressed blob, without the rest of the
/// container.
///
/// Storage-backed readers fetch exactly the byte range the offset table
/// names for a chunk (possibly coalesced with its neighbours) and never
/// hold the whole container in memory; this is the decode entry they
/// slice those fetches into. `blob` must be the bytes at
/// `header.offsets[i]..header.offsets[i + 1]`; the same shape verification
/// as [`decompress_chunk_arena`] applies.
pub fn decompress_chunk_blob_arena(
    blob: &[u8],
    header: &ChunkedHeader,
    mask_grid: Option<&Grid<bool>>,
    i: usize,
    arena: &mut ScratchArena,
) -> Result<Grid<f32>, ClizError> {
    if i >= header.n_chunks {
        return Err(ClizError::BadConfig("chunk index out of range"));
    }
    let chunk_mask = mask_grid.map(|mg| {
        let s = slab(mg, header.chunk_len, i);
        MaskMap::from_flags(s.shape().clone(), s.into_vec())
    });
    let chunk = decompress_arena(blob, chunk_mask.as_ref(), arena)?;
    // A corrupt chunk container can claim any shape; verify it against the
    // slab geometry before the caller places it, so a lying chunk surfaces
    // as an error rather than scrambled output.
    let start_row = i * header.chunk_len;
    let mut expected = header.dims.clone();
    expected[0] = header.chunk_len.min(header.dims[0].saturating_sub(start_row));
    if chunk.shape().dims() != expected.as_slice() {
        return Err(ClizError::Corrupt("chunk shape mismatch"));
    }
    Ok(chunk)
}

/// Decodes chunk `i` and copies it into its output slab.
fn place_chunk(
    bytes: &[u8],
    header: &ChunkedHeader,
    mask_grid: Option<&Grid<bool>>,
    i: usize,
    dst: &mut [f32],
    arena: &mut ScratchArena,
) -> Result<(), ClizError> {
    let chunk = decompress_chunk_arena(bytes, header, mask_grid, i, arena)?;
    if dst.len() != chunk.len() {
        return Err(ClizError::Corrupt("chunk does not fit the grid"));
    }
    dst.copy_from_slice(chunk.as_slice());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.21 * (k + 1) as f64).sin() * 3.0;
            }
            v as f32
        })
    }

    #[test]
    fn chunked_roundtrip_matches_bound() {
        let g = smooth(&[20, 16, 12]);
        let eb = 1e-3;
        let cfg = PipelineConfig::default_for(3);
        let bytes =
            compress_chunked(&g, None, ErrorBound::Abs(eb), &cfg, 6).unwrap();
        let out = decompress_chunked(&bytes, None).unwrap();
        assert_eq!(out.shape(), g.shape());
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn random_access_chunk_equals_full_decode_slice() {
        let g = smooth(&[15, 10, 8]);
        let cfg = PipelineConfig::default_for(3);
        let bytes =
            compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 4).unwrap();
        let full = decompress_chunked(&bytes, None).unwrap();
        let header = read_header(&bytes).unwrap();
        assert_eq!(header.n_chunks, 4); // 15 = 4+4+4+3
        for i in 0..header.n_chunks {
            let chunk = decompress_chunk(&bytes, i, None).unwrap();
            let start = i * 4;
            let len = chunk.shape().dim(0);
            assert_eq!(len, if i == 3 { 3 } else { 4 });
            let expected = full.block(&[start, 0, 0], &[len, 10, 8]);
            assert_eq!(chunk, expected, "chunk {i}");
        }
    }

    #[test]
    fn masked_chunked_roundtrip() {
        let mut g = smooth(&[12, 14]);
        let mut valid = vec![true; g.len()];
        for i in 0..g.len() {
            if i % 6 == 0 {
                g.as_mut_slice()[i] = 1e33;
                valid[i] = false;
            }
        }
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let cfg = PipelineConfig::default_for(2);
        let bytes =
            compress_chunked(&g, Some(&mask), ErrorBound::Rel(1e-3), &cfg, 5).unwrap();
        let out = decompress_chunked(&bytes, Some(&mask)).unwrap();
        let (mn, mx) = valid_min_max(&g, Some(&mask));
        let eb = 1e-3 * (mx - mn) as f64;
        for (i, (a, b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
            if mask.is_valid(i) {
                assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn rel_bound_is_global_not_per_chunk() {
        // A grid whose chunks have very different local ranges: the bound
        // must come from the global range, or chunk-local resolution would
        // give chunk-dependent quality.
        let g = Grid::from_fn(Shape::new(&[8, 32]), |c| {
            if c[0] < 4 {
                c[1] as f32 * 0.001
            } else {
                c[1] as f32 * 10.0
            }
        });
        let cfg = PipelineConfig::default_for(2);
        let bytes = compress_chunked(&g, None, ErrorBound::Rel(1e-4), &cfg, 4).unwrap();
        let out = decompress_chunked(&bytes, None).unwrap();
        let (mn, mx) = g.finite_min_max().unwrap();
        let eb = 1e-4 * (mx - mn) as f64;
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-9));
        }
    }

    #[test]
    fn periodicity_degrades_gracefully_in_small_chunks() {
        // Periodic along axis 1 — fits in every chunk; periodic along axis 0
        // with chunks smaller than the period must degrade, not fail.
        let g = Grid::from_fn(Shape::new(&[24, 20]), |c| {
            ((c[0] % 12) as f32 * 0.7).sin() + c[1] as f32 * 0.01
        });
        let cfg = PipelineConfig {
            periodicity: crate::config::Periodicity::Extract {
                time_axis: 0,
                period: 12,
            },
            ..PipelineConfig::default_for(2)
        };
        let bytes = compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 6).unwrap();
        let out = decompress_chunked(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let g = smooth(&[8, 8]);
        let cfg = PipelineConfig::default_for(2);
        assert!(compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 0).is_err());
        let bytes = compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 4).unwrap();
        assert!(decompress_chunk(&bytes, 99, None).is_err());
        assert!(read_header(&bytes[..10]).is_err());
        assert!(read_header(b"garbage.....").is_err());
    }

    #[test]
    fn thread_count_never_changes_the_bytes() {
        // 19 rows with chunk_len 4 leaves a 3-row tail slab — the uneven
        // case LPT exists for.
        let g = smooth(&[19, 12, 10]);
        let cfg = PipelineConfig::default_for(3);
        let eb = ErrorBound::Abs(1e-3);
        let serial = compress_chunked_with_threads(&g, None, eb, &cfg, 4, 1).unwrap();
        for threads in [2, 3, 8] {
            let par = compress_chunked_with_threads(&g, None, eb, &cfg, 4, threads).unwrap();
            assert_eq!(serial, par, "container diverged at {threads} threads");
        }
        let baseline = compress_chunked_alloc_baseline(&g, None, eb, &cfg, 4).unwrap();
        assert_eq!(serial, baseline, "alloc baseline diverged");

        let reference = decompress_chunked(&serial, None).unwrap();
        for threads in [1, 2, 5] {
            let out = decompress_chunked_with_threads(&serial, None, threads).unwrap();
            assert_eq!(out, reference, "decode diverged at {threads} threads");
        }
    }

    #[test]
    fn masked_parallel_matches_serial() {
        let mut g = smooth(&[13, 9]);
        let mut valid = vec![true; g.len()];
        for i in 0..g.len() {
            if i % 5 == 0 {
                g.as_mut_slice()[i] = 1e32;
                valid[i] = false;
            }
        }
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let cfg = PipelineConfig::default_for(2);
        let eb = ErrorBound::Abs(1e-3);
        let serial =
            compress_chunked_with_threads(&g, Some(&mask), eb, &cfg, 5, 1).unwrap();
        let par = compress_chunked_with_threads(&g, Some(&mask), eb, &cfg, 5, 4).unwrap();
        assert_eq!(serial, par);
        assert_eq!(
            decompress_chunked_with_threads(&serial, Some(&mask), 4).unwrap(),
            decompress_chunked_with_threads(&serial, Some(&mask), 1).unwrap(),
        );
    }

    #[test]
    fn header_roundtrip() {
        let g = smooth(&[10, 6]);
        let cfg = PipelineConfig::default_for(2);
        let bytes = compress_chunked(&g, None, ErrorBound::Abs(1e-2), &cfg, 3).unwrap();
        let h = read_header(&bytes).unwrap();
        assert_eq!(h.dims, vec![10, 6]);
        assert_eq!(h.chunk_len, 3);
        assert_eq!(h.n_chunks, 4);
        assert_eq!(h.offsets.len(), 5);
        assert_eq!(*h.offsets.last().unwrap(), bytes.len());
    }
}
