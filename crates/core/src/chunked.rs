//! Chunked compression: slab-split containers with random chunk access.
//!
//! HDF5/NetCDF deployments (the paper's integration target) compress
//! chunk-by-chunk so readers can decode a time slice without touching the
//! rest of the file. This module splits a grid into slabs along axis 0,
//! compresses each slab as an independent CLIZ container under one shared
//! pipeline configuration and one globally-resolved error bound, and lays
//! them out behind an offset table for O(1) chunk lookup.
//!
//! Format: `magic "CLZC" | ndim u8 | dims ndim×u64 | chunk_len u64 |
//! n_chunks u32 | offsets (n_chunks+1)×u64 | chunk containers…`.

use crate::bytesio::{ByteReader, ByteWriter};
use crate::compressor::{compress, decompress, valid_min_max};
use crate::config::PipelineConfig;
use crate::error::ClizError;
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_quant::ErrorBound;

const MAGIC: u32 = 0x434C_5A43; // "CLZC"

/// Number of slabs a grid of `dim0` splits into with `chunk_len` thickness.
fn chunk_count(dim0: usize, chunk_len: usize) -> usize {
    dim0.div_ceil(chunk_len)
}

/// Extracts slab `i` of `data` (and mask) along axis 0.
fn slab<T: Copy>(grid: &Grid<T>, chunk_len: usize, i: usize) -> Grid<T> {
    let dims = grid.shape().dims();
    let start = i * chunk_len;
    let len = chunk_len.min(dims[0] - start);
    let mut s = vec![0usize; dims.len()];
    s[0] = start;
    let mut size = dims.to_vec();
    size[0] = len;
    grid.block(&s, &size)
}

/// Compresses `data` as independent slabs along axis 0.
///
/// The error bound is resolved once against the whole (valid) value range,
/// so every chunk honours the same absolute bound the caller asked for.
///
/// ```
/// use cliz_core::{compress_chunked, decompress_chunk, config::PipelineConfig};
/// use cliz_grid::{Grid, Shape};
/// use cliz_quant::ErrorBound;
///
/// let data = Grid::from_fn(Shape::new(&[12, 16]), |c| (c[0] + c[1]) as f32);
/// let bytes = compress_chunked(
///     &data, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2), 4,
/// ).unwrap();
/// // Random access: decode only the second slab (rows 4..8).
/// let slab = decompress_chunk(&bytes, 1, None).unwrap();
/// assert_eq!(slab.shape().dims(), &[4, 16]);
/// assert!((slab.get(&[0, 0]) - 4.0).abs() <= 1e-3);
/// ```
pub fn compress_chunked(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
    chunk_len: usize,
) -> Result<Vec<u8>, ClizError> {
    if chunk_len == 0 {
        return Err(ClizError::BadConfig("chunk length must be positive"));
    }
    config.validate(data.shape())?;
    if let Some(m) = mask {
        if m.shape() != data.shape() {
            return Err(ClizError::BadConfig("mask shape mismatch"));
        }
    }
    let (mn, mx) = valid_min_max(data, mask);
    let eb = ErrorBound::Abs(bound.resolve(mn, mx));

    let dims = data.shape().dims().to_vec();
    let n_chunks = chunk_count(dims[0], chunk_len);
    let mask_grid = mask.map(|m| Grid::from_vec(m.shape().clone(), m.as_slice().to_vec()));

    // Chunks are independent: compress them across the rayon pool. Ordered
    // collect keeps the container byte-for-byte deterministic.
    use rayon::prelude::*;
    let blobs: Vec<Vec<u8>> = (0..n_chunks)
        .into_par_iter()
        .map(|i| {
            let chunk = slab(data, chunk_len, i);
            let chunk_mask = mask_grid.as_ref().map(|mg| {
                let mg = slab(mg, chunk_len, i);
                MaskMap::from_flags(mg.shape().clone(), mg.as_slice().to_vec())
            });
            // The per-chunk config must validate against the chunk shape
            // (periodicity along axis 0 may not fit a slab).
            let mut chunk_config = config.clone();
            if chunk_config.validate(chunk.shape()).is_err() {
                // Degrade gracefully: drop the offending periodicity.
                chunk_config.periodicity = crate::config::Periodicity::None;
                chunk_config.validate(chunk.shape())?;
            }
            compress(&chunk, chunk_mask.as_ref(), eb, &chunk_config)
        })
        .collect::<Result<_, ClizError>>()?;

    let mut w = ByteWriter::new();
    w.u32(MAGIC);
    w.u8(dims.len() as u8);
    for &d in &dims {
        w.u64(d as u64);
    }
    w.u64(chunk_len as u64);
    w.u32(n_chunks as u32);
    let header_len = w.len() + (n_chunks + 1) * 8;
    let mut offset = header_len as u64;
    w.u64(offset);
    for b in &blobs {
        offset += b.len() as u64;
        w.u64(offset);
    }
    for b in &blobs {
        w.raw(b);
    }
    Ok(w.finish())
}

/// Parsed chunked-container header.
#[derive(Clone, Debug)]
pub struct ChunkedHeader {
    pub dims: Vec<usize>,
    pub chunk_len: usize,
    pub n_chunks: usize,
    /// Byte offsets of each chunk (plus the end sentinel).
    pub offsets: Vec<usize>,
}

/// Reads just the header (cheap; no decompression).
pub fn read_header(bytes: &[u8]) -> Result<ChunkedHeader, ClizError> {
    let mut r = ByteReader::new(bytes);
    if r.u32()? != MAGIC {
        return Err(ClizError::BadMagic);
    }
    let ndim = r.u8()? as usize;
    if ndim == 0 || ndim > cliz_grid::shape::MAX_DIMS {
        return Err(ClizError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let d = r.u64()? as usize;
        if d == 0 {
            return Err(ClizError::Corrupt("zero dimension"));
        }
        dims.push(d);
    }
    // The dims are untrusted; reject products that overflow (or that no
    // allocator could satisfy) before any caller multiplies them unchecked.
    if dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .map_or(true, |t| t > isize::MAX as usize / 4)
    {
        return Err(ClizError::Corrupt("dimension product overflows"));
    }
    let chunk_len = r.u64()? as usize;
    if chunk_len == 0 {
        return Err(ClizError::Corrupt("zero chunk length"));
    }
    let n_chunks = r.u32()? as usize;
    if n_chunks != chunk_count(dims[0], chunk_len) {
        return Err(ClizError::Corrupt("chunk count mismatch"));
    }
    let mut offsets = Vec::with_capacity(n_chunks + 1);
    for _ in 0..=n_chunks {
        offsets.push(r.u64()? as usize);
    }
    if offsets.windows(2).any(|w| w[1] < w[0])
        || offsets.last().copied().unwrap_or(usize::MAX) > bytes.len()
    {
        return Err(ClizError::Corrupt("bad offset table"));
    }
    Ok(ChunkedHeader {
        dims,
        chunk_len,
        n_chunks,
        offsets,
    })
}

/// Decompresses a single chunk (random access). `mask` is the full-grid mask
/// in the original layout, from which the chunk's slice is derived.
pub fn decompress_chunk(
    bytes: &[u8],
    chunk_index: usize,
    mask: Option<&MaskMap>,
) -> Result<Grid<f32>, ClizError> {
    let header = read_header(bytes)?;
    if chunk_index >= header.n_chunks {
        return Err(ClizError::BadConfig("chunk index out of range"));
    }
    let blob = bytes
        .get(header.offsets[chunk_index]..header.offsets[chunk_index + 1])
        .ok_or(ClizError::Truncated)?;
    let chunk_mask = match mask {
        Some(m) => {
            if m.shape().dims() != header.dims.as_slice() {
                return Err(ClizError::MaskRequired);
            }
            let mg = Grid::from_vec(m.shape().clone(), m.as_slice().to_vec());
            let s = slab(&mg, header.chunk_len, chunk_index);
            Some(MaskMap::from_flags(s.shape().clone(), s.into_vec()))
        }
        None => None,
    };
    decompress(blob, chunk_mask.as_ref())
}

/// Decompresses the whole container back into one grid.
pub fn decompress_chunked(
    bytes: &[u8],
    mask: Option<&MaskMap>,
) -> Result<Grid<f32>, ClizError> {
    let header = read_header(bytes)?;
    // `read_header` enforces these invariants at the parse boundary, but
    // the chunk-placement arithmetic below must not depend on a parser far
    // away staying in sync — revalidate the fields it multiplies with.
    if header.dims.len() < 2
        || header.chunk_len == 0
        || header.dims.iter().any(|&d| d == 0)
        || header
            .dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .is_none()
    {
        return Err(ClizError::Corrupt("bad chunk header"));
    }
    let shape = Shape::new(&header.dims);
    let slab_stride: usize = header.dims[1..].iter().product();
    // The header dims are untrusted until the first decoded chunk
    // corroborates them, so the full-grid allocation waits for that check —
    // a flipped dimension byte must surface as Corrupt, not as a giant
    // allocation.
    let mut out: Vec<f32> = Vec::new();
    for i in 0..header.n_chunks {
        let chunk = decompress_chunk(bytes, i, mask)?;
        // A corrupt chunk container can claim any shape; verify it against
        // the slab geometry before placing it, so a lying chunk surfaces as
        // an error rather than scrambled output.
        let start_row = i * header.chunk_len;
        let mut expected = header.dims.clone();
        expected[0] = header.chunk_len.min(header.dims[0] - start_row);
        if chunk.shape().dims() != expected.as_slice() {
            return Err(ClizError::Corrupt("chunk shape mismatch"));
        }
        if i == 0 {
            out = vec![0.0f32; shape.len()];
        }
        let start = start_row * slab_stride;
        out.get_mut(start..start + chunk.len())
            .ok_or(ClizError::Corrupt("chunk does not fit the grid"))?
            .copy_from_slice(chunk.as_slice());
    }
    Ok(Grid::from_vec(shape, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.21 * (k + 1) as f64).sin() * 3.0;
            }
            v as f32
        })
    }

    #[test]
    fn chunked_roundtrip_matches_bound() {
        let g = smooth(&[20, 16, 12]);
        let eb = 1e-3;
        let cfg = PipelineConfig::default_for(3);
        let bytes =
            compress_chunked(&g, None, ErrorBound::Abs(eb), &cfg, 6).unwrap();
        let out = decompress_chunked(&bytes, None).unwrap();
        assert_eq!(out.shape(), g.shape());
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn random_access_chunk_equals_full_decode_slice() {
        let g = smooth(&[15, 10, 8]);
        let cfg = PipelineConfig::default_for(3);
        let bytes =
            compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 4).unwrap();
        let full = decompress_chunked(&bytes, None).unwrap();
        let header = read_header(&bytes).unwrap();
        assert_eq!(header.n_chunks, 4); // 15 = 4+4+4+3
        for i in 0..header.n_chunks {
            let chunk = decompress_chunk(&bytes, i, None).unwrap();
            let start = i * 4;
            let len = chunk.shape().dim(0);
            assert_eq!(len, if i == 3 { 3 } else { 4 });
            let expected = full.block(&[start, 0, 0], &[len, 10, 8]);
            assert_eq!(chunk, expected, "chunk {i}");
        }
    }

    #[test]
    fn masked_chunked_roundtrip() {
        let mut g = smooth(&[12, 14]);
        let mut valid = vec![true; g.len()];
        for i in 0..g.len() {
            if i % 6 == 0 {
                g.as_mut_slice()[i] = 1e33;
                valid[i] = false;
            }
        }
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let cfg = PipelineConfig::default_for(2);
        let bytes =
            compress_chunked(&g, Some(&mask), ErrorBound::Rel(1e-3), &cfg, 5).unwrap();
        let out = decompress_chunked(&bytes, Some(&mask)).unwrap();
        let (mn, mx) = valid_min_max(&g, Some(&mask));
        let eb = 1e-3 * (mx - mn) as f64;
        for (i, (a, b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
            if mask.is_valid(i) {
                assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn rel_bound_is_global_not_per_chunk() {
        // A grid whose chunks have very different local ranges: the bound
        // must come from the global range, or chunk-local resolution would
        // give chunk-dependent quality.
        let g = Grid::from_fn(Shape::new(&[8, 32]), |c| {
            if c[0] < 4 {
                c[1] as f32 * 0.001
            } else {
                c[1] as f32 * 10.0
            }
        });
        let cfg = PipelineConfig::default_for(2);
        let bytes = compress_chunked(&g, None, ErrorBound::Rel(1e-4), &cfg, 4).unwrap();
        let out = decompress_chunked(&bytes, None).unwrap();
        let (mn, mx) = g.finite_min_max().unwrap();
        let eb = 1e-4 * (mx - mn) as f64;
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-9));
        }
    }

    #[test]
    fn periodicity_degrades_gracefully_in_small_chunks() {
        // Periodic along axis 1 — fits in every chunk; periodic along axis 0
        // with chunks smaller than the period must degrade, not fail.
        let g = Grid::from_fn(Shape::new(&[24, 20]), |c| {
            ((c[0] % 12) as f32 * 0.7).sin() + c[1] as f32 * 0.01
        });
        let cfg = PipelineConfig {
            periodicity: crate::config::Periodicity::Extract {
                time_axis: 0,
                period: 12,
            },
            ..PipelineConfig::default_for(2)
        };
        let bytes = compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 6).unwrap();
        let out = decompress_chunked(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let g = smooth(&[8, 8]);
        let cfg = PipelineConfig::default_for(2);
        assert!(compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 0).is_err());
        let bytes = compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 4).unwrap();
        assert!(decompress_chunk(&bytes, 99, None).is_err());
        assert!(read_header(&bytes[..10]).is_err());
        assert!(read_header(b"garbage.....").is_err());
    }

    #[test]
    fn header_roundtrip() {
        let g = smooth(&[10, 6]);
        let cfg = PipelineConfig::default_for(2);
        let bytes = compress_chunked(&g, None, ErrorBound::Abs(1e-2), &cfg, 3).unwrap();
        let h = read_header(&bytes).unwrap();
        assert_eq!(h.dims, vec![10, 6]);
        assert_eq!(h.chunk_len, 3);
        assert_eq!(h.n_chunks, 4);
        assert_eq!(h.offsets.len(), 5);
        assert_eq!(*h.offsets.last().unwrap(), bytes.len());
    }
}
