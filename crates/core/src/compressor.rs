//! Public compress/decompress API and the CLIZ container format.
//!
//! Container layout (little-endian):
//!
//! ```text
//! magic  u32  "CLIZ"
//! ver    u8   1
//! ndim   u8
//! dims   ndim × u64
//! eb     f64  resolved absolute bound
//! fill   f32  value written at masked positions on decompression
//! mask   u8   1 when the stream was compressed against a mask map
//! mode   u8   0 = plain pipeline, 1 = periodic template/residual split
//! mode 0: plain section (see `pipeline`)
//! mode 1: time_axis u8, period u32,
//!         template: length-prefixed nested CLIZ container,
//!         residual: length-prefixed nested CLIZ container
//! ```
//!
//! The mask map itself is **not** stored: as in CESM practice it is dataset
//! metadata shared out of band, and the paper's compression ratios likewise
//! exclude it. Decompressing a masked stream without the mask yields
//! [`ClizError::MaskRequired`].

use crate::bytesio::{ByteReader, ByteWriter};
use crate::config::{Periodicity, PipelineConfig};
use crate::error::ClizError;
use crate::periodic::{add_template, build_template, subtract_template, template_mask};
use crate::pipeline::{compress_plain_alloc_baseline, compress_plain_with, decompress_plain_with, PlainStats};
use crate::scratch::ScratchArena;
use cliz_format::spec::CLIZ;
use cliz_grid::{Grid, MaskMap, Shape};
use cliz_quant::ErrorBound;

const MODE_PLAIN: u8 = 0;
const MODE_PERIODIC: u8 = 1;

/// Accounting returned by [`compress_with_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompressStats {
    pub compressed_bytes: usize,
    /// The resolved absolute error bound actually enforced.
    pub eb_abs: f64,
    /// Escapes across all sections (template + residual for periodic mode).
    pub escapes: usize,
    /// Whether bin classification engaged in the main/residual section.
    pub classification_used: bool,
    /// Whether periodic extraction ran.
    pub periodic: bool,
}

/// Min/max of the data over valid, finite points — the range a [`ErrorBound::Rel`]
/// resolves against. Public so harnesses can compute the matching absolute
/// bound when driving mask-blind baselines at equal fidelity.
pub fn valid_min_max(data: &Grid<f32>, mask: Option<&MaskMap>) -> (f32, f32) {
    let mut mn = f32::INFINITY;
    let mut mx = f32::NEG_INFINITY;
    for (i, &v) in data.as_slice().iter().enumerate() {
        if mask.is_some_and(|m| !m.is_valid(i)) || !v.is_finite() {
            continue;
        }
        mn = mn.min(v);
        mx = mx.max(v);
    }
    if mn > mx {
        (0.0, 0.0)
    } else {
        (mn, mx)
    }
}

/// Representative fill value: the first masked value in the data (CESM fill
/// constants are uniform per variable), or 0 when everything is valid.
fn representative_fill(data: &Grid<f32>, mask: Option<&MaskMap>) -> f32 {
    if let Some(m) = mask {
        for (i, &v) in data.as_slice().iter().enumerate() {
            if !m.is_valid(i) {
                return v;
            }
        }
    }
    0.0
}

/// Compresses `data` to a self-describing CLIZ container.
///
/// `mask` marks invalid points (fill values); when `config.use_mask` is set
/// and the mask has invalid points, masked data is neither encoded nor used
/// for prediction, and the same mask must be passed to [`decompress`].
pub fn compress(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
) -> Result<Vec<u8>, ClizError> {
    compress_with_stats(data, mask, bound, config).map(|(bytes, _)| bytes)
}

/// [`compress`] plus accounting.
pub fn compress_with_stats(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
) -> Result<(Vec<u8>, CompressStats), ClizError> {
    let mut arena = ScratchArena::new();
    compress_with_stats_arena(data, mask, bound, config, &mut arena)
}

/// [`compress_with_stats`] with caller-supplied scratch buffers, for loops
/// that compress many fields or slabs back to back (the chunked worker pool
/// gives each worker one arena). Output bytes and stats are identical to the
/// fresh-allocation path.
pub fn compress_with_stats_arena(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
    arena: &mut ScratchArena,
) -> Result<(Vec<u8>, CompressStats), ClizError> {
    config.validate(data.shape())?;
    if let Some(m) = mask {
        if m.shape() != data.shape() {
            return Err(ClizError::BadConfig("mask shape mismatch"));
        }
    }
    let effective_mask = match mask {
        Some(m) if config.use_mask && !m.is_all_valid() => Some(m),
        _ => None,
    };
    // Relative bounds always resolve against the *valid* value range when a
    // mask is supplied — even with `use_mask: false` (the ablation toggle
    // only disables mask-aware prediction/encoding, it must not let fill
    // values inflate the error budget by 30 orders of magnitude).
    let (mn, mx) = valid_min_max(data, mask);
    let eb_abs = bound.resolve(mn, mx);
    let fill = representative_fill(data, effective_mask);

    let mut w = ByteWriter::new();
    w.magic(&CLIZ);
    w.u8(data.shape().ndim() as u8);
    for &d in data.shape().dims() {
        w.u64(d as u64);
    }
    w.f64(eb_abs);
    w.f32(fill);
    w.u8(effective_mask.is_some() as u8);

    let mut stats = CompressStats {
        eb_abs,
        ..Default::default()
    };

    match config.periodicity {
        Periodicity::Extract { time_axis, period } => {
            w.u8(MODE_PERIODIC);
            w.u8(time_axis as u8);
            w.u32(period as u32);

            let inner_config = PipelineConfig {
                periodicity: Periodicity::None,
                ..config.clone()
            };

            // Template: per-phase mean, compressed as a nested container.
            let template = build_template(data, effective_mask, time_axis, period);
            let tmask = effective_mask.map(|m| template_mask(m, time_axis, period));
            let (t_bytes, t_stats) = compress_with_stats_arena(
                &template,
                tmask.as_ref(),
                ErrorBound::Abs(template_eb(eb_abs, config.template_eb_factor)),
                &inner_config,
                arena,
            )?;
            // The residual is taken against what the decoder will actually
            // see, so the user bound rides entirely on the residual stage —
            // minus a small slack for the two f32 roundings on the path
            // (data − template at encode, residual + template at decode),
            // each bounded by half a ULP of the operand magnitude. Without
            // this the reconstruction can land a fraction of a ULP past eb.
            let template_recon = decompress_arena(&t_bytes, tmask.as_ref(), arena)?;
            let residual =
                subtract_template(data, &template_recon, effective_mask, time_axis);
            let vmax = mn.abs().max(mx.abs()) as f64 + eb_abs;
            let eb_res = residual_eb(eb_abs, vmax);
            let (r_bytes, r_stats) = compress_with_stats_arena(
                &residual,
                effective_mask,
                ErrorBound::Abs(eb_res),
                &inner_config,
                arena,
            )?;
            w.block(&t_bytes);
            w.block(&r_bytes);
            stats.escapes = t_stats.escapes + r_stats.escapes;
            stats.classification_used = r_stats.classification_used;
            stats.periodic = true;
        }
        Periodicity::None => {
            w.u8(MODE_PLAIN);
            let plain: PlainStats =
                compress_plain_with(data, effective_mask, eb_abs, config, &mut w, arena)?;
            stats.escapes = plain.escapes;
            stats.classification_used = plain.classification_used;
        }
    }

    let bytes = w.finish();
    stats.compressed_bytes = bytes.len();
    Ok((bytes, stats))
}

/// Error bound handed to the template stage of periodic mode. Kept as a named
/// helper so every scaling of the user's bound is auditable in one place
/// (xtask rule R8).
#[inline]
fn template_eb(eb_abs: f64, factor: f64) -> f64 {
    eb_abs * factor
}

/// Error bound for the residual stage of periodic mode: the user bound minus
/// a small slack for the two f32 roundings on the template path (data −
/// template at encode, residual + template at decode), each bounded by half a
/// ULP of the operand magnitude — without it the reconstruction can land a
/// fraction of a ULP past eb. Floored at half the user bound so a huge vmax
/// can never drive the residual bound to zero (xtask rule R8).
#[inline]
fn residual_eb(eb_abs: f64, vmax: f64) -> f64 {
    let slack = 4.0 * vmax * f64::from(f32::EPSILON);
    (eb_abs - slack).max(eb_abs * 0.5)
}

/// Frozen pre-optimization compressor: identical container bytes to
/// [`compress`], produced via [`compress_plain_alloc_baseline`] (the
/// allocate-everything pipeline). Plain mode only — periodic configs return
/// `BadConfig`, since the baseline exists to benchmark and differentially
/// test the hot plain path, not to duplicate the periodic recursion.
///
/// Do not "optimize" this function — its allocation profile *is* its
/// purpose: the benchmark harness measures the zero-copy path against it,
/// and the differential tests assert byte identity against it.
#[doc(hidden)]
pub fn compress_alloc_baseline(
    data: &Grid<f32>,
    mask: Option<&MaskMap>,
    bound: ErrorBound,
    config: &PipelineConfig,
) -> Result<Vec<u8>, ClizError> {
    config.validate(data.shape())?;
    if let Some(m) = mask {
        if m.shape() != data.shape() {
            return Err(ClizError::BadConfig("mask shape mismatch"));
        }
    }
    if !matches!(config.periodicity, Periodicity::None) {
        return Err(ClizError::BadConfig(
            "alloc baseline covers plain mode only",
        ));
    }
    let effective_mask = match mask {
        Some(m) if config.use_mask && !m.is_all_valid() => Some(m),
        _ => None,
    };
    let (mn, mx) = valid_min_max(data, mask);
    let eb_abs = bound.resolve(mn, mx);
    let fill = representative_fill(data, effective_mask);

    let mut w = ByteWriter::new();
    w.magic(&CLIZ);
    w.u8(data.shape().ndim() as u8);
    for &d in data.shape().dims() {
        w.u64(d as u64);
    }
    w.f64(eb_abs);
    w.f32(fill);
    w.u8(effective_mask.is_some() as u8);
    w.u8(MODE_PLAIN);
    compress_plain_alloc_baseline(data, effective_mask, eb_abs, config, &mut w)?;
    Ok(w.finish())
}

/// Decompresses a CLIZ container. Streams compressed with a mask require the
/// same mask here.
pub fn decompress(bytes: &[u8], mask: Option<&MaskMap>) -> Result<Grid<f32>, ClizError> {
    let mut arena = ScratchArena::new();
    decompress_arena(bytes, mask, &mut arena)
}

/// [`decompress`] with caller-supplied scratch buffers; same output, fewer
/// allocations when decoding many containers (or chunked slabs) in a loop.
pub fn decompress_arena(
    bytes: &[u8],
    mask: Option<&MaskMap>,
    arena: &mut ScratchArena,
) -> Result<Grid<f32>, ClizError> {
    let mut r = ByteReader::new(bytes);
    r.expect_magic(&CLIZ)?;
    let ndim = r.u8()? as usize;
    if ndim == 0 || ndim > cliz_grid::shape::MAX_DIMS {
        return Err(ClizError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let d = r.u64()? as usize;
        if d == 0 {
            return Err(ClizError::Corrupt("zero dimension"));
        }
        dims.push(d);
    }
    // Reject corrupt headers before any multiplication can overflow or any
    // allocation can explode: the element count must fit comfortably and
    // cannot exceed what the (compressed!) stream could plausibly describe.
    let total = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(ClizError::Corrupt("dimension overflow"))?;
    if total > (1usize << 42) {
        return Err(ClizError::Corrupt("implausible element count"));
    }
    let eb_abs = r.f64()?;
    if !(eb_abs > 0.0) {
        return Err(ClizError::Corrupt("bad error bound"));
    }
    let fill = r.f32()?;
    let uses_mask = r.u8()? != 0;
    let shape = Shape::new(&dims);
    let mask = if uses_mask {
        match mask {
            Some(m) if m.shape() == &shape => Some(m),
            _ => return Err(ClizError::MaskRequired),
        }
    } else {
        None
    };

    match r.u8()? {
        MODE_PLAIN => decompress_plain_with(&mut r, &dims, eb_abs, mask, fill, arena),
        MODE_PERIODIC => {
            let time_axis = r.u8()? as usize;
            let period = r.u32()? as usize;
            if time_axis >= ndim || period < 2 || period >= dims[time_axis] {
                return Err(ClizError::Corrupt("bad periodic parameters"));
            }
            let t_bytes = r.block()?;
            let r_bytes = r.block()?;
            let tmask = mask.map(|m| template_mask(m, time_axis, period));
            let template = decompress_arena(t_bytes, tmask.as_ref(), arena)?;
            let residual = decompress_arena(r_bytes, mask, arena)?;
            if template.shape() != &crate::periodic::template_shape(&shape, time_axis, period)
                || residual.shape() != &shape
            {
                return Err(ClizError::Corrupt("periodic shape mismatch"));
            }
            Ok(add_template(&residual, &template, mask, time_axis, fill))
        }
        _ => Err(ClizError::Corrupt("unknown mode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::FusionSpec;

    fn smooth(dims: &[usize]) -> Grid<f32> {
        Grid::from_fn(Shape::new(dims), |c| {
            let mut v = 0.0f64;
            for (k, &x) in c.iter().enumerate() {
                v += ((x as f64) * 0.13 * (k + 1) as f64).sin() * 4.0;
            }
            v as f32
        })
    }

    fn check_roundtrip(
        data: &Grid<f32>,
        mask: Option<&MaskMap>,
        bound: ErrorBound,
        config: &PipelineConfig,
    ) -> CompressStats {
        let (bytes, stats) = compress_with_stats(data, mask, bound, config).unwrap();
        let out = decompress(&bytes, mask).unwrap();
        assert_eq!(out.shape(), data.shape());
        for (i, (&a, &b)) in data.as_slice().iter().zip(out.as_slice()).enumerate() {
            if mask.is_none_or(|m| m.is_valid(i)) {
                assert!(
                    (a as f64 - b as f64).abs() <= stats.eb_abs * (1.0 + 1e-12),
                    "bound violated at {i}: {a} vs {b} (eb {})",
                    stats.eb_abs
                );
            }
        }
        stats
    }

    #[test]
    fn plain_roundtrip_abs_bound() {
        let g = smooth(&[9, 17, 21]);
        check_roundtrip(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(3));
    }

    #[test]
    fn plain_roundtrip_rel_bound() {
        let g = smooth(&[30, 40]);
        let stats = check_roundtrip(
            &g,
            None,
            ErrorBound::Rel(1e-3),
            &PipelineConfig::default_for(2),
        );
        let (mn, mx) = g.finite_min_max().unwrap();
        assert!((stats.eb_abs - 1e-3 * (mx - mn) as f64).abs() < 1e-9);
    }

    #[test]
    fn periodic_roundtrip() {
        // Station offset + annual cycle + small trend.
        let g = Grid::from_fn(Shape::new(&[6, 48]), |c| {
            let phase = 2.0 * std::f64::consts::PI * (c[1] % 12) as f64 / 12.0;
            (c[0] as f64 * 5.0 + 3.0 * phase.sin() + c[1] as f64 * 0.01) as f32
        });
        let mut config = PipelineConfig::default_for(2);
        config.periodicity = Periodicity::Extract {
            time_axis: 1,
            period: 12,
        };
        let stats = check_roundtrip(&g, None, ErrorBound::Abs(1e-3), &config);
        assert!(stats.periodic);
    }

    #[test]
    fn periodic_beats_plain_on_periodic_data() {
        let g = Grid::from_fn(Shape::new(&[16, 120]), |c| {
            let phase = 2.0 * std::f64::consts::PI * (c[1] % 12) as f64 / 12.0;
            // Per-station random-ish phase pattern repeated every 12 steps.
            let station = (c[0] as f64 * 7.7).sin() * 20.0;
            (station + 8.0 * (phase + c[0] as f64).sin()) as f32
        });
        let plain = PipelineConfig::default_for(2);
        let periodic = PipelineConfig {
            periodicity: Periodicity::Extract {
                time_axis: 1,
                period: 12,
            },
            ..plain.clone()
        };
        let b_plain = compress(&g, None, ErrorBound::Abs(1e-4), &plain).unwrap();
        let b_per = compress(&g, None, ErrorBound::Abs(1e-4), &periodic).unwrap();
        assert!(
            b_per.len() < b_plain.len(),
            "periodic {} !< plain {}",
            b_per.len(),
            b_plain.len()
        );
    }

    #[test]
    fn masked_roundtrip_and_mask_required() {
        let mut g = smooth(&[20, 20]);
        let mut valid = vec![true; 400];
        for i in 0..400 {
            if (i / 20 + i % 20) % 5 == 0 {
                g.as_mut_slice()[i] = 9.96921e36; // CESM-style fill
                valid[i] = false;
            }
        }
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let config = PipelineConfig::default_for(2);
        check_roundtrip(&g, Some(&mask), ErrorBound::Abs(1e-3), &config);

        let bytes = compress(&g, Some(&mask), ErrorBound::Abs(1e-3), &config).unwrap();
        assert_eq!(decompress(&bytes, None), Err(ClizError::MaskRequired));
        // Masked positions come back as the representative fill.
        let out = decompress(&bytes, Some(&mask)).unwrap();
        for i in 0..400 {
            if !mask.is_valid(i) {
                assert_eq!(out.as_slice()[i], 9.96921e36);
            }
        }
    }

    #[test]
    fn full_cliz_pipeline_roundtrip() {
        // Everything on at once: permutation, fusion, classification,
        // periodicity, mask.
        let mut g = Grid::from_fn(Shape::new(&[10, 24, 16]), |c| {
            let phase = 2.0 * std::f64::consts::PI * (c[1] % 6) as f64 / 6.0;
            (c[0] as f64 * 2.0 + phase.cos() * 5.0 + c[2] as f64 * 0.1) as f32
        });
        let mut valid = vec![true; g.len()];
        for (i, v) in valid.iter_mut().enumerate() {
            if i % 11 == 0 {
                g.as_mut_slice()[i] = 1e35;
                *v = false;
            }
        }
        let mask = MaskMap::from_flags(g.shape().clone(), valid);
        let config = PipelineConfig {
            permutation: vec![1, 0, 2],
            fusion: FusionSpec { start: 1, len: 2 },
            classification: true,
            periodicity: Periodicity::Extract {
                time_axis: 1,
                period: 6,
            },
            ..PipelineConfig::default_for(3)
        };
        check_roundtrip(&g, Some(&mask), ErrorBound::Rel(1e-3), &config);
    }

    #[test]
    fn garbage_input_rejected() {
        assert_eq!(decompress(b"nonsense", None), Err(ClizError::BadMagic));
        assert!(decompress(&[0x5A, 0x49], None).is_err());
    }

    #[test]
    fn truncated_container_rejected() {
        let g = smooth(&[16, 16]);
        let bytes = compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
        for frac in [4, 10, 30, bytes.len() - 1] {
            assert!(decompress(&bytes[..frac], None).is_err(), "cut {frac}");
        }
    }

    #[test]
    fn compression_actually_compresses_smooth_data() {
        let g = smooth(&[32, 64, 64]);
        let bytes = compress(&g, None, ErrorBound::Rel(1e-3), &PipelineConfig::default_for(3))
            .unwrap();
        let ratio = (g.len() * 4) as f64 / bytes.len() as f64;
        assert!(ratio > 8.0, "ratio only {ratio:.2}");
    }
}
