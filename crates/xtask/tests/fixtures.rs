//! Fixture tests for the lint rules: each fixture is a small source file
//! with known violations, asserted by exact rule id and line number.
//!
//! The fixtures live under `tests/fixtures/` so neither cargo nor the
//! scanner itself (which only walks `crates/*/src/`) picks them up as real
//! code. Each is linted under a *virtual* workspace-relative path chosen to
//! put it in the scope of the rule under test.

use cliz_xtask::lint_source;

/// `(rule, line)` pairs of a report, sorted.
fn hits(rel_path: &str, source: &str) -> Vec<(&'static str, usize)> {
    let mut v: Vec<_> = lint_source(rel_path, source)
        .violations
        .iter()
        .map(|v| (v.rule, v.line))
        .collect();
    v.sort();
    v
}

#[test]
fn r1_flags_indexing_unwrap_and_panics() {
    let src = include_str!("fixtures/r1_panics.rs");
    assert_eq!(
        hits("crates/entropy/src/fixture.rs", src),
        vec![("R1", 2), ("R1", 4), ("R1", 6)]
    );
}

#[test]
fn r1_is_scoped_to_decode_facing_code() {
    // The same source under a non-decode path raises nothing.
    let src = include_str!("fixtures/r1_panics.rs");
    assert_eq!(hits("crates/bench/src/fixture.rs", src), vec![]);
}

#[test]
fn r2_flags_bare_narrowing_casts_only() {
    let src = include_str!("fixtures/r2_casts.rs");
    // `as u128` on line 4 widens and is not flagged.
    assert_eq!(
        hits("crates/quant/src/fixture.rs", src),
        vec![("R2", 2), ("R2", 3)]
    );
    assert_eq!(hits("crates/grid/src/fixture.rs", src), vec![]);
}

#[test]
fn r3_requires_result_on_pub_codec_entry_points() {
    let src = include_str!("fixtures/r3_entry.rs");
    // Line 1: pub compress_* without Result. The Result-returning
    // decompress_block (line 6) and the private helper (line 11) pass.
    assert_eq!(hits("crates/baselines/src/fixture.rs", src), vec![("R3", 1)]);
}

#[test]
fn r4_requires_debug_assert_hooks_in_quantizer() {
    let missing = include_str!("fixtures/r4_missing.rs");
    assert_eq!(
        hits("crates/quant/src/quantizer.rs", missing),
        vec![("R4", 4), ("R4", 9)]
    );
    // R4 only applies to the quantizer file itself.
    assert_eq!(hits("crates/quant/src/other.rs", missing), vec![]);

    let present = include_str!("fixtures/r4_present.rs");
    assert_eq!(hits("crates/quant/src/quantizer.rs", present), vec![]);
}

#[test]
fn clean_decode_code_passes_and_test_modules_are_exempt() {
    let src = include_str!("fixtures/clean.rs");
    let report = lint_source("crates/entropy/src/fixture.rs", src);
    assert_eq!(report.violations.len(), 0, "{:?}", report.violations);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn suppressions_cover_line_and_function_scopes() {
    let src = include_str!("fixtures/suppressed.rs");
    let report = lint_source("crates/entropy/src/fixture.rs", src);
    assert_eq!(report.violations.len(), 0, "{:?}", report.violations);
    // bytes[0] on line 3, and bytes[0]/bytes[1] inside first_two.
    assert_eq!(report.suppressed, 3);
}

#[test]
fn malformed_suppressions_are_r0_and_do_not_suppress() {
    let src = include_str!("fixtures/bad_suppression.rs");
    // Missing reason (line 2) and unknown rule id (line 7) are R0, and the
    // violations they failed to cover still surface (lines 3 and 8).
    assert_eq!(
        hits("crates/entropy/src/fixture.rs", src),
        vec![("R0", 2), ("R0", 7), ("R1", 3), ("R1", 8)]
    );
}
