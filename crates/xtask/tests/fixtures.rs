//! Fixture tests for the lint rules: each fixture is a small source file
//! with known violations, asserted by exact rule id and line number.
//!
//! The fixtures live under `tests/fixtures/` so neither cargo nor the
//! scanner itself (which only walks `crates/*/src/`) picks them up as real
//! code. Each is linted under a *virtual* workspace-relative path chosen to
//! put it in the scope of the rule under test.

use cliz_xtask::{
    baseline_from_report, baseline_to_json, lint_source, lint_sources, parse_baseline, ratchet,
};

/// `(rule, line)` pairs of a report, sorted.
fn hits(rel_path: &str, source: &str) -> Vec<(&'static str, usize)> {
    let mut v: Vec<_> = lint_source(rel_path, source)
        .violations
        .iter()
        .map(|v| (v.rule, v.line))
        .collect();
    v.sort();
    v
}

#[test]
fn r1_flags_indexing_unwrap_and_panics() {
    let src = include_str!("fixtures/r1_panics.rs");
    assert_eq!(
        hits("crates/entropy/src/fixture.rs", src),
        vec![("R1", 2), ("R1", 4), ("R1", 6)]
    );
}

#[test]
fn r1_is_scoped_to_decode_facing_code() {
    // The same source under a non-decode path raises nothing.
    let src = include_str!("fixtures/r1_panics.rs");
    assert_eq!(hits("crates/bench/src/fixture.rs", src), vec![]);
}

#[test]
fn r2_flags_bare_narrowing_casts_only() {
    let src = include_str!("fixtures/r2_casts.rs");
    // `as u128` on line 4 widens and is not flagged.
    assert_eq!(
        hits("crates/quant/src/fixture.rs", src),
        vec![("R2", 2), ("R2", 3)]
    );
    assert_eq!(hits("crates/grid/src/fixture.rs", src), vec![]);
}

#[test]
fn r3_requires_result_on_pub_codec_entry_points() {
    let src = include_str!("fixtures/r3_entry.rs");
    // Line 1: pub compress_* without Result. The Result-returning
    // decompress_block (line 6) and the private helper (line 11) pass.
    assert_eq!(hits("crates/baselines/src/fixture.rs", src), vec![("R3", 1)]);
}

#[test]
fn r4_requires_debug_assert_hooks_in_quantizer() {
    let missing = include_str!("fixtures/r4_missing.rs");
    assert_eq!(
        hits("crates/quant/src/quantizer.rs", missing),
        vec![("R4", 4), ("R4", 9)]
    );
    // R4 only applies to the quantizer file itself.
    assert_eq!(hits("crates/quant/src/other.rs", missing), vec![]);

    let present = include_str!("fixtures/r4_present.rs");
    assert_eq!(hits("crates/quant/src/quantizer.rs", present), vec![]);
}

#[test]
fn clean_decode_code_passes_and_test_modules_are_exempt() {
    let src = include_str!("fixtures/clean.rs");
    let report = lint_source("crates/entropy/src/fixture.rs", src);
    assert_eq!(report.violations.len(), 0, "{:?}", report.violations);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn suppressions_cover_line_and_function_scopes() {
    let src = include_str!("fixtures/suppressed.rs");
    let report = lint_source("crates/entropy/src/fixture.rs", src);
    assert_eq!(report.violations.len(), 0, "{:?}", report.violations);
    // bytes[0] on line 3, and bytes[0]/bytes[1] inside first_two.
    assert_eq!(report.suppressed, 3);
}

#[test]
fn malformed_suppressions_are_r0_and_do_not_suppress() {
    let src = include_str!("fixtures/bad_suppression.rs");
    // Missing reason (line 2) and unknown rule id (line 7) are R0, and the
    // violations they failed to cover still surface (lines 3 and 8).
    assert_eq!(
        hits("crates/entropy/src/fixture.rs", src),
        vec![("R0", 2), ("R0", 7), ("R1", 3), ("R1", 8)]
    );
}

/// Assembles a two-file virtual workspace for the cross-crate R5 pass.
fn r5_workspace() -> Vec<(String, String)> {
    vec![
        (
            "crates/alpha/src/entry.rs".to_string(),
            include_str!("fixtures/r5_entry.rs").to_string(),
        ),
        (
            "crates/beta/src/helpers.rs".to_string(),
            include_str!("fixtures/r5_helpers.rs").to_string(),
        ),
    ]
}

#[test]
fn r5_pins_the_exact_cross_crate_taint_chain() {
    let report = lint_sources(&r5_workspace());
    // Exactly one finding: the `bytes[0]` in `leaf`, two hops from the
    // `decompress_blob` seed in the other crate. `untainted` (never called
    // from a seed) raises nothing despite touching a slice.
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "R5");
    assert_eq!(v.file, "crates/beta/src/helpers.rs");
    assert_eq!(v.line, 6);
    assert_eq!(
        v.message,
        "indexing `bytes[..]` reachable from decode-tainted input \
         (path: decompress_blob → step → leaf)"
    );
}

#[test]
fn r5_is_silent_without_a_seed_and_in_exempt_crates() {
    // Helpers alone (no decompress/read/parse entry anywhere): clean.
    let helpers_only = vec![(
        "crates/beta/src/helpers.rs".to_string(),
        include_str!("fixtures/r5_helpers.rs").to_string(),
    )];
    assert_eq!(lint_sources(&helpers_only).violations.len(), 0);

    // The same tainted pair under an exempt crate raises nothing.
    let exempt: Vec<(String, String)> = r5_workspace()
        .into_iter()
        .map(|(p, s)| (p.replace("crates/alpha", "crates/xtask").replace("crates/beta", "crates/bench"), s))
        .collect();
    assert_eq!(lint_sources(&exempt).violations.len(), 0);
}

#[test]
fn r5_function_suppression_covers_the_hazard_and_counts() {
    let files = vec![(
        "crates/beta/src/decode.rs".to_string(),
        include_str!("fixtures/r5_suppressed.rs").to_string(),
    )];
    let report = lint_sources(&files);
    assert_eq!(report.violations.len(), 0, "{:?}", report.violations);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn r6_flags_bare_f32_and_expression_casts_in_scope() {
    let src = include_str!("fixtures/r6_casts.rs");
    // Line 2: `x as f32`; line 3: `(n * 2) as usize`. The identifier cast on
    // line 4 and everything inside the test module stay exempt.
    assert_eq!(
        hits("crates/metrics/src/fixture.rs", src),
        vec![("R6", 2), ("R6", 3)]
    );
    // Out of the quant/predict/metrics scope: clean.
    assert_eq!(hits("crates/grid/src/fixture.rs", src), vec![]);
}

/// `(rule, line)` pairs of a workspace-pass report, sorted.
fn workspace_hits(files: &[(String, String)]) -> Vec<(&'static str, usize)> {
    let mut v: Vec<_> = lint_sources(files)
        .violations
        .iter()
        .map(|v| (v.rule, v.line))
        .collect();
    v.sort();
    v
}

#[test]
fn r7_flags_unchecked_arithmetic_and_allocation_from_wire_lengths() {
    let files = vec![(
        "crates/core/src/stream.rs".to_string(),
        include_str!("fixtures/r7_tainted.rs").to_string(),
    )];
    // Line 2 reads `n` off the wire; line 3 multiplies it bare, line 4
    // allocates from it — both before any validation.
    assert_eq!(workspace_hits(&files), vec![("R7", 3), ("R7", 4)]);
}

#[test]
fn r7_guarded_and_checked_reads_pass() {
    // Identical reads, but one fn compares `n` against a cap before using
    // it and the other goes through `checked_mul`: both clean.
    let files = vec![(
        "crates/core/src/stream.rs".to_string(),
        include_str!("fixtures/r7_guarded.rs").to_string(),
    )];
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r8_flags_compressor_impl_without_bound_test() {
    let files = vec![(
        "crates/baselines/src/fixture.rs".to_string(),
        include_str!("fixtures/r8_impl.rs").to_string(),
    )];
    let report = lint_sources(&files);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, "R8");
    assert!(report.violations[0].message.contains("FixtureCodec"));
}

#[test]
fn r8_bound_asserting_roundtrip_test_satisfies_the_contract() {
    // Same impl, now mentioned from a test that asserts |x - x'| <= eb.
    let files = vec![
        (
            "crates/baselines/src/fixture.rs".to_string(),
            include_str!("fixtures/r8_impl.rs").to_string(),
        ),
        (
            "tests/r8_roundtrip.rs".to_string(),
            include_str!("fixtures/r8_roundtrip.rs").to_string(),
        ),
    ];
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r8_eb_scaling_must_live_in_a_named_helper() {
    let files = vec![(
        "crates/quant/src/fixture.rs".to_string(),
        include_str!("fixtures/r8_eb.rs").to_string(),
    )];
    // `2.0 * self.eb` inside `step()` (line 7) is flagged; the same
    // expression inside `eb_step()` and the comparison in `within()` pass.
    assert_eq!(workspace_hits(&files), vec![("R8", 7)]);
}

#[test]
fn ratchet_tolerates_baselined_findings_and_fails_on_growth() {
    let report = lint_sources(&r5_workspace());
    assert_eq!(report.violations.len(), 1);

    // An empty baseline (the committed state of this repo) fails the run.
    let empty = parse_baseline("{\"version\": 1, \"entries\": []}").expect("parse");
    let out = ratchet(&report, &empty);
    assert!(out.is_regression());
    assert_eq!(out.regressions.len(), 1);
    let (rule, file, current, allowed) = &out.regressions[0];
    assert_eq!((rule.as_str(), current, allowed), ("R5", &1, &0));
    assert_eq!(file, "crates/beta/src/helpers.rs");

    // A baseline written from the report tolerates exactly these findings.
    let base = baseline_from_report(&report);
    let reparsed = parse_baseline(&baseline_to_json(&base)).expect("roundtrip");
    let out = ratchet(&report, &reparsed);
    assert!(!out.is_regression());
    assert_eq!(out.known, 1);
}

#[test]
fn ratchet_only_shrinks_fixed_findings_go_stale_not_green_lit() {
    let report = lint_sources(&r5_workspace());
    let base = baseline_from_report(&report);

    // Burn the finding down (suppress it at the hazard function): the old
    // baseline entry is now stale, and the run still passes.
    let fixed: Vec<(String, String)> = r5_workspace()
        .into_iter()
        .map(|(p, s)| {
            let s = s.replace(
                "pub fn leaf",
                "// xtask-allow-fn: R5 -- fixture: burned down\npub fn leaf",
            );
            (p, s)
        })
        .collect();
    let clean = lint_sources(&fixed);
    assert_eq!(clean.violations.len(), 0, "{:?}", clean.violations);
    let out = ratchet(&clean, &base);
    assert!(!out.is_regression());
    assert_eq!(out.stale.len(), 1);
    assert_eq!(out.stale[0].2, 0, "stale entry reports current count 0");
}

#[test]
fn r9_flags_held_guards_double_acquires_and_order_cycles() {
    let files = vec![(
        "crates/transfer/src/fixture.rs".to_string(),
        include_str!("fixtures/r9_hazards.rs").to_string(),
    )];
    // line 9: guard on `state` held across `decompress_block(..)`;
    // line 14: `state` re-acquired while its guard is still live;
    // lines 21/28: `state`→`side` and `side`→`state` nestings both occur,
    // so each edge of the order cycle is flagged at its acquisition site.
    assert_eq!(
        workspace_hits(&files),
        vec![("R9", 9), ("R9", 14), ("R9", 21), ("R9", 28)]
    );
}

#[test]
fn r9_released_guards_and_canonical_order_pass() {
    let files = vec![(
        "crates/transfer/src/fixture.rs".to_string(),
        include_str!("fixtures/r9_clean.rs").to_string(),
    )];
    // Block-scoped, dropped, and statement-temporary guards all end before
    // the codec call; both nesting functions use the same lock order.
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r9_is_silent_in_exempt_crates() {
    let files = vec![(
        "crates/bench/src/fixture.rs".to_string(),
        include_str!("fixtures/r9_hazards.rs").to_string(),
    )];
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r10_flags_shared_state_hazards() {
    let files = vec![(
        "crates/transfer/src/fixture.rs".to_string(),
        include_str!("fixtures/r10_hazards.rs").to_string(),
    )];
    // line 1: `static mut`; line 4: bare `count: u64` in a sync-shared
    // struct; lines 9/10: manual `unsafe impl Send`/`Sync`; line 14:
    // `Relaxed` fetch_add on `total` while line 18 loads it with
    // `Acquire`; line 21: `&self` method returning `&RefCell<..>`.
    assert_eq!(
        workspace_hits(&files),
        vec![
            ("R10", 1),
            ("R10", 4),
            ("R10", 9),
            ("R10", 10),
            ("R10", 14),
            ("R10", 21)
        ]
    );
}

#[test]
fn r10_relaxed_counters_and_locked_state_pass() {
    let files = vec![(
        "crates/transfer/src/fixture.rs".to_string(),
        include_str!("fixtures/r10_clean.rs").to_string(),
    )];
    // All-`Relaxed` statistical counters, a plain counter under the
    // `Mutex`, and a `MutexGuard`-returning accessor are the sanctioned
    // layouts.
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r11_flags_hot_loop_allocation_and_spares_cold_and_hoisted() {
    let files = vec![(
        "crates/entropy/src/fixture.rs".to_string(),
        include_str!("fixtures/r11_hot_alloc.rs").to_string(),
    )];
    // Line 8: `Vec::new()` inside `decode_rows`'s loop (hot by name). The
    // identical loop in cold `build_table` and the hoisted scratch buffer
    // in `decode_hoisted` raise nothing.
    assert_eq!(workspace_hits(&files), vec![("R11", 8)]);
}

#[test]
fn r11_is_scoped_to_kernel_crates() {
    let files = vec![(
        "crates/cli/src/fixture.rs".to_string(),
        include_str!("fixtures/r11_hot_alloc.rs").to_string(),
    )];
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r12_flags_single_bit_io_in_loops_only() {
    let files = vec![(
        "crates/entropy/src/fixture.rs".to_string(),
        include_str!("fixtures/r12_bit_io.rs").to_string(),
    )];
    // Lines 8/9: `.read_bits(1)` and `.write_bits(_, 1)` inside
    // `decode_flags`'s loop. The 11-bit reads in `decode_codes` and the
    // single-bit read *outside* a loop (line 19) pass.
    assert_eq!(workspace_hits(&files), vec![("R12", 8), ("R12", 9)]);
}

#[test]
fn r12_suppression_covers_a_frozen_reference_kernel() {
    // The differential-reference modules keep the bit-at-a-time shape on
    // purpose; an argued xtask-allow-fn suppression keeps them auditable.
    let src = include_str!("fixtures/r12_bit_io.rs").replace(
        "pub fn decode_flags",
        "// xtask-allow-fn: R12 -- fixture: frozen pre-rewrite reference\npub fn decode_flags",
    );
    let files = vec![("crates/entropy/src/fixture.rs".to_string(), src)];
    let report = lint_sources(&files);
    assert_eq!(report.violations.len(), 0, "{:?}", report.violations);
    assert_eq!(report.suppressed, 2);
}

#[test]
fn r13_flags_per_iteration_mask_test_and_spares_hoisted_form() {
    let files = vec![(
        "crates/quant/src/fixture.rs".to_string(),
        include_str!("fixtures/r13_masked_loop.rs").to_string(),
    )];
    // Line 6: `for i in ..` indexing `vals[i]`/`m[i]` under a per-element
    // `is_none_or` test. The hoisted match + zip form passes.
    assert_eq!(workspace_hits(&files), vec![("R13", 6)]);
}

#[test]
fn r13_is_scoped_to_numeric_kernel_crates() {
    let files = vec![(
        "crates/lossless/src/fixture.rs".to_string(),
        include_str!("fixtures/r13_masked_loop.rs").to_string(),
    )];
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r10_is_silent_in_exempt_crates() {
    let files = vec![(
        "crates/bench/src/fixture.rs".to_string(),
        include_str!("fixtures/r10_hazards.rs").to_string(),
    )];
    assert_eq!(workspace_hits(&files), vec![]);
}

// ---------------------------------------------------------------------------
// R14/R15/R16: format symmetry, version discipline, error-surface coverage.
// Every workspace test ships the fixture registry at the canonical path so
// the rules have specs to resolve against.
// ---------------------------------------------------------------------------

fn fmt_registry() -> (String, String) {
    (
        "crates/format/src/lib.rs".to_string(),
        include_str!("fixtures/fmt_registry.rs").to_string(),
    )
}

#[test]
fn r14_flags_width_mismatch_unpaired_writer_and_one_sided_trailer() {
    let files = vec![
        fmt_registry(),
        (
            "crates/store/src/fixture.rs".to_string(),
            include_str!("fixtures/r14_asym.rs").to_string(),
        ),
    ];
    // Line 14: `parse_aaa` reads f32 where `write_aaa` emits f64.
    // Line 26: `write_bbb` serializes BBB1 that nothing parses.
    // Line 34: the AAA1 trailer magic is emitted but never checked.
    assert_eq!(
        workspace_hits(&files),
        vec![("R14", 14), ("R14", 26), ("R14", 34)]
    );
}

#[test]
fn r14_symmetric_pairs_and_checked_trailer_pass() {
    // Same shapes, but the reader mirrors the writer field-for-field (the
    // per-dim loop pairs with the adjacent u64 via star normalization),
    // BBB1 gains a parser, and the trailer is both emitted and compared.
    let files = vec![
        fmt_registry(),
        (
            "crates/store/src/fixture.rs".to_string(),
            include_str!("fixtures/r14_sym.rs").to_string(),
        ),
    ];
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r14_suppression_silences_the_unpaired_writer() {
    let src = include_str!("fixtures/r14_asym.rs").replace(
        "pub fn write_bbb",
        "// xtask-allow-fn: R14 -- sidecar format parsed by external tooling\npub fn write_bbb",
    );
    let files = vec![
        fmt_registry(),
        ("crates/store/src/fixture.rs".to_string(), src),
    ];
    // The width mismatch stays at line 14; the trailer finding shifts to 35
    // behind the inserted comment; the write-without-read is suppressed.
    assert_eq!(workspace_hits(&files), vec![("R14", 14), ("R14", 35)]);
}

#[test]
fn r15_flags_missing_version_check_late_check_stray_const_and_duplicate() {
    let files = vec![
        fmt_registry(),
        (
            "crates/store/src/fixture.rs".to_string(),
            include_str!("fixtures/r15_version.rs").to_string(),
        ),
    ];
    // Line 3: `parse_noversion` has no UnsupportedVersion path at all.
    // Line 17: `parse_late` decodes a count before validating the version.
    // Line 35: stray MAGIC const outside the registry, which also collides
    // with AAA1's value (two findings on that line).
    // Line 38: `FormatSpec` literal constructed outside the registry.
    assert_eq!(
        workspace_hits(&files),
        vec![
            ("R15", 3),
            ("R15", 17),
            ("R15", 35),
            ("R15", 35),
            ("R15", 38)
        ]
    );
}

#[test]
fn r15_version_checked_before_counts_passes() {
    let files = vec![
        fmt_registry(),
        (
            "crates/store/src/fixture.rs".to_string(),
            include_str!("fixtures/r15_version_ok.rs").to_string(),
        ),
    ];
    assert_eq!(workspace_hits(&files), vec![]);
}

#[test]
fn r16_flags_dead_untested_and_unreachable_error_variants() {
    let files = vec![
        fmt_registry(),
        (
            "crates/store/src/fixture.rs".to_string(),
            include_str!("fixtures/r16_surface.rs").to_string(),
        ),
        (
            "crates/store/tests/fixture_cov.rs".to_string(),
            include_str!("fixtures/r16_cov_test.rs").to_string(),
        ),
    ];
    // Line 4: `Dead` is never constructed. Line 5: `Untested` is built in
    // `parse_rec` but no test asserts it. Line 6: `Orphaned` is both
    // untested and only constructed in `audit_rec`, which no decode entry
    // point reaches. Line 7 (`Covered`) is asserted by the test fixture.
    assert_eq!(
        workspace_hits(&files),
        vec![("R16", 4), ("R16", 5), ("R16", 6), ("R16", 6)]
    );
}

#[test]
fn format_rules_are_scoped_to_container_crates() {
    let files = vec![
        fmt_registry(),
        (
            "crates/entropy/src/fixture.rs".to_string(),
            include_str!("fixtures/r14_asym.rs").to_string(),
        ),
    ];
    let got = workspace_hits(&files);
    assert!(
        got.iter().all(|(r, _)| *r != "R14" && *r != "R15" && *r != "R16"),
        "format rules fired out of scope: {got:?}"
    );
}
