use cliz_format::spec::AAA1;

pub fn parse_ok(bytes: &[u8]) -> Result<u64, FixtureError> {
    let magic = u32::from_le_bytes(head(bytes)?);
    if magic != AAA1.magic {
        return Err(FixtureError::BadMagic);
    }
    let version = take_u8(bytes)?;
    if version == 0 || version > AAA1.version {
        return Err(FixtureError::UnsupportedVersion(version));
    }
    let count = u64::from_le_bytes(next(bytes)?);
    Ok(count)
}

pub fn write_aaa(out: &mut Vec<u8>) {
    out.extend_from_slice(&AAA1.magic.to_le_bytes());
    out.push(AAA1.version);
}
