use cliz_format::spec::{AAA1, BBB1, AAA1_TRAILER_MAGIC};

pub fn write_sym(rec: &Rec) -> Vec<u8> {
    let mut w = HeaderWriter::new();
    w.magic(&AAA1);
    w.u8(rec.rank);
    for d in &rec.dims {
        w.u64(*d);
    }
    w.u64(rec.payload_len);
    w.f64(rec.eb);
    w.finish()
}

pub fn parse_sym(bytes: &[u8]) -> Result<Rec, FixtureError> {
    let mut r = HeaderReader::new(bytes);
    r.expect_magic(&AAA1)?;
    let rank = r.u8()?;
    let mut dims = Vec::new();
    for _ in 0..rank {
        dims.push(r.len64()?);
    }
    let payload_len = r.len64()?;
    let eb = r.f64()?;
    Ok(Rec { rank, dims, payload_len, eb })
}

pub fn write_bbb(x: u64) -> Vec<u8> {
    let mut w = HeaderWriter::new();
    w.magic(&BBB1);
    w.u64(x);
    w.finish()
}

pub fn parse_bbb(bytes: &[u8]) -> Result<u64, FixtureError> {
    let mut r = HeaderReader::new(bytes);
    r.expect_magic(&BBB1)?;
    let x = r.u64()?;
    Ok(x)
}

pub fn seal(w: &mut HeaderWriter) {
    w.u32(AAA1_TRAILER_MAGIC);
}

pub fn check_seal(tm: u32) -> bool {
    tm == AAA1_TRAILER_MAGIC
}
