pub fn decompress_blob(bytes: &[u8]) -> u8 {
    step(bytes)
}
