#[test]
fn fixture_codec_respects_bound() {
    let codec = FixtureCodec;
    let eb = 1e-3f64;
    let input = [1.0f64, 2.0, 3.0];
    let output = roundtrip(&codec, &input, eb);
    for (x, y) in input.iter().zip(output.iter()) {
        assert!((x - y).abs() <= eb);
    }
}
