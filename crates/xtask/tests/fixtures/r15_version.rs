use cliz_format::spec::{AAA1, BBB1};

pub fn parse_noversion(bytes: &[u8]) -> Result<u64, FixtureError> {
    let magic = u32::from_le_bytes(head(bytes)?);
    if magic != AAA1.magic {
        return Err(FixtureError::BadMagic);
    }
    let count = u64::from_le_bytes(next(bytes)?);
    Ok(count)
}

pub fn parse_late(bytes: &[u8]) -> Result<u64, FixtureError> {
    let magic = u32::from_le_bytes(head(bytes)?);
    if magic != BBB1.magic {
        return Err(FixtureError::BadMagic);
    }
    let count = u64::from_le_bytes(next(bytes)?);
    let version = take_u8(bytes)?;
    if version == 0 || version > BBB1.version {
        return Err(FixtureError::UnsupportedVersion(version));
    }
    Ok(count)
}

pub fn write_aaa(out: &mut Vec<u8>) {
    out.extend_from_slice(&AAA1.magic.to_le_bytes());
    out.push(AAA1.version);
}

pub fn write_bbb(out: &mut Vec<u8>) {
    out.extend_from_slice(&BBB1.magic.to_le_bytes());
    out.push(BBB1.version);
}

pub const SNEAKY_MAGIC: u32 = 0x4141_4131;

pub fn sneaky_spec() -> FormatSpec {
    FormatSpec { name: "zz", magic: 0x5A5A_5A31, version: 1 }
}
