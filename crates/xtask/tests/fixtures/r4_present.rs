pub struct Q;

impl Q {
    pub fn quantize(&self, value: f32, pred: f64) -> u32 {
        debug_assert!(value.is_finite() || !pred.is_nan());
        0
    }

    pub fn recover(&self, symbol: u32, pred: f64) -> f32 {
        debug_assert!(symbol > 0 || pred.is_finite());
        0.0
    }
}
