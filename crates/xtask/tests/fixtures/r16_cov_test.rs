#[test]
fn oversized_rank_is_rejected() {
    let bytes = mutate_rank(sample_container(), 9);
    assert!(matches!(parse_rec(&bytes), Err(FixtureError::Covered)));
}
