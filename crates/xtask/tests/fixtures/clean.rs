pub fn parse(bytes: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let bytes = [1u8, 0, 0, 0];
        assert_eq!(super::parse(&bytes).unwrap(), 1);
        let _ = bytes[0];
    }
}
