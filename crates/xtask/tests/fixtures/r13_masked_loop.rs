// R13 fixture: `apply_masked` re-tests the Option mask per element while
// indexing with the loop counter — the vectorization-hostile shape.
// `apply_hoisted` hoists the mask match and scans each arm with zipped
// iterators: same semantics, no per-iteration Option branch, passes.
pub fn apply_masked(vals: &mut [f32], mask: Option<&[bool]>) {
    for i in 0..vals.len() {
        if mask.is_none_or(|m| m[i]) {
            vals[i] *= 2.0;
        }
    }
}

pub fn apply_hoisted(vals: &mut [f32], mask: Option<&[bool]>) {
    match mask {
        None => {
            for v in vals.iter_mut() {
                *v *= 2.0;
            }
        }
        Some(m) => {
            for (v, &keep) in vals.iter_mut().zip(m) {
                if keep {
                    *v *= 2.0;
                }
            }
        }
    }
}
