pub struct Quant {
    eb: f64,
}

impl Quant {
    pub fn step(&self) -> f64 {
        2.0 * self.eb
    }

    pub fn eb_step(&self) -> f64 {
        2.0 * self.eb
    }

    pub fn within(&self, err: f64) -> bool {
        err <= self.eb
    }
}
