pub struct FixtureCodec;

impl Compressor for FixtureCodec {
    fn name(&self) -> &'static str {
        "fixture"
    }

    fn compress(&self, data: &[f32], eb: f64) -> Vec<u8> {
        let _ = (data, eb);
        Vec::new()
    }
}
