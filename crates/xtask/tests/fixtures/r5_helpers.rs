pub fn step(bytes: &[u8]) -> u8 {
    leaf(bytes)
}

pub fn leaf(bytes: &[u8]) -> u8 {
    bytes[0]
}

pub fn untainted(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or(0)
}
