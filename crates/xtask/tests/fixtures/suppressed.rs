pub fn checksum(bytes: &[u8]) -> u8 {
    // xtask-allow: R1 -- fixture: caller guarantees non-empty input
    bytes[0]
}

// xtask-allow-fn: R1 -- fixture: whole function is encoder-side
pub fn first_two(bytes: &[u8]) -> (u8, u8) {
    let a = bytes[0];
    let b = bytes[1];
    (a, b)
}
