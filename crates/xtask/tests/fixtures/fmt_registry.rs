pub struct FormatSpec {
    pub name: &'static str,
    pub magic: u32,
    pub version: u8,
}
pub const AAA1: FormatSpec = FormatSpec { name: "AAA1", magic: 0x4141_4131, version: 1 };
pub const BBB1: FormatSpec = FormatSpec { name: "BBB1", magic: 0x4242_4231, version: 1 };
pub const CCC1: FormatSpec = FormatSpec { name: "CCC1", magic: 0x4343_4331, version: 1 };
pub const AAA1_TRAILER_MAGIC: u32 = 0x3141_4141;
