use cliz_format::spec::{AAA1, BBB1, AAA1_TRAILER_MAGIC};

pub fn write_aaa(rec: &Rec) -> Vec<u8> {
    let mut w = HeaderWriter::new();
    w.magic(&AAA1);
    w.u8(rec.rank);
    for d in &rec.dims {
        w.u64(*d);
    }
    w.f64(rec.eb);
    w.finish()
}

pub fn parse_aaa(bytes: &[u8]) -> Result<Rec, FixtureError> {
    let mut r = HeaderReader::new(bytes);
    r.expect_magic(&AAA1)?;
    let rank = r.u8()?;
    let mut dims = Vec::new();
    for _ in 0..rank {
        dims.push(r.u64()?);
    }
    let eb = r.f32()?;
    Ok(Rec { rank, dims, eb })
}

pub fn write_bbb(x: u64) -> Vec<u8> {
    let mut w = HeaderWriter::new();
    w.magic(&BBB1);
    w.u64(x);
    w.finish()
}

pub fn seal(w: &mut HeaderWriter) {
    w.u32(AAA1_TRAILER_MAGIC);
}
