pub static mut GLOBAL_SCRATCH: [u8; 4] = [0; 4];

pub struct Tracker {
    pub count: u64,
    pub total: std::sync::atomic::AtomicU64,
    pub cell: std::cell::RefCell<Vec<u8>>,
}

unsafe impl Send for Tracker {}
unsafe impl Sync for Tracker {}

impl Tracker {
    pub fn bump(&self) {
        self.total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Acquire)
    }

    pub fn view(&self) -> &std::cell::RefCell<Vec<u8>> {
        &self.cell
    }
}
