pub fn read_trailer(r: &mut Reader, cap: usize) -> Result<usize, Error> {
    let n = r.u32() as usize;
    if n > cap {
        return Err(Error::Truncated);
    }
    let trailer_len = n * 16 + 8;
    let slabs: Vec<u64> = Vec::with_capacity(n);
    let _ = slabs;
    Ok(trailer_len)
}

pub fn read_count(r: &mut Reader) -> Result<usize, Error> {
    let n = r.u32() as usize;
    let bytes = n.checked_mul(16).ok_or(Error::Truncated)?;
    Ok(bytes)
}
