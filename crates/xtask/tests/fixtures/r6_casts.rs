pub fn lossy(x: f64, n: u64) -> (f32, usize) {
    let a = x as f32;
    let b = (n * 2) as usize;
    let c = n as usize;
    (a, b + c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_exempt() {
        let _ = (1.0f64) as f32;
    }
}
