// R12 fixture: `decode_flags` pulls one bit per call inside its loop (two
// shapes: `.read_bits(1)` and the forced single-bit `.write_bits(_, 1)`).
// `decode_codes` reads whole codes per call — the word-at-a-time shape —
// and passes, as does the single-bit call *outside* a loop.
pub fn decode_flags(r: &mut R, w: &mut W, n: usize) -> u32 {
    let mut acc = 0;
    for _ in 0..n {
        acc ^= r.read_bits(1).unwrap_or(0);
        w.write_bits(acc, 1);
    }
    acc
}

pub fn decode_codes(r: &mut R, n: usize) -> u32 {
    let mut acc = 0;
    for _ in 0..n {
        acc ^= r.read_bits(11).unwrap_or(0);
    }
    acc ^ r.read_bits(1).unwrap_or(0)
}
