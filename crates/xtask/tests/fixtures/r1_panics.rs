pub fn parse(bytes: &[u8]) -> u32 {
    let first = bytes[0];
    let v: u32 = u32::from(first);
    let tail = bytes.get(1..).unwrap();
    if tail.is_empty() {
        panic!("empty tail");
    }
    v
}
