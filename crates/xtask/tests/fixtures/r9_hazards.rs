pub struct Codec {
    state: std::sync::Mutex<Vec<u8>>,
    side: std::sync::Mutex<u8>,
}

impl Codec {
    pub fn holds_across_codec_work(&self) {
        let g = self.state.lock().unwrap();
        decompress_block(&g);
    }

    pub fn reacquires_same_lock(&self) {
        let a = self.state.lock().unwrap();
        let b = self.state.lock().unwrap();
        drop(a);
        drop(b);
    }

    pub fn nests_state_then_side(&self) {
        let a = self.state.lock().unwrap();
        let b = self.side.lock().unwrap();
        drop(b);
        drop(a);
    }

    pub fn nests_side_then_state(&self) {
        let b = self.side.lock().unwrap();
        let a = self.state.lock().unwrap();
        drop(a);
        drop(b);
    }
}

pub fn decompress_block(_bytes: &[u8]) {}
