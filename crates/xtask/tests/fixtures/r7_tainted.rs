pub fn read_trailer(r: &mut Reader) -> Result<usize, Error> {
    let n = r.u32() as usize;
    let trailer_len = n * 16 + 8;
    let slabs: Vec<u64> = Vec::with_capacity(n);
    let _ = slabs;
    Ok(trailer_len)
}
