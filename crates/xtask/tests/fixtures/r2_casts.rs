pub fn narrow(v: u64) -> u8 {
    let small = v as u8;
    let mid = (v >> 8) as u16;
    let wide = v as u128;
    let _ = (mid, wide);
    small
}
