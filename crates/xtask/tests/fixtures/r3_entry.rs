pub fn compress_block(values: &[f32]) -> Vec<u8> {
    let _ = values;
    Vec::new()
}

pub fn decompress_block(blob: &[u8]) -> Result<Vec<f32>, String> {
    let _ = blob;
    Ok(Vec::new())
}

fn compress_helper(values: &[f32]) -> Vec<u8> {
    let _ = values;
    Vec::new()
}
