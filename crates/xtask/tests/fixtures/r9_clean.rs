pub struct Pool {
    slots: std::sync::Mutex<Vec<u8>>,
    meta: std::sync::Mutex<u8>,
}

impl Pool {
    pub fn copies_out_then_works(&self) {
        let first = {
            let g = self.slots.lock().unwrap();
            g.first().copied().unwrap_or(0)
        };
        decompress_block(&[first]);
    }

    pub fn drops_guard_before_work(&self) {
        let g = self.slots.lock().unwrap();
        let n = g.len();
        drop(g);
        decompress_block(&[n as u8]);
    }

    pub fn statement_temporary_guard(&self) {
        let n = self.slots.lock().unwrap().len();
        decompress_block(&[n as u8]);
    }

    pub fn nests_in_canonical_order(&self) {
        let a = self.slots.lock().unwrap();
        let b = self.meta.lock().unwrap();
        drop(b);
        drop(a);
    }

    pub fn also_nests_in_canonical_order(&self) {
        let a = self.slots.lock().unwrap();
        let b = self.meta.lock().unwrap();
        drop(b);
        drop(a);
    }
}

pub fn decompress_block(_bytes: &[u8]) {}
