pub fn checksum(bytes: &[u8]) -> u8 {
    // xtask-allow: R1
    bytes[0]
}

pub fn tail(bytes: &[u8]) -> u8 {
    // xtask-allow: R99 -- no such rule
    bytes[1]
}
