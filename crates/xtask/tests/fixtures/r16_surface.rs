use cliz_format::spec::AAA1;

pub enum FixtureError {
    Dead,
    Untested,
    Orphaned,
    Covered,
}

pub fn write_rec(rec: &Rec) -> Vec<u8> {
    let mut w = HeaderWriter::new();
    w.magic(&AAA1);
    w.u8(rec.rank);
    w.finish()
}

pub fn parse_rec(bytes: &[u8]) -> Result<Rec, FixtureError> {
    let mut r = HeaderReader::new(bytes);
    r.expect_magic(&AAA1)?;
    let rank = r.u8()?;
    if rank == 0 {
        return Err(FixtureError::Untested);
    }
    if rank > 8 {
        return Err(FixtureError::Covered);
    }
    Ok(Rec { rank })
}

pub fn audit_rec(bytes: &[u8]) -> Result<(), FixtureError> {
    let mut r = HeaderReader::new(bytes);
    r.expect_magic(&AAA1)?;
    if r.u8()? == 9 {
        return Err(FixtureError::Orphaned);
    }
    Ok(())
}
