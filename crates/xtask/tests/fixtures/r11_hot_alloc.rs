// R11 fixture: `decode_rows` is hot by name; the per-iteration allocation
// in its loop is the violation. `build_table` is cold (never called from a
// hot function), so its identical loop passes, and the hoisted allocation
// in `decode_hoisted` passes.
pub fn decode_rows(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        let scratch: Vec<u8> = Vec::new();
        total += scratch.len() + i;
    }
    total
}

pub fn build_table(n: usize) -> usize {
    let mut total = 0;
    for _ in 0..n {
        let scratch: Vec<u8> = Vec::new();
        total += scratch.len();
    }
    total
}

pub fn decode_hoisted(n: usize) -> usize {
    let mut scratch: Vec<u8> = Vec::with_capacity(64);
    let mut total = 0;
    for i in 0..n {
        scratch.clear();
        scratch.push(1);
        total += scratch.len() + i;
    }
    total
}
