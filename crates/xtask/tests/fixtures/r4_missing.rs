pub struct Q;

impl Q {
    pub fn quantize(&self, value: f32, pred: f64) -> u32 {
        let _ = (value, pred);
        0
    }

    pub fn recover(&self, symbol: u32, pred: f64) -> f32 {
        let _ = (symbol, pred);
        0.0
    }
}
