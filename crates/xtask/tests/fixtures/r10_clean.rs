pub struct Counters {
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    inner: std::sync::Mutex<Inner>,
}

struct Inner {
    evictions: u64,
}

impl Counters {
    pub fn hit(&self) {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    pub fn guard(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
