// xtask-allow-fn: R5 -- fixture: index is bounds-checked by the caller
pub fn decode_first(bytes: &[u8]) -> u8 {
    bytes[0]
}
