//! Rule R10: shared-state audit.
//!
//! Five checks over everything concurrency-adjacent that the lock pass
//! (R9) does not cover:
//!
//! 1. **`static mut`** — mutable global state with no synchronization; the
//!    workspace also denies `unsafe`, so any occurrence is doubly wrong.
//! 2. **`unsafe impl Send`/`unsafe impl Sync`** — a hand-written thread
//!    safety claim the compiler cannot check. Must carry a suppression
//!    with a safety argument or be removed.
//! 3. **Mismatched atomic orderings** — for each atomic *field*, the pass
//!    collects every `load`/`store`/RMW site workspace-wide with the
//!    `Ordering` it names. A field loaded with `Acquire`/`SeqCst`
//!    somewhere but stored with `Relaxed` elsewhere (or vice versa) gets a
//!    finding at each relaxed site: the acquire side expects a release
//!    counterpart it never gets. All-`Relaxed` (statistical counters, the
//!    repo policy) and all-seq-cst fields are consistent and clean.
//! 4. **Non-atomic counters in sync-shared structs** — a struct that
//!    already carries `Atomic*`/`Mutex` fields (so it is built to be
//!    shared) must not also have a bare-integer counter-named field
//!    mutated outside any of them.
//! 5. **Interior mutability escaping `&self`** — a `&self` method whose
//!    return type hands out a reference to a `Cell`/`RefCell`/
//!    `UnsafeCell`/`Mutex`/`RwLock` field lets callers bypass the owning
//!    type's locking discipline. (Returning a `MutexGuard` is fine — that
//!    *is* the discipline.)
//!
//! Findings are per-site and flow through the same suppression machinery
//! as every other rule (`xtask-allow: R10 -- reason`).

use crate::contracts::is_test_path;
use crate::items::{self, FieldDecl};
use crate::lexer::{self, ident_at, ident_ending_at, ident_starts_at, is_ident, next_nonws, prev_nonws, Lines};
use std::collections::{HashMap, HashSet};

/// Crates exempt from R10: dev tooling and the vendored loom model checker
/// (which re-implements sync primitives by design).
const EXEMPT: &[&str] = &["crates/xtask/", "crates/bench/", "crates/loom/"];

/// Atomic op method names, with whether they read, write, or both.
const ATOMIC_OPS: &[(&str, bool, bool)] = &[
    ("load", true, false),
    ("store", false, true),
    ("swap", true, true),
    ("fetch_add", true, true),
    ("fetch_sub", true, true),
    ("fetch_and", true, true),
    ("fetch_or", true, true),
    ("fetch_xor", true, true),
    ("fetch_update", true, true),
    ("compare_exchange", true, true),
    ("compare_exchange_weak", true, true),
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Field names that read as counters when declared as bare integers inside
/// a sync-shared struct.
const COUNTER_NAMES: &[&str] = &[
    "hits", "misses", "evictions", "decodes", "encodes", "tick", "ticks", "seq", "epoch",
];

/// Interior-mutability type markers in a returned reference.
const CELL_MARKERS: &[&str] = &["RefCell<", "Cell<", "UnsafeCell<", "Mutex<", "RwLock<"];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// An R10 finding, pre-suppression.
#[derive(Debug)]
pub struct SharedFinding {
    pub file: String,
    pub line: usize,
    pub message: String,
}

fn is_exempt(file: &str) -> bool {
    EXEMPT.iter().any(|p| file.starts_with(p))
}

/// One atomic-op site.
struct AtomicSite {
    file: String,
    line: usize,
    field: String,
    reads: bool,
    writes: bool,
    orderings: Vec<String>,
}

fn sync_side(o: &str) -> bool {
    matches!(o, "Acquire" | "Release" | "AcqRel" | "SeqCst")
}

/// Runs the R10 pass over the workspace file set.
pub fn analyze(files: &[(String, String)]) -> Vec<SharedFinding> {
    let mut findings: Vec<SharedFinding> = Vec::new();
    let mut atomic_fields: HashSet<String> = HashSet::new();
    let mut prepared: Vec<(String, String)> = Vec::new();

    // Pass A: per-file lexing, struct-level checks, token-level checks;
    // collect atomic field names for pass B.
    for (rel, src) in files {
        if is_exempt(rel) || is_test_path(rel) {
            continue;
        }
        let lexed = lexer::strip(src);
        let active = lexer::blank_test_items(&lexed.code);
        {
            let lines = Lines::new(&active);
            let fields = items::parse_fields(&active, &lines);
            for fd in &fields {
                if fd.ty.contains("Atomic") {
                    atomic_fields.insert(fd.name.clone());
                }
            }
            check_counters(rel, &fields, &mut findings);
            check_tokens(rel, &active, &lines, &mut findings);
            check_escapes(rel, &active, &lines, &mut findings);
        }
        prepared.push((rel.clone(), active));
    }

    // Pass B: atomic-op sites, now that the field set is complete.
    let mut sites: Vec<AtomicSite> = Vec::new();
    for (rel, active) in &prepared {
        let lines = Lines::new(active);
        collect_atomic_sites(rel, active, &lines, &atomic_fields, &mut sites);
    }
    check_ordering_consistency(&sites, &mut findings);

    findings.sort_by(|x, y| (&x.file, x.line, &x.message).cmp(&(&y.file, y.line, &y.message)));
    findings.dedup_by(|x, y| x.file == y.file && x.line == y.line && x.message == y.message);
    findings
}

/// `static mut` and `unsafe impl Send/Sync`.
fn check_tokens(rel: &str, active: &str, lines: &Lines, findings: &mut Vec<SharedFinding>) {
    let b = active.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let start = i;
        i += word.len();
        if word == "static" {
            if next_nonws(b, i).is_some_and(|(j, c)| is_ident(c) && ident_at(b, j) == "mut") {
                findings.push(SharedFinding {
                    file: rel.to_string(),
                    line: lines.line_of(start),
                    message: "`static mut` global state — use an atomic, a `Mutex`, or `OnceLock` instead".to_string(),
                });
            }
        } else if word == "unsafe" {
            let Some((j, c)) = next_nonws(b, i) else { continue };
            if !is_ident(c) || ident_at(b, j) != "impl" {
                continue;
            }
            // Scan the impl header for `Send`/`Sync` before `for`/`{`.
            let mut k = j + 4;
            while k < b.len() && b[k] != b'{' {
                if ident_starts_at(b, k) {
                    let w = ident_at(b, k);
                    if w == "for" {
                        break;
                    }
                    if w == "Send" || w == "Sync" {
                        findings.push(SharedFinding {
                            file: rel.to_string(),
                            line: lines.line_of(start),
                            message: format!(
                                "manual `unsafe impl {w}` — a hand-written thread-safety claim; justify it with a suppression or remove it"
                            ),
                        });
                        break;
                    }
                    k += w.len();
                    continue;
                }
                k += 1;
            }
        }
    }
}

/// Bare-integer counter fields inside structs that carry sync fields.
fn check_counters(rel: &str, fields: &[FieldDecl], findings: &mut Vec<SharedFinding>) {
    let mut sync_structs: HashSet<&str> = HashSet::new();
    for fd in fields {
        if fd.ty.contains("Atomic") || fd.ty.contains("Mutex<") || fd.ty.contains("RwLock<") {
            sync_structs.insert(fd.struct_name.as_str());
        }
    }
    for fd in fields {
        if !sync_structs.contains(fd.struct_name.as_str()) {
            continue;
        }
        let counterish =
            fd.name.contains("count") || COUNTER_NAMES.contains(&fd.name.as_str());
        if counterish && INT_TYPES.contains(&fd.ty.as_str()) {
            findings.push(SharedFinding {
                file: rel.to_string(),
                line: fd.line,
                message: format!(
                    "non-atomic counter `{}: {}` in sync-shared struct `{}` — make it atomic or move it under the struct's lock",
                    fd.name, fd.ty, fd.struct_name
                ),
            });
        }
    }
}

/// `&self` methods returning references to interior-mutability fields.
fn check_escapes(rel: &str, active: &str, lines: &Lines, findings: &mut Vec<SharedFinding>) {
    let items = items::parse_items(active, &Lines::new(active));
    for it in &items {
        let sig = &active[it.start..it.body_open];
        let Some(arrow) = sig.find("->") else { continue };
        let (params, ret) = sig.split_at(arrow);
        if !params.contains("&self") || params.contains("&mut self") {
            continue;
        }
        if ret.contains('&') && CELL_MARKERS.iter().any(|m| ret.contains(m)) {
            findings.push(SharedFinding {
                file: rel.to_string(),
                line: lines.line_of(it.start),
                message: format!(
                    "`&self` method `{}` returns a reference to an interior-mutability cell — callers bypass the owning type's synchronization; return a guard or a copy instead",
                    it.name
                ),
            });
        }
    }
}

fn collect_atomic_sites(
    rel: &str,
    active: &str,
    lines: &Lines,
    atomic_fields: &HashSet<String>,
    sites: &mut Vec<AtomicSite>,
) {
    let b = active.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let start = i;
        i += word.len();
        let Some(&(_, reads, writes)) = ATOMIC_OPS.iter().find(|(n, _, _)| *n == word) else {
            continue;
        };
        let Some((open, c)) = next_nonws(b, i) else { continue };
        if c != b'(' {
            continue;
        }
        let Some((dot, cd)) = prev_nonws(b, start) else { continue };
        if cd != b'.' {
            continue;
        }
        let Some((p, cr)) = prev_nonws(b, dot) else { continue };
        if !is_ident(cr) {
            continue;
        }
        let field = ident_ending_at(b, p + 1).to_string();
        if !atomic_fields.contains(&field) {
            continue;
        }
        // Orderings named inside the argument list.
        let close = {
            let mut depth = 0isize;
            let mut k = open;
            loop {
                if k >= b.len() {
                    break k;
                }
                match b[k] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        };
        let args = &active[open + 1..close.min(active.len())];
        let ab = args.as_bytes();
        let mut orderings = Vec::new();
        let mut a = 0usize;
        while a < ab.len() {
            if ident_starts_at(ab, a) {
                let w = ident_at(ab, a);
                if ORDERINGS.contains(&w) {
                    orderings.push(w.to_string());
                }
                a += w.len();
            } else {
                a += 1;
            }
        }
        sites.push(AtomicSite {
            file: rel.to_string(),
            line: lines.line_of(start),
            field,
            reads,
            writes,
            orderings,
        });
    }
}

fn check_ordering_consistency(sites: &[AtomicSite], findings: &mut Vec<SharedFinding>) {
    let mut by_field: HashMap<&str, Vec<&AtomicSite>> = HashMap::new();
    for s in sites {
        by_field.entry(s.field.as_str()).or_default().push(s);
    }
    for (field, sites) in by_field {
        let sync_read = sites
            .iter()
            .find(|s| s.reads && s.orderings.iter().any(|o| sync_side(o)));
        let sync_write = sites
            .iter()
            .find(|s| s.writes && s.orderings.iter().any(|o| sync_side(o)));
        for s in &sites {
            let relaxed = s.orderings.iter().any(|o| o == "Relaxed");
            if !relaxed {
                continue;
            }
            if s.writes {
                if let Some(r) = sync_read {
                    if !std::ptr::eq(*s, *r) {
                        findings.push(SharedFinding {
                            file: s.file.clone(),
                            line: s.line,
                            message: format!(
                                "atomic `{field}` written with `Relaxed` here but loaded with `{}` at {}:{} — the acquire side expects a release store; align the orderings",
                                r.orderings.iter().find(|o| sync_side(o)).map(String::as_str).unwrap_or("Acquire"),
                                r.file,
                                r.line
                            ),
                        });
                        continue;
                    }
                }
            }
            if s.reads {
                if let Some(w) = sync_write {
                    if !std::ptr::eq(*s, *w) {
                        findings.push(SharedFinding {
                            file: s.file.clone(),
                            line: s.line,
                            message: format!(
                                "atomic `{field}` read with `Relaxed` here but stored with `{}` at {}:{} — the release store expects an acquire load; align the orderings",
                                w.orderings.iter().find(|o| sync_side(o)).map(String::as_str).unwrap_or("Release"),
                                w.file,
                                w.line
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<SharedFinding> {
        analyze(&[("crates/core/src/state.rs".to_string(), src.to_string())])
    }

    #[test]
    fn static_mut_and_unsafe_impls_flagged() {
        let src = "static mut HITS: u64 = 0;\n\
            pub struct W(*mut u8);\n\
            unsafe impl Send for W {}\n\
            unsafe impl Sync for W {}\n";
        let f = run(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].message.contains("static mut"));
        assert!(f[1].message.contains("unsafe impl Send"));
        assert!(f[2].message.contains("unsafe impl Sync"));
    }

    #[test]
    fn mismatched_orderings_flagged_at_relaxed_site() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct S { ready: AtomicU64 }\n\
            impl S {\n\
                pub fn publish(&self) { self.ready.store(1, Ordering::Relaxed); }\n\
                pub fn wait(&self) -> u64 { self.ready.load(Ordering::Acquire) }\n\
            }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("written with `Relaxed`"), "{}", f[0].message);
    }

    #[test]
    fn all_relaxed_counters_are_clean() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct S { hits: AtomicU64 }\n\
            impl S {\n\
                pub fn hit(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
                pub fn total(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n\
            }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn bare_counter_in_sync_struct_flagged() {
        let src = "use std::sync::Mutex;\n\
            pub struct S { inner: Mutex<Vec<u8>>, hits: u64 }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("non-atomic counter `hits: u64`"), "{}", f[0].message);
    }

    #[test]
    fn counter_under_the_lock_is_clean() {
        // `tick` lives inside the Mutex-protected inner struct, which has
        // no sync fields of its own: that is the sanctioned layout.
        let src = "use std::sync::Mutex;\n\
            pub struct S { inner: Mutex<Inner> }\n\
            struct Inner { tick: u64 }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn escaping_refcell_flagged_guard_return_clean() {
        let src = "use std::cell::RefCell;\n\
            use std::sync::{Mutex, MutexGuard};\n\
            pub struct S { cell: RefCell<u32>, inner: Mutex<u8> }\n\
            impl S {\n\
                pub fn cell(&self) -> &RefCell<u32> { &self.cell }\n\
                pub fn lock(&self) -> MutexGuard<'_, u8> {\n\
                    self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n\
                }\n\
            }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("method `cell` returns a reference"), "{}", f[0].message);
    }

    #[test]
    fn exempt_and_test_paths_skipped() {
        let src = "static mut X: u64 = 0;\n";
        for path in ["crates/xtask/src/a.rs", "crates/bench/src/b.rs", "crates/loom/src/c.rs", "tests/d.rs"] {
            assert!(
                analyze(&[(path.to_string(), src.to_string())]).is_empty(),
                "{path} should be exempt"
            );
        }
    }
}
