//! Lint rules for the CliZ workspace.
//!
//! Rule IDs are stable (they appear in suppressions and CI logs):
//!
//! * **R0** — malformed `xtask-allow` suppression (unknown rule id or
//!   missing ` -- reason`).
//! * **R1** — panicking construct in decode-facing code: `.unwrap()`,
//!   `.expect(..)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, or
//!   direct slice indexing of a decoder input buffer (`bytes[..]`,
//!   `buf[i]`, `data[..]`, …). Corrupt or truncated input must surface as
//!   `Err`/`None`, never as a panic.
//! * **R2** — bare `as` cast to a narrowing-prone integer type
//!   (`u8|u16|u32|i8|i16|i32`) in the quantizer/entropy/predictor hot
//!   paths; use the `cliz_core::cast` checked helpers instead.
//! * **R3** — a `pub fn compress*`/`pub fn decompress*` codec entry point
//!   whose signature does not return `Result`.
//! * **R4** — quantizer encode/decode boundary (`fn quantize`,
//!   `fn recover`) lacks its `debug_assert!` error-bound invariant hook.
//! * **R5** — panic reachability: a panicking construct or unchecked
//!   input-buffer index reachable (via the cross-crate call graph) from a
//!   decode-tainted entry point. Produced by the workspace pass in
//!   [`crate::taint`], not by the per-file scan here; the rule id is
//!   registered so suppressions can name it.
//! * **R6** — lossy numeric cast in the quantizer/predictor/metrics paths:
//!   bare `as f32` (f64→f32 precision loss) or an expression-result
//!   `(..) as usize|u64|i64|isize` (the float→int shape rule R2's
//!   identifier-cast check cannot see). Use the `cliz_core::cast` helpers
//!   (`f64_to_f32_checked`, `float_to_index`, `to_usize_checked`).
//! * **R7** — length-provenance dataflow: unchecked arithmetic, slice
//!   construction, or allocation sized by a length/offset/count value that
//!   originated in a container/header parser and has not passed through a
//!   `checked_*`/cast helper or an explicit validation guard. Produced by
//!   the workspace pass in [`crate::dataflow`].
//! * **R8** — error-bound contract: every `impl Compressor` must be
//!   reachable from a roundtrip test asserting `|x − x'| ≤ eb`, and eb
//!   scaling must live in a named `eb` helper. Produced by the workspace
//!   pass in [`crate::contracts`].
//! * **R9** — lock discipline: a `MutexGuard` live across a call reaching
//!   decode/codec/IO work, double acquisition of a lock field, or a cycle
//!   in the pairwise lock-order graph. Produced by the workspace pass in
//!   [`crate::locks`].
//! * **R10** — shared-state audit: `static mut`, manual `unsafe impl
//!   Send/Sync`, mismatched atomic orderings across paired load/store
//!   sites, non-atomic counters in sync-shared structs, and interior
//!   mutability escaping via `&self` returns. Produced by the workspace
//!   pass in [`crate::shared`].
//! * **R11** — heap allocation (`Vec::new`, `vec!`, `.to_vec()`,
//!   `.clone()`, `.collect()`, `format!`, …) inside a loop of a function
//!   reachable from a codec entry point, in the kernel crates. Produced by
//!   the workspace pass in [`crate::perf`].
//! * **R12** — single-bit `BitReader`/`BitWriter` call (`.read_bit(`,
//!   `.write_bit(`, `.read_bits(1)`, `.write_bits(_, 1)`) inside a loop in
//!   `entropy`/`lossless`; batch through word-at-a-time I/O. Produced by
//!   the workspace pass in [`crate::perf`].
//! * **R13** — vectorization-hostile `for` loop in the numeric kernels:
//!   per-element indexing with a loop-header variable combined with a
//!   per-iteration `Option`-mask test; hoist the mask match and write each
//!   arm as a zip/chunks_exact scan. Produced by the workspace pass in
//!   [`crate::perf`].
//! * **R14** — serializer/parser symmetry: every container format (a
//!   registry `FormatSpec`) written anywhere must be parsed somewhere, and
//!   vice versa; the writer's ordered field emissions are replayed against
//!   the parser's reads, so a width or order mismatch is a finding.
//!   Trailer magics must be both emitted and checked. Produced by the
//!   workspace pass in [`crate::format`].
//! * **R15** — version discipline: a hand-rolled parser that checks a
//!   magic must range-check a version byte (an `UnsupportedVersion` path)
//!   before decoding any count/length field; magic constants and
//!   `FormatSpec` literals may only live in the `cliz-format` registry;
//!   duplicate magic values are findings. Produced by the workspace pass
//!   in [`crate::format`].
//! * **R16** — parser error-surface coverage: every `*Error` enum variant
//!   in the format-handling crates must be constructed in product code,
//!   and variants constructed on a parse path must be asserted by at
//!   least one test and be reachable from a decode entry point. Produced
//!   by the workspace pass in [`crate::format`].
//!
//! Suppressions: `// xtask-allow: R1 -- reason` (covers its own line and
//! the next), or `// xtask-allow-fn: R1 -- reason` (covers the whole next
//! function item). The reason is mandatory.

use crate::items::{self, FnItem};
use crate::lexer::{
    self, ident_at, ident_ending_at, is_ident, match_brace, next_nonws, prev_nonws, Lines,
};

/// One finding, file-relative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub line: usize,
    pub message: String,
}

/// Per-file scan result.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub suppressed: usize,
}

pub const ALL_RULES: &[&str] = &[
    "R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12", "R13", "R14",
    "R15", "R16",
];

/// Files/dirs (workspace-relative, `/`-separated prefixes) where R1 applies:
/// everything that parses attacker-controllable container bytes.
const R1_SCOPE: &[&str] = &[
    "crates/entropy/src/",
    "crates/quant/src/",
    "crates/lossless/src/",
    "crates/core/src/stream.rs",
    "crates/core/src/chunked.rs",
    "crates/core/src/bytesio.rs",
    "crates/core/src/compressor.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/periodic.rs",
    "crates/cli/src/czfile.rs",
    "crates/store/src/",
    "crates/storage/src/",
    "crates/serve/src/",
];

/// Crates whose hot paths must use checked casts (R2).
const R2_SCOPE: &[&str] = &[
    "crates/quant/src/",
    "crates/entropy/src/",
    "crates/predict/src/",
];

/// Crates whose public codec entry points must return `Result` (R3).
const R3_SCOPE: &[&str] = &["crates/baselines/src/", "crates/core/src/"];

/// Files that must carry the R4 error-bound invariant hooks.
const R4_FILES: &[&str] = &["crates/quant/src/quantizer.rs"];

/// Crates whose numeric paths must route float↔int / f64→f32 conversions
/// through the `cliz_core::cast` helpers (R6).
const R6_SCOPE: &[&str] = &[
    "crates/quant/src/",
    "crates/predict/src/",
    "crates/metrics/src/",
];

/// Integer destinations R6 checks for the expression-result cast shape
/// (`(expr) as usize`). R2 already covers the narrowing destinations for
/// identifier casts; these are the wide types R2 exempts, which is exactly
/// where a silently truncating float→int cast hides.
const R6_INT_TYPES: &[&str] = &["usize", "u64", "i64", "isize"];

/// Identifier names treated as decoder input buffers for the R1 indexing
/// check. Heuristic by design: decode paths in this workspace consistently
/// use these names, and `xtask-allow` covers deliberate exceptions.
const INPUT_NAMES: &[&str] = &["bytes", "buf", "data", "input", "payload", "src"];

/// Narrowing-prone `as` destinations flagged by R2. Widening casts
/// (`u64`, `usize`, `i64`) and int→float casts are deliberately exempt.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn in_scope(scope: &[&str], rel_path: &str) -> bool {
    scope.iter().any(|p| rel_path.starts_with(p))
}

/// A parsed suppression directive.
pub struct Suppression {
    rules: Vec<&'static str>,
    /// Inclusive line range the suppression covers.
    first_line: usize,
    last_line: usize,
}

impl Suppression {
    /// True when this directive suppresses `rule` findings on `line`.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.rules.contains(&rule) && (self.first_line..=self.last_line).contains(&line)
    }
}

fn canonical_rule(id: &str) -> Option<&'static str> {
    ALL_RULES.iter().copied().find(|r| *r == id)
}

/// Parses `xtask-allow` comments into suppression ranges; malformed
/// directives become R0 violations.
fn collect_suppressions(
    comments: &[lexer::Comment],
    active: &str,
    lines: &Lines,
    out: &mut Vec<Violation>,
) -> Vec<Suppression> {
    let b = active.as_bytes();
    let mut sups = Vec::new();
    for c in comments {
        let (is_fn, rest) = if let Some(r) = c.text.split_once("xtask-allow-fn:") {
            (true, r.1)
        } else if let Some(r) = c.text.split_once("xtask-allow:") {
            (false, r.1)
        } else {
            continue;
        };
        let (ids, reason) = match rest.split_once("--") {
            Some((ids, reason)) => (ids, reason.trim()),
            None => ("", ""),
        };
        if reason.is_empty() {
            out.push(Violation {
                rule: "R0",
                line: c.line,
                message: "xtask-allow requires a reason: `xtask-allow: <rules> -- <why>`"
                    .to_string(),
            });
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match canonical_rule(id) {
                Some(r) => rules.push(r),
                None => bad = true,
            }
        }
        if bad || rules.is_empty() {
            out.push(Violation {
                rule: "R0",
                line: c.line,
                message: format!("xtask-allow names unknown rule(s) in `{}`", ids.trim()),
            });
            continue;
        }
        if is_fn {
            // Cover the next `fn` item's whole body.
            let from = lines.offset_of_line(c.line);
            let mut i = from.min(b.len());
            let mut covered = None;
            while i < b.len() {
                if is_ident(b[i]) && (i == 0 || !is_ident(b[i - 1])) && ident_at(b, i) == "fn" {
                    let mut j = i;
                    while j < b.len() && b[j] != b'{' && b[j] != b';' {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'{' {
                        let close = match_brace(b, j);
                        covered = Some((lines.line_of(i), lines.line_of(close)));
                    }
                    break;
                }
                i += 1;
            }
            if let Some((first, last)) = covered {
                sups.push(Suppression {
                    rules,
                    first_line: c.line.min(first),
                    last_line: last,
                });
            } else {
                out.push(Violation {
                    rule: "R0",
                    line: c.line,
                    message: "xtask-allow-fn found no following function".to_string(),
                });
            }
        } else {
            // Own-line comments cover the next line; inline ones their own.
            let last = if c.own_line { c.line + 1 } else { c.line };
            sups.push(Suppression {
                rules,
                first_line: c.line,
                last_line: last,
            });
        }
    }
    sups
}

/// Full per-file analysis: the per-file rule findings plus the artifacts
/// the workspace-level passes need (suppression ranges for applying R5
/// suppressions, parsed `fn` items for the call graph).
pub struct FileAnalysis {
    pub report: FileReport,
    pub sups: Vec<Suppression>,
    pub items: Vec<FnItem>,
}

/// Scans one file. `rel_path` must be workspace-relative with `/` separators.
pub fn check_file(rel_path: &str, source: &str) -> FileReport {
    analyze_file(rel_path, source).report
}

/// Scans one file and also returns its suppressions and parsed items.
pub fn analyze_file(rel_path: &str, source: &str) -> FileAnalysis {
    let lexed = lexer::strip(source);
    let active = lexer::blank_test_items(&lexed.code);
    let lines = Lines::new(&active);
    let b = active.as_bytes();

    let mut raw: Vec<Violation> = Vec::new();
    let mut report = FileReport::default();
    let sups = collect_suppressions(&lexed.comments, &active, &lines, &mut report.violations);

    let r1 = in_scope(R1_SCOPE, rel_path);
    let r2 = in_scope(R2_SCOPE, rel_path);
    let r3 = in_scope(R3_SCOPE, rel_path);
    let r6 = in_scope(R6_SCOPE, rel_path);

    let mut i = 0usize;
    while i < b.len() {
        if !(is_ident(b[i]) && (i == 0 || !is_ident(b[i - 1]))) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let start = i;
        i += word.len();
        let line = lines.line_of(start);

        if r1 {
            // `.unwrap()` / `.expect(` method calls.
            if (word == "unwrap" || word == "expect")
                && prev_nonws(b, start).is_some_and(|(_, c)| c == b'.')
                && next_nonws(b, i).is_some_and(|(_, c)| c == b'(')
            {
                raw.push(Violation {
                    rule: "R1",
                    line,
                    message: format!(
                        "`.{word}()` can panic on corrupt input; return a typed error instead"
                    ),
                });
                continue;
            }
            // Panicking macros.
            if PANIC_MACROS.contains(&word)
                && next_nonws(b, i).is_some_and(|(_, c)| c == b'!')
            {
                raw.push(Violation {
                    rule: "R1",
                    line,
                    message: format!("`{word}!` in decode-facing code; return a typed error"),
                });
                continue;
            }
            // Direct indexing of decoder input buffers.
            if INPUT_NAMES.contains(&word)
                && next_nonws(b, i).is_some_and(|(_, c)| c == b'[')
            {
                raw.push(Violation {
                    rule: "R1",
                    line,
                    message: format!(
                        "direct slice indexing `{word}[..]` on a decoder input; use `.get(..)`"
                    ),
                });
                continue;
            }
        }

        if r2 && word == "as" {
            if let Some((j, _)) = next_nonws(b, i) {
                let ty = ident_at(b, j);
                if NARROW_TYPES.contains(&ty) {
                    raw.push(Violation {
                        rule: "R2",
                        line,
                        message: format!(
                            "bare `as {ty}` narrowing cast; use a `cliz_core::cast` helper"
                        ),
                    });
                    continue;
                }
            }
        }

        if r6 && word == "as" {
            if let Some((j, _)) = next_nonws(b, i) {
                let ty = ident_at(b, j);
                if ty == "f32" {
                    raw.push(Violation {
                        rule: "R6",
                        line,
                        message: "bare `as f32` cast loses f64 precision silently; use \
                                  `cliz_core::cast::f64_to_f32_checked`"
                            .to_string(),
                    });
                    continue;
                }
                // `(expr) as usize` — the expression-result shape where a
                // float→int truncation hides. Identifier casts (`i as u64`)
                // stay exempt: loop counters and widths, not float math.
                if R6_INT_TYPES.contains(&ty)
                    && prev_nonws(b, start).is_some_and(|(_, c)| c == b')')
                {
                    raw.push(Violation {
                        rule: "R6",
                        line,
                        message: format!(
                            "expression-result `as {ty}` cast (possible float→int \
                             truncation); use `cliz_core::cast::float_to_index` or a \
                             checked conversion"
                        ),
                    });
                    continue;
                }
            }
        }

        if r3 && word == "fn" {
            if let Some((j, _)) = next_nonws(b, i) {
                let name = ident_at(b, j);
                if (name.starts_with("compress") || name.starts_with("decompress"))
                    && is_pub_fn(b, start)
                {
                    // Signature = everything up to the body/terminator.
                    let mut k = j;
                    while k < b.len() && b[k] != b'{' && b[k] != b';' {
                        k += 1;
                    }
                    let sig = &active[j..k.min(active.len())];
                    if !sig.contains("Result") {
                        raw.push(Violation {
                            rule: "R3",
                            line,
                            message: format!(
                                "public codec entry point `{name}` must return `Result`"
                            ),
                        });
                    }
                }
            }
        }
    }

    // R4: required debug_assert hooks at the quantizer boundaries.
    if R4_FILES.contains(&rel_path) {
        for target in ["quantize", "recover"] {
            if let Some((fn_line, body)) = find_fn_body(b, &lines, target) {
                if !body.contains("debug_assert") {
                    raw.push(Violation {
                        rule: "R4",
                        line: fn_line,
                        message: format!(
                            "`fn {target}` lacks its `debug_assert!` error-bound invariant hook"
                        ),
                    });
                }
            }
        }
    }

    // Apply suppressions.
    for v in raw {
        let suppressed = sups.iter().any(|s| s.covers(v.rule, v.line));
        if suppressed {
            report.suppressed += 1;
        } else {
            report.violations.push(v);
        }
    }
    report.violations.sort_by_key(|v| (v.line, v.rule));

    let parsed = items::parse_items(&active, &lines);
    FileAnalysis {
        report,
        sups,
        items: parsed,
    }
}

/// True when the `fn` keyword at `fn_start` is part of a `pub fn` item
/// (possibly with `const`/`async`/`unsafe` qualifiers). `pub(crate)` and
/// narrower visibilities do not count as public entry points.
fn is_pub_fn(b: &[u8], fn_start: usize) -> bool {
    let mut i = fn_start;
    for _ in 0..4 {
        let Some((j, c)) = prev_nonws(b, i) else {
            return false;
        };
        if !is_ident(c) {
            return false;
        }
        let word = ident_ending_at(b, j + 1);
        match word {
            "pub" => return true,
            "const" | "async" | "unsafe" => i = j + 1 - word.len(),
            _ => return false,
        }
    }
    false
}

/// Finds `fn <name>` and returns (line, body text) of its brace block.
fn find_fn_body<'a>(b: &'a [u8], lines: &Lines, name: &str) -> Option<(usize, &'a str)> {
    let mut i = 0usize;
    while i < b.len() {
        if is_ident(b[i]) && (i == 0 || !is_ident(b[i - 1])) && ident_at(b, i) == "fn" {
            let after = i + 2;
            if let Some((j, _)) = next_nonws(b, after) {
                if ident_at(b, j) == name {
                    let mut k = j;
                    while k < b.len() && b[k] != b'{' && b[k] != b';' {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'{' {
                        let close = match_brace(b, k);
                        let body = std::str::from_utf8(&b[k..=close.min(b.len() - 1)]).ok()?;
                        return Some((lines.line_of(i), body));
                    }
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    None
}
