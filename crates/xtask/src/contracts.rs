//! Rule R8: error-bound contract audit.
//!
//! Error-bounded compression has exactly one externally meaningful
//! guarantee: every reconstructed value satisfies `|x − x'| ≤ eb`. R8
//! audits that guarantee statically, in two halves:
//!
//! * **R8a — coverage.** Every type with an `impl Compressor for X` block
//!   must be *reachable from a bound-asserting roundtrip test*: a test file
//!   that computes an absolute error (`.abs()` or `max_abs_error`) and
//!   compares it with `<=`, and that either names `X` directly or calls a
//!   product function (resolved through the workspace call graph, e.g. the
//!   `all_compressors*` rosters) whose body constructs `X`. A codec without
//!   such a test can silently ship reconstructions that violate the bound.
//!   The same obligation extends to the chunk-store read path
//!   ([`STORE_ENTRY_POINTS`]): `pack_store` / `read_region` / `read_all`
//!   re-expose reconstructed values through a second surface, so the bound
//!   must be asserted *through the store*, not only through `decompress`.
//! * **R8b — named helpers.** Quantizer/predictor/compressor code that
//!   scales an error bound (`eb * …`, `eb / …`, `… * eb`) must do so inside
//!   a function whose name mentions `eb` (`eb_step`, `residual_eb`, …).
//!   Scattered anonymous `2.0 * eb` arithmetic is where bound-accounting
//!   bugs hide; a named helper makes each derived bound auditable and
//!   greppable.
//!
//! Like the other passes this is name-based and conservative in the
//! reporting direction: call-graph reachability over-approximates, so a
//! covered codec is never flagged, while an uncovered one always is.

use crate::callgraph;
use crate::items::FnItem;
use crate::lexer::{self, ident_at, ident_starts_at, next_nonws, prev_nonws, Lines};
use std::collections::{HashMap, HashSet};

/// Crates whose code is never audited (the analyzer itself, benches, the
/// loom model checker — test-only infrastructure, not codec code).
const EXEMPT: &[&str] = &["crates/xtask/", "crates/bench/", "crates/loom/"];

/// Files where R8b (eb-scaling must live in named helpers) applies.
const EB_SCOPE: &[&str] = &[
    "crates/quant/src/",
    "crates/predict/src/",
    "crates/core/src/compressor.rs",
    "crates/core/src/pipeline.rs",
];

/// Chunk-store entry points that re-expose decompressed values. Each must
/// be reachable from a bound-asserting roundtrip test, like a `Compressor`
/// implementor. Listed as `(defining file, fn name)`; the obligation only
/// applies when the function is actually defined in the audited file set,
/// so fixture runs without the store crate stay clean.
const STORE_ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/store/src/pack.rs", "pack_store"),
    ("crates/store/src/reader.rs", "read_region"),
    ("crates/store/src/reader.rs", "read_all"),
];

/// An R8 finding, pre-suppression.
#[derive(Debug)]
pub struct ContractFinding {
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// True for integration-test files (collected as *evidence*, exempt from
/// every per-file rule).
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

fn exempt(rel: &str) -> bool {
    EXEMPT.iter().any(|p| rel.starts_with(p))
}

/// Runs the R8 audit over `(rel_path, source)` pairs; test files supply the
/// coverage evidence, product files supply implementors and eb arithmetic.
pub fn analyze(files: &[(String, String)]) -> Vec<ContractFinding> {
    // Lex every file once. Product files get test items blanked; test
    // files keep them (the `#[test]` fns *are* the evidence).
    struct Ctx {
        rel: String,
        raw: String,
        active: String,
        is_test: bool,
    }
    let ctxs: Vec<Ctx> = files
        .iter()
        .filter(|(rel, _)| !exempt(rel))
        .map(|(rel, source)| {
            let lexed = lexer::strip(source);
            let is_test = is_test_path(rel);
            let active = if is_test {
                lexed.code
            } else {
                lexer::blank_test_items(&lexed.code)
            };
            Ctx {
                rel: rel.clone(),
                raw: source.clone(),
                active,
                is_test,
            }
        })
        .collect();

    let mut findings = Vec::new();

    // ---- R8a: every Compressor impl must be test-covered. ----

    // Implementors: `impl Compressor for X` in product files.
    let mut implementors: Vec<(String, String, usize)> = Vec::new(); // (name, file, line)
    for ctx in ctxs.iter().filter(|c| !c.is_test) {
        let lines = Lines::new(&ctx.active);
        for (name, off) in compressor_impls(&ctx.active) {
            implementors.push((name, ctx.rel.clone(), lines.line_of(off)));
        }
    }

    // Store entry points defined in this file set carry the same coverage
    // obligation as implementors: a bound-asserting test must reach them.
    let mut entry_points: Vec<(String, String, usize)> = Vec::new(); // (name, file, line)
    for ctx in ctxs.iter().filter(|c| !c.is_test) {
        for (path, name) in STORE_ENTRY_POINTS {
            if ctx.rel != *path {
                continue;
            }
            let lines = Lines::new(&ctx.active);
            let items = crate::items::parse_items(&ctx.active, &lines);
            if let Some(it) = items.iter().find(|it| it.has_body && it.name == *name) {
                entry_points.push((name.to_string(), ctx.rel.clone(), lines.line_of(it.start)));
            }
        }
    }

    if !implementors.is_empty() || !entry_points.is_empty() {
        // Parse items everywhere; evidence files are the bound-asserting
        // test files.
        let parsed: Vec<(String, Vec<FnItem>)> = ctxs
            .iter()
            .map(|c| {
                let lines = Lines::new(&c.active);
                (c.rel.clone(), crate::items::parse_items(&c.active, &lines))
            })
            .collect();
        let graph = callgraph::build(&parsed);
        let node_file: Vec<&str> = graph.nodes.iter().map(|n| n.file).collect();
        let active_of: HashMap<&str, &str> = ctxs
            .iter()
            .map(|c| (c.rel.as_str(), c.active.as_str()))
            .collect();

        let mut covered: HashSet<&str> = HashSet::new();
        let mut covered_entries: HashSet<&str> = HashSet::new();
        for ctx in ctxs.iter().filter(|c| c.is_test && has_bound_assert(&c.raw)) {
            // Direct mentions in the test file itself.
            for (name, _, _) in &implementors {
                if mentions(&ctx.raw, name) {
                    covered.insert(name.as_str());
                }
            }
            for (name, _, _) in &entry_points {
                if mentions(&ctx.raw, name) {
                    covered_entries.insert(name.as_str());
                }
            }
            // Mentions in product functions reachable from the test's fns.
            let seeds: Vec<usize> = (0..graph.nodes.len())
                .filter(|&i| node_file[i] == ctx.rel)
                .collect();
            let mut seen: HashSet<usize> = seeds.iter().copied().collect();
            let mut queue: Vec<usize> = seeds;
            while let Some(n) = queue.pop() {
                for e in &graph.edges[n] {
                    if seen.insert(e.callee) {
                        queue.push(e.callee);
                    }
                }
                if node_file[n] == ctx.rel {
                    continue; // only product bodies count as constructions
                }
                let item = graph.nodes[n].item;
                if let Some(active) = active_of.get(node_file[n]) {
                    let body = &active[item.start..item.end.min(active.len())];
                    for (name, _, _) in &implementors {
                        if !covered.contains(name.as_str()) && mentions(body, name) {
                            covered.insert(name.as_str());
                        }
                    }
                    for (name, _, _) in &entry_points {
                        if !covered_entries.contains(name.as_str()) && mentions(body, name) {
                            covered_entries.insert(name.as_str());
                        }
                    }
                }
            }
        }

        for (name, file, line) in &implementors {
            if !covered.contains(name.as_str()) {
                findings.push(ContractFinding {
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "`{name}` implements `Compressor` but no roundtrip test asserting \
                         `|x - x'| <= eb` reaches it; add it to a bound-contract test"
                    ),
                });
            }
        }
        for (name, file, line) in &entry_points {
            if !covered_entries.contains(name.as_str()) {
                findings.push(ContractFinding {
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "store entry point `{name}` re-exposes reconstructed values but no \
                         test asserting `|x - x'| <= eb` reaches it; assert the bound \
                         through the store read path"
                    ),
                });
            }
        }
    }

    // ---- R8b: eb-scaling arithmetic must live in named eb helpers. ----
    for ctx in ctxs.iter().filter(|c| !c.is_test) {
        if !EB_SCOPE.iter().any(|p| ctx.rel.starts_with(p)) {
            continue;
        }
        let lines = Lines::new(&ctx.active);
        let items = crate::items::parse_items(&ctx.active, &lines);
        for off in eb_scaling_sites(&ctx.active) {
            // Innermost enclosing fn; helpers whose name mentions eb are
            // the sanctioned home for this arithmetic.
            let encl = items
                .iter()
                .filter(|it| it.has_body && off > it.body_open && off < it.end)
                .max_by_key(|it| it.start);
            if encl.is_some_and(|it| it.name.contains("eb")) {
                continue;
            }
            findings.push(ContractFinding {
                file: ctx.rel.clone(),
                line: lines.line_of(off),
                message: "error bound scaled outside a named helper; move `eb` scaling \
                          into a fn whose name mentions `eb` (e.g. `eb_step`)"
                    .to_string(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Finds `impl Compressor for X` blocks; returns `(X, offset_of_impl)`.
fn compressor_impls(active: &str) -> Vec<(String, usize)> {
    let b = active.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let w = ident_at(b, i);
        let start = i;
        i += w.len();
        if w != "impl" {
            continue;
        }
        // Skip generics: `impl<..> Compressor for X`.
        let mut j = i;
        if let Some((k, c)) = next_nonws(b, j) {
            if c == b'<' {
                let mut depth = 0isize;
                j = k;
                while j < b.len() {
                    match b[j] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
        }
        let Some((k, c)) = next_nonws(b, j) else { break };
        if !lexer::is_ident(c) || ident_at(b, k) != "Compressor" {
            continue;
        }
        let after_trait = k + "Compressor".len();
        let Some((f, c)) = next_nonws(b, after_trait) else {
            break;
        };
        if !lexer::is_ident(c) || ident_at(b, f) != "for" {
            continue;
        }
        // Type: last path segment before the `{` / `where`.
        let mut t = f + 3;
        let mut name = String::new();
        while t < b.len() && b[t] != b'{' {
            if ident_starts_at(b, t) {
                let seg = ident_at(b, t);
                if seg == "where" {
                    break;
                }
                name = seg.to_string();
                t += seg.len();
            } else {
                t += 1;
            }
        }
        if !name.is_empty() {
            out.push((name, start));
        }
    }
    out
}

/// True when `text` contains `name` as a whole identifier token.
fn mentions(text: &str, name: &str) -> bool {
    let b = text.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(name) {
        let i = from + pos;
        let end = i + name.len();
        let left_ok = i == 0 || !lexer::is_ident(b[i - 1]);
        let right_ok = end >= b.len() || !lexer::is_ident(b[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// True when a test file computes an absolute error and compares it:
/// `.abs()`/`max_abs_error` alongside a `<=` assertion.
fn has_bound_assert(raw: &str) -> bool {
    (raw.contains(".abs()") || raw.contains("max_abs_error")) && raw.contains("<=")
}

/// Byte offsets of `eb`-named identifiers adjacent to `*` or `/`.
fn eb_scaling_sites(active: &str) -> Vec<usize> {
    let b = active.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let w = ident_at(b, i);
        let start = i;
        i += w.len();
        if w != "eb" && !w.starts_with("eb_") {
            continue;
        }
        // `eb * x`, `eb / x`, `eb *= x`.
        let after_scaled = next_nonws(b, i).is_some_and(|(_, c)| c == b'*' || c == b'/');
        // `x * self.eb`: walk the receiver chain left, then look before it.
        let mut atom = start;
        while let Some((j, c)) = prev_nonws(b, atom) {
            if c != b'.' {
                break;
            }
            let Some((k, c2)) = prev_nonws(b, j) else { break };
            if !lexer::is_ident(c2) {
                break;
            }
            atom = k + 1 - lexer::ident_ending_at(b, k + 1).len();
        }
        let before_scaled = prev_nonws(b, atom).is_some_and(|(j, c)| {
            // Binary `*`/`/` needs a value on its left (excludes deref).
            (c == b'*' || c == b'/')
                && prev_nonws(b, j).is_some_and(|(_, p)| {
                    p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']'
                })
        });
        if after_scaled || before_scaled {
            out.push(start);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<(String, usize, String)> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze(&owned)
            .into_iter()
            .map(|f| (f.file, f.line, f.message))
            .collect()
    }

    const COVERED_TEST: &str = "#[test]\nfn roundtrip() {\n    let c = Covered::new();\n    let err = (a - b).abs();\n    assert!(err <= eb);\n}\n";

    #[test]
    fn uncovered_impl_is_flagged_and_covered_is_not() {
        let f = findings(&[
            (
                "crates/baselines/src/two.rs",
                "pub struct Covered;\nimpl Compressor for Covered {}\n\
                 pub struct Uncovered;\nimpl Compressor for Uncovered {}\n",
            ),
            ("tests/roundtrip.rs", COVERED_TEST),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, 4);
        assert!(f[0].2.contains("`Uncovered`"), "{}", f[0].2);
    }

    #[test]
    fn coverage_resolves_through_roster_functions() {
        // The test never names the codec; it calls `roster()` whose body
        // constructs it — the call-graph hop must count as coverage.
        let f = findings(&[
            (
                "crates/baselines/src/codec.rs",
                "pub struct Indirect;\nimpl Compressor for Indirect {}\n",
            ),
            (
                "crates/cliz/src/lib.rs",
                "pub fn roster() -> Vec<Box<dyn Compressor>> {\n    vec![Box::new(Indirect)]\n}\n",
            ),
            (
                "tests/roundtrip.rs",
                "#[test]\nfn all() {\n    for c in roster() {\n        let err = (a - b).abs();\n        assert!(err <= eb);\n    }\n}\n",
            ),
        ]);
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn test_without_bound_assert_is_not_evidence() {
        let f = findings(&[
            (
                "crates/baselines/src/codec.rs",
                "pub struct Weak;\nimpl Compressor for Weak {}\n",
            ),
            (
                "tests/smoke.rs",
                "#[test]\nfn smoke() {\n    let c = Weak::default();\n    assert!(c.name().len() > 0);\n}\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn store_entry_point_without_bound_test_is_flagged() {
        // read_region is defined but the only test is a shape smoke test —
        // no `.abs()` + `<=` evidence, so the entry point is uncovered.
        let f = findings(&[
            (
                "crates/store/src/reader.rs",
                "impl ChunkStoreReader {\n    pub fn read_region(&self) -> Grid<f32> {\n        self.decode()\n    }\n}\n",
            ),
            (
                "tests/store_smoke.rs",
                "#[test]\nfn shape() {\n    let g = reader.read_region();\n    assert_eq!(g.len(), 8);\n}\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, 2);
        assert!(f[0].2.contains("`read_region`"), "{}", f[0].2);
    }

    #[test]
    fn store_entry_point_reached_by_bound_test_is_clean() {
        let f = findings(&[
            (
                "crates/store/src/reader.rs",
                "impl ChunkStoreReader {\n    pub fn read_region(&self) -> Grid<f32> {\n        self.decode()\n    }\n}\n",
            ),
            (
                "tests/store_bound.rs",
                "#[test]\nfn bound() {\n    let g = reader.read_region();\n    assert!((a - b).abs() <= eb);\n}\n",
            ),
        ]);
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn absent_store_entry_points_impose_no_obligation() {
        // Fixture sets without the store crate must stay clean even when no
        // test mentions the entry-point names.
        let f = findings(&[(
            "crates/core/src/lib.rs",
            "pub fn helper(x: f64) -> f64 {\n    x + 1.0\n}\n",
        )]);
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn eb_scaling_outside_named_helper_is_flagged() {
        let f = findings(&[(
            "crates/quant/src/quantizer.rs",
            "impl Q {\n    fn quantize(&self) -> f64 {\n        let step = 2.0 * self.eb;\n        step\n    }\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, 3);
        assert!(f[0].2.contains("named helper"), "{}", f[0].2);
    }

    #[test]
    fn eb_scaling_inside_named_helper_is_clean() {
        let f = findings(&[(
            "crates/quant/src/quantizer.rs",
            "impl Q {\n    fn eb_step(&self) -> f64 {\n        2.0 * self.eb\n    }\n    fn quantize(&self) -> f64 {\n        self.eb_step()\n    }\n}\n",
        )]);
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn eb_comparisons_are_not_scaling() {
        let f = findings(&[(
            "crates/quant/src/quantizer.rs",
            "fn check(eb: f64, err: f64) -> bool {\n    err <= eb && eb >= 0.0\n}\n",
        )]);
        assert_eq!(f, vec![], "{f:?}");
    }
}
