//! `cliz-xtask`: workspace static-analysis pass.
//!
//! Run with `cargo run -p cliz-xtask -- lint`. See `docs/STATIC_ANALYSIS.md`
//! for the rule catalogue and suppression syntax. The crate has zero
//! external dependencies on purpose: it must build with a bare toolchain
//! even when the crates.io registry is unreachable.

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{FileReport, Violation};

/// A violation bound to the file it was found in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    pub file: String,
    pub rule: &'static str,
    pub line: usize,
    pub message: String,
}

/// Aggregate result of scanning the workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<FileViolation>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints a single source string as if it lived at `rel_path`
/// (workspace-relative, `/`-separated). Exposed for fixture tests.
pub fn lint_source(rel_path: &str, source: &str) -> FileReport {
    rules::check_file(rel_path, source)
}

/// Scans every `crates/*/src/**/*.rs` file under `root`.
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let krate = entry?.path();
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        let fr = rules::check_file(&rel, &source);
        report.files_scanned += 1;
        report.suppressed += fr.suppressed;
        for v in fr.violations {
            report.violations.push(FileViolation {
                file: rel.clone(),
                rule: v.rule,
                line: v.line,
                message: v.message,
            });
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
