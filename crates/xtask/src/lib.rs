//! `cliz-xtask`: workspace static-analysis pass.
//!
//! Run with `cargo run -p cliz-xtask -- lint`. See `docs/STATIC_ANALYSIS.md`
//! for the rule catalogue and suppression syntax. The crate has zero
//! external dependencies on purpose: it must build with a bare toolchain
//! even when the crates.io registry is unreachable.
//!
//! Two layers of analysis:
//!
//! * per-file token rules (R0–R4, R6) in [`rules`], over lexed code with
//!   comments/strings/test items blanked ([`lexer`]);
//! * workspace passes over a cross-crate call graph: [`items`] parses `fn`
//!   items and call/hazard sites, [`callgraph`] links call sites to every
//!   same-named function, [`taint`] runs the R5 panic-reachability pass
//!   from decode-tainted entry points, [`dataflow`] runs the R7
//!   length-provenance pass, [`contracts`] runs the R8 error-bound
//!   contract audit (integration-test files are collected as coverage
//!   evidence for R8 but are exempt from every other rule), [`locks`] runs
//!   the R9 lock-discipline pass, [`shared`] runs the R10 shared-state
//!   audit, and [`perf`] runs the R11–R13 hot-path performance audit
//!   (hot-loop allocation, bit-granular I/O, vectorization-hostile loops).
//!
//! [`output`] renders reports as text/JSON/SARIF and implements the
//! `xtask-baseline.json` ratchet (findings may only shrink).

pub mod callgraph;
pub mod contracts;
pub mod dataflow;
pub mod format;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod output;
pub mod perf;
pub mod rules;
pub mod shared;
pub mod taint;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use output::{
    baseline_from_report, baseline_to_json, describe_rule, parse_baseline, ratchet, to_json,
    to_sarif, Baseline, RatchetOutcome,
};
pub use rules::{FileReport, Violation, ALL_RULES};

/// A violation bound to the file it was found in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    pub file: String,
    pub rule: &'static str,
    pub line: usize,
    pub message: String,
}

/// Aggregate result of scanning the workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<FileViolation>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints a single source string as if it lived at `rel_path`
/// (workspace-relative, `/`-separated). Per-file rules only (R0–R4, R6);
/// the workspace R5 pass needs the whole file set — use [`lint_sources`].
/// Exposed for fixture tests.
pub fn lint_source(rel_path: &str, source: &str) -> FileReport {
    rules::check_file(rel_path, source)
}

/// Lints a set of sources as one workspace: per-file rules plus the
/// cross-crate R5/R7 passes and the R8 contract audit. Each entry is
/// `(rel_path, source)`. Integration-test files (`tests/…`) are coverage
/// evidence for R8 only — no per-file rules, no call-graph seeding.
pub fn lint_sources(files: &[(String, String)]) -> Report {
    let mut report = Report::default();
    let mut all_items = Vec::with_capacity(files.len());
    let mut sups_by_file = Vec::with_capacity(files.len());
    let mut product_files: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, source) in files {
        report.files_scanned += 1;
        if contracts::is_test_path(rel) {
            continue;
        }
        let fa = rules::analyze_file(rel, source);
        report.suppressed += fa.report.suppressed;
        for v in fa.report.violations {
            report.violations.push(FileViolation {
                file: rel.clone(),
                rule: v.rule,
                line: v.line,
                message: v.message,
            });
        }
        sups_by_file.push((rel.clone(), fa.sups));
        all_items.push((rel.clone(), fa.items));
        product_files.push((rel.clone(), source.clone()));
    }

    let push = |report: &mut Report,
                    rule: &'static str,
                    file: String,
                    line: usize,
                    message: String| {
        let suppressed = sups_by_file
            .iter()
            .find(|(rel, _)| *rel == file)
            .is_some_and(|(_, sups)| sups.iter().any(|s| s.covers(rule, line)));
        if suppressed {
            report.suppressed += 1;
        } else {
            report.violations.push(FileViolation {
                file,
                rule,
                line,
                message,
            });
        }
    };

    // Workspace pass: R5 panic reachability over the call graph.
    for f in taint::analyze(&all_items) {
        push(&mut report, "R5", f.file, f.line, f.message);
    }

    // Workspace pass: R7 length-provenance dataflow.
    for f in dataflow::analyze(&product_files) {
        push(&mut report, "R7", f.file, f.line, f.message);
    }

    // Workspace pass: R8 error-bound contract audit (sees the test files).
    for f in contracts::analyze(files) {
        push(&mut report, "R8", f.file, f.line, f.message);
    }

    // Workspace pass: R9 lock discipline.
    for f in locks::analyze(&product_files) {
        push(&mut report, "R9", f.file, f.line, f.message);
    }

    // Workspace pass: R10 shared-state audit.
    for f in shared::analyze(&product_files) {
        push(&mut report, "R10", f.file, f.line, f.message);
    }

    // Workspace pass: R11–R13 hot-path performance audit.
    for f in perf::analyze(&product_files) {
        push(&mut report, f.rule, f.file, f.line, f.message);
    }

    // Workspace pass: R14–R16 container-format audit (sees the test files
    // as R16 coverage evidence).
    for f in format::analyze(files) {
        push(&mut report, f.rule, f.file, f.line, f.message);
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Scans every `crates/*/src/**/*.rs` file under `root`, plus the
/// integration-test files (`tests/*.rs`, `crates/*/tests/**/*.rs`) that
/// serve as R8 coverage evidence. Test trees of the exempt crates (xtask's
/// own fixtures, benches) are skipped: their deliberate violations must
/// never count as evidence.
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let krate = entry?.path();
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
        let is_exempt = krate
            .file_name()
            .is_some_and(|n| n == "xtask" || n == "bench");
        let tests = krate.join("tests");
        if !is_exempt && tests.is_dir() {
            collect_rs(&tests, &mut paths)?;
        }
    }
    let root_tests = root.join("tests");
    if root_tests.is_dir() {
        collect_rs(&root_tests, &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        files.push((rel, source));
    }
    Ok(lint_sources(&files))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
