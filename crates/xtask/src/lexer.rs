//! Minimal Rust source lexer for the lint pass.
//!
//! Deliberately hand-rolled (no `syn`, no proc-macro machinery) so the
//! scanner builds with a bare toolchain even when the crates.io registry is
//! unreachable. It does not parse Rust; it only separates *code* from
//! comments and string/char literals, preserving the byte-for-byte line
//! structure so rule hits map to real line numbers, and it blanks
//! `#[cfg(test)]` / `#[test]` items so test code is exempt from the rules.

/// A comment found in the source, used for `xtask-allow` suppressions.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// True when nothing but whitespace precedes the comment on its line
    /// (a full-line comment suppresses the *next* line, an inline comment
    /// suppresses its own line).
    pub own_line: bool,
    pub text: String,
}

/// Lexing result: `code` has every comment and literal replaced by spaces
/// (newlines kept), so byte offsets and line numbers match the original.
#[derive(Debug)]
pub struct Lexed {
    pub code: String,
    pub comments: Vec<Comment>,
}

pub(crate) fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// First non-whitespace byte at or after `i`.
pub(crate) fn next_nonws(b: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < b.len() {
        if !(b[i] as char).is_whitespace() {
            return Some((i, b[i]));
        }
        i += 1;
    }
    None
}

/// Last non-whitespace byte strictly before `i`.
pub(crate) fn prev_nonws(b: &[u8], i: usize) -> Option<(usize, u8)> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !(b[j] as char).is_whitespace() {
            return Some((j, b[j]));
        }
    }
    None
}

/// Reads the identifier token starting at `i` (which must be its first byte).
pub(crate) fn ident_at(b: &[u8], i: usize) -> &str {
    let mut j = i;
    while j < b.len() && is_ident(b[j]) {
        j += 1;
    }
    std::str::from_utf8(&b[i..j]).unwrap_or("")
}

/// Reads the identifier token *ending* right before `i` (exclusive).
pub(crate) fn ident_ending_at(b: &[u8], i: usize) -> &str {
    let mut j = i;
    while j > 0 && is_ident(b[j - 1]) {
        j -= 1;
    }
    std::str::from_utf8(&b[j..i]).unwrap_or("")
}

/// True when the byte at `i` starts an identifier token.
pub(crate) fn ident_starts_at(b: &[u8], i: usize) -> bool {
    is_ident(b[i]) && (i == 0 || !is_ident(b[i - 1]))
}

/// Offset of the matching `}` for the `{` at `open` (or end of input).
pub(crate) fn match_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len().saturating_sub(1)
}

/// Strips comments and string/char literals out of `source`.
pub fn strip(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(b.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Pushes a blank in place of a source byte (newlines survive so the
    // line structure is unchanged).
    macro_rules! blank {
        ($c:expr) => {
            if $c == b'\n' {
                code.push(b'\n');
                line += 1;
                line_has_code = false;
            } else {
                code.push(b' ');
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start_line = line;
            let own_line = !line_has_code;
            let mut text = String::new();
            while i < b.len() && b[i] != b'\n' {
                text.push(b[i] as char);
                code.push(b' ');
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                own_line,
                text,
            });
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start_line = line;
            let own_line = !line_has_code;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    text.push_str("/*");
                    blank!(b[i]);
                    blank!(b[i + 1]);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    text.push_str("*/");
                    blank!(b[i]);
                    blank!(b[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i] as char);
                    blank!(b[i]);
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                own_line,
                text,
            });
            continue;
        }
        // Raw / byte strings: r"..", r#".."#, br".., b"..".
        let (is_raw, raw_skip) = match c {
            b'r' if !prev_ident(&code) => (true, 1usize),
            b'b' if !prev_ident(&code) && i + 1 < b.len() && (b[i + 1] == b'r') => (true, 2),
            _ => (false, 0),
        };
        if is_raw {
            let mut j = i + raw_skip;
            let mut hashes = 0usize;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                // Consume the raw string wholesale.
                for k in i..=j {
                    blank!(b[k]);
                }
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let mut h = 0usize;
                        while h < hashes && i + 1 + h < b.len() && b[i + 1 + h] == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            for k in i..=i + hashes {
                                blank!(b[k]);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    blank!(b[i]);
                    i += 1;
                }
                continue;
            }
            // Not actually a raw string ("r" identifier etc.) — fall through.
        }
        // Ordinary (or byte) string.
        if c == b'"' || (c == b'b' && !prev_ident(&code) && i + 1 < b.len() && b[i + 1] == b'"') {
            if c == b'b' {
                blank!(b[i]);
                i += 1;
            }
            blank!(b[i]);
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    blank!(b[i]);
                    blank!(b[i + 1]);
                    i += 2;
                    continue;
                }
                let done = b[i] == b'"';
                blank!(b[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime: a quote introduces a char literal when
        // it closes within a couple of characters (or starts an escape).
        if c == b'\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                true
            } else {
                // 'x' → char; 'x  (no closing quote right after) → lifetime.
                i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\''
            };
            if is_char {
                blank!(b[i]);
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        blank!(b[i]);
                        blank!(b[i + 1]);
                        i += 2;
                        continue;
                    }
                    let done = b[i] == b'\'';
                    blank!(b[i]);
                    i += 1;
                    if done {
                        break;
                    }
                }
                continue;
            }
        }
        // Plain code byte.
        if c == b'\n' {
            code.push(b'\n');
            line += 1;
            line_has_code = false;
        } else {
            if !c.is_ascii_whitespace() {
                line_has_code = true;
            }
            code.push(c);
        }
        i += 1;
    }

    Lexed {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments,
    }
}

/// True when the last emitted code byte is an identifier character (used to
/// tell `r"raw"` from an identifier ending in `r`, e.g. `var"`).
fn prev_ident(code: &[u8]) -> bool {
    code.last().copied().is_some_and(is_ident)
}

/// Line-number lookup table: `starts[k]` is the byte offset of line `k+1`.
/// Shared by every pass that maps byte offsets back to 1-based lines.
pub struct Lines {
    starts: Vec<usize>,
}

impl Lines {
    pub fn new(text: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, c) in text.bytes().enumerate() {
            if c == b'\n' {
                starts.push(i + 1);
            }
        }
        Self { starts }
    }

    pub fn line_of(&self, offset: usize) -> usize {
        match self.starts.binary_search(&offset) {
            Ok(k) => k + 1,
            Err(k) => k,
        }
    }

    pub fn offset_of_line(&self, line: usize) -> usize {
        self.starts
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(usize::MAX)
    }
}

/// Blanks `#[cfg(test)]` and `#[test]` items (attribute through the end of
/// the following brace block or `;`) in already-stripped code, so rules only
/// see non-test code. Returns the filtered copy.
pub fn blank_test_items(code: &str) -> String {
    let b = code.as_bytes().to_vec();
    let mut out = b.clone();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] != b'#' {
            i += 1;
            continue;
        }
        // Parse `#[ ... ]` and normalize its content.
        let mut j = i + 1;
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if j >= b.len() || b[j] != b'[' {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut attr = String::new();
        while j < b.len() {
            match b[j] {
                b'[' => {
                    depth += 1;
                    attr.push('[');
                }
                b']' => {
                    depth -= 1;
                    attr.push(']');
                    if depth == 0 {
                        break;
                    }
                }
                c if !(c as char).is_whitespace() => attr.push(c as char),
                _ => {}
            }
            j += 1;
        }
        if j >= b.len() {
            break;
        }
        let attr_end = j; // index of ']'
        let is_test_attr = attr == "[cfg(test)]"
            || attr == "[test]"
            || attr.starts_with("[cfg(all(test"); // cfg(all(test, ...)), whitespace removed
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then blank through the item's body.
        let mut k = attr_end + 1;
        loop {
            while k < b.len() && (b[k] as char).is_whitespace() {
                k += 1;
            }
            if k < b.len() && b[k] == b'#' {
                // Another attribute: jump past its closing ']'.
                let mut d = 0usize;
                while k < b.len() {
                    match b[k] {
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
                continue;
            }
            break;
        }
        // Find the body: first `{` at paren/bracket depth 0, or a `;`.
        let mut paren = 0isize;
        let mut end = k;
        while end < b.len() {
            match b[end] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    // Brace-match to the item's closing `}`.
                    let mut braces = 0isize;
                    while end < b.len() {
                        match b[end] {
                            b'{' => braces += 1,
                            b'}' => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end = end.min(b.len().saturating_sub(1));
        for (idx, slot) in out.iter_mut().enumerate().take(end + 1).skip(i) {
            if b[idx] != b'\n' {
                *slot = b' ';
            }
        }
        i = end + 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Code with literals blanked must keep its length and line structure.
    fn assert_shape_preserved(src: &str, stripped: &str) {
        assert_eq!(src.len(), stripped.len(), "byte length must be preserved");
        assert_eq!(
            src.matches('\n').count(),
            stripped.matches('\n').count(),
            "line structure must be preserved"
        );
    }

    #[test]
    fn raw_strings_are_blanked_including_quotes_and_braces() {
        let src = "let s = r#\"quote \" slash // brace { } \"#; let x = 1;\n";
        let lexed = strip(src);
        assert_shape_preserved(src, &lexed.code);
        // Nothing inside the raw string survives as code...
        assert!(!lexed.code.contains("slash"));
        assert!(!lexed.code.contains('{'));
        // ...and its `//` is not mistaken for a comment.
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
        assert!(lexed.code.contains("let x = 1;"));
    }

    #[test]
    fn multi_hash_raw_string_terminates_on_matching_hashes() {
        let src = "let s = r##\"ends \"# not yet\"##; let y = 2;\n";
        let lexed = strip(src);
        assert_shape_preserved(src, &lexed.code);
        assert!(!lexed.code.contains("not yet"));
        assert!(lexed.code.contains("let y = 2;"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let src = "let var = fair\"text\"; let z = 3;\n";
        let lexed = strip(src);
        // `fair` survives; only the quoted part is blanked.
        assert!(lexed.code.contains("fair"));
        assert!(!lexed.code.contains("text"));
        assert!(lexed.code.contains("let z = 3;"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let src = "let a = b\"bytes\"; let b2 = br#\"raw { bytes\"#; end();\n";
        let lexed = strip(src);
        assert_shape_preserved(src, &lexed.code);
        assert!(!lexed.code.contains("bytes"));
        assert!(!lexed.code.contains('{'));
        assert!(lexed.code.contains("end();"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still comment */ let alive = 1;\n";
        let lexed = strip(src);
        assert_shape_preserved(src, &lexed.code);
        assert!(!lexed.code.contains("still"));
        assert!(lexed.code.contains("let alive = 1;"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn block_comment_hides_line_comment_markers() {
        // A `//` inside a block comment must not swallow the `*/`.
        let src = "/* has // inside */ let ok = 1; // trailing\n";
        let lexed = strip(src);
        assert!(lexed.code.contains("let ok = 1;"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[1].own_line, "trailing comment shares its line");
    }

    #[test]
    fn char_literals_with_quote_and_brace_contents_are_blanked() {
        // '"', '{', '}', and escaped '\'' must all blank cleanly — a brace
        // inside a char literal must not unbalance match_brace.
        let src = "let q = '\"'; let o = '{'; let c = '}'; let e = '\\''; f();\n";
        let lexed = strip(src);
        assert_shape_preserved(src, &lexed.code);
        assert!(!lexed.code.contains('"'));
        assert!(!lexed.code.contains('{'));
        assert!(!lexed.code.contains('}'));
        assert!(lexed.code.contains("f();"));
    }

    #[test]
    fn lifetimes_survive_as_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        let lexed = strip(src);
        // Lifetime quotes are code, not char literals: the signature and
        // body braces must survive intact.
        assert!(lexed.code.contains("<'a>"));
        assert!(lexed.code.contains("{ x }"));
    }

    #[test]
    fn escaped_backslash_char_does_not_derail_the_scan() {
        let src = "let s = '\\\\'; let after = '\\n'; done();\n";
        let lexed = strip(src);
        assert_shape_preserved(src, &lexed.code);
        assert!(lexed.code.contains("done();"));
    }

    #[test]
    fn test_items_with_raw_strings_blank_to_the_matching_brace() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let s = r#\"}\"#; }\n}\nfn also_live() {}\n";
        let stripped = strip(src);
        let blanked = blank_test_items(&stripped.code);
        assert!(blanked.contains("fn live()"));
        assert!(blanked.contains("fn also_live()"));
        // The raw-string `}` was blanked by strip() first, so the test
        // module blanks exactly to its real closing brace.
        assert!(!blanked.contains("fn t()"));
    }
}
