//! Rule R7: length-provenance dataflow.
//!
//! R5 asks "can a panic be *reached* from decode input?"; R7 asks the finer
//! question "is this *value* attacker-controlled?". Length, offset, and
//! count fields parsed out of container bytes drive arithmetic, slice
//! construction, and allocations; any of those done unchecked turns a
//! corrupt header into an overflow panic (debug / `overflow-checks = true`
//! builds), a slice-bounds panic, or an OOM abort. R7 tracks the provenance
//! of such values and flags unchecked uses.
//!
//! The model (token-level, per function, flow-ordered):
//!
//! * **Sources.** A `let` binding is tainted when its initializer calls a
//!   raw length-read primitive (`u8()`, `u16()`, `u32()`, `u64()`,
//!   `len64()`, `varint()`, `<int>::from_le_bytes(..)`, `u32_le`/`u64_le`),
//!   mentions an already-tainted local or tainted struct field, or calls a
//!   *derived source* — a function in the container-parser scope whose
//!   integer-typed return value is itself computed from a tainted value
//!   (`read_header`, `len64`, …; closed to a fixed point workspace-wide, so
//!   taint crosses crate boundaries by callee name). `read_exact(&mut x)`
//!   taints `x` in place.
//! * **Propagation.** Assignments and compound assignments re-evaluate the
//!   left-hand side; `recv.push(tainted)`-style mutating calls taint the
//!   receiver; storing a tainted local in a struct-literal field or via
//!   `obj.field = tainted` taints the *field name* workspace-wide (loads of
//!   `.field` then read back as tainted).
//! * **Sanitizers.** A binding whose initializer routes through `checked_*`,
//!   a `*_checked` cast helper, `try_into`/`try_from`, `usize::from` (only
//!   accepts `u8`/`u16`/`bool`, so the result is ≤ 65535 by construction),
//!   `float_to_index`, `min(..)`, or `clamp(..)` is clean. A comparison
//!   guard (`if`/`while` condition containing the tainted name and a
//!   comparison operator) clears the named locals for the rest of the
//!   function — the "explicit validation guard" of the design rules.
//! * **Hazards.** A tainted identifier adjacent to bare `+ - * <<` (or a
//!   compound `+= -= *= <<=`), sizing an allocation
//!   (`with_capacity`/`reserve`/`resize`/`vec![v; n]`), forming a slice
//!   range inside an index expression (`buf[t..]`, `buf[..t]`), or feeding
//!   an unchecked `.product()`/`.sum()` fold.
//!
//! Like R5 the pass is an over-approximation in the *reporting* direction
//! (name-based resolution, no types) but deliberately permissive about
//! guards: any comparison mentioning the value counts as validation, since
//! the repo's hardened parsers validate immediately after reading. Findings
//! are scoped to the container/codec crates (`HAZARD_SCOPE`); bit-level
//! entropy decoders use different idioms and stay under R1/R5.

use crate::items::FnItem;
use crate::lexer::{self, ident_at, ident_starts_at, next_nonws, prev_nonws, Lines};
use std::collections::HashSet;

/// Files whose parsed values seed taint and whose integer-returning
/// functions can become derived sources.
const SOURCE_SCOPE: &[&str] = &[
    "crates/core/src/bytesio.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/chunked.rs",
    "crates/baselines/src/header.rs",
    "crates/cli/src/czfile.rs",
    "crates/store/src/caf.rs",
    "crates/store/src/format.rs",
    "crates/storage/src/http.rs",
    "crates/serve/src/client.rs",
    "crates/serve/src/proto.rs",
];

/// Files where hazards are reported: the container parsers, the codec
/// crates consuming their headers, and the CLI wrapper format.
const HAZARD_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/baselines/src/",
    "crates/cli/src/",
    "crates/cliz/src/",
    "crates/store/src/",
    "crates/storage/src/",
    "crates/serve/src/",
];

/// Raw length-read primitives. Calls to these taint the binding they
/// initialize wherever they appear inside `HAZARD_SCOPE`. Float reads
/// (`f32()`, `f64()`) are deliberately absent: floats are not lengths and
/// cannot overflow-panic.
const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "len64", "varint", "u32_le", "u64_le", "from_le_bytes",
];

/// Call names whose presence in an initializer marks the bound value as
/// validated. `usize::from` is special-cased in [`has_sanitizer`].
const SANITIZERS: &[&str] = &[
    "try_into",
    "try_from",
    "float_to_index",
    "quantize_index",
    "min",
    "clamp",
];

/// Allocation calls whose size argument must not be tainted.
const ALLOC_CALLS: &[&str] = &["with_capacity", "reserve", "resize"];

/// Unchecked folds over a tainted sequence.
const FOLD_CALLS: &[&str] = &["product", "sum"];

/// Integer type names; a scope function returning one of these can become a
/// derived source. `u8`/`i8` are deliberately absent: they appear in every
/// byte-slice return type (`&[u8]`, `Vec<u8>`) where the value is a buffer,
/// not a length — and a genuine u8-valued count is bounded at 255 anyway.
const INT_TYPES: &[&str] = &[
    "usize", "u16", "u32", "u64", "u128", "isize", "i16", "i32", "i64", "i128",
];

/// An R7 finding, pre-suppression.
#[derive(Debug)]
pub struct FlowFinding {
    pub file: String,
    pub line: usize,
    pub message: String,
}

fn in_scope(scope: &[&str], rel_path: &str) -> bool {
    scope.iter().any(|p| rel_path.starts_with(p))
}

/// One file, pre-lexed once and shared by every pass below.
struct FileCtx {
    rel: String,
    active: String,
    items: Vec<FnItem>,
    is_source_scope: bool,
    in_hazard_scope: bool,
}

fn prepare(files: &[(String, String)]) -> Vec<FileCtx> {
    files
        .iter()
        .filter(|(rel, _)| in_scope(HAZARD_SCOPE, rel) || in_scope(SOURCE_SCOPE, rel))
        .map(|(rel, source)| {
            let lexed = lexer::strip(source);
            let active = lexer::blank_test_items(&lexed.code);
            let lines = Lines::new(&active);
            let items = crate::items::parse_items(&active, &lines);
            FileCtx {
                rel: rel.clone(),
                is_source_scope: in_scope(SOURCE_SCOPE, rel),
                in_hazard_scope: in_scope(HAZARD_SCOPE, rel),
                active,
                items,
            }
        })
        .collect()
}

/// Runs the R7 pass over `(rel_path, source)` pairs.
pub fn analyze(files: &[(String, String)]) -> Vec<FlowFinding> {
    let ctxs = prepare(files);

    // Fixed point: derived sources (scope functions returning tainted ints)
    // and tainted field names feed back into the per-function simulation.
    let mut sources: HashSet<String> = PRIMITIVES.iter().map(|s| s.to_string()).collect();
    let mut fields: HashSet<String> = HashSet::new();
    loop {
        let mut changed = false;
        for ctx in &ctxs {
            for item in &ctxs_items(ctx) {
                let sim = simulate(ctx, item, &sources, &fields, None);
                for f in sim.stored_fields {
                    changed |= fields.insert(f);
                }
                if ctx.is_source_scope
                    && sim.saw_taint
                    && returns_int(&ctx.active, item)
                    && !sources.contains(&item.name)
                {
                    sources.insert(item.name.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting pass.
    let mut findings = Vec::new();
    for ctx in &ctxs {
        if !ctx.in_hazard_scope {
            continue;
        }
        let lines = Lines::new(&ctx.active);
        for item in &ctxs_items(ctx) {
            let mut out = Vec::new();
            simulate(ctx, item, &sources, &fields, Some((&lines, &mut out)));
            for (line, message) in out {
                findings.push(FlowFinding {
                    file: ctx.rel.clone(),
                    line,
                    message,
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    findings
}

fn ctxs_items(ctx: &FileCtx) -> Vec<&FnItem> {
    ctx.items.iter().filter(|it| it.has_body).collect()
}

/// True when the signature between the `fn` name and the body mentions an
/// integer return type (after `->`).
fn returns_int(active: &str, item: &FnItem) -> bool {
    let sig = &active[item.start..item.body_open.min(active.len())];
    let Some(arrow) = sig.find("->") else {
        return false;
    };
    let ret = &sig[arrow..];
    let b = ret.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if ident_starts_at(b, i) {
            let w = ident_at(b, i);
            if INT_TYPES.contains(&w) {
                return true;
            }
            i += w.len();
        } else {
            i += 1;
        }
    }
    false
}

/// Result of simulating one function body.
struct Simulated {
    /// Field names that received a tainted store.
    stored_fields: Vec<String>,
    /// Whether any taint existed in this body at all (derived-source test).
    saw_taint: bool,
}

/// Token classification for the hazard scan.
fn is_value_end(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b')' || c == b']'
}

/// Walks the statements of `item`'s body in source order, tracking the
/// tainted-local set. When `report` is given, hazards are appended to it.
fn simulate(
    ctx: &FileCtx,
    item: &FnItem,
    sources: &HashSet<String>,
    fields: &HashSet<String>,
    mut report: Option<(&Lines, &mut Vec<(usize, String)>)>,
) -> Simulated {
    let b = ctx.active.as_bytes();
    let (lo, hi) = (item.body_open + 1, item.end.min(b.len()));
    // Byte ranges of items nested inside this body (their own entries).
    let nested: Vec<(usize, usize)> = ctx
        .items
        .iter()
        .filter(|it| it.start > lo && it.end <= hi)
        .map(|it| (it.start, it.end))
        .collect();

    let mut tainted: HashSet<String> = HashSet::new();
    let mut stored_fields: Vec<String> = Vec::new();
    let mut saw_taint = false;

    // Statement stream: split the body on `;` and `{`/`}` at the body's
    // top-level-or-deeper brace depth, keeping parens/brackets balanced so a
    // `;` inside `for i in 0..n {}` or an array type never splits early.
    let mut stmts: Vec<(usize, usize)> = Vec::new();
    {
        let mut i = lo;
        let mut start = lo;
        let mut paren = 0isize;
        'outer: while i < hi {
            for &(ns, ne) in &nested {
                if i >= ns && i <= ne {
                    // A nested fn is its own scope; cut around it.
                    if start < ns {
                        stmts.push((start, ns));
                    }
                    i = ne + 1;
                    start = i;
                    continue 'outer;
                }
            }
            match b[i] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b';' | b'{' | b'}' if paren <= 0 => {
                    stmts.push((start, i + 1));
                    start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        if start < hi {
            stmts.push((start, hi));
        }
    }

    for &(s, e) in &stmts {
        let stmt = &ctx.active[s..e.min(ctx.active.len())];
        let sb = stmt.as_bytes();

        // Hazard scan against the *current* tainted set (pre-update).
        if let Some((lines, out)) = report.as_mut() {
            scan_hazards(sb, s, lines, &tainted, fields, out);
        }

        // Guard: `if` / `while` condition with a comparison sanitizes the
        // tainted locals it names.
        if let Some(cond) = guard_condition(sb) {
            if has_comparison(cond) {
                let named = idents_of(cond);
                tainted.retain(|t| !named.contains(t.as_str()));
            }
            continue;
        }

        // `let` statement.
        if let Some((pats, rhs)) = split_let(stmt) {
            let rhs_tainted = expr_tainted(rhs, &tainted, sources, fields);
            let clean = has_sanitizer(rhs);
            for p in pats {
                if rhs_tainted && !clean {
                    saw_taint = true;
                    tainted.insert(p.to_string());
                } else {
                    tainted.remove(p);
                }
            }
            continue;
        }

        // Assignment / compound assignment / field store / receiver taint.
        apply_statement_effects(
            stmt,
            &mut tainted,
            sources,
            fields,
            &mut stored_fields,
            &mut saw_taint,
        );
    }

    Simulated {
        stored_fields,
        saw_taint,
    }
}

/// If the statement starts with `if`/`while`, returns the condition text.
fn guard_condition(sb: &[u8]) -> Option<&str> {
    let (i, _) = next_nonws(sb, 0)?;
    if !ident_starts_at(sb, i) {
        return None;
    }
    let w = ident_at(sb, i);
    if w != "if" && w != "while" {
        return None;
    }
    std::str::from_utf8(&sb[i + w.len()..]).ok()
}

fn has_comparison(cond: &str) -> bool {
    let b = cond.as_bytes();
    for i in 0..b.len() {
        match b[i] {
            b'<' | b'>' => return true,
            b'=' if i + 1 < b.len() && b[i + 1] == b'=' => return true,
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => return true,
            _ => {}
        }
    }
    false
}

fn idents_of(text: &str) -> HashSet<&str> {
    let b = text.as_bytes();
    let mut out = HashSet::new();
    let mut i = 0usize;
    while i < b.len() {
        if ident_starts_at(b, i) {
            let w = ident_at(b, i);
            out.insert(w);
            i += w.len();
        } else {
            i += 1;
        }
    }
    out
}

/// Splits `let <pattern> = <rhs>` into pattern idents and the rhs text.
fn split_let(stmt: &str) -> Option<(Vec<&str>, &str)> {
    let b = stmt.as_bytes();
    let (i, _) = next_nonws(b, 0)?;
    if !ident_starts_at(b, i) || ident_at(b, i) != "let" {
        return None;
    }
    // Find the `=` that is not part of `==`/`<=`/`>=`/`!=` at depth 0.
    let mut j = i + 3;
    let mut depth = 0isize;
    let mut eq = None;
    while j < b.len() {
        match b[j] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b'=' if depth <= 0 => {
                let prev_ok = j == 0 || !matches!(b[j - 1], b'=' | b'<' | b'>' | b'!');
                let next_ok = j + 1 >= b.len() || b[j + 1] != b'=';
                if prev_ok && next_ok {
                    eq = Some(j);
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let eq = eq?;
    // Pattern idents: everything before a `:` type annotation, minus
    // binding-mode keywords.
    let pat_text = &stmt[i + 3..eq];
    let pat_text = pat_text.split(':').next().unwrap_or(pat_text);
    let pats: Vec<&str> = idents_of(pat_text)
        .into_iter()
        .filter(|w| !matches!(*w, "mut" | "ref" | "box"))
        .collect();
    if pats.is_empty() {
        return None;
    }
    Some((pats, &stmt[eq + 1..]))
}

/// True when the expression mentions a taint source: a tainted local, a
/// source call `name(..)`, or a tainted field load `.name` (not a call).
fn expr_tainted(
    expr: &str,
    tainted: &HashSet<String>,
    sources: &HashSet<String>,
    fields: &HashSet<String>,
) -> bool {
    let b = expr.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let w = ident_at(b, i);
        let start = i;
        i += w.len();
        let next = next_nonws(b, i);
        let prev = prev_nonws(b, start);
        let is_call = next.is_some_and(|(_, c)| c == b'(');
        let is_field_load = prev.is_some_and(|(_, c)| c == b'.') && !is_call;
        if tainted.contains(w) && !prev.is_some_and(|(_, c)| c == b'.') {
            return true;
        }
        if is_call && sources.contains(w) && !is_float_from(b, start) {
            return true;
        }
        if is_field_load && fields.contains(w) {
            return true;
        }
    }
    false
}

/// `f32::from_le_bytes` / `f64::from_le_bytes` read floats, not lengths.
fn is_float_from(b: &[u8], call_start: usize) -> bool {
    if ident_at(b, call_start) != "from_le_bytes" {
        return false;
    }
    // Look back across `::` for the type ident.
    let Some((j, c)) = prev_nonws(b, call_start) else {
        return false;
    };
    if c != b':' || j == 0 || b[j - 1] != b':' {
        return false;
    }
    let Some((k, _)) = prev_nonws(b, j - 1) else {
        return false;
    };
    let ty = crate::lexer::ident_ending_at(b, k + 1);
    ty == "f32" || ty == "f64"
}

/// True when the initializer routes through a recognized validation step.
fn has_sanitizer(expr: &str) -> bool {
    let b = expr.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let w = ident_at(b, i);
        let start = i;
        i += w.len();
        if !next_nonws(b, i).is_some_and(|(_, c)| c == b'(') {
            continue;
        }
        if w.starts_with("checked_") || w.ends_with("_checked") || SANITIZERS.contains(&w) {
            return true;
        }
        // `usize::from(..)`: lossless only from u8/u16/bool, so the result
        // is a safe, small length by construction.
        if w == "from" {
            if let Some((j, c)) = prev_nonws(b, start) {
                if c == b':' && j > 0 && b[j - 1] == b':' {
                    if let Some((k, _)) = prev_nonws(b, j - 1) {
                        if crate::lexer::ident_ending_at(b, k + 1) == "usize" {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Non-`let`, non-guard statements: assignments, compound assignments,
/// struct-literal shorthand stores, receiver-mutating calls.
fn apply_statement_effects(
    stmt: &str,
    tainted: &mut HashSet<String>,
    sources: &HashSet<String>,
    fields: &HashSet<String>,
    stored_fields: &mut Vec<String>,
    saw_taint: &mut bool,
) {
    let b = stmt.as_bytes();

    // `x = rhs` / `x op= rhs` at statement start (possibly `recv.f = rhs`).
    if let Some(eq) = top_level_assign(b) {
        let (lhs, rhs) = (&stmt[..eq.0], &stmt[eq.1..]);
        let rhs_tainted =
            expr_tainted(rhs, tainted, sources, fields) && !has_sanitizer(rhs);
        let lhs_idents: Vec<&str> = idents_of(lhs).into_iter().collect();
        // Field store: `obj.f = rhs` — last ident preceded by `.`.
        let lb = lhs.as_bytes();
        let mut field_target = None;
        let mut k = lb.len();
        while k > 0 {
            k -= 1;
            if ident_starts_at(lb, k) {
                let w = ident_at(lb, k);
                if prev_nonws(lb, k).is_some_and(|(_, c)| c == b'.') {
                    field_target = Some(w);
                }
                break;
            }
        }
        if rhs_tainted {
            *saw_taint = true;
            if let Some(f) = field_target {
                stored_fields.push(f.to_string());
            } else if let Some(x) = lhs_idents.first() {
                tainted.insert(x.to_string());
            }
        } else if field_target.is_none() {
            for x in &lhs_idents {
                tainted.remove(*x);
            }
        }
        return;
    }

    // Receiver-mutating call: `recv.method(..tainted..)` taints `recv`.
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let w = ident_at(b, i);
        let start = i;
        i += w.len();
        if !next_nonws(b, i).is_some_and(|(_, c)| c == b'.') {
            continue;
        }
        // `w.method(args)`: check the args for taint.
        if let Some((m, _)) = next_nonws(b, i) {
            let mb = m + 1;
            if ident_starts_at(b, mb) {
                let method = ident_at(b, mb);
                let after = mb + method.len();
                if next_nonws(b, after).is_some_and(|(_, c)| c == b'(') {
                    let args = &stmt[after..];
                    if expr_tainted(args, tainted, sources, fields) && !has_sanitizer(args) {
                        *saw_taint = true;
                        tainted.insert(w.to_string());
                    }
                }
            }
        }
        let _ = start;
    }

    // Struct-literal shorthand: `{ name, other }` where `name` is tainted
    // stores into a field of the same name.
    let mut stack: Vec<u8> = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => stack.push(b[i]),
            b')' | b']' | b'}' => {
                stack.pop();
            }
            _ if ident_starts_at(b, i) => {
                let w = ident_at(b, i);
                let end = i + w.len();
                let inside_brace = stack.last() == Some(&b'{');
                let before_ok = prev_nonws(b, i).is_some_and(|(_, c)| c == b'{' || c == b',');
                let after_ok = next_nonws(b, end).is_some_and(|(_, c)| c == b',' || c == b'}');
                if inside_brace && before_ok && after_ok && tainted.contains(w) {
                    *saw_taint = true;
                    stored_fields.push(w.to_string());
                }
                i = end;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Finds a top-level `=` (or `op=`) assignment; returns (lhs_end, rhs_start).
fn top_level_assign(b: &[u8]) -> Option<(usize, usize)> {
    // Statements starting with keywords are not assignments.
    let (i, _) = next_nonws(b, 0)?;
    if ident_starts_at(b, i) {
        let w = ident_at(b, i);
        if matches!(
            w,
            "let" | "if" | "while" | "for" | "match" | "return" | "fn" | "use" | "pub" | "loop"
        ) {
            return None;
        }
    }
    let mut depth = 0isize;
    let mut j = i;
    while j < b.len() {
        match b[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'=' if depth <= 0 => {
                if j + 1 < b.len() && b[j + 1] == b'=' {
                    return None; // comparison, not assignment
                }
                let prev = if j > 0 { b[j - 1] } else { b' ' };
                return match prev {
                    b'<' | b'>' | b'!' => None,
                    b'+' | b'-' | b'*' => Some((j - 1, j + 1)),
                    _ => Some((j, j + 1)),
                };
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scans one statement for hazardous uses of currently-tainted values.
fn scan_hazards(
    sb: &[u8],
    stmt_off: usize,
    lines: &Lines,
    tainted: &HashSet<String>,
    fields: &HashSet<String>,
    out: &mut Vec<(usize, String)>,
) {
    let stmt = std::str::from_utf8(sb).unwrap_or("");
    let mut bracket_depth = 0usize; // inside `[...]` index/slice expressions
    let mut i = 0usize;
    while i < sb.len() {
        match sb[i] {
            b'[' => bracket_depth += 1,
            b']' => bracket_depth = bracket_depth.saturating_sub(1),
            _ => {}
        }
        if !ident_starts_at(sb, i) {
            i += 1;
            continue;
        }
        let w = ident_at(sb, i);
        let start = i;
        i += w.len();

        let is_field_load = prev_nonws(sb, start).is_some_and(|(_, c)| c == b'.')
            && !next_nonws(sb, i).is_some_and(|(_, c)| c == b'(');
        let is_tainted = (tainted.contains(w)
            && !prev_nonws(sb, start).is_some_and(|(_, c)| c == b'.'))
            || (is_field_load && fields.contains(w));
        let line = lines.line_of(stmt_off + start);

        if is_tainted {
            // Masking with a literal bounds the value: `t & 0x7F` is clean.
            let masked = next_nonws(sb, i).is_some_and(|(_, c)| c == b'&')
                || prev_nonws(sb, start)
                    .is_some_and(|(j, c)| c == b'&' && j > 0 && is_value_end(sb[j - 1]));
            if !masked {
                // Bare arithmetic adjacency.
                if let Some((j, c)) = next_nonws(sb, i) {
                    if arith_op_at(sb, j, c, true) {
                        out.push((line, arith_msg(w, c)));
                        continue;
                    }
                }
                if let Some((j, c)) = prev_nonws(sb, start) {
                    if arith_op_at(sb, j, c, false) {
                        out.push((line, arith_msg(w, c)));
                        continue;
                    }
                }
                // Slice-range construction inside an index bracket.
                if bracket_depth > 0 {
                    let next_is_range = sb.get(i..).is_some_and(|r| {
                        let (k, _) = next_nonws(r, 0).unwrap_or((0, b' '));
                        r.get(k..k + 2) == Some(b"..")
                    });
                    let prev_is_range = start >= 2 && {
                        let (j, _) = prev_nonws(sb, start).unwrap_or((0, b' '));
                        j >= 1 && &sb[j - 1..=j] == b".." || j >= 2 && &sb[j - 2..=j] == b"..="
                    };
                    if next_is_range || prev_is_range {
                        out.push((
                            line,
                            format!(
                                "slice range bounded by untrusted length `{w}`; use \
                                 `.get(..)` or validate it first"
                            ),
                        ));
                        continue;
                    }
                }
            }
        }

        // Allocation / fold calls with a tainted argument or receiver.
        if next_nonws(sb, i).is_some_and(|(_, c)| c == b'(') {
            if ALLOC_CALLS.contains(&w) {
                if let Some(arg) = call_args(stmt, i) {
                    if expr_contains_tainted_atom(arg, tainted, fields)
                        && !has_sanitizer(arg)
                    {
                        out.push((
                            line,
                            format!(
                                "allocation `{w}(..)` sized by an untrusted length; \
                                 validate or cap it first"
                            ),
                        ));
                    }
                }
            }
            if FOLD_CALLS.contains(&w)
                && prev_nonws(sb, start).is_some_and(|(_, c)| c == b'.')
                && expr_contains_tainted_atom(&stmt[..start], tainted, fields)
            {
                out.push((
                    line,
                    format!(
                        "unchecked `.{w}()` over untrusted lengths; use \
                         `try_fold` with `checked_mul`/`checked_add`"
                    ),
                ));
            }
        }

        // `vec![expr; len]` with a tainted len.
        if w == "vec" && next_nonws(sb, i).is_some_and(|(_, c)| c == b'!') {
            if let Some(body) = macro_body(stmt, i) {
                if let Some(semi) = body.find(';') {
                    let len_expr = &body[semi + 1..];
                    if expr_contains_tainted_atom(len_expr, tainted, fields)
                        && !has_sanitizer(len_expr)
                    {
                        out.push((
                            line,
                            "`vec![_; n]` sized by an untrusted length; validate or cap \
                             it first"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
}

fn arith_op_at(sb: &[u8], j: usize, c: u8, after: bool) -> bool {
    match c {
        b'+' | b'-' | b'*' => {
            // Exclude `->`, `+=`-RHS side effects handled elsewhere, unary
            // and deref forms: a binary operator has a value on both sides.
            if c == b'-' && sb.get(j + 1) == Some(&b'>') {
                return false;
            }
            if sb.get(j + 1) == Some(&b'=') {
                return true; // compound assign is still bare arithmetic
            }
            if after {
                true
            } else {
                // `* t` / `- t`: binary only when something value-like
                // precedes the operator.
                prev_nonws(sb, j).is_some_and(|(_, p)| is_value_end(p))
            }
        }
        b'<' => sb.get(j + 1) == Some(&b'<') || (j > 0 && sb[j - 1] == b'<'),
        _ => false,
    }
}

fn arith_msg(name: &str, op: u8) -> String {
    let op = match op {
        b'+' => "+",
        b'-' => "-",
        b'*' => "*",
        _ => "<<",
    };
    format!(
        "unchecked `{op}` on untrusted length `{name}`; use `checked_{}` or validate it first",
        match op {
            "+" => "add",
            "-" => "sub",
            "*" => "mul",
            _ => "shl",
        }
    )
}

/// Like [`expr_tainted`] but for hazard arguments: field loads and locals
/// only (a source *call* inside an argument is the initializer case, already
/// handled by the binding rules).
fn expr_contains_tainted_atom(
    expr: &str,
    tainted: &HashSet<String>,
    fields: &HashSet<String>,
) -> bool {
    let b = expr.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let w = ident_at(b, i);
        let start = i;
        i += w.len();
        let prev_dot = prev_nonws(b, start).is_some_and(|(_, c)| c == b'.');
        let is_call = next_nonws(b, i).is_some_and(|(_, c)| c == b'(');
        if tainted.contains(w) && !prev_dot {
            return true;
        }
        if prev_dot && !is_call && fields.contains(w) {
            return true;
        }
    }
    false
}

/// Returns the argument text of the call whose `(` follows byte `i`.
fn call_args(stmt: &str, i: usize) -> Option<&str> {
    let b = stmt.as_bytes();
    let (open, c) = next_nonws(b, i)?;
    if c != b'(' {
        return None;
    }
    let mut depth = 0isize;
    for (k, &ch) in b.iter().enumerate().skip(open) {
        match ch {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return stmt.get(open + 1..k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Returns the bracketed body of `vec![...]` whose `!` follows byte `i`.
fn macro_body(stmt: &str, i: usize) -> Option<&str> {
    let b = stmt.as_bytes();
    let (bang, c) = next_nonws(b, i)?;
    if c != b'!' {
        return None;
    }
    let (open, c) = next_nonws(b, bang + 1)?;
    if c != b'[' && c != b'(' {
        return None;
    }
    let close = if c == b'[' { b']' } else { b')' };
    let mut depth = 0isize;
    for (k, &ch) in b.iter().enumerate().skip(open) {
        if ch == c {
            depth += 1;
        } else if ch == close {
            depth -= 1;
            if depth == 0 {
                return stmt.get(open + 1..k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<(String, usize, String)> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze(&owned)
            .into_iter()
            .map(|f| (f.file, f.line, f.message))
            .collect()
    }

    #[test]
    fn unchecked_arithmetic_on_parsed_length_is_flagged() {
        let f = findings(&[(
            "crates/core/src/stream.rs",
            "fn open(r: &mut R) -> Result<usize, E> {\n    let n = r.u32()? as usize;\n    let total = n * 16 + 8;\n    Ok(total)\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, 3);
        assert!(f[0].2.contains("checked_mul"), "{}", f[0].2);
    }

    #[test]
    fn guard_and_checked_paths_are_clean() {
        let f = findings(&[(
            "crates/core/src/stream.rs",
            "fn open(r: &mut R) -> Result<(), E> {\n\
             \x20   let n = r.u32()? as usize;\n\
             \x20   if n > 1000 { return Err(E::Bad); }\n\
             \x20   let v = Vec::with_capacity(n);\n\
             \x20   let k = r.u64()?;\n\
             \x20   let end = base.checked_add(k).ok_or(E::Bad)?;\n\
             \x20   Ok(())\n}\n",
        )]);
        assert_eq!(f, vec![], "guarded and checked uses must not report");
    }

    #[test]
    fn allocation_and_vec_macro_sized_by_length_are_flagged() {
        let f = findings(&[(
            "crates/cli/src/czfile.rs",
            "fn load(r: &mut R) -> Result<(), E> {\n\
             \x20   let len = r.u64()?;\n\
             \x20   let buf = vec![0u8; len as usize];\n\
             \x20   let n = r.u32()?;\n\
             \x20   let v = Vec::with_capacity(n as usize);\n\
             \x20   Ok(())\n}\n",
        )]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].2.contains("vec!"), "{}", f[0].2);
        assert!(f[1].2.contains("with_capacity"), "{}", f[1].2);
    }

    #[test]
    fn usize_from_is_a_sanitizer() {
        let f = findings(&[(
            "crates/cli/src/czfile.rs",
            "fn load(r: &mut R) -> Result<(), E> {\n\
             \x20   let n = usize::from(r.u8()?);\n\
             \x20   let v = Vec::with_capacity(n);\n\
             \x20   Ok(())\n}\n",
        )]);
        assert_eq!(f, vec![]);
    }

    #[test]
    fn taint_crosses_files_through_derived_sources() {
        // `read_len` is defined in a source-scope file and returns an int
        // derived from a primitive read; calling it from another crate's
        // decoder taints the binding there.
        let f = findings(&[
            (
                "crates/core/src/bytesio.rs",
                "pub fn read_len(r: &mut R) -> Result<usize, E> {\n    let v = r.u64()?;\n    Ok(v as usize)\n}\n",
            ),
            (
                "crates/baselines/src/zfp_fixture.rs",
                "pub fn decode(r: &mut R) -> Result<(), E> {\n    let n = read_len(r)?;\n    let total = n + 4;\n    Ok(())\n}\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, "crates/baselines/src/zfp_fixture.rs");
        assert!(f[0].2.contains("checked_add"), "{}", f[0].2);
    }

    #[test]
    fn field_stores_propagate_and_guarded_stores_do_not() {
        let f = findings(&[(
            "crates/core/src/stream.rs",
            "struct S { count: usize, rank: usize }\n\
             fn open(r: &mut R) -> Result<S, E> {\n\
             \x20   let count = r.u32()? as usize;\n\
             \x20   let rank = r.u8()? as usize;\n\
             \x20   if rank > 6 { return Err(E::Bad); }\n\
             \x20   Ok(S { count, rank })\n}\n\
             fn use_it(s: &S) -> usize {\n\
             \x20   s.count * 8\n}\n\
             fn use_rank(s: &S) -> usize {\n\
             \x20   s.rank + 1\n}\n",
        )]);
        // `count` was stored unvalidated → the `*` downstream reports;
        // `rank` was guarded before the store → clean.
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("`count`"), "{}", f[0].2);
    }

    #[test]
    fn masked_and_float_reads_are_clean() {
        let f = findings(&[(
            "crates/baselines/src/header.rs",
            "fn varint(r: &mut R) -> Result<u64, E> {\n\
             \x20   let b = r.u8()?;\n\
             \x20   let v = u64::from(b & 0x7F) << 3;\n\
             \x20   Ok(v)\n}\n\
             fn floats(r: &mut R) -> Result<f64, E> {\n\
             \x20   let eb = f64::from_le_bytes(x);\n\
             \x20   Ok(eb * 0.5)\n}\n",
        )]);
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn out_of_scope_files_do_not_report() {
        let f = findings(&[(
            "crates/entropy/src/huffman.rs",
            "fn decode(r: &mut R) -> Result<usize, E> {\n    let n = r.u32()? as usize;\n    Ok(n * 2)\n}\n",
        )]);
        assert_eq!(f, vec![]);
    }
}
