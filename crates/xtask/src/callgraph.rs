//! Cross-crate call graph over the parsed `fn` items.
//!
//! Resolution is *name-based*: a call site `helper(..)` or `x.helper(..)`
//! gets an edge to every workspace function named `helper`, in any crate.
//! That is deliberately conservative — without type information we cannot
//! tell which impl a method call lands on (no trait-object resolution), so
//! the graph over-approximates reachability and R5 errs on the side of
//! reporting. Calls into `std` or external crates resolve to nothing and
//! simply drop out. See `docs/STATIC_ANALYSIS.md` for the model's limits.

use crate::items::FnItem;
use std::collections::HashMap;

/// One graph node: a function item and the workspace-relative file that
/// declares it. Node indices are stable (files in input order, items in
/// source order), so traversals are deterministic.
pub struct Node<'a> {
    pub file: &'a str,
    pub item: &'a FnItem,
}

/// An edge, annotated with the call site's line for path reporting.
#[derive(Clone, Copy)]
pub struct Edge {
    pub callee: usize,
    pub call_line: usize,
}

pub struct Graph<'a> {
    pub nodes: Vec<Node<'a>>,
    /// `edges[n]` = calls out of node `n`, in source order.
    pub edges: Vec<Vec<Edge>>,
}

/// Builds the workspace call graph from per-file item lists.
pub fn build<'a>(files: &'a [(String, Vec<FnItem>)]) -> Graph<'a> {
    let mut nodes = Vec::new();
    for (file, items) in files {
        for item in items {
            nodes.push(Node {
                file: file.as_str(),
                item,
            });
        }
    }

    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (idx, node) in nodes.iter().enumerate() {
        by_name.entry(node.item.name.as_str()).or_default().push(idx);
    }

    let mut edges = Vec::with_capacity(nodes.len());
    for node in &nodes {
        let mut out: Vec<Edge> = Vec::new();
        for call in &node.item.calls {
            if let Some(targets) = by_name.get(call.callee.as_str()) {
                for &t in targets {
                    if !out.iter().any(|e| e.callee == t) {
                        out.push(Edge {
                            callee: t,
                            call_line: call.line,
                        });
                    }
                }
            }
        }
        edges.push(out);
    }
    Graph { nodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{self, Lines};

    fn items_of(src: &str) -> Vec<FnItem> {
        let lexed = lexer::strip(src);
        let active = lexer::blank_test_items(&lexed.code);
        let lines = Lines::new(&active);
        crate::items::parse_items(&active, &lines)
    }

    #[test]
    fn resolves_calls_across_files() {
        let files = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                items_of("fn entry() { helper(); }\n"),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                items_of("fn helper() {}\n"),
            ),
        ];
        let g = build(&files);
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges[0].len(), 1);
        assert_eq!(g.nodes[g.edges[0][0].callee].item.name, "helper");
        assert!(g.edges[1].is_empty());
    }

    #[test]
    fn name_collisions_fan_out() {
        let files = vec![(
            "crates/a/src/lib.rs".to_string(),
            items_of(
                "fn entry() { x.get(0); }\nimpl A { fn get(&self) {} }\nimpl B { fn get(&self) {} }\n",
            ),
        )];
        let g = build(&files);
        assert_eq!(g.edges[0].len(), 2);
    }
}
