//! Rule R5: panic reachability from decoder-tainted input.
//!
//! Taint is seeded at the functions that first touch untrusted bytes or
//! arguments — codec entry points (`decompress*`, anything containing
//! `decode`), container/stream/table readers (`read_*`, `load*`, `open*`,
//! `parse_*`, `from_*`, `unpack*`), and *every* function in the scope seeds
//! (the CLI, which consumes argv and arbitrary files, plus the autotune and
//! periodic modules the ROADMAP called out). Taint then propagates along
//! call-graph edges, callee-direction, to a fixed point. Any panicking
//! construct or unchecked input-buffer index inside a tainted function is a
//! finding, reported with the full call path from the seeding entry point.
//!
//! The analysis is an over-approximation (name-based call resolution, no
//! trait-object narrowing, macros other than the panic set are opaque);
//! deliberate invariants are suppressed at the hazard site with
//! `xtask-allow: R5 -- reason`, which keeps every exception auditable.

use crate::callgraph::{self, Graph};
use crate::items::FnItem;
use std::collections::VecDeque;

/// Function-name patterns that seed taint (prefix match).
const SEED_PREFIXES: &[&str] = &["read_", "load", "open", "parse_", "from_", "unpack"];

/// Function-name substrings that seed taint anywhere in the name
/// (`decompress_plain`, `range_decode_stream`, `decode_block`, …).
const SEED_SUBSTRINGS: &[&str] = &["decompress", "decode"];

/// Path prefixes where *every* function is a taint seed: these modules'
/// inputs are untrusted end to end (CLI argv/files) or were named by the
/// ROADMAP as needing whole-module coverage.
const SEED_SCOPES: &[&str] = &[
    "crates/cli/src/",
    "crates/core/src/autotune.rs",
    "crates/core/src/periodic.rs",
    "crates/store/src/",
    "crates/storage/src/",
    "crates/serve/src/",
];

/// Crates exempt from R5: the linter itself, the bench harness (dev
/// tooling that may panic on broken experiment setups by design), and the
/// loom model checker (its scheduler panics — deadlock detection, state
/// explosion caps — are its reporting mechanism, and name-based call
/// resolution would otherwise thread decode taint through `lock`).
const EXEMPT: &[&str] = &["crates/xtask/", "crates/bench/", "crates/loom/"];

/// An R5 finding, pre-suppression.
#[derive(Debug)]
pub struct TaintFinding {
    pub file: String,
    pub line: usize,
    pub message: String,
}

fn is_product(file: &str) -> bool {
    !EXEMPT.iter().any(|p| file.starts_with(p))
}

fn is_seed(file: &str, item: &FnItem) -> bool {
    if !is_product(file) {
        return false;
    }
    if SEED_SCOPES.iter().any(|p| file.starts_with(p)) {
        return true;
    }
    SEED_PREFIXES.iter().any(|p| item.name.starts_with(p))
        || SEED_SUBSTRINGS.iter().any(|s| item.name.contains(s))
}

/// Runs the reachability pass over per-file item lists and returns every
/// hazard inside a tainted function in a product crate. Deterministic:
/// multi-source BFS in node-index order, so each finding reports the
/// shortest call path (ties broken by source order).
pub fn analyze(files: &[(String, Vec<FnItem>)]) -> Vec<TaintFinding> {
    let graph: Graph = callgraph::build(files);
    let n = graph.nodes.len();

    // parent[v] = predecessor node on the BFS path (usize::MAX for seeds).
    let mut parent = vec![usize::MAX; n];
    let mut reached = vec![false; n];
    let mut queue = VecDeque::new();
    for (idx, node) in graph.nodes.iter().enumerate() {
        if is_seed(node.file, node.item) {
            reached[idx] = true;
            queue.push_back(idx);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &graph.edges[u] {
            if !reached[e.callee] {
                reached[e.callee] = true;
                parent[e.callee] = u;
                queue.push_back(e.callee);
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, node) in graph.nodes.iter().enumerate() {
        if !reached[idx] || !is_product(node.file) || node.item.hazards.is_empty() {
            continue;
        }
        // Rebuild the seed → hazard-function call path.
        let mut path = vec![idx];
        let mut v = idx;
        while parent[v] != usize::MAX {
            v = parent[v];
            path.push(v);
        }
        path.reverse();
        let chain = path
            .iter()
            .map(|&p| graph.nodes[p].item.name.as_str())
            .collect::<Vec<_>>()
            .join(" → ");
        for h in &node.item.hazards {
            findings.push(TaintFinding {
                file: node.file.to_string(),
                line: h.line,
                message: format!(
                    "{} reachable from decode-tainted input (path: {chain})",
                    h.construct
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{self, Lines};

    fn items_of(src: &str) -> Vec<FnItem> {
        let lexed = lexer::strip(src);
        let active = lexer::blank_test_items(&lexed.code);
        let lines = Lines::new(&active);
        crate::items::parse_items(&active, &lines)
    }

    #[test]
    fn taint_crosses_files_and_reports_path() {
        let files = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                items_of("pub fn decompress_blob(buf: &[u8]) { step(buf); }\n"),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                items_of("pub fn step(buf: &[u8]) { leaf(buf); }\npub fn leaf(buf: &[u8]) -> u8 { buf[0] }\n"),
            ),
        ];
        let f = analyze(&files);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "crates/b/src/lib.rs");
        assert!(
            f[0].message.contains("path: decompress_blob → step → leaf"),
            "got: {}",
            f[0].message
        );
    }

    #[test]
    fn untainted_code_is_clean() {
        let files = vec![(
            "crates/a/src/lib.rs".to_string(),
            items_of("pub fn encode_only(v: &[f32]) -> usize { v.len().checked_mul(2).unwrap() }\n"),
        )];
        assert!(analyze(&files).is_empty());
    }

    #[test]
    fn exempt_crates_do_not_report() {
        let files = vec![(
            "crates/bench/src/main.rs".to_string(),
            items_of("pub fn decode_report(buf: &[u8]) -> u8 { buf[0] }\n"),
        )];
        assert!(analyze(&files).is_empty());
    }
}
